#!/bin/sh
# Local pre-commit gate: formatting, lints, and the tier-1 suite.
# Mirrors what CI runs; keep it fast enough to run on every commit.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== validator self-check: seeded-broken-program corpus"
# Every seeded corruption must be rejected with coordinates; a validator
# regression that starts accepting broken images fails here first.
cargo test --release -q -p voltron-sim --test validate

echo "== tier-1: release build + tests"
cargo build --release
cargo test -q

echo "== cycle-golden matrix with fast-forward disabled"
# The pinned fingerprints must be identical with the skip engine off;
# together with the default (fast-forward on) run above, this is the
# end-to-end equivalence check of DESIGN.md §6.
CYCLE_GOLDEN_FF=off cargo test --release -q --test cycle_golden

echo "== cycle-golden matrix with observers attached"
# Same fingerprints again with the ChromeTracer and interval probes
# recording, in both fast-forward modes: the observability layer must
# not perturb one architectural number (DESIGN.md §8).
CYCLE_GOLDEN_OBS=1 cargo test --release -q --test cycle_golden
CYCLE_GOLDEN_OBS=1 CYCLE_GOLDEN_FF=off cargo test --release -q --test cycle_golden

echo "== scaled-machine golden matrix (8/16 cores, both backends), four corners"
# Same architectural-invisibility contract on the scaled meshes and on
# the banked directory backend (DESIGN.md §9).
CYCLE_GOLDEN_FF=off cargo test --release -q --test scaling_golden
CYCLE_GOLDEN_OBS=1 cargo test --release -q --test scaling_golden
CYCLE_GOLDEN_OBS=1 CYCLE_GOLDEN_FF=off cargo test --release -q --test scaling_golden

echo "== 16-core smoke on both coherence backends"
# A real workload end to end (compile, simulate, validate outputs) on
# meshes up to 8x8 under snooping AND directory coherence: the scaling
# figure sweeps 1-64 cores x all strategies x both backends, and a
# figure binary on the directory backend exercises the --backend flag.
cargo run --release -q -p voltron-bench --bin scaling -- --test --bench 164.gzip \
    > /dev/null
cargo run --release -q -p voltron-bench --bin fig13 -- --test --bench 164.gzip \
    --backend directory > /dev/null

echo "== traced smoke run"
# End-to-end: a real workload traced through the CLI flag must emit
# Chrome trace JSON that parses and has events on every live core.
mkdir -p target/smoke
cargo run --release -q -p voltron-bench --bin bench_one -- 164.gzip \
    --trace-out target/smoke/trace.json --probes-out target/smoke/probes.json \
    > /dev/null
cargo run --release -q -p voltron-bench --bin trace_check -- target/smoke/trace.json 4

echo "== bench_diff regression gate: same-build sweeps compare clean"
# Two sweeps of the same build must be cycle-identical (simulated cycles
# are deterministic), so the gate passes on the honest pair -- and a
# sidecar doctored to claim fewer cycles must trip it (DESIGN.md §11.3).
cp BENCH_bench_one.json target/smoke/bench_old.json
cargo run --release -q -p voltron-bench --bin bench_one -- 164.gzip > /dev/null
cargo run --release -q -p voltron-bench --bin bench_diff -- \
    target/smoke/bench_old.json BENCH_bench_one.json
sed 's/"cycles":[0-9][0-9]*/"cycles":1/g' BENCH_bench_one.json \
    > target/smoke/bench_doctored.json
if cargo run --release -q -p voltron-bench --bin bench_diff -- \
    target/smoke/bench_doctored.json BENCH_bench_one.json \
    > /dev/null 2>&1; then
    echo "bench_diff passed a sidecar with seeded cycle regressions" >&2
    exit 1
fi

echo "== serve smoke: stdin burst, result cache, one-shot fingerprint equality"
# The daemon must produce byte-identical architectural numbers to the
# one-shot path (same BENCH_bench_one.json the bench_diff gate just
# regenerated), absorb an identical repeat from its result cache, and
# survive faulted and what-if requests on the same connection
# (DESIGN.md §12).
printf '%s\n' \
    '{"id":1,"workload":"164.gzip","strategy":"hybrid","cores":4}' \
    '{"id":2,"workload":"164.gzip","strategy":"hybrid","cores":4}' \
    '{"id":3,"workload":"164.gzip","strategy":"hybrid","cores":4,"faults":"seed=7,rate=0.002"}' \
    '{"id":4,"workload":"164.gzip","strategy":"hybrid","cores":4,"whatif":true}' \
    | cargo run --release -q -p voltron-bench --bin serve -- --stdin \
    > target/smoke/serve.ndjson
if grep -q '"ok":0' target/smoke/serve.ndjson; then
    echo "serve smoke returned an error row:" >&2
    cat target/smoke/serve.ndjson >&2
    exit 1
fi
test "$(wc -l < target/smoke/serve.ndjson)" -eq 4 || {
    echo "serve smoke expected 4 response rows" >&2
    exit 1
}
grep '"id":2,' target/smoke/serve.ndjson | grep -q '"result":"hit"' || {
    echo "repeat request was not served from the result cache" >&2
    exit 1
}
served=$(grep '"id":1,' target/smoke/serve.ndjson \
    | sed -n 's/.*"cycles":\([0-9][0-9]*\).*/\1/p')
oneshot=$(sed -n \
    's/.*"strategy":"hybrid","cores":4,"backend":"snooping","cycles":\([0-9][0-9]*\).*/\1/p' \
    BENCH_bench_one.json)
if [ -z "$served" ] || [ "$served" != "$oneshot" ]; then
    echo "served cycles (${served:-none}) != one-shot cycles (${oneshot:-none})" >&2
    exit 1
fi

echo "== serve_bench: saturation throughput, warm cache, served golden matrix"
# The standing heavy-traffic benchmark: enforces >= 2x saturation
# throughput vs amortized one-shot runs and >= 5x warm-over-cold repeat
# latency, re-checks the served golden matrix against the direct path,
# and appends a git-rev-stamped row to BENCH_history.ndjson so
# bench_diff guards serving throughput too.
cargo run --release -q -p voltron-bench --bin serve_bench > /dev/null
grep -q '"golden_match":1' BENCH_serve.json || {
    echo "serve_bench golden matrix diverged from the direct path" >&2
    exit 1
}
grep -q '"failures":0' BENCH_serve.json || {
    echo "serve_bench recorded request failures" >&2
    exit 1
}

echo "== chaos smoke: fixed-seed fault plan + retries, no hard failures"
# The whole figure path under fire (DESIGN.md §10): a seeded fault plan
# across every site, failed workloads retried under reseeded plans. Any
# hard failure (a workload no retry could save) fails the gate; the
# chaos suite proper (tests/fault_recovery.rs) runs with tier-1 above.
cargo run --release -q -p voltron-bench --bin fig13 -- --test --bench 164.gzip \
    --faults seed=7,rate=0.002 --retries 2 > /dev/null
grep -q '"hard":0' BENCH_fig13.json || {
    echo "chaos smoke left hard failures in BENCH_fig13.json" >&2
    exit 1
}

echo "== fault-off golden matrix: the compiled-in chaos layer is invisible"
# The fingerprints above already ran with faults=None; re-run the full
# matrix once more after the chaos smoke to pin that nothing the fault
# layer touched (stats plumbing, watchdog wiring, trace tracks) moved an
# architectural number in any {obs, ff} corner.
cargo test --release -q --test cycle_golden
CYCLE_GOLDEN_OBS=1 CYCLE_GOLDEN_FF=off cargo test --release -q --test cycle_golden

echo "== workspace tests (release)"
cargo test --workspace --release -q

echo "all checks passed"
