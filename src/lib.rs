//! Voltron — reproduction of "Extending Multicore Architectures to Exploit
//! Hybrid Parallelism in Single-thread Applications" (HPCA 2007).
//!
//! This facade crate re-exports the sub-crates so examples and downstream
//! users need a single dependency:
//!
//! * [`ir`] — compiler IR, interpreter, profiler.
//! * [`sim`] — the cycle-level Voltron machine simulator.
//! * [`compiler`] — partitioners, schedulers, DOALL, mode selection.
//! * [`system`] — the end-to-end compile-and-run API and experiments.
//! * [`workloads`] — the MediaBench/SPEC-shaped benchmark kernels.

pub use voltron_compiler as compiler;
pub use voltron_core as system;
pub use voltron_ir as ir;
pub use voltron_sim as sim;
pub use voltron_workloads as workloads;
