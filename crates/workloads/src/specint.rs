//! SPEC integer benchmark kernels: `132.ijpeg`, `164.gzip`, `175.vpr`,
//! `197.parser`, `255.vortex`, `256.bzip2`.

use crate::common::*;
use crate::{Expected, Scale, Suite, Workload};
use voltron_ir::builder::ProgramBuilder;
use voltron_ir::CmpCc;

/// `132.ijpeg` — forward DCT-like transform and quantization over 8x8
/// blocks: DOALL across blocks with dense integer ILP inside.
pub fn ijpeg(scale: Scale) -> Workload {
    let mut rng = rng_for("ijpeg");
    let blocks = scale.of(24, 96);
    let n = (blocks * 64) as usize;
    let mut pb = ProgramBuilder::new("132.ijpeg");
    let src = pb
        .data_mut()
        .array_i32("src", &rand_i32s(&mut rng, n, -128, 128));
    let dst = pb.data_mut().zeroed("dst", (n * 4) as u64);
    let quant = pb
        .data_mut()
        .array_i32("quant", &rand_i32s(&mut rng, 64, 1, 32));

    let mut f = pb.function("main");
    let s_b = f.ldi(src as i64);
    let d_b = f.ldi(dst as i64);
    let q_b = f.ldi(quant as i64);
    f.counted_loop(0i64, blocks, 1, |f, blk| {
        let bo = f.mul(blk, 256i64); // 64 * 4 bytes
        let sb = f.add(s_b, bo);
        let db = f.add(d_b, bo);
        // Row-pass butterflies (trip 8 per block).
        f.counted_loop(0i64, 8i64, 1, |f, r| {
            let ro = f.mul(r, 32i64);
            let row = f.add(sb, ro);
            let orow = f.add(db, ro);
            let a0 = f.load4(row, 0);
            let a7 = f.load4(row, 28);
            let a1 = f.load4(row, 4);
            let a6 = f.load4(row, 24);
            let a2 = f.load4(row, 8);
            let a5 = f.load4(row, 20);
            let a3 = f.load4(row, 12);
            let a4 = f.load4(row, 16);
            let s07 = f.add(a0, a7);
            let d07 = f.sub(a0, a7);
            let s16 = f.add(a1, a6);
            let d16 = f.sub(a1, a6);
            let s25 = f.add(a2, a5);
            let d25 = f.sub(a2, a5);
            let s34 = f.add(a3, a4);
            let d34 = f.sub(a3, a4);
            let e0 = f.add(s07, s34);
            let e1 = f.add(s16, s25);
            let e2 = f.sub(s07, s34);
            let e3 = f.sub(s16, s25);
            let o0 = f.add(e0, e1);
            let o1 = f.sub(e0, e1);
            let o2 = f.add(e2, e3);
            let t = f.mul(d16, 3i64);
            let o3 = f.add(d07, t);
            let t2 = f.mul(d34, 3i64);
            let o4 = f.add(d25, t2);
            f.store4(orow, 0, o0);
            f.store4(orow, 4, o1);
            f.store4(orow, 8, o2);
            f.store4(orow, 12, o3);
            f.store4(orow, 16, o4);
            f.store4(orow, 20, d07);
            f.store4(orow, 24, d16);
            f.store4(orow, 28, d25);
        });
        // Quantize pass (trip 64 per block).
        f.counted_loop(0i64, 64i64, 1, |f, k| {
            let ko = f.shl(k, 2i64);
            let da = f.add(db, ko);
            let v = f.load4(da, 0);
            let qa = f.add(q_b, ko);
            let q = f.load4(qa, 0);
            let scaled = f.div(v, q);
            f.store4(da, 0, scaled);
        });
    });
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "132.ijpeg",
        suite: Suite::SpecInt,
        expected: Expected::Llp,
        program: pb.finish(),
    }
}

/// `164.gzip` — the paper's Fig. 8 strand loop: longest-match string
/// comparison over two large byte buffers, decoupled so the `scan` and
/// `match` load streams overlap their misses.
pub fn gzip(scale: Scale) -> Workload {
    let mut rng = rng_for("gzip");
    let len = scale.of(8 * 1024, 48 * 1024);
    let tries = scale.of(48, 160);
    let mut pb = ProgramBuilder::new("164.gzip");
    // Compressible-ish data: long runs with noise.
    let mut window = rand_bytes(&mut rng, len as usize + 512); // +512: match overrun margin
    for chunk in window.chunks_mut(97) {
        let v = chunk[0];
        for b in chunk.iter_mut().skip(1) {
            if *b % 3 != 0 {
                *b = v;
            }
        }
    }
    let win = pb.data_mut().array_u8("window", &window);
    let starts = pb.data_mut().array_i32(
        "starts",
        &rand_indices(&mut rng, tries as usize, (len / 2) as usize),
    );
    let lens = pb.data_mut().zeroed("lens", (tries * 8) as u64);
    let best_sym = pb.data_mut().zeroed("best", 8);

    let mut f = pb.function("main");
    let w_b = f.ldi(win as i64);
    let st_b = f.ldi(starts as i64);
    let l_b = f.ldi(lens as i64);
    let max_len = f.ldi(32); // 32 iterations x 8 bytes = a 258-ish byte cap
    let best = f.ldi(0);
    f.counted_loop(0i64, tries, 1, |f, t| {
        let to = f.shl(t, 2i64);
        let sa = f.add(st_b, to);
        let s0 = f.load4(sa, 0);
        let scan = f.add(w_b, s0);
        let half = f.ldi(len / 2);
        let m0 = f.add(s0, half);
        let mtch = f.add(w_b, m0);
        let n = f.ldi(0);
        // Fig. 8 do-while, faithfully: each iteration compares FOUR
        // 2-byte strides (`*(ush*)(scan+=2) == *(ush*)(match+=2) && ...`),
        // so one predicate round-trip between the strands amortizes over
        // four load pairs.
        f.do_while(|f| {
            let off = f.shl(n, 3i64); // 4 shorts = 8 bytes per iteration
            let pscan = f.add(scan, off);
            let s0 = f.load2u(pscan, 0);
            let s1 = f.load2u(pscan, 2);
            let s2 = f.load2u(pscan, 4);
            let s3 = f.load2u(pscan, 6);
            let pmatch = f.add(mtch, off);
            let m0 = f.load2u(pmatch, 0);
            let m1 = f.load2u(pmatch, 2);
            let m2 = f.load2u(pmatch, 4);
            let m3 = f.load2u(pmatch, 6);
            let e0 = f.cmp(CmpCc::Eq, s0, m0);
            let e1 = f.cmp(CmpCc::Eq, s1, m1);
            let e2 = f.cmp(CmpCc::Eq, s2, m2);
            let e3 = f.cmp(CmpCc::Eq, s3, m3);
            let a0 = f.pand(e0, e1);
            let a1 = f.pand(e2, e3);
            let eq = f.pand(a0, a1);
            let more = f.cmp(CmpCc::Lt, n, max_len);
            // Canonical self-increment: the compiler replicates `n` on
            // both strands (Fig. 8 keeps each side's pointer local).
            f.reduce_add(n, 1i64);
            f.pand(eq, more)
        });
        let la = f.shl(t, 3i64);
        let lp = f.add(l_b, la);
        f.store8(lp, 0, n);
        f.reduce_max(best, n);
    });
    let b_b = f.ldi(best_sym as i64);
    f.store8(b_b, 0, best);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "164.gzip",
        suite: Suite::SpecInt,
        expected: Expected::FineGrainTlp,
        program: pb.finish(),
    }
}

/// `175.vpr` — placement cost evaluation: indirect endpoint lookups per
/// net (statistical LLP) followed by a serial annealing-style update with
/// a carried LCG seed (ILP).
pub fn vpr(scale: Scale) -> Workload {
    let mut rng = rng_for("vpr");
    let nets = scale.of(96, 320);
    let cells = scale.of(128, 512);
    let mut pb = ProgramBuilder::new("175.vpr");
    let xs = pb
        .data_mut()
        .array_i32("xs", &rand_i32s(&mut rng, cells as usize, 0, 100));
    let ys = pb
        .data_mut()
        .array_i32("ys", &rand_i32s(&mut rng, cells as usize, 0, 100));
    let pins = pb.data_mut().array_i32(
        "pins",
        &rand_indices(&mut rng, (nets * 4) as usize, cells as usize),
    );
    let cost = pb.data_mut().zeroed("cost", (nets * 8) as u64);
    let total_sym = pb.data_mut().zeroed("total", 16);

    let mut f = pb.function("main");
    let x_b = f.ldi(xs as i64);
    let y_b = f.ldi(ys as i64);
    let p_b = f.ldi(pins as i64);
    let c_b = f.ldi(cost as i64);
    let total = f.ldi(0);
    // Bounding-box cost per net (indirect loads, disjoint stores).
    f.counted_loop(0i64, nets, 1, |f, net| {
        let po = f.shl(net, 4i64); // 4 pins * 4 bytes
        let pa = f.add(p_b, po);
        let minx = f.ldi(1_000_000);
        let maxx = f.ldi(-1_000_000);
        let miny = f.ldi(1_000_000);
        let maxy = f.ldi(-1_000_000);
        f.counted_loop(0i64, 4i64, 1, |f, k| {
            let ko = f.shl(k, 2i64);
            let ppa = f.add(pa, ko);
            let cell = f.load4(ppa, 0);
            let co = f.shl(cell, 2i64);
            let cxa = f.add(x_b, co);
            let cx = f.load4(cxa, 0);
            let cya = f.add(y_b, co);
            let cy = f.load4(cya, 0);
            f.reduce_min(minx, cx);
            f.reduce_max(maxx, cx);
            f.reduce_min(miny, cy);
            f.reduce_max(maxy, cy);
        });
        let dx = f.sub(maxx, minx);
        let dy = f.sub(maxy, miny);
        let bb = f.add(dx, dy);
        let co8 = f.shl(net, 3i64);
        let ca = f.add(c_b, co8);
        f.store8(ca, 0, bb);
        f.reduce_add(total, bb);
    });
    // Serial annealing sweep: carried LCG decides accept/reject.
    let seed = f.ldi(12345);
    let accepted = f.ldi(0);
    f.counted_loop(0i64, nets, 1, |f, net| {
        let s1 = f.mul(seed, 1103515245i64);
        let s2 = f.add(s1, 12345i64);
        let s3 = f.and(s2, 0x7fff_ffffi64);
        f.mov_to(seed, s3);
        let co8 = f.shl(net, 3i64);
        let ca = f.add(c_b, co8);
        let c = f.load8(ca, 0);
        let gate = f.rem(s3, 100i64);
        let p = f.cmp(CmpCc::Lt, gate, 40i64);
        let dc = f.sar(c, 3i64);
        let gain = f.sel(p, dc, 0i64);
        f.reduce_add(accepted, gain);
    });
    let t_b = f.ldi(total_sym as i64);
    f.store8(t_b, 0, total);
    f.store8(t_b, 8, accepted);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "175.vpr",
        suite: Suite::SpecInt,
        expected: Expected::Mixed,
        program: pb.finish(),
    }
}

/// `197.parser` — dictionary lookup over hash chains: pointer chasing
/// with data-dependent trip counts; the paper's hardest benchmark.
pub fn parser(scale: Scale) -> Workload {
    let mut rng = rng_for("parser");
    let buckets = 64i64;
    let nodes = scale.of(512, 2048);
    let words = scale.of(128, 512);
    let mut pb = ProgramBuilder::new("197.parser");
    // Host-side hash-chain construction: every bucket non-empty.
    let mut heads = vec![-1i32; buckets as usize];
    let mut next = vec![-1i32; nodes as usize];
    let mut keys = vec![0i32; nodes as usize];
    for i in 0..nodes as usize {
        let key = rand_i32s(&mut rng, 1, 0, 100_000)[0];
        keys[i] = key;
        let b = (key as u64 % buckets as u64) as usize;
        next[i] = heads[b];
        heads[b] = i as i32;
    }
    for (b, h) in heads.iter_mut().enumerate() {
        if *h == -1 {
            // Force-fill: repoint node b's chain.
            *h = b as i32;
        }
    }
    let heads_a = pb.data_mut().array_i32("heads", &heads);
    let next_a = pb.data_mut().array_i32("next", &next);
    let keys_a = pb.data_mut().array_i32("keys", &keys);
    let queries = pb
        .data_mut()
        .array_i32("queries", &rand_i32s(&mut rng, words as usize, 0, 100_000));
    let steps_a = pb.data_mut().zeroed("steps", (words * 8) as u64);

    let mut f = pb.function("main");
    let h_b = f.ldi(heads_a as i64);
    let n_b = f.ldi(next_a as i64);
    let k_b = f.ldi(keys_a as i64);
    let q_b = f.ldi(queries as i64);
    let s_b = f.ldi(steps_a as i64);
    f.counted_loop(0i64, words, 1, |f, wi| {
        let qo = f.shl(wi, 2i64);
        let qa = f.add(q_b, qo);
        let q = f.load4(qa, 0);
        let bucket = f.rem(q, 64i64);
        let bo = f.shl(bucket, 2i64);
        let ha = f.add(h_b, bo);
        let p = f.load4(ha, 0);
        let steps = f.ldi(0);
        // Chase: while (p != -1 && keys[p] != q).
        f.do_while(|f| {
            let so = f.add(steps, 1i64);
            f.mov_to(steps, so);
            let po = f.shl(p, 2i64);
            let ka = f.add(k_b, po);
            let key = f.load4(ka, 0);
            let na = f.add(n_b, po);
            let nxt = f.load4(na, 0);
            f.mov_to(p, nxt);
            let miss = f.cmp(CmpCc::Ne, key, q);
            let valid = f.cmp(CmpCc::Ne, nxt, -1i64);
            f.pand(miss, valid)
        });
        let so8 = f.shl(wi, 3i64);
        let sa = f.add(s_b, so8);
        f.store8(sa, 0, steps);
    });
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "197.parser",
        suite: Suite::SpecInt,
        expected: Expected::FineGrainTlp,
        program: pb.finish(),
    }
}

/// `255.vortex` — object-store transactions: hashed record lookups and
/// 64-byte record copies with cache-hostile strides (fine-grain TLP).
pub fn vortex(scale: Scale) -> Workload {
    let mut rng = rng_for("vortex");
    let records = scale.of(256, 1024);
    let txns = scale.of(96, 384);
    let rec_words = 8i64;
    let mut pb = ProgramBuilder::new("255.vortex");
    let store = pb.data_mut().array_i64(
        "store",
        &rand_i64s(&mut rng, (records * rec_words) as usize, 0, 1 << 40),
    );
    let picks = pb.data_mut().array_i32(
        "picks",
        &rand_indices(&mut rng, txns as usize, records as usize),
    );
    let staging = pb
        .data_mut()
        .zeroed("staging", (txns * rec_words * 8) as u64);
    let digest_sym = pb.data_mut().zeroed("digest", 16);

    let mut f = pb.function("main");
    let st_b = f.ldi(store as i64);
    let p_b = f.ldi(picks as i64);
    let sg_b = f.ldi(staging as i64);
    let digest = f.ldi(0);
    let lru = f.ldi(0); // carried MRU tracker: keeps the loop off the DOALL path
    f.counted_loop(0i64, txns, 1, |f, t| {
        let po = f.shl(t, 2i64);
        let pa = f.add(p_b, po);
        let rec = f.load4(pa, 0);
        let nl = f.xor(lru, rec);
        f.mov_to(lru, nl);
        let ro = f.mul(rec, rec_words * 8);
        let src = f.add(st_b, ro);
        let so = f.mul(t, rec_words * 8);
        let dst = f.add(sg_b, so);
        // Copy the record with a checksum fold.
        f.counted_loop(0i64, rec_words, 1, |f, wdi| {
            let wo = f.shl(wdi, 3i64);
            let sa = f.add(src, wo);
            let v = f.load8(sa, 0);
            let da = f.add(dst, wo);
            let mixed = f.xor(v, t);
            f.store8(da, 0, mixed);
            f.reduce_add(digest, v);
        });
    });
    let d_b = f.ldi(digest_sym as i64);
    f.store8(d_b, 0, digest);
    f.store8(d_b, 8, lru);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "255.vortex",
        suite: Suite::SpecInt,
        expected: Expected::FineGrainTlp,
        program: pb.finish(),
    }
}

/// `256.bzip2` — block-sort front end: byte histogram (carried through
/// memory), serial prefix sum, permutation scatter, and a checksum
/// reduction. A mix of serial, strand, and LLP regions.
pub fn bzip2(scale: Scale) -> Workload {
    let mut rng = rng_for("bzip2");
    let n = scale.of(2048, 8192);
    let mut pb = ProgramBuilder::new("256.bzip2");
    let data = pb
        .data_mut()
        .array_u8("data", &rand_bytes(&mut rng, n as usize));
    let hist = pb.data_mut().zeroed("hist", 256 * 8);
    let cumsum = pb.data_mut().zeroed("cumsum", 256 * 8);
    let sorted = pb.data_mut().zeroed("sorted", n as u64);
    let check_sym = pb.data_mut().zeroed("check", 8);

    let mut f = pb.function("main");
    let d_b = f.ldi(data as i64);
    let h_b = f.ldi(hist as i64);
    let c_b = f.ldi(cumsum as i64);
    let s_b = f.ldi(sorted as i64);
    // Histogram: indirect read-modify-write (true cross-iteration deps).
    f.counted_loop(0i64, n, 1, |f, i| {
        let da = f.add(d_b, i);
        let byte = f.load1u(da, 0);
        let ho = f.shl(byte, 3i64);
        let ha = f.add(h_b, ho);
        let cnt = f.load8(ha, 0);
        let c1 = f.add(cnt, 1i64);
        f.store8(ha, 0, c1);
    });
    // Exclusive prefix sum (serial recurrence through memory).
    let run = f.ldi(0);
    f.counted_loop(0i64, 256i64, 1, |f, c| {
        let co = f.shl(c, 3i64);
        let ha = f.add(h_b, co);
        let cnt = f.load8(ha, 0);
        let ca = f.add(c_b, co);
        f.store8(ca, 0, run);
        let nr = f.add(run, cnt);
        f.mov_to(run, nr);
    });
    // Scatter into sorted order (carried cursor array in memory).
    f.counted_loop(0i64, n, 1, |f, i| {
        let da = f.add(d_b, i);
        let byte = f.load1u(da, 0);
        let co = f.shl(byte, 3i64);
        let ca = f.add(c_b, co);
        let pos = f.load8(ca, 0);
        let oa = f.add(s_b, pos);
        f.store1(oa, 0, byte);
        let p1 = f.add(pos, 1i64);
        f.store8(ca, 0, p1);
    });
    // Checksum over the sorted output (order-independent LLP reduction).
    let check = f.ldi(0);
    f.counted_loop(0i64, n, 1, |f, i| {
        let sa = f.add(s_b, i);
        let v = f.load1u(sa, 0);
        let w = f.mul(v, 31i64);
        f.reduce_add(check, w);
    });
    let k_b = f.ldi(check_sym as i64);
    f.store8(k_b, 0, check);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "256.bzip2",
        suite: Suite::SpecInt,
        expected: Expected::Mixed,
        program: pb.finish(),
    }
}
