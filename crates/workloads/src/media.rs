//! MediaBench kernels: `cjpeg`, `djpeg`, `epic`, `g721decode`,
//! `g721encode`, `gsmdecode`, `gsmencode`, `mpeg2dec`, `mpeg2enc`,
//! `rawcaudio`, `rawdaudio`, `unepic`.

use crate::common::*;
use crate::{Expected, Scale, Suite, Workload};
use voltron_ir::builder::{FunctionBuilder, ProgramBuilder};
use voltron_ir::{CmpCc, Reg};

/// Emit the 8-tap GSM long-term-prediction filter of the paper's Fig. 9:
/// a tight serial recurrence over `sri` with abundant ILP per step.
fn ltp_filter_step(f: &mut FunctionBuilder, rrp: Reg, v: Reg, sri: Reg, i: i64) {
    let tap = f.load8(rrp, i * 8);
    let dv = f.load8(v, i * 8);
    let prod = f.mul(tap, dv);
    let rounded = f.add(prod, 16384i64);
    let term = f.sar(rounded, 15i64);
    let ns = f.sub(sri, term);
    f.mov_to(sri, ns);
    let prod2 = f.mul(tap, ns);
    let rounded2 = f.add(prod2, 16384i64);
    let term2 = f.sar(rounded2, 15i64);
    let vn = f.load8(v, i * 8);
    let nv = f.add(vn, term2);
    f.store8(v, i * 8 + 8, nv);
}

/// `cjpeg` — JPEG compression front end: RGB→YCbCr color conversion
/// (LLP) followed by blocked DCT rows (ILP). The paper's hybrid poster
/// child (Fig. 13 discussion).
pub fn cjpeg(scale: Scale) -> Workload {
    let mut rng = rng_for("cjpeg");
    let pixels = scale.of(768, 2048);
    let blocks = pixels / 64; // the DCT consumes the converted luma plane
    let mut pb = ProgramBuilder::new("cjpeg");
    let rgb = pb
        .data_mut()
        .array_i32("rgb", &rand_i32s(&mut rng, (pixels * 3) as usize, 0, 256));
    let luma = pb.data_mut().zeroed("luma", (pixels * 4) as u64);
    let chroma = pb.data_mut().zeroed("chroma", (pixels * 4) as u64);
    let dct = pb.data_mut().zeroed("dct", (blocks * 64 * 4) as u64);

    let mut f = pb.function("main");
    let rgb_b = f.ldi(rgb as i64);
    let y_b = f.ldi(luma as i64);
    let c_b = f.ldi(chroma as i64);
    // Color conversion: pure DOALL.
    f.counted_loop(0i64, pixels, 1, |f, px| {
        let po = f.mul(px, 12i64);
        let pa = f.add(rgb_b, po);
        let r = f.load4(pa, 0);
        let g = f.load4(pa, 4);
        let b = f.load4(pa, 8);
        let yr = f.mul(r, 77i64);
        let yg = f.mul(g, 150i64);
        let yb = f.mul(b, 29i64);
        let y0 = f.add(yr, yg);
        let y1 = f.add(y0, yb);
        let y = f.sar(y1, 8i64);
        let cr = f.sub(r, y);
        let oo = f.shl(px, 2i64);
        let ya = f.add(y_b, oo);
        f.store4(ya, 0, y);
        let ca = f.add(c_b, oo);
        f.store4(ca, 0, cr);
    });
    // Full row-pass DCT over the just-converted luma plane: eight dense
    // butterfly rows per block (heavy integer ILP on data still warm in
    // the caches), with a carried DC predictor so the block loop stays
    // off the DOALL path — the paper's "significant portion best suited
    // for ILP" half of cjpeg.
    let co_b = f.ldi(luma as i64);
    let d_b = f.ldi(dct as i64);
    let dcpred = f.ldi(0);
    f.counted_loop(0i64, blocks, 1, |f, blk| {
        let bo = f.mul(blk, 256i64);
        let sb = f.add(co_b, bo);
        let db = f.add(d_b, bo);
        let blocksum = f.ldi(0);
        f.counted_loop(0i64, 8i64, 1, |f, row| {
            let ro = f.mul(row, 32i64);
            let srow = f.add(sb, ro);
            let drow = f.add(db, ro);
            let a0 = f.load4(srow, 0);
            let a1 = f.load4(srow, 4);
            let a2 = f.load4(srow, 8);
            let a3 = f.load4(srow, 12);
            let a4 = f.load4(srow, 16);
            let a5 = f.load4(srow, 20);
            let a6 = f.load4(srow, 24);
            let a7 = f.load4(srow, 28);
            let s0 = f.add(a0, a7);
            let s1 = f.add(a1, a6);
            let s2 = f.add(a2, a5);
            let s3 = f.add(a3, a4);
            let d0 = f.sub(a0, a7);
            let d1 = f.sub(a1, a6);
            let d2 = f.sub(a2, a5);
            let d3 = f.sub(a3, a4);
            let e0 = f.add(s0, s3);
            let e1 = f.add(s1, s2);
            let dc = f.add(e0, e1);
            let ac1 = f.sub(e0, e1);
            let m0 = f.mul(d0, 5i64);
            let m1 = f.mul(d1, 4i64);
            let m2 = f.mul(d2, 3i64);
            let m3 = f.mul(d3, 2i64);
            let ac2 = f.add(m0, m1);
            let ac3 = f.add(m2, m3);
            let x0 = f.mul(ac1, 7i64);
            let x1 = f.mul(ac2, 6i64);
            let x2 = f.mul(ac3, 5i64);
            let y0 = f.add(x0, x1);
            let y1 = f.add(x2, dc);
            let q0 = f.sar(y0, 2i64);
            let q1 = f.sar(y1, 2i64);
            f.store4(drow, 0, q0);
            f.store4(drow, 4, q1);
            f.store4(drow, 8, ac2);
            f.store4(drow, 12, ac3);
            f.reduce_add(blocksum, dc);
        });
        let delta = f.sub(blocksum, dcpred);
        f.mov_to(dcpred, blocksum);
        f.store4(db, 16, delta);
    });
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "cjpeg",
        suite: Suite::MediaBench,
        expected: Expected::Mixed,
        program: pb.finish(),
    }
}

/// `djpeg` — JPEG decompression: blocked IDCT (LLP) and a 2x horizontal
/// upsample (LLP) with a serial Huffman-state-like prefix pass (ILP).
pub fn djpeg(scale: Scale) -> Workload {
    let mut rng = rng_for("djpeg");
    let blocks = scale.of(16, 72);
    let pixels = blocks * 32;
    let mut pb = ProgramBuilder::new("djpeg");
    let coeffs = pb.data_mut().array_i32(
        "coeffs",
        &rand_i32s(&mut rng, (blocks * 64) as usize, -512, 512),
    );
    let image = pb.data_mut().zeroed("image", (blocks * 64 * 4) as u64);
    let upsampled = pb.data_mut().zeroed("upsampled", (pixels * 2 * 4) as u64);
    let state_sym = pb.data_mut().zeroed("state", 8);

    let mut f = pb.function("main");
    let c_b = f.ldi(coeffs as i64);
    let i_b = f.ldi(image as i64);
    // Huffman-like serial prefix: each block's DC adds to the previous.
    let run = f.ldi(0);
    f.counted_loop(0i64, blocks, 1, |f, blk| {
        let bo = f.mul(blk, 256i64);
        let ca = f.add(c_b, bo);
        let dc = f.load4(ca, 0);
        let nr = f.add(run, dc);
        f.mov_to(run, nr);
        f.store4(ca, 0, nr);
    });
    let st_b = f.ldi(state_sym as i64);
    f.store8(st_b, 0, run);
    // Blocked IDCT-like reconstruction: DOALL over blocks.
    f.counted_loop(0i64, blocks, 1, |f, blk| {
        let bo = f.mul(blk, 256i64);
        let sb = f.add(c_b, bo);
        let db = f.add(i_b, bo);
        f.counted_loop(0i64, 8i64, 1, |f, r| {
            let ro = f.mul(r, 32i64);
            let row = f.add(sb, ro);
            let orow = f.add(db, ro);
            let c0 = f.load4(row, 0);
            let c1 = f.load4(row, 4);
            let c2 = f.load4(row, 8);
            let c3 = f.load4(row, 12);
            let t0 = f.add(c0, c2);
            let t1 = f.sub(c0, c2);
            let m1 = f.mul(c1, 6i64);
            let m3 = f.mul(c3, 2i64);
            let u0 = f.add(m1, m3);
            let u1 = f.sub(m1, m3);
            let p0 = f.add(t0, u0);
            let p1 = f.add(t1, u1);
            let p2 = f.sub(t1, u1);
            let p3 = f.sub(t0, u0);
            let q0 = f.sar(p0, 3i64);
            let q1 = f.sar(p1, 3i64);
            let q2 = f.sar(p2, 3i64);
            let q3 = f.sar(p3, 3i64);
            f.store4(orow, 0, q0);
            f.store4(orow, 4, q1);
            f.store4(orow, 8, q2);
            f.store4(orow, 12, q3);
        });
    });
    // Horizontal 2x upsample: DOALL.
    let u_b = f.ldi(upsampled as i64);
    f.counted_loop(0i64, pixels - 1, 1, |f, px| {
        let po = f.shl(px, 2i64);
        let ia = f.add(i_b, po);
        let v = f.load4(ia, 0);
        let nxt = f.load4(ia, 4);
        let avg0 = f.add(v, nxt);
        let avg = f.sar(avg0, 1i64);
        let uo = f.shl(px, 3i64);
        let ua = f.add(u_b, uo);
        f.store4(ua, 0, v);
        f.store4(ua, 4, avg);
    });
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "djpeg",
        suite: Suite::MediaBench,
        expected: Expected::Mixed,
        program: pb.finish(),
    }
}

/// `epic` — image-pyramid coder: a wavelet averaging level (statistical
/// LLP) feeding a quantize/run-length stage whose carried state forms a
/// pipeline recurrence — the DSWP showcase.
pub fn epic(scale: Scale) -> Workload {
    let mut rng = rng_for("epic");
    let n = scale.of(768, 3072);
    let mut pb = ProgramBuilder::new("epic");
    let img = pb
        .data_mut()
        .array_i32("img", &rand_i32s(&mut rng, n as usize, 0, 64));
    let half = pb.data_mut().zeroed("half", (n / 2 * 4) as u64);
    let runs = pb.data_mut().zeroed("runs", (n * 8) as u64);
    let emitted_sym = pb.data_mut().zeroed("emitted", 8);

    let mut f = pb.function("main");
    let i_b = f.ldi(img as i64);
    let h_b = f.ldi(half as i64);
    // Wavelet level: half[i] = (img[2i] + img[2i+1]) / 2 — DOALL.
    f.counted_loop(0i64, n / 2, 1, |f, i| {
        let so = f.shl(i, 3i64);
        let sa = f.add(i_b, so);
        let a = f.load4(sa, 0);
        let b = f.load4(sa, 4);
        let s = f.add(a, b);
        let avg = f.sar(s, 1i64);
        let ho = f.shl(i, 2i64);
        let ha = f.add(h_b, ho);
        f.store4(ha, 0, avg);
    });
    // Quantize + run-length: load/quantize upstream (stage 1) feeds the
    // carried run-length emitter (stage 2) — a DSWP pipeline.
    let r_b = f.ldi(runs as i64);
    let prev = f.ldi(-1);
    let runlen = f.ldi(0);
    let pos = f.ldi(0);
    f.counted_loop(0i64, n / 2, 1, |f, i| {
        let ho = f.shl(i, 2i64);
        let ha = f.add(h_b, ho);
        let v = f.load4(ha, 0);
        let v2 = f.mul(v, v);
        let q0 = f.sar(v2, 4i64);
        let q = f.min(q0, 15i64);
        let same = f.cmp(CmpCc::Eq, q, prev);
        f.if_then_else(
            same,
            |f| {
                let r1 = f.add(runlen, 1i64);
                f.mov_to(runlen, r1);
            },
            |f| {
                let po = f.shl(pos, 3i64);
                let ra = f.add(r_b, po);
                let packed0 = f.shl(prev, 16i64);
                let packed = f.or(packed0, runlen);
                f.store8(ra, 0, packed);
                let p1 = f.add(pos, 1i64);
                f.mov_to(pos, p1);
                f.mov_to(prev, q);
                f.mov_to(runlen, 1i64);
            },
        );
    });
    let e_b = f.ldi(emitted_sym as i64);
    f.store8(e_b, 0, pos);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "epic",
        suite: Suite::MediaBench,
        expected: Expected::FineGrainTlp,
        program: pb.finish(),
    }
}

/// Shared G.721 ADPCM predictor recurrence.
fn g721(name: &'static str, encode: bool, scale: Scale) -> Workload {
    let mut rng = rng_for(name);
    let samples = scale.of(700, 2600);
    let mut pb = ProgramBuilder::new(name);
    let input = pb
        .data_mut()
        .array_i16("input", &rand_i16s(&mut rng, samples as usize, -2000, 2000));
    let output = pb.data_mut().zeroed("output", (samples * 2) as u64);
    let state_sym = pb.data_mut().zeroed("state", 16);

    let mut f = pb.function("main");
    let in_b = f.ldi(input as i64);
    let out_b = f.ldi(output as i64);
    let valpred = f.ldi(0);
    let step = f.ldi(16);
    f.counted_loop(0i64, samples, 1, |f, i| {
        let io = f.shl(i, 1i64);
        let ia = f.add(in_b, io);
        let s = f.load2(ia, 0);
        // delta against prediction; quantize to 4 levels via selects.
        let diff = f.sub(s, valpred);
        let neg = f.cmp(CmpCc::Lt, diff, 0i64);
        let nd = f.sub(0i64, diff);
        let mag = f.sel(neg, nd, diff);
        let st2 = f.shl(step, 1i64);
        let big = f.cmp(CmpCc::Ge, mag, st2);
        let mid = f.cmp(CmpCc::Ge, mag, step);
        let c2 = f.sel(big, 3i64, 1i64);
        let c1 = f.sel(mid, c2, 0i64);
        // Reconstruct: vpdelta = (code + 0.5) * step approx.
        let halfstep = f.sar(step, 1i64);
        let base = f.mul(c1, step);
        let recon0 = f.add(base, halfstep);
        let negrecon = f.sub(0i64, recon0);
        let recon = f.sel(neg, negrecon, recon0);
        let nv0 = f.add(valpred, recon);
        let nv1 = f.min(nv0, 32767i64);
        let nv = f.max(nv1, -32768i64);
        f.mov_to(valpred, nv);
        // Step adaptation.
        let grow = f.cmp(CmpCc::Ge, c1, 2i64);
        let up = f.shl(step, 1i64);
        let dn0 = f.sar(step, 1i64);
        let dn = f.max(dn0, 4i64);
        let ns0 = f.sel(grow, up, dn);
        let ns = f.min(ns0, 16384i64);
        f.mov_to(step, ns);
        let oa = f.add(out_b, io);
        if encode {
            let sign = f.sel(neg, 4i64, 0i64);
            let code = f.or(c1, sign);
            f.store2(oa, 0, code);
        } else {
            f.store2(oa, 0, nv);
        }
    });
    let st_b = f.ldi(state_sym as i64);
    f.store8(st_b, 0, valpred);
    f.store8(st_b, 8, step);
    f.halt();
    pb.finish_function(f);
    Workload {
        name,
        suite: Suite::MediaBench,
        expected: Expected::Ilp,
        program: pb.finish(),
    }
}

/// `g721decode` — ADPCM decoder: a tight serial predictor recurrence
/// whose wide select/clamp dataflow is coupled-mode ILP territory.
pub fn g721decode(scale: Scale) -> Workload {
    g721("g721decode", false, scale)
}

/// `g721encode` — ADPCM encoder (same recurrence plus quantizer).
pub fn g721encode(scale: Scale) -> Workload {
    g721("g721encode", true, scale)
}

/// `gsmdecode` — GSM decoder: the paper's Fig. 7 DOALL scaling loop and
/// the Fig. 9 LTP filter recurrence, per frame — a genuine hybrid.
pub fn gsmdecode(scale: Scale) -> Workload {
    let mut rng = rng_for("gsmdecode");
    let frames = scale.of(6, 20);
    let subsamples = 64i64;
    let mut pb = ProgramBuilder::new("gsmdecode");
    let u = pb.data_mut().array_i64(
        "u",
        &rand_i64s(&mut rng, (frames * subsamples) as usize, -8000, 8000),
    );
    let rp = pb.data_mut().array_i64(
        "rp",
        &rand_i64s(&mut rng, (frames * subsamples) as usize, -8000, 8000),
    );
    let uf = pb.data_mut().zeroed("uf", (frames * subsamples * 8) as u64);
    let rpf = pb
        .data_mut()
        .zeroed("rpf", (frames * subsamples * 8) as u64);
    let rrp = pb
        .data_mut()
        .array_i64("rrp", &rand_i64s(&mut rng, 8, -16000, 16000));
    let v = pb.data_mut().zeroed("v", 9 * 8);
    let sri_sym = pb.data_mut().zeroed("sri", 8);

    let mut f = pb.function("main");
    let u_b = f.ldi(u as i64);
    let rp_b = f.ldi(rp as i64);
    let uf_b = f.ldi(uf as i64);
    let rpf_b = f.ldi(rpf as i64);
    let rrp_b = f.ldi(rrp as i64);
    let v_b = f.ldi(v as i64);
    let sri = f.ldi(0);
    let scalef = f.ldi(13);
    f.counted_loop(0i64, frames, 1, |f, frame| {
        // Fig. 7: uf[i] = u[i]; rpf[i] = rp[i] * scalef over this frame's
        // subwindow — DOALL.
        let lo = f.mul(frame, subsamples);
        let hi = f.add(lo, subsamples);
        f.counted_loop(lo, hi, 1, |f, i| {
            let io = f.shl(i, 3i64);
            let ua = f.add(u_b, io);
            let uv = f.load8(ua, 0);
            let ufa = f.add(uf_b, io);
            f.store8(ufa, 0, uv);
            let rpa = f.add(rp_b, io);
            let rv = f.load8(rpa, 0);
            let scaled = f.mul(rv, scalef);
            let rpfa = f.add(rpf_b, io);
            f.store8(rpfa, 0, scaled);
        });
        // Fig. 9: the 8-tap LTP filter recurrence — ILP.
        for i in 0..8 {
            ltp_filter_step(f, rrp_b, v_b, sri, i);
        }
    });
    let s_b = f.ldi(sri_sym as i64);
    f.store8(s_b, 0, sri);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "gsmdecode",
        suite: Suite::MediaBench,
        expected: Expected::Mixed,
        program: pb.finish(),
    }
}

/// `gsmencode` — GSM encoder: autocorrelation lags (DOALL over lags with
/// inner reductions) and a preemphasis recurrence through memory (ILP).
pub fn gsmencode(scale: Scale) -> Workload {
    let mut rng = rng_for("gsmencode");
    let samples = scale.of(512, 2048);
    let lags = 16i64;
    let mut pb = ProgramBuilder::new("gsmencode");
    let s = pb.data_mut().array_i64(
        "s",
        &rand_i64s(&mut rng, (samples + lags) as usize, -4000, 4000),
    );
    let acf = pb.data_mut().zeroed("acf", (lags * 8) as u64);
    let pre = pb.data_mut().zeroed("pre", (samples * 8) as u64);

    let mut f = pb.function("main");
    let s_b = f.ldi(s as i64);
    let a_b = f.ldi(acf as i64);
    let p_b = f.ldi(pre as i64);
    // Preemphasis: pre[i] = s[i] - (s[i-1] * 28180 >> 15) (serial-ish but
    // reads only the immutable input: actually DOALL-safe reads; writes
    // disjoint — profiled independent).
    f.counted_loop(1i64, samples, 1, |f, i| {
        let io = f.shl(i, 3i64);
        let sa = f.add(s_b, io);
        let cur = f.load8(sa, 0);
        let prv = f.load8(sa, -8);
        let scaled = f.mul(prv, 28180i64);
        let term = f.sar(scaled, 15i64);
        let val = f.sub(cur, term);
        let pa = f.add(p_b, io);
        f.store8(pa, 0, val);
    });
    // Autocorrelation: acf[k] = sum_i pre[i] * pre[i+k] — DOALL over k.
    f.counted_loop(0i64, lags, 1, |f, k| {
        let acc = f.ldi(0);
        let ko = f.shl(k, 3i64);
        let shifted = f.add(p_b, ko);
        f.counted_loop(0i64, samples - lags, 1, |f, i| {
            let io = f.shl(i, 3i64);
            let pa = f.add(p_b, io);
            let x = f.load8(pa, 0);
            let qa = f.add(shifted, io);
            let y = f.load8(qa, 0);
            let prod = f.mul(x, y);
            let scaled = f.sar(prod, 8i64);
            f.reduce_add(acc, scaled);
        });
        let aa = f.add(a_b, ko);
        f.store8(aa, 0, acc);
    });
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "gsmencode",
        suite: Suite::MediaBench,
        expected: Expected::Llp,
        program: pb.finish(),
    }
}

/// `mpeg2dec` — MPEG-2 decoding: blocked IDCT plus motion compensation
/// averaging — dominated by DOALL loops (LLP).
pub fn mpeg2dec(scale: Scale) -> Workload {
    let mut rng = rng_for("mpeg2dec");
    let blocks = scale.of(20, 80);
    let n = blocks * 64;
    let mut pb = ProgramBuilder::new("mpeg2dec");
    let coeff = pb
        .data_mut()
        .array_i32("coeff", &rand_i32s(&mut rng, n as usize, -256, 256));
    let refframe = pb
        .data_mut()
        .array_i32("ref", &rand_i32s(&mut rng, (n + 64) as usize, 0, 255));
    let out = pb.data_mut().zeroed("out", (n * 4) as u64);

    let mut f = pb.function("main");
    let c_b = f.ldi(coeff as i64);
    let r_b = f.ldi(refframe as i64);
    let o_b = f.ldi(out as i64);
    // IDCT-lite per element (DOALL).
    f.counted_loop(0i64, n, 1, |f, i| {
        let io = f.shl(i, 2i64);
        let ca = f.add(c_b, io);
        let v = f.load4(ca, 0);
        let v3 = f.mul(v, 3i64);
        let vs = f.sar(v3, 2i64);
        f.store4(ca, 0, vs);
    });
    // Motion compensation: out[i] = (idct[i] + ref[i + 16] + 1) >> 1.
    f.counted_loop(0i64, n, 1, |f, i| {
        let io = f.shl(i, 2i64);
        let ca = f.add(c_b, io);
        let p = f.load4(ca, 0);
        let ra = f.add(r_b, io);
        let rv = f.load4(ra, 64);
        let s0 = f.add(p, rv);
        let s1 = f.add(s0, 1i64);
        let avg = f.sar(s1, 1i64);
        let oa = f.add(o_b, io);
        f.store4(oa, 0, avg);
    });
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "mpeg2dec",
        suite: Suite::MediaBench,
        expected: Expected::Llp,
        program: pb.finish(),
    }
}

/// `mpeg2enc` — motion estimation: SAD over candidate vectors (DOALL
/// with inner reductions) and a serial argmin scan (ILP).
pub fn mpeg2enc(scale: Scale) -> Workload {
    let mut rng = rng_for("mpeg2enc");
    let candidates = scale.of(24, 96);
    let blocksz = 64i64;
    let mut pb = ProgramBuilder::new("mpeg2enc");
    let cur = pb
        .data_mut()
        .array_i32("cur", &rand_i32s(&mut rng, blocksz as usize, 0, 255));
    let refw = pb.data_mut().array_i32(
        "refw",
        &rand_i32s(&mut rng, (candidates + blocksz) as usize, 0, 255),
    );
    let sads = pb.data_mut().zeroed("sads", (candidates * 8) as u64);
    let best_sym = pb.data_mut().zeroed("best", 16);

    let mut f = pb.function("main");
    let c_b = f.ldi(cur as i64);
    let r_b = f.ldi(refw as i64);
    let s_b = f.ldi(sads as i64);
    // SAD per candidate (DOALL over candidates).
    f.counted_loop(0i64, candidates, 1, |f, cand| {
        let co = f.shl(cand, 2i64);
        let base = f.add(r_b, co);
        let acc = f.ldi(0);
        f.counted_loop(0i64, blocksz, 1, |f, i| {
            let io = f.shl(i, 2i64);
            let ca = f.add(c_b, io);
            let a = f.load4(ca, 0);
            let ra = f.add(base, io);
            let b = f.load4(ra, 0);
            let d = f.sub(a, b);
            let neg = f.cmp(CmpCc::Lt, d, 0i64);
            let nd = f.sub(0i64, d);
            let ad = f.sel(neg, nd, d);
            f.reduce_add(acc, ad);
        });
        let so = f.shl(cand, 3i64);
        let sa = f.add(s_b, so);
        f.store8(sa, 0, acc);
    });
    // Argmin scan (serial: carried best index).
    let best = f.ldi(i64::MAX);
    let besti = f.ldi(-1);
    f.counted_loop(0i64, candidates, 1, |f, cand| {
        let so = f.shl(cand, 3i64);
        let sa = f.add(s_b, so);
        let v = f.load8(sa, 0);
        let better = f.cmp(CmpCc::Lt, v, best);
        let nb = f.sel(better, v, best);
        let ni = f.sel(better, cand, besti);
        f.mov_to(best, nb);
        f.mov_to(besti, ni);
    });
    let b_b = f.ldi(best_sym as i64);
    f.store8(b_b, 0, best);
    f.store8(b_b, 8, besti);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "mpeg2enc",
        suite: Suite::MediaBench,
        expected: Expected::Mixed,
        program: pb.finish(),
    }
}

/// Shared IMA-ADPCM raw audio recurrence (`rawcaudio` / `rawdaudio`).
fn rawaudio(name: &'static str, encode: bool, scale: Scale) -> Workload {
    let mut rng = rng_for(name);
    let samples = scale.of(800, 3000);
    let mut pb = ProgramBuilder::new(name);
    let input = pb
        .data_mut()
        .array_i16("input", &rand_i16s(&mut rng, samples as usize, -8000, 8000));
    let output = pb.data_mut().zeroed("output", (samples * 2) as u64);
    let state_sym = pb.data_mut().zeroed("state", 16);

    let mut f = pb.function("main");
    let in_b = f.ldi(input as i64);
    let out_b = f.ldi(output as i64);
    let pred = f.ldi(0);
    let index = f.ldi(0);
    f.counted_loop(0i64, samples, 1, |f, i| {
        let io = f.shl(i, 1i64);
        let ia = f.add(in_b, io);
        let s = f.load2(ia, 0);
        let stepsize = f.add(index, 7i64);
        let sq = f.mul(stepsize, stepsize);
        let diff = f.sub(s, pred);
        let neg = f.cmp(CmpCc::Lt, diff, 0i64);
        let nd = f.sub(0i64, diff);
        let mag = f.sel(neg, nd, diff);
        let q = f.div(mag, sq);
        let qc = f.min(q, 7i64);
        let dq0 = f.mul(qc, sq);
        let negdq = f.sub(0i64, dq0);
        let dq = f.sel(neg, negdq, dq0);
        let np0 = f.add(pred, dq);
        let np1 = f.min(np0, 32767i64);
        let np = f.max(np1, -32768i64);
        f.mov_to(pred, np);
        let upidx = f.cmp(CmpCc::Ge, qc, 4i64);
        let inc = f.sel(upidx, 2i64, -1i64);
        let ni0 = f.add(index, inc);
        let ni1 = f.max(ni0, 0i64);
        let ni = f.min(ni1, 88i64);
        f.mov_to(index, ni);
        let oa = f.add(out_b, io);
        if encode {
            let sign = f.sel(neg, 8i64, 0i64);
            let code = f.or(qc, sign);
            f.store2(oa, 0, code);
        } else {
            f.store2(oa, 0, np);
        }
    });
    let st_b = f.ldi(state_sym as i64);
    f.store8(st_b, 0, pred);
    f.store8(st_b, 8, index);
    f.halt();
    pb.finish_function(f);
    Workload {
        name,
        suite: Suite::MediaBench,
        expected: Expected::Ilp,
        program: pb.finish(),
    }
}

/// `rawcaudio` — IMA-ADPCM encoder recurrence (ILP).
pub fn rawcaudio(scale: Scale) -> Workload {
    rawaudio("rawcaudio", true, scale)
}

/// `rawdaudio` — IMA-ADPCM decoder recurrence (ILP).
pub fn rawdaudio(scale: Scale) -> Workload {
    rawaudio("rawdaudio", false, scale)
}

/// `unepic` — EPIC decoder: run-length expansion (serial cursor) and an
/// inverse-wavelet reconstruction (statistical LLP).
pub fn unepic(scale: Scale) -> Workload {
    let mut rng = rng_for("unepic");
    let half = scale.of(384, 1536);
    let mut pb = ProgramBuilder::new("unepic");
    // Host-side run-length stream: (value, run) pairs totaling `half`.
    let mut packed: Vec<i64> = Vec::new();
    let mut total = 0i64;
    while total < half {
        let run = rand_i64s(&mut rng, 1, 1, 9)[0].min(half - total);
        let val = rand_i64s(&mut rng, 1, 0, 16)[0];
        packed.push((val << 16) | run);
        total += run;
    }
    let stream = pb.data_mut().array_i64("stream", &packed);
    let coeffs = pb.data_mut().zeroed("coeffs", (half * 4) as u64);
    let detail = pb
        .data_mut()
        .array_i32("detail", &rand_i32s(&mut rng, half as usize, -8, 8));
    let image = pb.data_mut().zeroed("image", (half * 2 * 4) as u64);

    let mut f = pb.function("main");
    let st_b = f.ldi(stream as i64);
    let c_b = f.ldi(coeffs as i64);
    let nruns = packed.len() as i64;
    // Run-length expansion: carried output cursor (serial / strands).
    let cursor = f.ldi(0);
    f.counted_loop(0i64, nruns, 1, |f, r| {
        let ro = f.shl(r, 3i64);
        let sa = f.add(st_b, ro);
        let pk = f.load8(sa, 0);
        let val = f.sar(pk, 16i64);
        let run = f.and(pk, 0xffffi64);
        let stop = f.add(cursor, run);
        f.counted_loop(cursor, stop, 1, |f, j| {
            let jo = f.shl(j, 2i64);
            let ca = f.add(c_b, jo);
            f.store4(ca, 0, val);
        });
        f.mov_to(cursor, stop);
    });
    // Inverse wavelet: image[2i] = c[i] + d[i]; image[2i+1] = c[i] - d[i].
    let d_b = f.ldi(detail as i64);
    let i_b = f.ldi(image as i64);
    f.counted_loop(0i64, half, 1, |f, i| {
        let io = f.shl(i, 2i64);
        let ca = f.add(c_b, io);
        let c = f.load4(ca, 0);
        let da = f.add(d_b, io);
        let d = f.load4(da, 0);
        let lo = f.add(c, d);
        let hi = f.sub(c, d);
        let oo = f.shl(i, 3i64);
        let oa = f.add(i_b, oo);
        f.store4(oa, 0, lo);
        f.store4(oa, 4, hi);
    });
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "unepic",
        suite: Suite::MediaBench,
        expected: Expected::FineGrainTlp,
        program: pb.finish(),
    }
}
