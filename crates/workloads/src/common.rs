//! Shared helpers for kernel construction: seeded data generation and a
//! few recurring loop shapes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG seeded from the benchmark name.
pub fn rng_for(name: &str) -> StdRng {
    let mut seed = 0xB5_u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b));
    }
    StdRng::seed_from_u64(seed)
}

/// `n` random i64 values in `[lo, hi)`.
pub fn rand_i64s(rng: &mut StdRng, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `n` random i32 values in `[lo, hi)`.
pub fn rand_i32s(rng: &mut StdRng, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `n` random i16 values in `[lo, hi)`.
pub fn rand_i16s(rng: &mut StdRng, n: usize, lo: i16, hi: i16) -> Vec<i16> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `n` random bytes.
pub fn rand_bytes(rng: &mut StdRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.gen()).collect()
}

/// `n` random f64 values in `[lo, hi)`.
pub fn rand_f64s(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A random permutation-ish index array of `n` indices into `[0, m)`.
pub fn rand_indices(rng: &mut StdRng, n: usize, m: usize) -> Vec<i32> {
    (0..n).map(|_| rng.gen_range(0..m) as i32).collect()
}

/// A singly-linked ring over `n` nodes (next[i] visits all nodes in a
/// shuffled order), for pointer-chasing kernels.
pub fn chase_ring(rng: &mut StdRng, n: usize) -> Vec<i32> {
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut next = vec![0i32; n];
    for w in 0..n {
        next[order[w]] = order[(w + 1) % n] as i32;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = rng_for("x");
        let mut b = rng_for("x");
        let mut c = rng_for("y");
        let va = rand_i64s(&mut a, 8, 0, 100);
        let vb = rand_i64s(&mut b, 8, 0, 100);
        let vc = rand_i64s(&mut c, 8, 0, 100);
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn chase_ring_is_a_single_cycle() {
        let mut r = rng_for("ring");
        let next = chase_ring(&mut r, 64);
        let mut seen = [false; 64];
        let mut p = 0usize;
        for _ in 0..64 {
            assert!(!seen[p], "revisited node {p}");
            seen[p] = true;
            p = next[p] as usize;
        }
        assert_eq!(p, 0, "ring must close");
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = rng_for("t");
        for v in rand_i64s(&mut r, 100, -5, 5) {
            assert!((-5..5).contains(&v));
        }
        for v in rand_indices(&mut r, 100, 10) {
            assert!((0..10).contains(&v));
        }
    }
}
