//! SPEC floating-point (and FP-ish) benchmark kernels:
//! `052.alvinn`, `056.ear`, `171.swim`, `172.mgrid`, `177.mesa`,
//! `179.art`, `183.equake`.

use crate::common::*;
use crate::{Expected, Scale, Suite, Workload};
use voltron_ir::builder::ProgramBuilder;
use voltron_ir::CmpCc;

/// `052.alvinn` — neural-net training step: hidden-layer matrix-vector
/// products and an outer-product weight update. Both nests are DOALL over
/// rows (the paper's LLP class).
pub fn alvinn(scale: Scale) -> Workload {
    let mut rng = rng_for("alvinn");
    let ni = scale.of(24, 48); // inputs
    let nh = scale.of(16, 48); // hidden units
    let mut pb = ProgramBuilder::new("052.alvinn");
    let input = pb
        .data_mut()
        .array_f64("input", &rand_f64s(&mut rng, ni as usize, -1.0, 1.0));
    let weights = pb.data_mut().array_f64(
        "weights",
        &rand_f64s(&mut rng, (ni * nh) as usize, -0.5, 0.5),
    );
    let err = pb
        .data_mut()
        .array_f64("err", &rand_f64s(&mut rng, nh as usize, -0.2, 0.2));
    let hidden = pb.data_mut().zeroed("hidden", (nh * 8) as u64);

    let mut f = pb.function("main");
    let in_b = f.ldi(input as i64);
    let w_b = f.ldi(weights as i64);
    let e_b = f.ldi(err as i64);
    let h_b = f.ldi(hidden as i64);
    let one = f.fldi(1.0);
    let lr = f.fldi(0.125);
    // Forward: hidden[j] = squash(sum_i w[j][i] * input[i]).
    f.counted_loop(0i64, nh, 1, |f, j| {
        let row_off = f.mul(j, ni * 8);
        let row = f.add(w_b, row_off);
        let acc = f.fldi(0.0);
        f.counted_loop(0i64, ni, 1, |f, i| {
            let io = f.shl(i, 3i64);
            let wa = f.add(row, io);
            let w = f.fload(wa, 0);
            let xa = f.add(in_b, io);
            let x = f.fload(xa, 0);
            let p = f.fmul(w, x);
            f.reduce_fadd(acc, p);
        });
        // squash(x) = x / (1 + |x|).
        let mag = f.fabs(acc);
        let den = f.fadd(one, mag);
        let y = f.fdiv(acc, den);
        let jo = f.shl(j, 3i64);
        let ha = f.add(h_b, jo);
        f.fstore(ha, 0, y);
    });
    // Backward: w[j][i] += lr * err[j] * input[i].
    f.counted_loop(0i64, nh, 1, |f, j| {
        let row_off = f.mul(j, ni * 8);
        let row = f.add(w_b, row_off);
        let jo = f.shl(j, 3i64);
        let ea = f.add(e_b, jo);
        let ej = f.fload(ea, 0);
        let g = f.fmul(lr, ej);
        f.counted_loop(0i64, ni, 1, |f, i| {
            let io = f.shl(i, 3i64);
            let xa = f.add(in_b, io);
            let x = f.fload(xa, 0);
            let dw = f.fmul(g, x);
            let wa = f.add(row, io);
            let w = f.fload(wa, 0);
            let nw = f.fadd(w, dw);
            f.fstore(wa, 0, nw);
        });
    });
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "052.alvinn",
        suite: Suite::SpecFp,
        expected: Expected::Llp,
        program: pb.finish(),
    }
}

/// `056.ear` — cochlea filter bank: one IIR recurrence per channel
/// (serial inside), independent across channels (LLP over channels, ILP
/// within).
pub fn ear(scale: Scale) -> Workload {
    let mut rng = rng_for("ear");
    let channels = scale.of(12, 32);
    let samples = scale.of(96, 256);
    let mut pb = ProgramBuilder::new("056.ear");
    let x = pb
        .data_mut()
        .array_f64("x", &rand_f64s(&mut rng, samples as usize, -1.0, 1.0));
    let coef_a = pb
        .data_mut()
        .array_f64("coef_a", &rand_f64s(&mut rng, channels as usize, 0.1, 0.9));
    let coef_b = pb
        .data_mut()
        .array_f64("coef_b", &rand_f64s(&mut rng, channels as usize, 0.05, 0.5));
    let energy = pb.data_mut().zeroed("energy", (channels * 8) as u64);

    let mut f = pb.function("main");
    let x_b = f.ldi(x as i64);
    let a_b = f.ldi(coef_a as i64);
    let b_b = f.ldi(coef_b as i64);
    let e_b = f.ldi(energy as i64);
    f.counted_loop(0i64, channels, 1, |f, c| {
        let co = f.shl(c, 3i64);
        let aa = f.add(a_b, co);
        let a = f.fload(aa, 0);
        let ba = f.add(b_b, co);
        let b = f.fload(ba, 0);
        let state = f.fldi(0.0);
        let acc = f.fldi(0.0);
        f.counted_loop(0i64, samples, 1, |f, t| {
            let to = f.shl(t, 3i64);
            let xa = f.add(x_b, to);
            let xv = f.fload(xa, 0);
            let drive = f.fmul(a, xv);
            let decay = f.fmul(b, state);
            let y = f.fadd(drive, decay);
            f.mov_to(state, y);
            let sq = f.fmul(y, y);
            f.reduce_fadd(acc, sq);
        });
        let ea = f.add(e_b, co);
        f.fstore(ea, 0, acc);
    });
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "056.ear",
        suite: Suite::SpecFp,
        expected: Expected::Llp,
        program: pb.finish(),
    }
}

/// `171.swim` — shallow-water 2-D stencil sweep plus a checksum
/// reduction: classic DOALL.
pub fn swim(scale: Scale) -> Workload {
    let mut rng = rng_for("swim");
    let rows = scale.of(24, 64);
    let cols = scale.of(24, 48);
    let n = (rows * cols) as usize;
    let mut pb = ProgramBuilder::new("171.swim");
    let v = pb
        .data_mut()
        .array_f64("v", &rand_f64s(&mut rng, n, -2.0, 2.0));
    let u = pb.data_mut().zeroed("u", (n * 8) as u64);
    let sum = pb.data_mut().zeroed("sum", 8);

    let mut f = pb.function("main");
    let v_b = f.ldi(v as i64);
    let u_b = f.ldi(u as i64);
    let quarter = f.fldi(0.25);
    // Interior stencil, DOALL over rows.
    f.counted_loop(1i64, rows - 1, 1, |f, i| {
        let row_off = f.mul(i, cols * 8);
        let vr = f.add(v_b, row_off);
        let ur = f.add(u_b, row_off);
        f.counted_loop(1i64, cols - 1, 1, |f, j| {
            let jo = f.shl(j, 3i64);
            let vc = f.add(vr, jo);
            let north = f.fload(vc, -(cols * 8));
            let south = f.fload(vc, cols * 8);
            let west = f.fload(vc, -8);
            let east = f.fload(vc, 8);
            let s1 = f.fadd(north, south);
            let s2 = f.fadd(west, east);
            let s3 = f.fadd(s1, s2);
            let avg = f.fmul(s3, quarter);
            let uc = f.add(ur, jo);
            f.fstore(uc, 0, avg);
        });
    });
    // Checksum reduction over u.
    let acc = f.fldi(0.0);
    f.counted_loop(0i64, rows * cols, 1, |f, k| {
        let ko = f.shl(k, 3i64);
        let ua = f.add(u_b, ko);
        let val = f.fload(ua, 0);
        f.reduce_fadd(acc, val);
    });
    let s_b = f.ldi(sum as i64);
    f.fstore(s_b, 0, acc);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "171.swim",
        suite: Suite::SpecFp,
        expected: Expected::Llp,
        program: pb.finish(),
    }
}

/// `172.mgrid` — multigrid-style relaxation: two strided smoothing sweeps
/// over ping-pong buffers (LLP).
pub fn mgrid(scale: Scale) -> Workload {
    let mut rng = rng_for("mgrid");
    let plane = scale.of(20, 40);
    let n = (plane * plane) as usize;
    let mut pb = ProgramBuilder::new("172.mgrid");
    let a = pb
        .data_mut()
        .array_f64("a", &rand_f64s(&mut rng, n, -1.0, 1.0));
    let b = pb.data_mut().zeroed("b", (n * 8) as u64);
    let resid = pb.data_mut().zeroed("resid", 8);

    let mut f = pb.function("main");
    let a_b = f.ldi(a as i64);
    let b_b = f.ldi(b as i64);
    let w0 = f.fldi(0.5);
    let w1 = f.fldi(0.125);
    // Sweep 1: b = smooth(a), DOALL over interior cells (flat index).
    let stride = plane * 8;
    f.counted_loop(plane, plane * (plane - 1), 1, |f, k| {
        let ko = f.shl(k, 3i64);
        let ac = f.add(a_b, ko);
        let c = f.fload(ac, 0);
        let up = f.fload(ac, -stride);
        let dn = f.fload(ac, stride);
        let core = f.fmul(c, w0);
        let nsum = f.fadd(up, dn);
        let nbr = f.fmul(nsum, w1);
        let out = f.fadd(core, nbr);
        let bc = f.add(b_b, ko);
        f.fstore(bc, 0, out);
    });
    // Sweep 2: a = smooth(b) with the east/west neighbors.
    f.counted_loop(1i64, plane * plane - 1, 1, |f, k| {
        let ko = f.shl(k, 3i64);
        let bc = f.add(b_b, ko);
        let c = f.fload(bc, 0);
        let west = f.fload(bc, -8);
        let east = f.fload(bc, 8);
        let core = f.fmul(c, w0);
        let nsum = f.fadd(west, east);
        let nbr = f.fmul(nsum, w1);
        let out = f.fadd(core, nbr);
        let ac = f.add(a_b, ko);
        f.fstore(ac, 0, out);
    });
    // Residual reduction.
    let acc = f.fldi(0.0);
    f.counted_loop(0i64, plane * plane, 1, |f, k| {
        let ko = f.shl(k, 3i64);
        let aa = f.add(a_b, ko);
        let av = f.fload(aa, 0);
        let ba = f.add(b_b, ko);
        let bv = f.fload(ba, 0);
        let d = f.fsub(av, bv);
        let d2 = f.fmul(d, d);
        f.reduce_fadd(acc, d2);
    });
    let r_b = f.ldi(resid as i64);
    f.fstore(r_b, 0, acc);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "172.mgrid",
        suite: Suite::SpecFp,
        expected: Expected::Llp,
        program: pb.finish(),
    }
}

/// `177.mesa` — vertex pipeline: a 4x4 transform per vertex with a
/// clip-and-append output cursor. The carried cursor defeats DOALL, so
/// the wide FP dataflow makes it the paper's ILP showcase.
pub fn mesa(scale: Scale) -> Workload {
    let mut rng = rng_for("mesa");
    let nv = scale.of(80, 220);
    let mut pb = ProgramBuilder::new("177.mesa");
    let verts = pb
        .data_mut()
        .array_f64("verts", &rand_f64s(&mut rng, (nv * 4) as usize, -4.0, 4.0));
    let mat = pb
        .data_mut()
        .array_f64("mat", &rand_f64s(&mut rng, 16, -1.0, 1.0));
    let out = pb.data_mut().zeroed("out", (nv * 4 * 8) as u64);
    let count = pb.data_mut().zeroed("count", 8);

    let mut f = pb.function("main");
    let v_b = f.ldi(verts as i64);
    let m_b = f.ldi(mat as i64);
    let o_b = f.ldi(out as i64);
    // Load the matrix once.
    let mut m = Vec::new();
    for i in 0..16i64 {
        m.push(f.fload(m_b, i * 8));
    }
    let cursor = f.ldi(0); // carried output cursor (bytes)
    let eps = f.fldi(0.1);
    f.counted_loop(0i64, nv, 1, |f, vtx| {
        let vo = f.mul(vtx, 32i64);
        let va = f.add(v_b, vo);
        let x = f.fload(va, 0);
        let y = f.fload(va, 8);
        let z = f.fload(va, 16);
        let w = f.fload(va, 24);
        let mut res = Vec::new();
        for r in 0..4 {
            let t0 = f.fmul(m[r * 4], x);
            let t1 = f.fmul(m[r * 4 + 1], y);
            let t2 = f.fmul(m[r * 4 + 2], z);
            let t3 = f.fmul(m[r * 4 + 3], w);
            let s0 = f.fadd(t0, t1);
            let s1 = f.fadd(t2, t3);
            res.push(f.fadd(s0, s1));
        }
        let keep = f.fcmp(CmpCc::Gt, res[3], eps);
        f.if_then(keep, |f| {
            let oa = f.add(o_b, cursor);
            f.fstore(oa, 0, res[0]);
            f.fstore(oa, 8, res[1]);
            f.fstore(oa, 16, res[2]);
            f.fstore(oa, 24, res[3]);
            let nc = f.add(cursor, 32i64);
            f.mov_to(cursor, nc);
        });
    });
    let c_b = f.ldi(count as i64);
    f.store8(c_b, 0, cursor);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "177.mesa",
        suite: Suite::SpecFp,
        expected: Expected::Ilp,
        program: pb.finish(),
    }
}

/// `179.art` — neural match over a large weight store with a serial
/// pointer chase: frequent misses, overlapped by decoupled strands
/// (the paper's fine-grain-TLP showcase).
pub fn art(scale: Scale) -> Workload {
    let mut rng = rng_for("art");
    let nodes = scale.of(1024, 8192); // ring nodes
    let steps = scale.of(600, 3000);
    let mut pb = ProgramBuilder::new("179.art");
    let w = pb
        .data_mut()
        .array_f64("w", &rand_f64s(&mut rng, nodes as usize, 0.0, 1.0));
    let stream = pb
        .data_mut()
        .array_f64("stream", &rand_f64s(&mut rng, steps as usize, 0.0, 1.0));
    let next = pb
        .data_mut()
        .array_i32("next", &chase_ring(&mut rng, nodes as usize));
    let outp = pb.data_mut().zeroed("out", 16);

    let mut f = pb.function("main");
    let w_b = f.ldi(w as i64);
    let s_b = f.ldi(stream as i64);
    let n_b = f.ldi(next as i64);
    let p = f.ldi(0); // carried chase cursor
    let score = f.fldi(0.0);
    let flux = f.fldi(0.0);
    f.counted_loop(0i64, steps, 1, |f, t| {
        // Chain A: pointer chase through the weight store (misses).
        let po = f.shl(p, 3i64);
        let wa = f.add(w_b, po);
        let wv = f.fload(wa, 0);
        f.reduce_fadd(score, wv);
        let ia = f.shl(p, 2i64);
        let na = f.add(n_b, ia);
        let np = f.load4(na, 0);
        f.mov_to(p, np);
        // Chain B: independent streaming loads + FP work (overlappable).
        let to = f.shl(t, 3i64);
        let sa = f.add(s_b, to);
        let sv = f.fload(sa, 0);
        let sv2 = f.fmul(sv, sv);
        let sv3 = f.fadd(sv2, sv);
        f.reduce_fadd(flux, sv3);
    });
    let o_b = f.ldi(outp as i64);
    f.fstore(o_b, 0, score);
    f.fstore(o_b, 8, flux);
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "179.art",
        suite: Suite::SpecFp,
        expected: Expected::FineGrainTlp,
        program: pb.finish(),
    }
}

/// `183.equake` — CSR sparse matrix-vector product: indirect loads the
/// compiler cannot prove independent, a statistical-DOALL poster child
/// with heavy memory traffic.
pub fn equake(scale: Scale) -> Workload {
    let mut rng = rng_for("equake");
    let rows = scale.of(64, 200);
    let avg_nnz = 10usize;
    let mut pb = ProgramBuilder::new("183.equake");
    // Build CSR arrays on the host.
    let mut rowptr: Vec<i32> = Vec::with_capacity(rows as usize + 1);
    let mut cols: Vec<i32> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    rowptr.push(0);
    for _ in 0..rows {
        let nnz = 6 + (rand_i64s(&mut rng, 1, 0, 2 * (avg_nnz as i64 - 6))[0] as usize);
        for _ in 0..nnz {
            cols.push(rand_indices(&mut rng, 1, rows as usize)[0]);
            vals.push(rand_f64s(&mut rng, 1, -1.0, 1.0)[0]);
        }
        rowptr.push(cols.len() as i32);
    }
    let rp = pb.data_mut().array_i32("rowptr", &rowptr);
    let ci = pb.data_mut().array_i32("col", &cols);
    let av = pb.data_mut().array_f64("a", &vals);
    let x = pb
        .data_mut()
        .array_f64("x", &rand_f64s(&mut rng, rows as usize, -1.0, 1.0));
    let y = pb.data_mut().zeroed("y", (rows * 8) as u64);

    let mut f = pb.function("main");
    let rp_b = f.ldi(rp as i64);
    let ci_b = f.ldi(ci as i64);
    let a_b = f.ldi(av as i64);
    let x_b = f.ldi(x as i64);
    let y_b = f.ldi(y as i64);
    f.counted_loop(0i64, rows, 1, |f, i| {
        let io = f.shl(i, 2i64);
        let rpa = f.add(rp_b, io);
        let start = f.load4(rpa, 0);
        let end = f.load4(rpa, 4);
        let acc = f.fldi(0.0);
        f.counted_loop(start, end, 1, |f, k| {
            let ko = f.shl(k, 2i64);
            let ca = f.add(ci_b, ko);
            let c = f.load4(ca, 0);
            let k8 = f.shl(k, 3i64);
            let aa = f.add(a_b, k8);
            let aval = f.fload(aa, 0);
            let c8 = f.shl(c, 3i64);
            let xa = f.add(x_b, c8);
            let xv = f.fload(xa, 0);
            let prod = f.fmul(aval, xv);
            f.reduce_fadd(acc, prod);
        });
        let i8 = f.shl(i, 3i64);
        let ya = f.add(y_b, i8);
        f.fstore(ya, 0, acc);
    });
    f.halt();
    pb.finish_function(f);
    Workload {
        name: "183.equake",
        suite: Suite::SpecFp,
        expected: Expected::FineGrainTlp,
        program: pb.finish(),
    }
}
