//! Benchmark kernels for the Voltron reproduction.
//!
//! The paper evaluates 25 programs from SPEC and MediaBench (§5.1). Those
//! suites cannot be redistributed, so each benchmark is replaced by a
//! synthetic kernel that reproduces the *structure* the paper's analysis
//! keys on — the dominant loops, their dependence patterns (DOALL /
//! reduction / recurrence / pointer-chasing), their memory footprints and
//! miss behavior, and their control-flow shape. The per-benchmark
//! expectations (`Workload::expected`) encode the paper's Fig. 3/10
//! trends: which parallelism class each program favors.
//!
//! All kernels are deterministic (seeded data), self-checking (results
//! are stored into the data segment, which the system compares against
//! the reference interpreter), and available at two scales: [`Scale::Test`]
//! for CI-speed runs and [`Scale::Full`] for figure regeneration.

mod common;
mod media;
mod specfp;
mod specint;

use voltron_ir::Program;

/// Benchmark suite a workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// MediaBench.
    MediaBench,
    /// SPEC CPU (integer).
    SpecInt,
    /// SPEC CPU (floating point).
    SpecFp,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::MediaBench => "MediaBench",
            Suite::SpecInt => "SPECint",
            Suite::SpecFp => "SPECfp",
        };
        f.write_str(s)
    }
}

/// Parallelism class a benchmark is expected to favor (the paper's
/// Fig. 3 / Fig. 10 trend), used in reports only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// Coupled-mode ILP.
    Ilp,
    /// Fine-grain TLP (strands or DSWP).
    FineGrainTlp,
    /// Loop-level parallelism.
    Llp,
    /// A mix (the hybrid shines).
    Mixed,
}

/// Workload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for tests (tens of thousands of cycles).
    Test,
    /// Evaluation inputs for the figures (hundreds of thousands of
    /// cycles).
    Full,
}

impl Scale {
    /// Pick a size by scale.
    pub fn of(self, test: i64, full: i64) -> i64 {
        match self {
            Scale::Test => test,
            Scale::Full => full,
        }
    }
}

/// A named benchmark program.
pub struct Workload {
    /// Benchmark name (matches the paper's figures).
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Expected dominant parallelism class.
    pub expected: Expected,
    /// The program.
    pub program: Program,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name)
    }
}

/// Build every benchmark at the given scale, in the paper's figure order.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        specfp::alvinn(scale),
        specfp::ear(scale),
        specint::ijpeg(scale),
        specint::gzip(scale),
        specfp::swim(scale),
        specfp::mgrid(scale),
        specint::vpr(scale),
        specfp::mesa(scale),
        specfp::art(scale),
        specfp::equake(scale),
        specint::parser(scale),
        specint::vortex(scale),
        specint::bzip2(scale),
        media::cjpeg(scale),
        media::djpeg(scale),
        media::epic(scale),
        media::g721decode(scale),
        media::g721encode(scale),
        media::gsmdecode(scale),
        media::gsmencode(scale),
        media::mpeg2dec(scale),
        media::mpeg2enc(scale),
        media::rawcaudio(scale),
        media::rawdaudio(scale),
        media::unepic(scale),
    ]
}

/// Look up one benchmark by name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_25_unique_verified_programs() {
        let ws = all(Scale::Test);
        assert_eq!(ws.len(), 25);
        let mut names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25, "duplicate benchmark names");
        for w in &ws {
            voltron_ir::verify::verify_program(&w.program)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn every_workload_interprets_and_is_deterministic() {
        for w in all(Scale::Test) {
            let a = voltron_ir::interp::run(&w.program, 200_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let b = voltron_ir::interp::run(&w.program, 200_000_000).unwrap();
            assert_eq!(
                a.memory.first_difference(&b.memory),
                None,
                "{} is nondeterministic",
                w.name
            );
            assert!(
                a.steps > 1_000,
                "{} is trivially small ({} steps)",
                w.name,
                a.steps
            );
        }
    }

    #[test]
    fn full_scale_is_larger_than_test_scale() {
        for name in ["171.swim", "164.gzip", "gsmdecode"] {
            let t = by_name(name, Scale::Test).unwrap();
            let f = by_name(name, Scale::Full).unwrap();
            let ts = voltron_ir::interp::run(&t.program, 2_000_000_000)
                .unwrap()
                .steps;
            let fs = voltron_ir::interp::run(&f.program, 2_000_000_000)
                .unwrap()
                .steps;
            assert!(fs > ts * 2, "{name}: full {fs} vs test {ts}");
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("164.gzip", Scale::Test).is_some());
        assert!(by_name("no-such-bench", Scale::Test).is_none());
    }
}
