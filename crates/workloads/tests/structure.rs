//! Structural assertions on the benchmark kernels: each must exhibit the
//! instruction mix its original is known for (the property the planner's
//! choices depend on).

use voltron_ir::{Opcode, Program};
use voltron_workloads::{all, by_name, Expected, Scale, Suite};

fn count(p: &Program, pred: impl Fn(&Opcode) -> bool) -> usize {
    p.funcs
        .iter()
        .flat_map(|f| f.blocks.iter())
        .flat_map(|b| b.insts.iter())
        .filter(|i| pred(&i.op))
        .count()
}

#[test]
fn fp_benchmarks_use_floating_point() {
    for name in [
        "052.alvinn",
        "056.ear",
        "171.swim",
        "172.mgrid",
        "177.mesa",
        "179.art",
        "183.equake",
    ] {
        let w = by_name(name, Scale::Test).unwrap();
        assert_eq!(w.suite, Suite::SpecFp);
        let fp = count(&w.program, |o| {
            matches!(
                o,
                Opcode::Fadd | Opcode::Fmul | Opcode::Fload | Opcode::Fstore
            )
        });
        assert!(fp > 3, "{name}: only {fp} FP ops");
    }
}

#[test]
fn integer_benchmarks_avoid_floating_point() {
    for name in [
        "164.gzip",
        "197.parser",
        "256.bzip2",
        "g721decode",
        "rawcaudio",
    ] {
        let w = by_name(name, Scale::Test).unwrap();
        let fp = count(&w.program, |o| {
            matches!(o, Opcode::Fadd | Opcode::Fmul | Opcode::Fdiv)
        });
        assert_eq!(fp, 0, "{name} should be integer-only");
    }
}

#[test]
fn pointer_chasers_load_indices() {
    // art and parser chase through i32 next-pointers.
    for name in ["179.art", "197.parser"] {
        let w = by_name(name, Scale::Test).unwrap();
        let narrow_loads = count(&w.program, |o| {
            matches!(o, Opcode::Load(voltron_ir::MemWidth::W4, _))
        });
        assert!(narrow_loads >= 1, "{name}: no index loads");
    }
}

#[test]
fn gsmdecode_contains_the_fig9_filter() {
    let w = by_name("gsmdecode", Scale::Test).unwrap();
    // The LTP filter: multiply, round (+16384), arithmetic shift by 15.
    let sars = count(&w.program, |o| matches!(o, Opcode::Sar));
    let muls = count(&w.program, |o| matches!(o, Opcode::Mul));
    assert!(sars >= 16, "filter shifts missing ({sars})");
    assert!(muls >= 16, "filter multiplies missing ({muls})");
}

#[test]
fn gzip_compares_four_shorts_per_iteration() {
    let w = by_name("164.gzip", Scale::Test).unwrap();
    let short_loads = count(&w.program, |o| {
        matches!(
            o,
            Opcode::Load(voltron_ir::MemWidth::W2, voltron_ir::Signedness::Unsigned)
        )
    });
    assert!(
        short_loads >= 8,
        "Fig. 8 loads 4 shorts per side, found {short_loads}"
    );
}

#[test]
fn adpcm_codecs_are_select_heavy_recurrences() {
    for name in ["rawcaudio", "rawdaudio", "g721decode", "g721encode"] {
        let w = by_name(name, Scale::Test).unwrap();
        assert_eq!(w.expected, Expected::Ilp);
        let sels = count(&w.program, |o| matches!(o, Opcode::Sel));
        assert!(sels >= 3, "{name}: ADPCM quantizer needs selects ({sels})");
    }
}

#[test]
fn every_workload_writes_results_to_memory() {
    for w in all(Scale::Test) {
        let stores = count(&w.program, |o| o.is_store());
        assert!(stores > 0, "{}: no observable output", w.name);
        // And has at least one loop.
        let branches = count(&w.program, |o| matches!(o, Opcode::Br));
        assert!(branches > 0, "{}: no control flow", w.name);
    }
}

#[test]
fn expected_classes_cover_all_variants() {
    let ws = all(Scale::Test);
    for e in [
        Expected::Ilp,
        Expected::FineGrainTlp,
        Expected::Llp,
        Expected::Mixed,
    ] {
        assert!(
            ws.iter().any(|w| w.expected == e),
            "no benchmark expects {e:?}"
        );
    }
    // Suite balance matches the paper: 12 MediaBench + 13 SPEC.
    let media = ws.iter().filter(|w| w.suite == Suite::MediaBench).count();
    assert_eq!(media, 12);
}
