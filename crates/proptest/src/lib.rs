//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-io access, so this workspace-local
//! crate implements the subset of proptest the test suites use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`Strategy`] with [`Strategy::prop_map`], integer-range and tuple
//!   strategies, [`any`], [`prop_oneof!`], and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Semantic differences from the real crate, both deliberate:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   rendered via `Debug`; reproduce by pasting them into a unit test.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name (override with `PROPTEST_SEED=<u64>`), so CI runs are
//!   reproducible by construction.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The per-test random source and configuration.

    /// Splitmix64-based RNG: tiny, seedable, platform-independent.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the test name (or `PROPTEST_SEED`).
        pub fn deterministic(name: &str) -> TestRng {
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = s.parse::<u64>() {
                    return TestRng { state: seed };
                }
            }
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Runner configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for source compatibility with real proptest; this
        /// shim reports the failing sample as-is instead of shrinking.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 64,
                max_shrink_iters: 1024,
            }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of random values for one property input.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (used by [`prop_oneof!`] to mix arm types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// A constant strategy (used by [`prop_oneof!`] arms that are plain
/// values, e.g. enum variants without payloads).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo as u64
                + if self.size.hi > self.size.lo + 1 {
                    rng.below((self.size.hi - self.size.lo) as u64)
                } else {
                    0
                };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests.
    /// Re-export so `proptest::collection::vec` resolves through the
    /// prelude glob as well.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Render sampled inputs for a failure message.
pub fn describe_case<T: Debug>(names: &[&str], values: &T) -> String {
    format!("inputs {names:?} = {values:#?}")
}

/// Assert inside a property; on failure the harness reports the sampled
/// inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
///     #[test]
///     fn prop(x in 0i64..10, v in proptest::collection::vec(any::<u8>(), 1..4)) {
///         prop_assert!(x < 10 && !v.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                let sampled = ($($crate::Strategy::sample(&($strat), &mut rng),)*);
                let case_msg = format!(
                    "{} failed at case {case}: {}",
                    stringify!($name),
                    $crate::describe_case(&[$(stringify!($pat)),*], &sampled)
                );
                let ($($pat,)*) = sampled;
                let run = std::panic::AssertUnwindSafe(|| { $body });
                if let Err(e) = std::panic::catch_unwind(run) {
                    eprintln!("{case_msg}");
                    std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(u8),
        B(i64, i64),
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in -5i64..5,
            v in collection::vec(0u32..10, 2..6),
            exact in collection::vec(any::<u8>(), 3usize),
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn oneof_and_map_mix_arm_types(
            p in prop_oneof![
                any::<u8>().prop_map(Pick::A),
                (0i64..4, 10i64..14).prop_map(|(a, b)| Pick::B(a, b)),
            ],
        ) {
            match p {
                Pick::A(_) => {}
                Pick::B(a, b) => {
                    prop_assert!((0..4).contains(&a));
                    prop_assert!((10..14).contains(&b));
                }
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
