//! End-to-end equivalence and robustness tests for the serve daemon.
//!
//! The load-bearing claim is that a served run is *architecturally
//! indistinguishable* from the one-shot `Experiment` path: same cycles,
//! same speedup bits, bit-identical `MachineStats` — through concurrent
//! clients, pooled (reset) machines, and every cache layer.

use std::io::Cursor;
use std::sync::mpsc::channel;
use std::sync::Mutex;

use voltron_bench::jsonv::{self, JValue};
use voltron_bench::serve::{
    parse_request, serve_connection, Request, Response, ServeError, Served, Server, ServerConfig,
};
use voltron_core::{Experiment, RunResult, Strategy};
use voltron_sim::CoherenceBackend;
use voltron_workloads::{by_name, Scale};

/// A golden-matrix slice that spans every strategy, both hybrid core
/// counts, and three workload families (mirrors `tests/cycle_golden.rs`).
const MATRIX: &[(&str, Strategy, usize)] = &[
    ("rawcaudio", Strategy::Serial, 1),
    ("rawcaudio", Strategy::Ilp, 4),
    ("rawcaudio", Strategy::FineGrainTlp, 4),
    ("rawcaudio", Strategy::Llp, 4),
    ("rawcaudio", Strategy::Hybrid, 2),
    ("rawcaudio", Strategy::Hybrid, 4),
    ("164.gzip", Strategy::Serial, 1),
    ("164.gzip", Strategy::Hybrid, 4),
    ("epic", Strategy::FineGrainTlp, 4),
    ("epic", Strategy::Hybrid, 4),
];

fn assert_run_matches(served: &Served, direct: &RunResult, baseline: u64, what: &str) {
    let r = &served.run;
    assert_eq!(r.strategy, direct.strategy, "{what}: strategy");
    assert_eq!(r.cores, direct.cores, "{what}: cores");
    assert_eq!(r.backend, direct.backend, "{what}: backend");
    assert_eq!(r.cycles, direct.cycles, "{what}: cycles");
    assert_eq!(r.ticked_cycles, direct.ticked_cycles, "{what}: ticked");
    assert_eq!(
        r.speedup.to_bits(),
        direct.speedup.to_bits(),
        "{what}: speedup bits"
    );
    assert_eq!(r.stats, direct.stats, "{what}: MachineStats");
    assert_eq!(r.region_kinds, direct.region_kinds, "{what}: region kinds");
    assert_eq!(served.baseline_cycles, baseline, "{what}: baseline cycles");
}

fn unwrap_run(resp: Response) -> Box<Served> {
    match resp {
        Response::Run { result: Ok(s), .. } => s,
        Response::Run {
            result: Err(e), id, ..
        } => {
            panic!("request {id} failed: {}: {}", e.kind(), e.message())
        }
        Response::Stats { .. } => panic!("unexpected stats response"),
    }
}

/// Tentpole equivalence: the golden-matrix slice, served to four
/// concurrent client threads, must match field-for-field what a direct
/// `Experiment` produces — including when the server answers from its
/// result cache and its machine pool.
#[test]
fn served_matrix_matches_direct_under_concurrency() {
    let server = Server::start(ServerConfig {
        workers: 4,
        queue_depth: 8,
        pool_cap: 4,
    });

    const CLIENTS: usize = 4;
    let results: Mutex<Vec<(usize, usize, Box<Served>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            let results = &results;
            scope.spawn(move || {
                for step in 0..MATRIX.len() {
                    // Each client walks the matrix at a different phase so
                    // cold compiles, cache hits, and pool churn interleave.
                    let idx = (step + client * 3) % MATRIX.len();
                    let (workload, strategy, cores) = MATRIX[idx];
                    let mut req = Request::new(workload, strategy, cores);
                    req.id = (client * MATRIX.len() + idx) as u64;
                    let served = unwrap_run(server.call(req));
                    results.lock().unwrap().push((client, idx, served));
                }
            });
        }
    });

    // Direct one-shot path, one Experiment per workload (its own caches).
    let mut direct: Vec<(String, Experiment<'static>)> = Vec::new();
    for name in ["rawcaudio", "164.gzip", "epic"] {
        let w = by_name(name, Scale::Test).expect("workload exists");
        // Leak the program so the Experiment (which borrows it) can live
        // in the same vec; fine for a test process.
        let program = Box::leak(Box::new(w.program));
        direct.push((name.to_string(), Experiment::new(program).expect("direct")));
    }

    let results = results.into_inner().unwrap();
    assert_eq!(results.len(), CLIENTS * MATRIX.len());
    for (client, idx, served) in &results {
        let (workload, strategy, cores) = MATRIX[*idx];
        let exp = &mut direct
            .iter_mut()
            .find(|(n, _)| n == workload)
            .expect("direct experiment")
            .1;
        let baseline = exp.baseline_cycles();
        let d = exp
            .run_on(strategy, cores, CoherenceBackend::Snooping)
            .expect("direct run");
        assert_run_matches(
            served,
            d,
            baseline,
            &format!("client {client} {workload}/{strategy:?}/{cores}"),
        );
    }

    // With 4 clients walking the same 10 configs, the result cache must
    // have absorbed most of the load.
    let stats = server.engine().stats_json().render();
    let v = jsonv::parse(&stats).expect("stats parse");
    let hits = v.get("result_hits").and_then(JValue::as_num).unwrap_or(0.0);
    assert!(
        hits >= (CLIENTS - 1) as f64 * MATRIX.len() as f64 * 0.5,
        "expected substantial result-cache traffic, got {stats}"
    );
    server.shutdown();
}

/// Directed pool check on both coherence backends: a second identical
/// `fresh` request must be served by a *pooled, reset* machine and still
/// produce bit-identical results.
#[test]
fn pooled_machine_reuse_equals_fresh_on_both_backends() {
    for backend in [
        CoherenceBackend::Snooping,
        CoherenceBackend::directory_for(4),
    ] {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 4,
            pool_cap: 2,
        });
        let mut req = Request::new("rawcaudio", Strategy::Hybrid, 4);
        req.backend = backend;
        req.fresh = true; // bypass the result cache: really simulate twice
        let first = unwrap_run(server.call(req.clone()));
        let second = unwrap_run(server.call(req));
        assert!(
            !first.cache.machine_pooled,
            "{backend:?}: first run must build its machine"
        );
        assert!(
            second.cache.machine_pooled,
            "{backend:?}: second run must reuse the pooled machine"
        );
        assert!(
            second.cache.front_end_hit && second.cache.image_hit,
            "{backend:?}: compile layers must be warm on the second run"
        );
        assert!(
            !second.cache.result_hit,
            "{backend:?}: fresh requests must not be served from the result cache"
        );
        assert_eq!(first.run.cycles, second.run.cycles, "{backend:?}: cycles");
        assert_eq!(first.run.stats, second.run.stats, "{backend:?}: stats");
        assert_eq!(
            first.run.speedup.to_bits(),
            second.run.speedup.to_bits(),
            "{backend:?}: speedup bits"
        );
        server.shutdown();
    }
}

/// A cycle-budget deadline produces a typed `sim` error — and the worker
/// that hit it keeps serving.
#[test]
fn budget_exhaustion_is_typed_and_worker_survives() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 4,
        pool_cap: 1,
    });
    let mut starved = Request::new("rawcaudio", Strategy::Serial, 1);
    starved.budget_cycles = Some(2);
    match server.call(starved) {
        Response::Run { result: Err(e), .. } => {
            assert_eq!(e.kind(), "sim", "budget exhaustion is a sim error");
        }
        other => panic!(
            "expected a typed sim error, got {:?}",
            other.to_json().render()
        ),
    }
    // The single worker must still be alive and able to serve.
    let ok = unwrap_run(server.call(Request::new("rawcaudio", Strategy::Serial, 1)));
    assert!(ok.run.cycles > 0);
    server.shutdown();
}

/// Requested artifacts ride on the response: what-if report, probe
/// summary, and Chrome trace JSON.
#[test]
fn on_demand_artifacts_are_attached() {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 4,
        pool_cap: 2,
    });
    let mut req = Request::new("rawcaudio", Strategy::Hybrid, 4);
    req.whatif = true;
    req.probes = true;
    req.trace = true;
    let served = unwrap_run(server.call(req));
    let w = served.whatif.as_ref().expect("whatif report attached");
    assert!(!w.ceilings.is_empty(), "whatif report has knob ceilings");
    assert!(served.probes.is_some(), "probe summary attached");
    let trace = served.trace_json.as_ref().expect("trace attached");
    assert!(
        trace.contains("traceEvents"),
        "trace is Chrome trace-event JSON"
    );
    // Observed runs never enter the result cache: a plain repeat of the
    // same config must still simulate (or hit the plain-result cache
    // built by *this* request's baseline, but never return probe data).
    let plain = unwrap_run(server.call(Request::new("rawcaudio", Strategy::Hybrid, 4)));
    assert!(plain.whatif.is_none() && plain.probes.is_none() && plain.trace_json.is_none());
    server.shutdown();
}

/// The NDJSON wire loop: malformed lines, bad fields, unknown workloads,
/// and in-band stats probes each produce their typed row, and good
/// requests still succeed on the same connection.
#[test]
fn wire_protocol_rows_are_typed() {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 4,
        pool_cap: 2,
    });
    let input = concat!(
        "this is not json\n",
        "{\"id\": 2, \"workload\": \"no-such-benchmark\"}\n",
        "{\"id\": 3, \"workload\": \"rawcaudio\", \"cores\": 0}\n",
        "{\"id\": 4, \"workload\": \"rawcaudio\", \"strategy\": \"serial\", \"cores\": 1}\n",
        "{\"id\": 5, \"stats\": true}\n",
    );
    let mut out = Vec::new();
    serve_connection(&server, Cursor::new(input.as_bytes()), &mut out);
    server.shutdown();

    let text = String::from_utf8(out).expect("utf8 output");
    let rows: Vec<JValue> = text
        .lines()
        .map(|l| jsonv::parse(l).expect("every response row parses"))
        .collect();
    assert_eq!(rows.len(), 5, "one row per request line:\n{text}");
    let by_id = |id: f64| {
        rows.iter()
            .find(|r| r.get("id").and_then(JValue::as_num) == Some(id))
            .unwrap_or_else(|| panic!("no row with id {id}:\n{text}"))
    };
    let err_kind = |row: &JValue| {
        row.get("error")
            .and_then(JValue::as_str)
            .unwrap_or("")
            .to_string()
    };
    assert_eq!(err_kind(by_id(0.0)), "bad-request", "malformed JSON");
    assert_eq!(err_kind(by_id(2.0)), "unknown-workload");
    assert_eq!(err_kind(by_id(3.0)), "bad-request", "cores: 0 is invalid");
    let good = by_id(4.0);
    assert_eq!(good.get("ok").and_then(JValue::as_num), Some(1.0));
    assert!(good.get("cycles").and_then(JValue::as_num).unwrap_or(0.0) > 0.0);
    assert_eq!(
        good.get("cache")
            .and_then(|c| c.get("result"))
            .and_then(JValue::as_str),
        Some("miss"),
        "first run of a config cannot be a result hit"
    );
    let stats = by_id(5.0);
    assert!(
        stats.get("stats").and_then(|s| s.get("requests")).is_some(),
        "stats probe returns the counters document: {text}"
    );
}

/// `parse_request` accepts the documented field set and rejects bad
/// values with a message naming the field.
#[test]
fn parse_request_validates_fields() {
    let parse = |s: &str| parse_request(&jsonv::parse(s).unwrap());
    let req = parse(
        "{\"id\": 9, \"workload\": \"epic\", \"scale\": \"test\", \"strategy\": \"llp\",\
         \"cores\": 2, \"backend\": \"directory\", \"budget_cycles\": 1000,\
         \"faults\": \"seed=3,rate=0.5\", \"fresh\": true, \"whatif\": true}",
    )
    .expect("full request parses");
    assert_eq!(req.id, 9);
    assert_eq!(req.strategy, Strategy::Llp);
    assert_eq!(req.cores, 2);
    assert_eq!(req.backend, CoherenceBackend::directory_for(2));
    assert_eq!(req.budget_cycles, Some(1000));
    assert!(req.faults.is_some() && req.fresh && req.whatif);

    for (bad, needle) in [
        ("{}", "workload"),
        ("{\"workload\": \"epic\", \"scale\": \"huge\"}", "scale"),
        (
            "{\"workload\": \"epic\", \"strategy\": \"magic\"}",
            "strategy",
        ),
        ("{\"workload\": \"epic\", \"cores\": 1.5}", "cores"),
        (
            "{\"workload\": \"epic\", \"backend\": \"psychic\"}",
            "backend",
        ),
        ("{\"workload\": \"epic\", \"fresh\": 1}", "fresh"),
    ] {
        let err = parse(bad).expect_err(bad);
        assert!(err.contains(needle), "{bad}: {err} should name {needle}");
    }
}

/// Full TCP round trip against the real `serve` binary: bind port 0,
/// discover the port from the `LISTENING` line, and exchange NDJSON.
#[test]
fn tcp_daemon_round_trip() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve daemon");
    let mut banner = String::new();
    BufReader::new(child.stdout.take().expect("piped stdout"))
        .read_line(&mut banner)
        .expect("read LISTENING banner");
    let addr = banner
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let result = std::panic::catch_unwind(|| {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(
                b"{\"id\": 1, \"workload\": \"rawcaudio\", \"strategy\": \"serial\", \"cores\": 1}\n\
                  {\"id\": 2, \"stats\": true}\n",
            )
            .expect("send requests");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut rows = Vec::new();
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read response row");
            rows.push(jsonv::parse(line.trim()).expect("row parses"));
        }
        let run = rows
            .iter()
            .find(|r| r.get("id").and_then(JValue::as_num) == Some(1.0))
            .expect("run row");
        assert_eq!(run.get("ok").and_then(JValue::as_num), Some(1.0));
        assert!(run.get("cycles").and_then(JValue::as_num).unwrap_or(0.0) > 0.0);
        let stats = rows
            .iter()
            .find(|r| r.get("id").and_then(JValue::as_num) == Some(2.0))
            .expect("stats row");
        assert!(stats.get("stats").is_some());
    });
    let _ = child.kill();
    let _ = child.wait();
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

/// Submitting after shutdown yields an immediate typed error rather than
/// a hang or a dropped reply channel.
#[test]
fn post_shutdown_submit_gets_typed_error() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        pool_cap: 1,
    });
    server.shutdown();
    let (tx, rx) = channel();
    server.submit(Request::new("rawcaudio", Strategy::Serial, 1), tx);
    match rx.recv().expect("reply arrives") {
        Response::Run {
            result: Err(ServeError::BadRequest(m)),
            ..
        } => {
            assert!(m.contains("shutting down"), "{m}");
        }
        other => panic!(
            "expected shutdown error, got {:?}",
            other.to_json().render()
        ),
    }
}
