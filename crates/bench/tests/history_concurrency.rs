//! `append_history` under concurrent writers.
//!
//! The serve daemon's workers and `serve_bench` both append history rows
//! from multiple threads; a torn line would poison `bench_diff`'s parse
//! of the whole file. This test lives in its own integration binary so it
//! can move the process working directory to a scratch dir without racing
//! other tests (`HISTORY_FILE` is cwd-relative).

use std::sync::atomic::{AtomicU64, Ordering};

use voltron_bench::harness::{append_history, HISTORY_FILE};
use voltron_bench::jsonv::{self, JValue};
use voltron_core::report::Json;

#[test]
fn concurrent_appends_produce_whole_lines() {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "voltron-history-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::env::set_current_dir(&dir).expect("enter scratch dir");

    const WRITERS: usize = 8;
    const ROWS: usize = 50;
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            scope.spawn(move || {
                for row in 0..ROWS {
                    // Vary the payload size so interleaved writes of equal
                    // length can't mask tearing.
                    let pad = "x".repeat(1 + (writer * ROWS + row) % 97);
                    append_history(&Json::Obj(vec![
                        ("writer".into(), Json::UInt(writer as u64)),
                        ("row".into(), Json::UInt(row as u64)),
                        ("pad".into(), Json::Str(pad)),
                    ]));
                }
            });
        }
    });

    let text = std::fs::read_to_string(HISTORY_FILE).expect("history file exists");
    let mut seen = vec![[false; ROWS]; WRITERS];
    for (i, line) in text.lines().enumerate() {
        let v =
            jsonv::parse(line).unwrap_or_else(|e| panic!("line {} is torn: {e}\n{line}", i + 1));
        let writer = v.get("writer").and_then(JValue::as_num).expect("writer") as usize;
        let row = v.get("row").and_then(JValue::as_num).expect("row") as usize;
        assert!(!seen[writer][row], "duplicate row {writer}/{row}");
        seen[writer][row] = true;
    }
    assert_eq!(
        text.lines().count(),
        WRITERS * ROWS,
        "every append produced exactly one line"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
