//! Observer-effect freedom: attaching the ChromeTracer and interval
//! probes must not change a single architectural number. This compares
//! full `MachineStats` (cycles, per-core stall breakdowns, region
//! attribution, memory/network/TM counters — everything `PartialEq`
//! covers) between a plain run and an instrumented run of the same
//! configuration.
//!
//! The full 28-config matrix gets the same treatment in
//! `tests/cycle_golden.rs` under `CYCLE_GOLDEN_OBS=1` (check.sh runs
//! it); this subset keeps the property in the default `cargo test`
//! sweep.

use voltron_core::{Experiment, ObsRequest, Strategy};
use voltron_workloads::{by_name, Scale};

const CONFIGS: &[(Strategy, usize)] = &[
    (Strategy::Ilp, 4),
    (Strategy::FineGrainTlp, 4),
    (Strategy::Llp, 4),
    (Strategy::Hybrid, 2),
    (Strategy::Hybrid, 4),
];

#[test]
fn observed_runs_report_identical_stats() {
    for bench in ["164.gzip", "rawcaudio"] {
        let w = by_name(bench, Scale::Test).expect("benchmark registered");
        let mut exp = Experiment::new(&w.program).expect("experiment");
        let req = ObsRequest {
            chrome_trace: true,
            probe_period: Some(64),
        };
        for &(strategy, cores) in CONFIGS {
            let plain = exp.run(strategy, cores).expect("plain run").stats.clone();
            let observed = exp
                .run_observed(strategy, cores, &req)
                .expect("observed run");
            assert_eq!(
                plain, observed.run.stats,
                "{bench} {strategy}/{cores}: observation changed the architectural stats"
            );
            assert!(
                !observed.trace_json.is_empty(),
                "{bench} {strategy}/{cores}: no trace collected"
            );
            assert!(
                observed
                    .probes
                    .as_ref()
                    .is_some_and(|p| !p.samples.is_empty()),
                "{bench} {strategy}/{cores}: no probe samples collected"
            );
        }
    }
}
