//! Acceptance test for the Chrome trace-event export: the JSON an
//! observed run emits must actually parse and carry the span taxonomy
//! DESIGN.md §8 promises — per-core stall spans, region spans on the
//! region track, and TM transaction spans — not just "some events".
//!
//! Runs through `Experiment::run_observed`, the same path the
//! `--trace-out` flags use.

use std::collections::BTreeSet;
use voltron_bench::jsonv::{parse, JValue};
use voltron_core::{Experiment, ObsRequest, Strategy};
use voltron_workloads::{by_name, Scale};

/// Machine-wide track ids (`voltron_sim::obs`): per-core tracks sit
/// below `REGION_TID`, TM tracks at `TM_TID_BASE + core`.
const REGION_TID: f64 = 90.0;
const TM_TID_BASE: f64 = 100.0;

fn observed_events(strategy: Strategy, cores: usize) -> (Vec<JValue>, String) {
    let w = by_name("164.gzip", Scale::Test).expect("gzip registered");
    let mut exp = Experiment::new(&w.program).expect("experiment");
    let req = ObsRequest {
        chrome_trace: true,
        probe_period: Some(128),
    };
    let o = exp
        .run_observed(strategy, cores, &req)
        .expect("observed run");
    let doc = parse(&o.trace_json)
        .unwrap_or_else(|e| panic!("{strategy}/{cores} trace is not valid JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(JValue::as_arr)
        .expect("traceEvents array")
        .to_vec();
    assert!(!events.is_empty(), "{strategy}/{cores} trace is empty");
    let probes_json = o
        .probes
        .as_ref()
        .map(|p| p.render_json())
        .expect("probe series requested");
    (events, probes_json)
}

fn cat_of(e: &JValue) -> Option<&str> {
    e.get("cat").and_then(JValue::as_str)
}

fn ph_of(e: &JValue) -> Option<&str> {
    e.get("ph").and_then(JValue::as_str)
}

fn tid_of(e: &JValue) -> f64 {
    e.get("tid").and_then(JValue::as_num).unwrap_or(-1.0)
}

#[test]
fn gzip_ftlp4_trace_has_stall_and_region_spans() {
    let (events, probes_json) = observed_events(Strategy::FineGrainTlp, 4);

    // Per-core stall spans: `B` events with cat "stall" on core tracks.
    let stall_cores: BTreeSet<u64> = events
        .iter()
        .filter(|e| cat_of(e) == Some("stall") && ph_of(e) == Some("B"))
        .map(|e| tid_of(e) as u64)
        .collect();
    assert!(
        stall_cores.len() >= 2 && stall_cores.iter().all(|&t| (t as f64) < REGION_TID),
        "expected stall spans on several core tracks, got {stall_cores:?}"
    );
    // Every span that opens on a track also closes: B and E balance.
    for &core in &stall_cores {
        let b = events
            .iter()
            .filter(|e| ph_of(e) == Some("B") && tid_of(e) as u64 == core)
            .count();
        let e = events
            .iter()
            .filter(|e| ph_of(e) == Some("E") && tid_of(e) as u64 == core)
            .count();
        assert_eq!(b, e, "unbalanced spans on core track {core}");
    }

    // Region spans on the region track, with recognizable names.
    let regions: Vec<&str> = events
        .iter()
        .filter(|e| cat_of(e) == Some("region") && ph_of(e) == Some("B"))
        .filter_map(|e| e.get("name").and_then(JValue::as_str))
        .collect();
    assert!(
        regions.iter().any(|n| n.starts_with("region ")),
        "expected named region spans, got {regions:?}"
    );
    assert!(
        events.iter().all(|e| tid_of(e) != REGION_TID
            || ph_of(e) != Some("B")
            || cat_of(e) == Some("region")),
        "non-region span on the region track"
    );

    // The probe series parses too, with the advertised shape.
    let probes = parse(&probes_json).expect("probe series JSON parses");
    assert_eq!(probes.get("cores").and_then(JValue::as_num), Some(4.0));
    let samples = probes
        .get("samples")
        .and_then(JValue::as_arr)
        .expect("samples array");
    assert!(!samples.is_empty(), "probe series has no samples");
    assert!(samples[0].get("cycle").is_some() && samples[0].get("stalls").is_some());
}

#[test]
fn gzip_hybrid4_trace_has_tm_transaction_spans() {
    // gzip's fTLP build never enters a transaction; the hybrid (LLP)
    // build commits its speculative DOALL chunks through the TM.
    let (events, _) = observed_events(Strategy::Hybrid, 4);
    let tm_spans = events
        .iter()
        .filter(|e| cat_of(e) == Some("tm") && ph_of(e) == Some("B"))
        .count();
    assert!(tm_spans > 0, "expected TM transaction spans");
    assert!(
        events
            .iter()
            .filter(|e| cat_of(e) == Some("tm") && ph_of(e) == Some("B"))
            .all(|e| tid_of(e) >= TM_TID_BASE),
        "TM spans must live on the TM tracks"
    );
    let commits = events
        .iter()
        .filter(|e| {
            cat_of(e) == Some("tm")
                && e.get("name")
                    .and_then(JValue::as_str)
                    .is_some_and(|n| n.starts_with("commit"))
        })
        .count();
    assert!(commits > 0, "expected TM commit markers");
}
