//! Fast-forward microbenchmark: the same compiled program simulated
//! tick-by-tick (`fast_forward = false`) and with the event-driven
//! skip engine on. The ratio is the host-side payoff of skipping
//! fully-blocked cycles; `tests/cycle_golden.rs` (run both ways by
//! scripts/check.sh) pins that the architectural results agree.

use criterion::{criterion_group, criterion_main, Criterion};
use voltron_compiler::{compile, CompileOptions, Strategy};
use voltron_sim::{Machine, MachineConfig, MachineProgram};
use voltron_workloads::{by_name, Scale};

/// Compile `bench` for `strategy` on a 4-core paper machine.
fn prepare(bench: &str, strategy: Strategy) -> (MachineProgram, MachineConfig) {
    let w = by_name(bench, Scale::Test).unwrap();
    let cfg = MachineConfig::paper(4);
    let compiled = compile(&w.program, strategy, &cfg, &CompileOptions::default()).unwrap();
    (compiled.machine, cfg)
}

fn bench_modes(c: &mut Criterion, bench: &str, strategy: Strategy, tag: &str) {
    let (program, base_cfg) = prepare(bench, strategy);
    for (mode, ff) in [("tick", false), ("ff", true)] {
        let mut cfg = base_cfg.clone();
        cfg.fast_forward = ff;
        let program = program.clone();
        c.bench_function(&format!("fast_forward/{tag}/{mode}"), |b| {
            b.iter(|| {
                Machine::new(program.clone(), &cfg)
                    .unwrap()
                    .run()
                    .unwrap()
                    .stats
                    .cycles
            });
        });
    }
}

fn bench_fast_forward(c: &mut Criterion) {
    // Fine-grain TLP is the stall-heaviest strategy (send/recv waits),
    // so it bounds the best case; hybrid is the shipping configuration.
    bench_modes(c, "164.gzip", Strategy::FineGrainTlp, "gzip_ftlp4");
    bench_modes(c, "epic", Strategy::FineGrainTlp, "epic_ftlp4");
    bench_modes(c, "rawcaudio", Strategy::Hybrid, "rawcaudio_hybrid4");
}

criterion_group! {
    name = fast_forward;
    config = Criterion::default().sample_size(20);
    targets = bench_fast_forward
}
criterion_main!(fast_forward);
