//! One Criterion bench per evaluation figure: each runs the figure's
//! pipeline on a representative benchmark at test scale, so `cargo bench`
//! exercises every experiment end to end. The full-table regeneration
//! lives in the `fig03`..`fig14` binaries (`cargo run -p voltron-bench
//! --bin figall`).

use criterion::{criterion_group, criterion_main, Criterion};
use voltron_core::{Experiment, Strategy};
use voltron_workloads::{by_name, Scale};

fn run(strategy: Strategy, cores: usize, bench: &str) -> f64 {
    let w = by_name(bench, Scale::Test).expect("benchmark exists");
    let mut exp = Experiment::new(&w.program).expect("baseline");
    exp.run(strategy, cores).expect("run").speedup
}

fn fig03_breakdown(c: &mut Criterion) {
    c.bench_function("fig03/attribution_cjpeg_4core", |b| {
        b.iter(|| {
            let w = by_name("cjpeg", Scale::Test).unwrap();
            let mut exp = Experiment::new(&w.program).unwrap();
            exp.parallelism_breakdown(4).unwrap()
        });
    });
}

fn fig10_2core(c: &mut Criterion) {
    c.bench_function("fig10/llp_gsmencode_2core", |b| {
        b.iter(|| run(Strategy::Llp, 2, "gsmencode"));
    });
}

fn fig11_4core(c: &mut Criterion) {
    c.bench_function("fig11/ftlp_art_4core", |b| {
        b.iter(|| run(Strategy::FineGrainTlp, 4, "179.art"));
    });
}

fn fig12_stalls(c: &mut Criterion) {
    c.bench_function("fig12/stall_breakdown_gzip", |b| {
        b.iter(|| {
            let w = by_name("164.gzip", Scale::Test).unwrap();
            let mut exp = Experiment::new(&w.program).unwrap();
            let base = exp.baseline_cycles();
            let r = exp.run(Strategy::FineGrainTlp, 4).unwrap();
            r.normalized_stall(voltron_core::StallCategory::RecvData, base)
        });
    });
}

fn fig13_hybrid(c: &mut Criterion) {
    c.bench_function("fig13/hybrid_mpeg2dec_4core", |b| {
        b.iter(|| run(Strategy::Hybrid, 4, "mpeg2dec"));
    });
}

fn fig14_modetime(c: &mut Criterion) {
    c.bench_function("fig14/mode_residency_gsmdecode", |b| {
        b.iter(|| {
            let w = by_name("gsmdecode", Scale::Test).unwrap();
            let mut exp = Experiment::new(&w.program).unwrap();
            exp.run(Strategy::Hybrid, 4).unwrap().coupled_fraction()
        });
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig03_breakdown, fig10_2core, fig11_4core, fig12_stalls, fig13_hybrid, fig14_modetime
}
criterion_main!(figures);
