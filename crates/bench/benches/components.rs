//! Component microbenchmarks: how fast the substrates themselves run
//! (host-side throughput of the simulator's building blocks).

use criterion::{criterion_group, criterion_main, Criterion};
use voltron_compiler::{compile, CompileOptions, Strategy};
use voltron_sim::cache::{LineState, TagCache};
use voltron_sim::network::{OperandNetwork, Payload};
use voltron_sim::tm::TxnManager;
use voltron_sim::{Machine, MachineConfig};
use voltron_workloads::{by_name, Scale};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/l1d_access_stream", |b| {
        let mut cache = TagCache::new(4096, 2, 32);
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(32) & 0xffff;
            if cache.access(addr).is_none() {
                cache.fill(addr, LineState::E);
            }
        });
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network/queue_send_route_recv", |b| {
        let cfg = MachineConfig::paper(4);
        let mut net = OperandNetwork::new(&cfg);
        let mut now = 0u64;
        b.iter(|| {
            net.send(0, 3, 1, Payload::Data(voltron_ir::Value::Int(7)), now);
            for _ in 0..4 {
                now += 1;
                net.tick(now);
            }
            now += 4;
            net.recv(3, 0, 1, now)
        });
    });
}

fn bench_tm(c: &mut Criterion) {
    c.bench_function("tm/begin_write_commit", |b| {
        let mut tm = TxnManager::new(4, 32);
        let mut sink = 0u64;
        b.iter(|| {
            tm.begin(0, 0);
            for i in 0..16u64 {
                tm.write(0, 0x1_0000 + i * 8, 8, i);
            }
            let (lines, _) = tm.commit(0, |a, v| sink = sink.wrapping_add(a + u64::from(v)));
            lines.len()
        });
    });
}

fn bench_compiler(c: &mut Criterion) {
    let w = by_name("gsmdecode", Scale::Test).unwrap();
    let cfg = MachineConfig::paper(4);
    let opts = CompileOptions::default();
    c.bench_function("compiler/compile_gsmdecode_hybrid", |b| {
        b.iter(|| compile(&w.program, Strategy::Hybrid, &cfg, &opts).unwrap());
    });
}

fn bench_machine(c: &mut Criterion) {
    let w = by_name("rawcaudio", Scale::Test).unwrap();
    let cfg = MachineConfig::paper(4);
    let compiled = compile(
        &w.program,
        Strategy::Hybrid,
        &cfg,
        &CompileOptions::default(),
    )
    .unwrap();
    c.bench_function("machine/simulate_rawcaudio_hybrid", |b| {
        b.iter(|| {
            Machine::new(compiled.machine.clone(), &cfg)
                .unwrap()
                .run()
                .unwrap()
                .stats
                .cycles
        });
    });
}

fn bench_interp(c: &mut Criterion) {
    let w = by_name("rawcaudio", Scale::Test).unwrap();
    c.bench_function("interp/reference_rawcaudio", |b| {
        b.iter(|| {
            voltron_ir::interp::run(&w.program, 1_000_000_000)
                .unwrap()
                .steps
        });
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_network, bench_tm, bench_compiler, bench_machine, bench_interp
}
criterion_main!(components);
