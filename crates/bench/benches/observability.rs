//! Observability overhead microbenchmark: the same compiled program
//! simulated bare, with the ChromeTracer attached, and with interval
//! probes sampling — plus the all-instruments-on combination. The
//! "off" variants quantify the zero-overhead-when-off claim of
//! DESIGN.md §8 (no tracer, no probes: the hot path only pays a
//! `tracer.is_some()` test per tick); the "on" variants price the
//! instruments themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use voltron_compiler::{compile, CompileOptions, Strategy};
use voltron_sim::{ChromeTracer, Machine, MachineConfig, MachineProgram};
use voltron_workloads::{by_name, Scale};

/// Compile `bench` for `strategy` on a 4-core paper machine.
fn prepare(bench: &str, strategy: Strategy) -> (MachineProgram, MachineConfig) {
    let w = by_name(bench, Scale::Test).unwrap();
    let cfg = MachineConfig::paper(4);
    let compiled = compile(&w.program, strategy, &cfg, &CompileOptions::default()).unwrap();
    (compiled.machine, cfg)
}

fn bench_instruments(c: &mut Criterion, bench: &str, strategy: Strategy, tag: &str) {
    let (program, base_cfg) = prepare(bench, strategy);
    let variants: [(&str, bool, Option<u64>); 4] = [
        ("off", false, None),
        ("trace", true, None),
        ("probes", false, Some(256)),
        ("all", true, Some(256)),
    ];
    for (mode, trace, probe_period) in variants {
        let mut cfg = base_cfg.clone();
        cfg.probe_period = probe_period;
        let program = program.clone();
        c.bench_function(&format!("observability/{tag}/{mode}"), |b| {
            b.iter(|| {
                let mut m = Machine::new(program.clone(), &cfg).unwrap();
                if trace {
                    m.set_tracer(Box::new(ChromeTracer::new()));
                }
                let out = m.run().unwrap();
                (out.stats.cycles, out.trace.len())
            });
        });
    }
}

fn bench_observability(c: &mut Criterion) {
    // Fine-grain TLP generates the densest span stream (send/recv
    // edges plus constant stall churn); hybrid adds TM spans.
    bench_instruments(c, "164.gzip", Strategy::FineGrainTlp, "gzip_ftlp4");
    bench_instruments(c, "164.gzip", Strategy::Hybrid, "gzip_hybrid4");
}

criterion_group! {
    name = observability;
    config = Criterion::default().sample_size(20);
    targets = bench_observability
}
criterion_main!(observability);
