//! Ablation: sensitivity of coupled-mode ILP to operand-network latency.
//! The dual-mode network's whole point is the 1 cycle/hop direct mode;
//! this sweep raises the per-hop latency toward queue-mode cost and
//! re-measures the ILP build (cf. §3.1's latency/flexibility trade-off).

use voltron_bench::harness::HarnessArgs;
use voltron_core::report::{mean, speedup, Table};
use voltron_core::{outputs_equivalent, run_reference, Strategy};
use voltron_sim::{Machine, MachineConfig};

fn main() {
    let args = HarnessArgs::parse();
    let hops = [1u64, 2, 3, 4];
    let mut headers: Vec<String> = vec!["benchmark".into()];
    headers.extend(hops.iter().map(|h| format!("{h} cyc/hop")));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&hdr);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); hops.len()];
    for w in args.workloads() {
        let golden = match run_reference(&w.program) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{}: {e}", w.name);
                continue;
            }
        };
        // Baseline on the unmodified 1-core machine.
        let base_cfg = MachineConfig::paper(1);
        let opts = voltron_compiler::CompileOptions::default();
        let base = voltron_compiler::compile(&w.program, Strategy::Serial, &base_cfg, &opts)
            .map(|c| Machine::new(c.machine, &base_cfg).unwrap().run().unwrap())
            .unwrap();
        let mut row = vec![w.name.to_string()];
        for (i, &h) in hops.iter().enumerate() {
            let mut cfg = MachineConfig::paper(4);
            cfg.hop_latency = h;
            let out = voltron_compiler::compile(&w.program, Strategy::Ilp, &cfg, &opts)
                .map(|c| Machine::new(c.machine, &cfg).unwrap().run().unwrap())
                .unwrap();
            assert!(outputs_equivalent(&golden.memory, &out.memory).is_ok());
            let sp = base.stats.cycles as f64 / out.stats.cycles.max(1) as f64;
            sums[i].push(sp);
            row.push(speedup(sp));
        }
        table.row(row);
    }
    let mut avg = vec!["average".to_string()];
    for col in &sums {
        avg.push(speedup(mean(col)));
    }
    table.row(avg);
    println!("Ablation: coupled-mode (ILP) speedup vs direct-network hop latency, 4 cores");
    println!("{}", table.render());
    println!(
        "1 cyc/hop is the dual-mode direct network; 3-4 approximates queue-mode-only hardware"
    );
}
