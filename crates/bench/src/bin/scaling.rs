//! Core-count scaling beyond the paper's machines: speedup at 1→64
//! cores for every strategy on both coherence backends.
//!
//! The paper evaluates 2- and 4-core Voltron machines (§5.2); this
//! figure extends the same sweep through 8/16/32/64-core meshes
//! ([`voltron_sim::MachineConfig::scaled`]) and contrasts the bus-based
//! snooping backend against the banked directory backend at each point
//! (bank count per [`voltron_sim::CoherenceBackend::directory_for`]).
//! One table per (strategy, backend); rows are benchmarks, columns are
//! core counts, the last row is the arithmetic mean.

use voltron_bench::harness::{run_workloads, HarnessArgs};
use voltron_core::report::{mean, speedup, Table};
use voltron_core::Strategy;
use voltron_sim::CoherenceBackend;

/// Core counts swept (power-of-two meshes up to the 8x8 maximum).
const CORES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Strategies swept (everything the compiler can build).
const STRATEGIES: [Strategy; 4] = [
    Strategy::Ilp,
    Strategy::FineGrainTlp,
    Strategy::Llp,
    Strategy::Hybrid,
];

/// The two backends at a given machine size.
fn backends(cores: usize) -> [CoherenceBackend; 2] {
    [
        CoherenceBackend::Snooping,
        CoherenceBackend::directory_for(cores),
    ]
}

fn main() {
    let args = HarnessArgs::parse();
    // Strategy-major, then cores, then the two backends; the table
    // renderer below recovers the flat index from that order.
    let configs: Vec<(Strategy, usize, CoherenceBackend)> = STRATEGIES
        .iter()
        .flat_map(|&s| {
            CORES
                .iter()
                .flat_map(move |&c| backends(c).into_iter().map(move |b| (s, c, b)))
        })
        .collect();
    let harvest = run_workloads(&args, |_, exp| {
        exp.run_all_on(&configs)?;
        let mut vals = Vec::with_capacity(configs.len());
        for &(s, c, b) in &configs {
            vals.push(exp.run_on(s, c, b)?.speedup);
        }
        Ok(vals)
    });

    println!("Speedup vs core count, 1-64 cores (baseline = 1-core serial)");
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(CORES.iter().map(|c| format!("{c}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    for (si, &strat) in STRATEGIES.iter().enumerate() {
        for (bi, blabel) in ["snooping", "directory"].iter().enumerate() {
            let mut table = Table::new(&header_refs);
            let mut sums: Vec<Vec<f64>> = vec![Vec::new(); CORES.len()];
            for (w, vals) in &harvest.results {
                let mut cells = vec![w.name.to_string()];
                for (ci, col) in sums.iter_mut().enumerate() {
                    let idx = (si * CORES.len() + ci) * 2 + bi;
                    col.push(vals[idx]);
                    cells.push(speedup(vals[idx]));
                }
                table.row(cells);
            }
            let mut avg = vec!["average".to_string()];
            for col in &sums {
                avg.push(speedup(mean(col)));
            }
            table.row(avg);
            println!("\n== {strat:?} / {blabel} ==");
            print!("{}", table.render());
        }
    }
    println!(
        "\npaper: 2- and 4-core points reproduce Fig. 13; larger meshes are this repo's extension"
    );
    let fails = harvest.failure_section();
    if !fails.is_empty() {
        println!("\n{fails}");
    }
    harvest.report("scaling", &args);
}
