//! Core-count scaling of the hybrid build (the paper's 2-vs-4-core
//! comparison, §5.2): speedup at 1, 2, and 4 cores per benchmark.

use voltron_bench::harness::{speedup_figure, HarnessArgs};
use voltron_core::Strategy;

fn main() {
    let args = HarnessArgs::parse();
    let (out, harvest) = speedup_figure(
        "Hybrid speedup vs core count (baseline = 1-core serial)",
        &args,
        &[
            ("1 core", Strategy::Serial, 1),
            ("2 cores", Strategy::Hybrid, 2),
            ("4 cores", Strategy::Hybrid, 4),
        ],
    );
    println!("{out}");
    println!("paper: decoupled-capable benchmarks scale further from 2 to 4 cores");
    harvest.report("scaling", &args);
}
