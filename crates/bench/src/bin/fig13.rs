//! Figure 13: speedup on 2- and 4-core Voltron exploiting hybrid
//! parallelism (the full §4.2 selection with mode switching).

use voltron_bench::harness::{speedup_figure, HarnessArgs};
use voltron_core::Strategy;

fn main() {
    let args = HarnessArgs::parse();
    let (out, harvest) = speedup_figure(
        "Figure 13: hybrid-parallelism speedup (baseline = 1-core serial)",
        &args,
        &[
            ("2 cores", Strategy::Hybrid, 2),
            ("4 cores", Strategy::Hybrid, 4),
        ],
    );
    println!("{out}");
    println!("paper: averages 1.46 (2 cores) / 1.83 (4 cores)");
    harvest.report("fig13", &args);
}
