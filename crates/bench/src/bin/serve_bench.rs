//! `serve_bench`: closed-loop load generator and acceptance gate for the
//! `voltron-serve` daemon.
//!
//! Phases (all against one in-process [`Server`], so the numbers measure
//! the engine, not loopback TCP):
//!
//! 1. **Cold**: every unique request in the mix once, sequentially, on a
//!    fresh server — first-touch latency (golden + front end + compile +
//!    simulate).
//! 2. **Warm**: the same requests again — repeat latency (result cache).
//! 3. **Saturation**: a closed loop of `--concurrency` clients issuing
//!    `--requests` requests over the mix — repeat-heavy traffic where
//!    every [`FRESH_EVERY`]th request is cache-busting (`fresh`, so it
//!    really simulates through the machine pool) and the rest are the
//!    repeats the result cache exists to absorb. Reports sustained req/s
//!    and p50/p99 latency.
//! 4. **One-shot baseline**: the identical request sequence, same
//!    concurrency, but each through a fresh `Experiment` (golden model,
//!    baseline, compile from scratch) — what a `bench_one` invocation
//!    per request costs.
//! 5. **Golden match**: the cycle-golden workload/config matrix served
//!    and compared field-for-field (cycles, speedup, full
//!    `MachineStats`) against the direct `Experiment` path.
//!
//! Writes `BENCH_serve.json` with the three acceptance numbers
//! (`speedup_vs_one_shot`, `warm_speedup`, `golden_match`) and appends a
//! git-rev-stamped throughput row to `BENCH_history.ndjson`. Exits
//! nonzero if any request fails, the golden matrix diverges, or — unless
//! `--no-enforce` — an acceptance threshold is missed.
//!
//! `--quick` shrinks every phase for the CI smoke.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use voltron_bench::harness::{append_history, git_rev, HISTORY_FILE};
use voltron_bench::serve::{Request, Response, Server, ServerConfig};
use voltron_core::report::Json;
use voltron_core::{Experiment, Strategy};
use voltron_workloads::{by_name, Scale};

/// The cycle-golden matrix (tests/cycle_golden.rs): workload, strategy,
/// cores. Served results must match the direct path on every entry.
/// One request in `FRESH_EVERY` of the saturation loop is cache-busting.
const FRESH_EVERY: usize = 4;

const GOLDEN_MATRIX: &[(&str, Strategy, usize)] = &[
    ("164.gzip", Strategy::Serial, 1),
    ("164.gzip", Strategy::Ilp, 4),
    ("164.gzip", Strategy::FineGrainTlp, 4),
    ("164.gzip", Strategy::Llp, 4),
    ("164.gzip", Strategy::Hybrid, 4),
    ("164.gzip", Strategy::Hybrid, 2),
    ("rawcaudio", Strategy::Serial, 1),
    ("rawcaudio", Strategy::Ilp, 4),
    ("rawcaudio", Strategy::FineGrainTlp, 4),
    ("rawcaudio", Strategy::Llp, 4),
    ("rawcaudio", Strategy::Hybrid, 4),
    ("rawcaudio", Strategy::Hybrid, 2),
    ("171.swim", Strategy::Serial, 1),
    ("171.swim", Strategy::Ilp, 4),
    ("171.swim", Strategy::FineGrainTlp, 4),
    ("171.swim", Strategy::Llp, 4),
    ("171.swim", Strategy::Hybrid, 4),
    ("171.swim", Strategy::Hybrid, 2),
    ("179.art", Strategy::Serial, 1),
    ("179.art", Strategy::FineGrainTlp, 4),
    ("179.art", Strategy::Hybrid, 4),
    ("epic", Strategy::Serial, 1),
    ("epic", Strategy::FineGrainTlp, 4),
    ("epic", Strategy::Hybrid, 4),
    ("mpeg2dec", Strategy::Serial, 1),
    ("mpeg2dec", Strategy::Llp, 4),
    ("mpeg2dec", Strategy::Hybrid, 4),
];

struct Args {
    scale: Scale,
    only: Option<String>,
    concurrency: usize,
    requests: usize,
    quick: bool,
    enforce: bool,
}

fn parse_args() -> Args {
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let mut a = Args {
        scale: Scale::Test,
        only: None,
        concurrency: host,
        requests: 0, // resolved after flags
        quick: false,
        enforce: true,
    };
    let mut requests = None;
    let mut args = std::env::args().skip(1);
    let take = |flag: &str, args: &mut dyn Iterator<Item = String>| match args.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--test" => a.scale = Scale::Test,
            "--full" => a.scale = Scale::Full,
            "--bench" => a.only = Some(take("--bench", &mut args)),
            "--concurrency" => {
                a.concurrency = take("--concurrency", &mut args)
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--concurrency requires a positive integer");
                        std::process::exit(2);
                    });
            }
            "--requests" => {
                requests = Some(
                    take("--requests", &mut args)
                        .parse::<usize>()
                        .unwrap_or_else(|_| {
                            eprintln!("--requests requires an integer");
                            std::process::exit(2);
                        }),
                );
            }
            "--quick" => a.quick = true,
            "--no-enforce" => a.enforce = false,
            other => {
                eprintln!(
                    "unknown argument {other} (expected --test/--full/--bench NAME\
                     /--concurrency N/--requests N/--quick/--no-enforce)"
                );
                std::process::exit(2);
            }
        }
    }
    a.requests = requests.unwrap_or(if a.quick {
        2 * a.concurrency.max(4)
    } else {
        (4 * a.concurrency).max(32)
    });
    a
}

/// The request mix: the `bench_one` configuration sweep over a few
/// workloads with distinct parallelism profiles.
fn mix(args: &Args) -> Vec<Request> {
    let workloads: Vec<&str> = match &args.only {
        Some(w) => vec![w.as_str()],
        None if args.quick => vec!["rawcaudio"],
        None => vec!["rawcaudio", "164.gzip", "epic"],
    };
    let configs: &[(Strategy, usize)] = if args.quick {
        &[(Strategy::Ilp, 4), (Strategy::Hybrid, 4)]
    } else {
        &[
            (Strategy::Ilp, 4),
            (Strategy::FineGrainTlp, 4),
            (Strategy::Llp, 4),
            (Strategy::Hybrid, 2),
            (Strategy::Hybrid, 4),
        ]
    };
    let mut reqs = Vec::new();
    for w in &workloads {
        for &(s, c) in configs {
            let mut r = Request::new(w, s, c);
            r.scale = args.scale;
            reqs.push(r);
        }
    }
    reqs
}

fn served_micros(resp: Response, failures: &AtomicU64) -> Option<u64> {
    match resp {
        Response::Run {
            result: Ok(_),
            latency_micros,
            ..
        } => Some(latency_micros),
        Response::Run {
            result: Err(e),
            id,
            workload,
            ..
        } => {
            eprintln!(
                "request {id} ({workload}) failed: {}: {}",
                e.kind(),
                e.message()
            );
            failures.fetch_add(1, Ordering::Relaxed);
            None
        }
        Response::Stats { .. } => None,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

fn main() {
    let args = parse_args();
    let failures = AtomicU64::new(0);
    let server = Server::start(ServerConfig {
        workers: args.concurrency,
        ..ServerConfig::default()
    });
    let mix = mix(&args);
    let t_total = Instant::now();

    // Phase 1+2: cold then warm, sequentially.
    let phase = |label: &str| eprintln!("serve_bench: {label}");
    phase("cold pass (first-touch latencies)");
    let cold: Vec<u64> = mix
        .iter()
        .filter_map(|r| served_micros(server.call(r.clone()), &failures))
        .collect();
    phase("warm pass (repeat latencies)");
    let warm: Vec<u64> = mix
        .iter()
        .filter_map(|r| served_micros(server.call(r.clone()), &failures))
        .collect();
    let warm_speedup = mean(&cold) / mean(&warm).max(1.0);

    // Phase 3: saturation — closed loop over the mix. Every
    // `FRESH_EVERY`th request bypasses the result cache so the pooled
    // machines keep simulating under load; the rest are repeats, the
    // traffic shape the daemon amortizes. The one-shot baseline below
    // pays the full pipeline for the identical sequence.
    phase("saturation (closed loop)");
    let next = AtomicUsize::new(0);
    let t_sat = Instant::now();
    let mut lat: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.concurrency)
            .map(|_| {
                scope.spawn(|| {
                    let mut lats = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= args.requests {
                            return lats;
                        }
                        let mut req = mix[k % mix.len()].clone();
                        req.id = k as u64;
                        req.fresh = k.is_multiple_of(FRESH_EVERY);
                        if let Some(us) = served_micros(server.call(req), &failures) {
                            lats.push(us);
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let sat_seconds = t_sat.elapsed().as_secs_f64();
    lat.sort_unstable();
    let serve_rps = lat.len() as f64 / sat_seconds.max(1e-9);

    // Phase 4: one-shot baseline — the same requests, each paying the
    // full pipeline like an isolated `bench_one` invocation would.
    phase("one-shot baseline (fresh Experiment per request)");
    let next = AtomicUsize::new(0);
    let t_one = Instant::now();
    let oneshot_ok = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..args.concurrency {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= args.requests {
                    return;
                }
                let req = &mix[k % mix.len()];
                let Some(w) = by_name(&req.workload, req.scale) else {
                    failures.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                match Experiment::new(&w.program)
                    .and_then(|mut e| e.run_on(req.strategy, req.cores, req.backend).map(|_| ()))
                {
                    Ok(()) => {
                        oneshot_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        eprintln!("one-shot {k} ({}) failed: {e}", req.workload);
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let one_seconds = t_one.elapsed().as_secs_f64();
    let oneshot_rps = oneshot_ok.load(Ordering::Relaxed) as f64 / one_seconds.max(1e-9);
    let speedup_vs_one_shot = serve_rps / oneshot_rps.max(1e-9);

    // Phase 5: golden match — served rows vs the direct path, full-stats
    // equality. Runs at test scale like the cycle-golden tier-1 test.
    phase("golden match (served vs direct)");
    let matrix: Vec<&(&str, Strategy, usize)> = if args.quick {
        GOLDEN_MATRIX.iter().step_by(5).collect()
    } else {
        GOLDEN_MATRIX.iter().collect()
    };
    let mut mismatches = 0usize;
    let mut checked = 0usize;
    {
        // Group by workload so the direct path shares one Experiment per
        // workload, exactly like bench_one does.
        let mut by_workload: Vec<(&str, Vec<(Strategy, usize)>)> = Vec::new();
        for &&(w, s, c) in &matrix {
            match by_workload.iter_mut().find(|(name, _)| *name == w) {
                Some((_, v)) => v.push((s, c)),
                None => by_workload.push((w, vec![(s, c)])),
            }
        }
        for (name, configs) in by_workload {
            let Some(w) = by_name(name, Scale::Test) else {
                eprintln!("golden: unknown workload {name}");
                mismatches += 1;
                continue;
            };
            let mut exp = match Experiment::new(&w.program) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("golden: direct baseline for {name} failed: {e}");
                    mismatches += configs.len();
                    continue;
                }
            };
            for (strategy, cores) in configs {
                checked += 1;
                let mut req = Request::new(name, strategy, cores);
                req.scale = Scale::Test;
                let served = match server.call(req) {
                    Response::Run { result: Ok(s), .. } => s,
                    Response::Run { result: Err(e), .. } => {
                        eprintln!(
                            "golden: served {name}/{strategy}/{cores} failed: {}",
                            e.message()
                        );
                        mismatches += 1;
                        continue;
                    }
                    Response::Stats { .. } => unreachable!("run request"),
                };
                let baseline = exp.baseline_cycles();
                let direct = match exp.run(strategy, cores) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("golden: direct {name}/{strategy}/{cores} failed: {e}");
                        mismatches += 1;
                        continue;
                    }
                };
                let r = &served.run;
                let same = r.cycles == direct.cycles
                    && r.ticked_cycles == direct.ticked_cycles
                    && r.speedup.to_bits() == direct.speedup.to_bits()
                    && r.stats == direct.stats
                    && served.baseline_cycles == baseline;
                if !same {
                    eprintln!(
                        "golden: {name}/{strategy}/{cores} diverged: served \
                         {}/{} vs direct {}/{}",
                        r.cycles, r.ticked_cycles, direct.cycles, direct.ticked_cycles
                    );
                    mismatches += 1;
                }
            }
        }
    }
    let golden_match = mismatches == 0;

    let total_seconds = t_total.elapsed().as_secs_f64();
    let failures = failures.load(Ordering::Relaxed);
    let scale = match args.scale {
        Scale::Test => "test",
        Scale::Full => "full",
    };
    let doc = Json::Obj(vec![
        ("binary".into(), Json::Str("serve_bench".into())),
        ("scale".into(), Json::Str(scale.into())),
        ("concurrency".into(), Json::UInt(args.concurrency as u64)),
        ("requests".into(), Json::UInt(args.requests as u64)),
        ("host_seconds".into(), Json::Num(total_seconds)),
        (
            "saturation".into(),
            Json::Obj(vec![
                ("requests_per_second".into(), Json::Num(serve_rps)),
                ("p50_micros".into(), Json::UInt(percentile(&lat, 0.50))),
                ("p99_micros".into(), Json::UInt(percentile(&lat, 0.99))),
                ("fresh_every".into(), Json::UInt(FRESH_EVERY as u64)),
                ("host_seconds".into(), Json::Num(sat_seconds)),
            ]),
        ),
        (
            "one_shot".into(),
            Json::Obj(vec![
                ("requests_per_second".into(), Json::Num(oneshot_rps)),
                ("host_seconds".into(), Json::Num(one_seconds)),
            ]),
        ),
        ("speedup_vs_one_shot".into(), Json::Num(speedup_vs_one_shot)),
        ("cold_mean_micros".into(), Json::Num(mean(&cold))),
        ("warm_mean_micros".into(), Json::Num(mean(&warm))),
        ("warm_speedup".into(), Json::Num(warm_speedup)),
        ("golden_match".into(), Json::UInt(u64::from(golden_match))),
        ("golden_checked".into(), Json::UInt(checked as u64)),
        ("failures".into(), Json::UInt(failures)),
        ("cache".into(), server.engine().stats_json()),
    ]);
    if let Err(e) = std::fs::write("BENCH_serve.json", format!("{}\n", doc.render())) {
        eprintln!("cannot write BENCH_serve.json: {e}");
    }
    append_history(&Json::Obj(vec![
        (
            "unix_seconds".into(),
            Json::UInt(
                std::time::SystemTime::now()
                    .duration_since(std::time::SystemTime::UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0),
            ),
        ),
        ("git_rev".into(), Json::Str(git_rev())),
        ("binary".into(), Json::Str("serve_bench".into())),
        ("scale".into(), Json::Str(scale.into())),
        ("concurrency".into(), Json::UInt(args.concurrency as u64)),
        ("requests_per_second".into(), Json::Num(serve_rps)),
        ("speedup_vs_one_shot".into(), Json::Num(speedup_vs_one_shot)),
        ("warm_speedup".into(), Json::Num(warm_speedup)),
        ("golden_match".into(), Json::UInt(u64::from(golden_match))),
        ("failures".into(), Json::UInt(failures)),
        ("host_seconds".into(), Json::Num(total_seconds)),
    ]));
    eprintln!(
        "serve_bench: saturation {serve_rps:.1} req/s (p50 {}us p99 {}us), one-shot \
         {oneshot_rps:.1} req/s => {speedup_vs_one_shot:.1}x; warm {warm_speedup:.1}x \
         vs cold; golden {} ({checked} configs); {failures} failures; history -> {HISTORY_FILE}",
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        if golden_match { "MATCH" } else { "DIVERGED" },
    );

    let mut bad = Vec::new();
    if failures > 0 {
        bad.push(format!("{failures} request(s) failed"));
    }
    if !golden_match {
        bad.push(format!("{mismatches} golden config(s) diverged"));
    }
    if args.enforce {
        if speedup_vs_one_shot < 2.0 {
            bad.push(format!(
                "saturation speedup {speedup_vs_one_shot:.2}x < 2x one-shot"
            ));
        }
        if warm_speedup < 5.0 {
            bad.push(format!("warm speedup {warm_speedup:.2}x < 5x cold"));
        }
    }
    if !bad.is_empty() {
        eprintln!("serve_bench: FAILED: {}", bad.join("; "));
        std::process::exit(1);
    }
}
