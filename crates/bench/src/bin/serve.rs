//! `voltron-serve` daemon: a persistent simulation service speaking
//! line-delimited JSON over TCP (or stdin/stdout with `--stdin`).
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!       [--pool-cap N] [--stdin]
//! ```
//!
//! Request rows look like
//! `{"id":1,"workload":"rawcaudio","strategy":"hybrid","cores":4}`
//! (see `voltron_bench::serve::parse_request` for every field); one
//! response row is written per request, in completion order, carrying the
//! request id. `{"stats":true}` returns the daemon's cache/pool counters.
//!
//! On TCP startup the daemon prints `LISTENING <addr>` on stdout so
//! scripts binding port 0 can discover the port.

use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;

use voltron_bench::serve::{serve_connection, Server, ServerConfig};

fn main() {
    let mut cfg = ServerConfig::default();
    let mut addr = "127.0.0.1:7077".to_string();
    let mut stdin_mode = false;
    let mut args = std::env::args().skip(1);
    let take = |flag: &str, args: &mut dyn Iterator<Item = String>| match args.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        }
    };
    let int = |flag: &str, v: String| match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} requires a positive integer");
            std::process::exit(2);
        }
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = take("--addr", &mut args),
            "--workers" => cfg.workers = int("--workers", take("--workers", &mut args)),
            "--queue-depth" => {
                cfg.queue_depth = int("--queue-depth", take("--queue-depth", &mut args));
            }
            "--pool-cap" => cfg.pool_cap = int("--pool-cap", take("--pool-cap", &mut args)),
            "--stdin" => stdin_mode = true,
            other => {
                eprintln!(
                    "unknown argument {other} (expected --addr HOST:PORT/--workers N\
                     /--queue-depth N/--pool-cap N/--stdin)"
                );
                std::process::exit(2);
            }
        }
    }
    let server = Arc::new(Server::start(cfg));
    if stdin_mode {
        let reader = BufReader::new(std::io::stdin());
        let mut writer = std::io::stdout();
        serve_connection(&server, reader, &mut writer);
        return;
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = listener.local_addr().expect("bound socket has an address");
    println!("LISTENING {local}");
    let _ = std::io::stdout().flush();
    eprintln!("voltron-serve listening on {local}");
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("accept failed: {e}");
                continue;
            }
        };
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into());
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot clone stream for {peer}: {e}");
                    return;
                }
            });
            let mut writer = stream;
            serve_connection(&server, reader, &mut writer);
        });
    }
}
