//! Figure 14: breakdown of the time a hybrid build spends in each
//! execution mode on a 4-core system.

use voltron_bench::harness::{run_workloads, HarnessArgs};
use voltron_core::report::{pct, Table};
use voltron_core::Strategy;

fn main() {
    let args = HarnessArgs::parse();
    let harvest = run_workloads(&args, |_, exp| {
        Ok(exp
            .run_on(Strategy::Hybrid, 4, args.backend_for(4))?
            .coupled_fraction())
    });
    let mut table = Table::new(&["benchmark", "coupled", "decoupled"]);
    let mut sum = 0f64;
    for (w, c) in &harvest.results {
        table.row(vec![w.name.to_string(), pct(*c), pct(1.0 - c)]);
        sum += c;
    }
    let n = harvest.results.len();
    if n > 0 {
        table.row(vec![
            "average".into(),
            pct(sum / n as f64),
            pct(1.0 - sum / n as f64),
        ]);
    }
    println!("Figure 14: fraction of hybrid execution time per mode, 4 cores");
    println!("{}", table.render());
    println!("paper: significant time in both modes; memory-bound programs mostly decoupled");
    print!("{}", harvest.failure_section());
    harvest.report("fig14", &args);
}
