//! Inspect the machine code a benchmark compiles to:
//! `cargo run -p voltron-bench --bin inspect -- <benchmark> [strategy] [cores]`
//!
//! Strategies: serial | ilp | ftlp | llp | hybrid (default hybrid).

use voltron_compiler::{compile, CompileOptions, Strategy};
use voltron_sim::MachineConfig;
use voltron_workloads::{by_name, Scale};

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| {
        eprintln!("usage: inspect <benchmark> [serial|ilp|ftlp|llp|hybrid] [cores]");
        std::process::exit(2);
    });
    let strategy = match args.next().as_deref() {
        None | Some("hybrid") => Strategy::Hybrid,
        Some("serial") => Strategy::Serial,
        Some("ilp") => Strategy::Ilp,
        Some("ftlp") => Strategy::FineGrainTlp,
        Some("llp") => Strategy::Llp,
        Some(other) => {
            eprintln!("unknown strategy {other}");
            std::process::exit(2);
        }
    };
    let cores: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let w = by_name(&bench, Scale::Test).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    let cfg = MachineConfig::paper(cores);
    let c = compile(&w.program, strategy, &cfg, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{e}"));
    println!("== {} / {strategy} / {cores} cores ==", w.name);
    let mut kinds: Vec<_> = c.region_kinds.iter().collect();
    kinds.sort();
    println!("regions: {kinds:?}\n");
    for k in 0..cores {
        println!("{}", c.machine.dump_core(k));
    }
}
