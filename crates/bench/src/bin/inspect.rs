//! Inspect the machine code a benchmark compiles to, then run it once
//! and break its cycles down per planner region:
//! `cargo run -p voltron-bench --bin inspect -- <benchmark> [strategy]
//!  [cores] [--trace-out FILE] [--probes-out FILE]`
//!
//! Strategies: serial | ilp | ftlp | llp | hybrid (default hybrid).
//! `--trace-out` writes the run's Chrome trace-event timeline (open it
//! in <https://ui.perfetto.dev>), `--probes-out` its interval probe
//! series.

use voltron_bench::harness::DEFAULT_PROBE_PERIOD;
use voltron_compiler::{compile, CompileOptions, Strategy};
use voltron_sim::whatif::region_stacks;
use voltron_sim::{ChromeTracer, CycleStack, Machine, MachineConfig, StallReason, REGION_OUTSIDE};
use voltron_workloads::{by_name, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: inspect <benchmark> [serial|ilp|ftlp|llp|hybrid] [cores] \
         [--trace-out FILE] [--probes-out FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let mut positional = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut probes_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--probes-out" => probes_out = Some(args.next().unwrap_or_else(|| usage())),
            _ => positional.push(a),
        }
    }
    let mut positional = positional.into_iter();
    let bench = positional.next().unwrap_or_else(|| usage());
    let strategy = match positional.next().as_deref() {
        None | Some("hybrid") => Strategy::Hybrid,
        Some("serial") => Strategy::Serial,
        Some("ilp") => Strategy::Ilp,
        Some("ftlp") => Strategy::FineGrainTlp,
        Some("llp") => Strategy::Llp,
        Some(other) => {
            eprintln!("unknown strategy {other}");
            std::process::exit(2);
        }
    };
    let cores: usize = positional.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let w = by_name(&bench, Scale::Test).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    let mut cfg = MachineConfig::paper(cores);
    if probes_out.is_some() {
        cfg.probe_period = Some(DEFAULT_PROBE_PERIOD);
    }
    let c = compile(&w.program, strategy, &cfg, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{e}"));
    println!("== {} / {strategy} / {cores} cores ==", w.name);
    let mut kinds: Vec<_> = c.region_kinds.iter().collect();
    kinds.sort();
    println!("regions: {kinds:?}\n");
    for k in 0..cores {
        println!("{}", c.machine.dump_core(k));
    }

    // Run it once and attribute the cycles.
    let region_kinds = c.region_kinds.clone();
    let mut machine = Machine::new(c.machine, &cfg).unwrap_or_else(|e| panic!("{e}"));
    if trace_out.is_some() {
        machine.set_tracer(Box::new(ChromeTracer::new()));
    }
    let out = machine.run().unwrap_or_else(|e| panic!("{e}"));
    println!("== run ==");
    println!("{}", out.stats.summary());

    // Per-region occupancy: largest first, "outside" covering the code
    // between planned regions.
    let mut regions: Vec<_> = out.stats.regions.iter().collect();
    regions.sort_by_key(|(id, rb)| (std::cmp::Reverse(rb.cycles), **id));
    if !regions.is_empty() {
        println!("\n== per-region breakdown ==");
    }
    for (&id, rb) in regions {
        let name = if id == REGION_OUTSIDE {
            "outside".to_string()
        } else {
            format!("r{id}")
        };
        let kind = if id == REGION_OUTSIDE {
            "-"
        } else {
            region_kinds.get(&id).copied().unwrap_or("?")
        };
        let share = 100.0 * rb.cycles as f64 / out.stats.cycles.max(1) as f64;
        let mut stalls: Vec<(StallReason, u64)> = StallReason::ALL
            .iter()
            .map(|&r| (r, rb.stalls[r.index()]))
            .filter(|&(_, n)| n > 0)
            .collect();
        stalls.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let top = if stalls.is_empty() {
            "none".to_string()
        } else {
            stalls
                .iter()
                .take(3)
                .map(|(r, n)| format!("{r} {n}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "{name:>8} {kind:<10} {:>9} cycles ({share:>5.1}%)  issued {:>9}  idle {:>8}  stalls: {top}",
            rb.cycles, rb.issued, rb.idle
        );
    }

    // CPI stack: every core-cycle of the run in exactly one bucket
    // (voltron_sim::whatif pins the exact-sum invariant).
    let stack = CycleStack::of(&out.stats);
    println!("\n== cycle stack ==");
    println!(
        "{} core-cycles over {} cores, bound by {}",
        stack.total,
        stack.cores,
        stack.bound_by()
    );
    for (label, n) in stack.rows() {
        if n > 0 {
            println!(
                "{label:>14}: {n:>10} ({:>5.1}%)",
                100.0 * n as f64 / stack.total.max(1) as f64
            );
        }
    }
    if stack.tm_wasted > 0 {
        println!(
            "{:>14}: {:>10} (overlay: wasted in aborted transactions)",
            "tm-wasted", stack.tm_wasted
        );
    }
    for rs in region_stacks(&out.stats) {
        let name = if rs.region == REGION_OUTSIDE {
            "outside".to_string()
        } else {
            format!("r{}", rs.region)
        };
        println!("{name:>8}: bound by {}", rs.bound_by());
    }

    if let Some(path) = &trace_out {
        // With probes also on, splice their gauges in as counter tracks.
        let doc = match &out.probes {
            Some(series) => voltron_sim::trace_with_counters(&out.trace, series),
            None => out.trace.clone(),
        };
        match std::fs::write(path, doc) {
            Ok(()) => eprintln!("[inspect] wrote {path}"),
            Err(e) => eprintln!("[inspect] cannot write {path}: {e}"),
        }
    }
    if let Some(path) = &probes_out {
        match &out.probes {
            Some(series) => match std::fs::write(path, series.render_json()) {
                Ok(()) => eprintln!("[inspect] wrote {path}"),
                Err(e) => eprintln!("[inspect] cannot write {path}: {e}"),
            },
            None => eprintln!("[inspect] no probe series was recorded"),
        }
    }
}
