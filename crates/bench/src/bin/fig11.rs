//! Figure 11: speedup on a 4-core Voltron exploiting ILP, fine-grain TLP,
//! and LLP separately.

use voltron_bench::harness::{speedup_figure, HarnessArgs};
use voltron_core::Strategy;

fn main() {
    let args = HarnessArgs::parse();
    let (out, harvest) = speedup_figure(
        "Figure 11: per-technique speedup, 4 cores (baseline = 1-core serial)",
        &args,
        &[
            ("ILP", Strategy::Ilp, 4),
            ("fine-grain TLP", Strategy::FineGrainTlp, 4),
            ("LLP", Strategy::Llp, 4),
        ],
    );
    println!("{out}");
    println!("paper: averages 1.33 (ILP) / 1.23 (fTLP) / 1.37 (LLP)");
    harvest.report("fig11", &args);
}
