//! Figure 3: breakdown of exploitable parallelism on a 4-core system —
//! the fraction of (estimated serial) execution the hybrid planner
//! attributes to ILP, fine-grain TLP, LLP, or a single core.

use voltron_bench::harness::{run_workloads, HarnessArgs};
use voltron_core::report::{pct, Table};

fn main() {
    let args = HarnessArgs::parse();
    let harvest = run_workloads(&args, |_, exp| exp.parallelism_breakdown(4));
    let mut table = Table::new(&["benchmark", "ILP", "fine-grain TLP", "LLP", "single core"]);
    let mut sums = [0f64; 4];
    for (w, frac) in &harvest.results {
        table.row(vec![
            w.name.to_string(),
            pct(frac[0]),
            pct(frac[1]),
            pct(frac[2]),
            pct(frac[3]),
        ]);
        for (s, f) in sums.iter_mut().zip(frac.iter()) {
            *s += f;
        }
    }
    let n = harvest.results.len();
    if n > 0 {
        table.row(vec![
            "average".into(),
            pct(sums[0] / n as f64),
            pct(sums[1] / n as f64),
            pct(sums[2] / n as f64),
            pct(sums[3] / n as f64),
        ]);
    }
    println!("Figure 3: parallelism breakdown, 4 cores (planner attribution)");
    println!("{}", table.render());
    println!("paper: averages 30% ILP / 32% fine-grain TLP / 31% LLP / 7% single core");
    print!("{}", harvest.failure_section());
    harvest.report("fig03", &args);
}
