//! Compare two `BENCH_*.json` sidecars and fail on perf regressions:
//! `cargo run -p voltron-bench --bin bench_diff -- <old.json> <new.json>
//!  [--tolerance FRAC]`
//!
//! The gate has two teeth, matched to what each number means:
//!
//! * **Simulated cycles are deterministic.** For every (workload,
//!   strategy, cores, backend) run present in both files, the cycle
//!   counts must match *exactly* — cycles move only when the compiler or
//!   simulator changes, so any unexplained drift is a regression (or an
//!   unpinned improvement; both deserve a failing gate and a fingerprint
//!   update). A run present in the old file but missing from the new one
//!   also fails: coverage loss hides regressions.
//! * **Host throughput is noisy.** The sweep-level
//!   `cycles_per_host_second` may regress by at most `--tolerance`
//!   (default 0.5, i.e. the new sweep must keep >= 50% of the old
//!   simulation rate) before the gate trips; machines and load vary, a
//!   2x slowdown does not.
//!
//! Exit status: 0 when clean (improvements and new runs are reported but
//! pass), 1 on any regression, 2 on usage/parse errors.

use voltron_bench::jsonv::{parse, JValue};

fn usage() -> ! {
    eprintln!("usage: bench_diff <old.json> <new.json> [--tolerance FRAC]");
    std::process::exit(2);
}

fn load(path: &str) -> JValue {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&src).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

/// Flatten a sidecar into ((workload, strategy, cores, backend) -> cycles).
fn runs(doc: &JValue) -> Vec<((String, String, u64, String), u64)> {
    let mut out = Vec::new();
    let Some(workloads) = doc.get("workloads").and_then(JValue::as_arr) else {
        return out;
    };
    for w in workloads {
        let name = w.get("name").and_then(JValue::as_str).unwrap_or("?");
        let Some(rs) = w.get("runs").and_then(JValue::as_arr) else {
            continue;
        };
        for r in rs {
            let key = (
                name.to_string(),
                r.get("strategy")
                    .and_then(JValue::as_str)
                    .unwrap_or("?")
                    .to_string(),
                r.get("cores").and_then(JValue::as_num).unwrap_or(0.0) as u64,
                r.get("backend")
                    .and_then(JValue::as_str)
                    .unwrap_or("?")
                    .to_string(),
            );
            let cycles = r.get("cycles").and_then(JValue::as_num).unwrap_or(0.0) as u64;
            out.push((key, cycles));
        }
    }
    out
}

fn main() {
    let mut positional = Vec::new();
    let mut tolerance = 0.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                if !(0.0..=1.0).contains(&tolerance) {
                    eprintln!("bench_diff: --tolerance must be in [0, 1]");
                    std::process::exit(2);
                }
            }
            _ => positional.push(a),
        }
    }
    if positional.len() != 2 {
        usage();
    }
    let (old_path, new_path) = (&positional[0], &positional[1]);
    let old = load(old_path);
    let new = load(new_path);

    let old_runs = runs(&old);
    let new_runs = runs(&new);
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    let mut matched = 0usize;
    for (key, old_cycles) in &old_runs {
        let (name, strategy, cores, backend) = key;
        match new_runs.iter().find(|(k, _)| k == key) {
            None => {
                eprintln!(
                    "bench_diff: REGRESSION {name} {strategy}/{cores}/{backend}: \
                     run missing from {new_path}"
                );
                regressions += 1;
            }
            Some((_, new_cycles)) if new_cycles > old_cycles => {
                eprintln!(
                    "bench_diff: REGRESSION {name} {strategy}/{cores}/{backend}: \
                     {old_cycles} -> {new_cycles} cycles \
                     (+{:.2}%)",
                    100.0 * (*new_cycles as f64 / *old_cycles as f64 - 1.0)
                );
                regressions += 1;
            }
            Some((_, new_cycles)) if new_cycles < old_cycles => {
                println!(
                    "bench_diff: improved {name} {strategy}/{cores}/{backend}: \
                     {old_cycles} -> {new_cycles} cycles"
                );
                improvements += 1;
            }
            Some(_) => matched += 1,
        }
    }
    for (key, _) in &new_runs {
        if !old_runs.iter().any(|(k, _)| k == key) {
            let (name, strategy, cores, backend) = key;
            println!("bench_diff: new run {name} {strategy}/{cores}/{backend}");
        }
    }

    let rate = |doc: &JValue| {
        doc.get("cycles_per_host_second")
            .and_then(JValue::as_num)
            .unwrap_or(0.0)
    };
    let (old_rate, new_rate) = (rate(&old), rate(&new));
    if old_rate > 0.0 && new_rate < old_rate * tolerance {
        eprintln!(
            "bench_diff: REGRESSION host throughput {old_rate:.0} -> {new_rate:.0} \
             cycles/s (below {:.0}% tolerance floor)",
            100.0 * tolerance
        );
        regressions += 1;
    }

    if regressions > 0 {
        eprintln!("bench_diff: {regressions} regression(s) against {old_path}");
        std::process::exit(1);
    }
    println!(
        "bench_diff: OK ({matched} runs identical, {improvements} improved, \
         throughput {old_rate:.0} -> {new_rate:.0} cycles/s)"
    );
}
