//! Validate a Chrome trace-event JSON file the harness emitted:
//! `cargo run -p voltron-bench --bin trace_check -- <file> [min_cores]`
//!
//! Exits non-zero unless the file parses as JSON, has a non-empty
//! `traceEvents` array, and at least `min_cores` distinct per-core
//! tracks (tid below the machine-wide track ids) each carry a real
//! event (not just `M` metadata). It also checks the trace's internal
//! consistency: every flow-finish (`ph:"f"`) must bind to an earlier
//! flow-start (`ph:"s"`) with the same id at a timestamp no later than
//! its own, and each track's `B`/`E` span events must carry
//! monotonically non-decreasing timestamps (events arrive in simulation
//! order, so time running backwards on a track means the tracer
//! misattributed a cycle). check.sh runs this against a traced smoke
//! run so a malformed tracer can't land.

use std::collections::HashMap;
use voltron_bench::jsonv::{parse, JValue};

/// Per-core tracks live below the machine-wide tids
/// (`voltron_sim::obs`: regions=90, mode=91, bus=92, tm=100+core).
const FIRST_SPECIAL_TID: f64 = 90.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        eprintln!("usage: trace_check <trace.json> [min_cores]");
        std::process::exit(2);
    });
    let min_cores: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("trace_check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = parse(&src).unwrap_or_else(|e| {
        eprintln!("trace_check: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let events = doc
        .get("traceEvents")
        .and_then(JValue::as_arr)
        .unwrap_or_else(|| {
            eprintln!("trace_check: {path} has no traceEvents array");
            std::process::exit(1);
        });
    if events.is_empty() {
        eprintln!("trace_check: {path} has an empty traceEvents array");
        std::process::exit(1);
    }
    let mut live_cores = std::collections::BTreeSet::new();
    // Flow id -> start timestamp, set by `s`, consumed conceptually by
    // `f` (ids are never reused by the tracer, so keep them all).
    let mut flow_starts: HashMap<u64, f64> = HashMap::new();
    let mut flows_paired = 0usize;
    // Per-track last-seen B/E timestamp for monotonicity.
    let mut last_span_ts: HashMap<u64, f64> = HashMap::new();
    let mut errors = 0usize;
    let mut complain = |msg: String| {
        eprintln!("trace_check: {path}: {msg}");
        errors += 1;
    };
    for (i, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(JValue::as_str).unwrap_or("");
        let tid = e.get("tid").and_then(JValue::as_num);
        let ts = e.get("ts").and_then(JValue::as_num);
        if ph != "M" {
            if let Some(tid) = tid {
                if tid < FIRST_SPECIAL_TID {
                    live_cores.insert(tid as u64);
                }
            }
        }
        match ph {
            "s" | "f" => {
                let (Some(id), Some(ts)) = (e.get("id").and_then(JValue::as_num), ts) else {
                    complain(format!("event {i}: flow {ph} without id/ts"));
                    continue;
                };
                if ph == "s" {
                    if flow_starts.insert(id as u64, ts).is_some() {
                        complain(format!("event {i}: flow id {id} started twice"));
                    }
                } else {
                    match flow_starts.get(&(id as u64)) {
                        None => complain(format!(
                            "event {i}: flow finish id {id} has no earlier start"
                        )),
                        Some(&start) if ts < start => complain(format!(
                            "event {i}: flow id {id} finishes at {ts} before its start at {start}"
                        )),
                        Some(_) => flows_paired += 1,
                    }
                }
            }
            "B" | "E" => {
                let (Some(tid), Some(ts)) = (tid, ts) else {
                    complain(format!("event {i}: span {ph} without tid/ts"));
                    continue;
                };
                let last = last_span_ts.entry(tid as u64).or_insert(ts);
                if ts < *last {
                    complain(format!(
                        "event {i}: track {tid} span time runs backwards ({ts} after {last})"
                    ));
                }
                *last = (*last).max(ts);
            }
            _ => {}
        }
    }
    if live_cores.len() < min_cores {
        eprintln!(
            "trace_check: {path} has events on {} core track(s), expected >= {min_cores}",
            live_cores.len()
        );
        std::process::exit(1);
    }
    if errors > 0 {
        eprintln!("trace_check: {path} FAILED with {errors} consistency error(s)");
        std::process::exit(1);
    }
    println!(
        "trace_check: {path} OK ({} events, {} live core tracks, {flows_paired} flow pairs)",
        events.len(),
        live_cores.len()
    );
}
