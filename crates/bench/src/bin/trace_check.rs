//! Validate a Chrome trace-event JSON file the harness emitted:
//! `cargo run -p voltron-bench --bin trace_check -- <file> [min_cores]`
//!
//! Exits non-zero unless the file parses as JSON, has a non-empty
//! `traceEvents` array, and at least `min_cores` distinct per-core
//! tracks (tid below the machine-wide track ids) each carry a real
//! event (not just `M` metadata). check.sh runs this against a traced
//! smoke run so a malformed tracer can't land.

use voltron_bench::jsonv::{parse, JValue};

/// Per-core tracks live below the machine-wide tids
/// (`voltron_sim::obs`: regions=90, mode=91, bus=92, tm=100+core).
const FIRST_SPECIAL_TID: f64 = 90.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        eprintln!("usage: trace_check <trace.json> [min_cores]");
        std::process::exit(2);
    });
    let min_cores: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("trace_check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = parse(&src).unwrap_or_else(|e| {
        eprintln!("trace_check: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let events = doc
        .get("traceEvents")
        .and_then(JValue::as_arr)
        .unwrap_or_else(|| {
            eprintln!("trace_check: {path} has no traceEvents array");
            std::process::exit(1);
        });
    if events.is_empty() {
        eprintln!("trace_check: {path} has an empty traceEvents array");
        std::process::exit(1);
    }
    let mut live_cores = std::collections::BTreeSet::new();
    for e in events {
        let is_meta = e.get("ph").and_then(JValue::as_str) == Some("M");
        let tid = e.get("tid").and_then(JValue::as_num);
        if let Some(tid) = tid {
            if !is_meta && tid < FIRST_SPECIAL_TID {
                live_cores.insert(tid as u64);
            }
        }
    }
    if live_cores.len() < min_cores {
        eprintln!(
            "trace_check: {path} has events on {} core track(s), expected >= {min_cores}",
            live_cores.len()
        );
        std::process::exit(1);
    }
    println!(
        "trace_check: {path} OK ({} events, {} live core tracks)",
        events.len(),
        live_cores.len()
    );
}
