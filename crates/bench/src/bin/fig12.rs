//! Figure 12: breakdown of synchronization stalls by type on a 4-core
//! system, normalized to the serial execution time. Two rows per
//! benchmark: the coupled (ILP) build and the decoupled (fine-grain TLP)
//! build.

use voltron_bench::harness::{for_each_workload, stall_row, HarnessArgs};
use voltron_core::report::Table;
use voltron_core::{StallCategory, Strategy};

fn main() {
    let args = HarnessArgs::parse();
    let mut headers: Vec<&str> = vec!["benchmark", "mode"];
    headers.extend(StallCategory::ALL.iter().map(|c| c.label()));
    let mut table = Table::new(&headers);
    for_each_workload(&args, |w, exp| {
        let base = exp.baseline_cycles();
        let ilp = exp.run(Strategy::Ilp, 4)?;
        let mut row = vec![w.name.to_string(), "coupled".into()];
        row.extend(stall_row(ilp, base));
        table.row(row);
        let ftlp = exp.run(Strategy::FineGrainTlp, 4)?;
        let mut row = vec![String::new(), "decoupled".into()];
        row.extend(stall_row(ftlp, base));
        table.row(row);
        Ok(())
    });
    println!("Figure 12: per-core-average stall cycles / serial cycles, 4 cores");
    println!("{}", table.render());
    println!("paper: decoupled halves cache-miss stalls vs coupled but adds receive/sync stalls");
}
