//! Figure 12: breakdown of synchronization stalls by type on a 4-core
//! system, normalized to the serial execution time. Two rows per
//! benchmark: the coupled (ILP) build and the decoupled (fine-grain TLP)
//! build.

use voltron_bench::harness::{run_workloads, stall_row, HarnessArgs};
use voltron_core::report::Table;
use voltron_core::{StallCategory, Strategy};

fn main() {
    let args = HarnessArgs::parse();
    let harvest = run_workloads(&args, |_, exp| {
        let base = exp.baseline_cycles();
        let bk = args.backend_for(4);
        exp.run_all_on(&[(Strategy::Ilp, 4, bk), (Strategy::FineGrainTlp, 4, bk)])?;
        let coupled = stall_row(exp.run_on(Strategy::Ilp, 4, bk)?, base);
        let decoupled = stall_row(exp.run_on(Strategy::FineGrainTlp, 4, bk)?, base);
        Ok((coupled, decoupled))
    });
    let mut headers: Vec<&str> = vec!["benchmark", "mode"];
    headers.extend(StallCategory::ALL.iter().map(|c| c.label()));
    let mut table = Table::new(&headers);
    for (w, (coupled, decoupled)) in &harvest.results {
        let mut row = vec![w.name.to_string(), "coupled".into()];
        row.extend(coupled.iter().cloned());
        table.row(row);
        let mut row = vec![String::new(), "decoupled".into()];
        row.extend(decoupled.iter().cloned());
        table.row(row);
    }
    println!("Figure 12: per-core-average stall cycles / serial cycles, 4 cores");
    println!("{}", table.render());
    println!("paper: decoupled halves cache-miss stalls vs coupled but adds receive/sync stalls");
    print!("{}", harvest.failure_section());
    harvest.report("fig12", &args);
}
