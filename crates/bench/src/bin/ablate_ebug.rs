//! Ablation: eBUG's miss/memory edge weights and memory balancing vs a
//! plain BUG objective for decoupled strand extraction (§4.1).

use voltron_bench::harness::HarnessArgs;
use voltron_core::report::{mean, speedup, Table};
use voltron_core::{outputs_equivalent, run_reference, Strategy};
use voltron_sim::{Machine, MachineConfig};

fn main() {
    let args = HarnessArgs::parse();
    let mut table = Table::new(&["benchmark", "plain BUG", "eBUG"]);
    let mut sums = [Vec::new(), Vec::new()];
    for w in args.workloads() {
        let golden = match run_reference(&w.program) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{}: {e}", w.name);
                continue;
            }
        };
        let base_cfg = MachineConfig::paper(1);
        let opts = voltron_compiler::CompileOptions::default();
        let base = voltron_compiler::compile(&w.program, Strategy::Serial, &base_cfg, &opts)
            .map(|c| Machine::new(c.machine, &base_cfg).unwrap().run().unwrap())
            .unwrap();
        let cfg = MachineConfig::paper(4);
        let mut row = vec![w.name.to_string()];
        for (i, ebug) in [false, true].into_iter().enumerate() {
            let mut o = voltron_compiler::CompileOptions::default();
            o.plan.ebug_strands = ebug;
            let out = voltron_compiler::compile(&w.program, Strategy::FineGrainTlp, &cfg, &o)
                .map(|c| Machine::new(c.machine, &cfg).unwrap().run().unwrap())
                .unwrap();
            assert!(outputs_equivalent(&golden.memory, &out.memory).is_ok());
            let sp = base.stats.cycles as f64 / out.stats.cycles.max(1) as f64;
            sums[i].push(sp);
            row.push(speedup(sp));
        }
        table.row(row);
    }
    table.row(vec![
        "average".into(),
        speedup(mean(&sums[0])),
        speedup(mean(&sums[1])),
    ]);
    println!("Ablation: strand extraction with plain BUG vs eBUG weights, 4 cores");
    println!("{}", table.render());
}
