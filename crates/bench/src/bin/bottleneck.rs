//! Answer "what is this benchmark bound by, and what would fixing it
//! buy?" — the CPI stack of a measured run, its per-region
//! classification, and the counterfactual speedup ceiling of each
//! one-hot hardware idealization (see `voltron_sim::whatif`).
//!
//! `cargo run -p voltron-bench --bin bottleneck -- <benchmark>
//!  [serial|ilp|ftlp|llp|hybrid] [cores] [--full]
//!  [--backend snooping|directory]`
//!
//! `--all` instead sweeps every workload and prints one summary line
//! each (dominant class + best ceiling) — the quick "where should
//! optimization effort go?" scan the README recipe starts from.

use voltron_core::{Experiment, Strategy, WhatIfReport};
use voltron_sim::CoherenceBackend;
use voltron_workloads::{all, by_name, Scale, Workload};

fn usage() -> ! {
    eprintln!(
        "usage: bottleneck <benchmark> [serial|ilp|ftlp|llp|hybrid] [cores] \
         [--full] [--backend snooping|directory]\n\
         \x20      bottleneck --all [--full] [--backend snooping|directory]"
    );
    std::process::exit(2);
}

fn diagnose(w: &Workload, strategy: Strategy, cores: usize, backend: CoherenceBackend) {
    let mut exp = Experiment::new(&w.program).unwrap_or_else(|e| panic!("{e}"));
    let report = exp
        .whatif_on(strategy, cores, backend)
        .unwrap_or_else(|e| panic!("{e}"));
    println!("== {} / {strategy} / {cores} cores ==", w.name);
    println!(
        "measured {} cycles (serial baseline {}, speedup {:.2})",
        report.measured_cycles,
        exp.baseline_cycles(),
        exp.baseline_cycles() as f64 / report.measured_cycles.max(1) as f64
    );
    let stack = &report.stack;
    println!(
        "\ncycle stack ({} core-cycles over {} cores):",
        stack.total, stack.cores
    );
    for (label, n) in stack.rows() {
        if n > 0 {
            println!(
                "{label:>14}: {n:>10} ({:>5.1}%)",
                100.0 * n as f64 / stack.total.max(1) as f64
            );
        }
    }
    if stack.tm_wasted > 0 {
        println!(
            "{:>14}: {:>10} (overlay: issued work later thrown away by aborts)",
            "tm-wasted", stack.tm_wasted
        );
    }
    println!("bound by: {}", report.bound_by);

    if !report.regions.is_empty() {
        println!("\nper-region diagnosis:");
        for d in &report.regions {
            let name = if d.region == u32::MAX {
                "outside".to_string()
            } else {
                format!("r{}", d.region)
            };
            println!(
                "{name:>8} {:<10} {:>9} cycles ({:>5.1}%)  bound by {}",
                d.kind,
                d.stack.cycles,
                100.0 * d.stack.cycles as f64 / report.measured_cycles.max(1) as f64,
                d.bound_by
            );
        }
    }

    println!("\nwhat-if ceilings (same binary on an idealized machine):");
    let best = report.best_ceiling().knob;
    for c in &report.ceilings {
        println!(
            "{:>22}: {:>9} cycles  ceiling {:.2}x{}",
            c.knob.label(),
            c.ideal_cycles,
            c.speedup_ceiling,
            if c.knob == best { "  <- best" } else { "" }
        );
    }
    println!(
        "\nrecommendation: the run is {}-bound; idealizing {} is worth \
         at most {:.2}x — nothing else can beat that ceiling.",
        report.bound_by,
        best,
        report.best_ceiling().speedup_ceiling
    );
}

fn summary_line(w: &Workload, backend: CoherenceBackend) -> Result<WhatIfReport, String> {
    let mut exp = Experiment::new(&w.program).map_err(|e| e.to_string())?;
    exp.whatif_on(Strategy::Hybrid, 4, backend)
        .map_err(|e| e.to_string())
}

fn main() {
    let mut positional = Vec::new();
    let mut scale = Scale::Test;
    let mut backend = CoherenceBackend::Snooping;
    let mut sweep = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--test" => scale = Scale::Test,
            "--all" => sweep = true,
            "--backend" => {
                let v = args.next().unwrap_or_else(|| usage());
                backend = CoherenceBackend::parse(&v).unwrap_or_else(|| usage());
            }
            _ => positional.push(a),
        }
    }
    if sweep {
        println!("== bottleneck scan (hybrid / 4 cores) ==");
        for w in all(scale) {
            match summary_line(&w, backend) {
                Ok(r) => println!(
                    "{:>12}: {:>9} cycles  bound by {:<15} best ceiling {} ({:.2}x)",
                    w.name,
                    r.measured_cycles,
                    r.bound_by.to_string(),
                    r.best_ceiling().knob,
                    r.best_ceiling().speedup_ceiling
                ),
                Err(e) => println!("{:>12}: ERROR {e}", w.name),
            }
        }
        return;
    }
    let mut positional = positional.into_iter();
    let bench = positional.next().unwrap_or_else(|| usage());
    let strategy = match positional.next().as_deref() {
        None | Some("hybrid") => Strategy::Hybrid,
        Some("serial") => Strategy::Serial,
        Some("ilp") => Strategy::Ilp,
        Some("ftlp") => Strategy::FineGrainTlp,
        Some("llp") => Strategy::Llp,
        Some(other) => {
            eprintln!("unknown strategy {other}");
            std::process::exit(2);
        }
    };
    let cores: usize = positional.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let w = by_name(&bench, scale).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    diagnose(&w, strategy, cores, backend);
}
