//! Figure 10: speedup on a 2-core Voltron exploiting ILP, fine-grain TLP,
//! and LLP separately.

use voltron_bench::harness::{speedup_figure, HarnessArgs};
use voltron_core::Strategy;

fn main() {
    let args = HarnessArgs::parse();
    let (out, harvest) = speedup_figure(
        "Figure 10: per-technique speedup, 2 cores (baseline = 1-core serial)",
        &args,
        &[
            ("ILP", Strategy::Ilp, 2),
            ("fine-grain TLP", Strategy::FineGrainTlp, 2),
            ("LLP", Strategy::Llp, 2),
        ],
    );
    println!("{out}");
    println!("paper: averages 1.23 (ILP) / 1.16 (fTLP) / 1.18 (LLP)");
    harvest.report("fig10", &args);
}
