//! Regenerate every evaluation figure in one run (the EXPERIMENTS.md
//! source). Equivalent to running fig03, fig10..fig14 in sequence but
//! sharing each benchmark's baseline and per-configuration runs.

use voltron_bench::harness::{for_each_workload, stall_row, HarnessArgs};
use voltron_core::report::{mean, pct, speedup, Table};
use voltron_core::{StallCategory, Strategy};

fn main() {
    let args = HarnessArgs::parse();
    let mut fig3 = Table::new(&["benchmark", "ILP", "fine-grain TLP", "LLP", "single core"]);
    let mut fig10 = Table::new(&["benchmark", "ILP", "fine-grain TLP", "LLP"]);
    let mut fig11 = Table::new(&["benchmark", "ILP", "fine-grain TLP", "LLP"]);
    let mut fig12 = {
        let mut h: Vec<&str> = vec!["benchmark", "mode"];
        h.extend(StallCategory::ALL.iter().map(|c| c.label()));
        Table::new(&h)
    };
    let mut fig13 = Table::new(&["benchmark", "2 cores", "4 cores"]);
    let mut fig14 = Table::new(&["benchmark", "coupled", "decoupled"]);
    let mut s10 = [Vec::new(), Vec::new(), Vec::new()];
    let mut s11 = [Vec::new(), Vec::new(), Vec::new()];
    let mut s13 = [Vec::new(), Vec::new()];
    let mut s3 = [0f64; 4];
    let mut s14 = Vec::new();

    for_each_workload(&args, |w, exp| {
        let base = exp.baseline_cycles();
        // Figs. 10/11: per-technique builds.
        let techniques = [Strategy::Ilp, Strategy::FineGrainTlp, Strategy::Llp];
        let mut row10 = vec![w.name.to_string()];
        let mut row11 = vec![w.name.to_string()];
        for (i, &t) in techniques.iter().enumerate() {
            let r2 = exp.run(t, 2)?.speedup;
            s10[i].push(r2);
            row10.push(speedup(r2));
            let r4 = exp.run(t, 4)?.speedup;
            s11[i].push(r4);
            row11.push(speedup(r4));
        }
        fig10.row(row10);
        fig11.row(row11);
        // Fig. 12: stall breakdowns of the 4-core technique builds.
        let mut row = vec![w.name.to_string(), "coupled".into()];
        row.extend(stall_row(exp.run(Strategy::Ilp, 4)?, base));
        fig12.row(row);
        let mut row = vec![String::new(), "decoupled".into()];
        row.extend(stall_row(exp.run(Strategy::FineGrainTlp, 4)?, base));
        fig12.row(row);
        // Fig. 13: hybrid.
        let h2 = exp.run(Strategy::Hybrid, 2)?.speedup;
        let h4 = exp.run(Strategy::Hybrid, 4)?.speedup;
        s13[0].push(h2);
        s13[1].push(h4);
        fig13.row(vec![w.name.to_string(), speedup(h2), speedup(h4)]);
        // Fig. 14: mode residency of the 4-core hybrid.
        let c = exp.run(Strategy::Hybrid, 4)?.coupled_fraction();
        s14.push(c);
        fig14.row(vec![w.name.to_string(), pct(c), pct(1.0 - c)]);
        // Fig. 3: planner attribution.
        let frac = exp.parallelism_breakdown(4)?;
        fig3.row(vec![
            w.name.to_string(),
            pct(frac[0]),
            pct(frac[1]),
            pct(frac[2]),
            pct(frac[3]),
        ]);
        for (s, f) in s3.iter_mut().zip(frac.iter()) {
            *s += f;
        }
        Ok(())
    });

    let n = s14.len().max(1) as f64;
    fig3.row(vec![
        "average".into(),
        pct(s3[0] / n),
        pct(s3[1] / n),
        pct(s3[2] / n),
        pct(s3[3] / n),
    ]);
    fig10.row(vec![
        "average".into(),
        speedup(mean(&s10[0])),
        speedup(mean(&s10[1])),
        speedup(mean(&s10[2])),
    ]);
    fig11.row(vec![
        "average".into(),
        speedup(mean(&s11[0])),
        speedup(mean(&s11[1])),
        speedup(mean(&s11[2])),
    ]);
    fig13.row(vec!["average".into(), speedup(mean(&s13[0])), speedup(mean(&s13[1]))]);
    fig14.row(vec![
        "average".into(),
        pct(s14.iter().sum::<f64>() / n),
        pct(1.0 - s14.iter().sum::<f64>() / n),
    ]);

    println!("== Figure 3: parallelism breakdown (4 cores) ==\n{}", fig3.render());
    println!("paper: 30% ILP / 32% fTLP / 31% LLP / 7% single core\n");
    println!("== Figure 10: per-technique speedup (2 cores) ==\n{}", fig10.render());
    println!("paper averages: 1.23 / 1.16 / 1.18\n");
    println!("== Figure 11: per-technique speedup (4 cores) ==\n{}", fig11.render());
    println!("paper averages: 1.33 / 1.23 / 1.37\n");
    println!("== Figure 12: stall breakdown / serial cycles (4 cores) ==\n{}", fig12.render());
    println!("== Figure 13: hybrid speedup ==\n{}", fig13.render());
    println!("paper averages: 1.46 (2 cores) / 1.83 (4 cores)\n");
    println!("== Figure 14: mode residency (4-core hybrid) ==\n{}", fig14.render());
}
