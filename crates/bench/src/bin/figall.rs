//! Regenerate every evaluation figure in one run (the EXPERIMENTS.md
//! source). Equivalent to running fig03, fig10..fig14 in sequence but
//! sharing each benchmark's baseline and per-configuration runs. The
//! workloads simulate in parallel; the tables are assembled afterwards
//! in workload order, so the output matches a serial sweep exactly.

use voltron_bench::harness::{run_workloads, stall_row, HarnessArgs};
use voltron_core::report::{mean, pct, speedup, Table};
use voltron_core::{ProbeSummary, StallCategory, Strategy};

/// Everything one workload contributes across the six figures.
struct Row {
    /// Per-technique speedups at 2 and 4 cores (Figs. 10/11).
    t2: [f64; 3],
    t4: [f64; 3],
    /// Stall-breakdown cells for the coupled / decoupled builds (Fig. 12).
    stall_c: Vec<String>,
    stall_d: Vec<String>,
    /// Hybrid speedups (Fig. 13).
    h2: f64,
    h4: f64,
    /// Coupled-mode residency of the 4-core hybrid (Fig. 14).
    coupled: f64,
    /// Planner attribution fractions (Fig. 3).
    frac: [f64; 4],
    /// Probe summary of the observed 4-core hybrid run, with
    /// `--probes-out` (lands in the JSON sidecar).
    probes: Option<ProbeSummary>,
}

fn main() {
    let args = HarnessArgs::parse();
    let mut harvest = run_workloads(&args, |w, exp| {
        let base = exp.baseline_cycles();
        let techniques = [Strategy::Ilp, Strategy::FineGrainTlp, Strategy::Llp];
        // Simulate every configuration the figures below read, fanned out
        // across host threads; the `exp.run` calls then hit the cache.
        let b2 = args.backend_for(2);
        let b4 = args.backend_for(4);
        exp.run_all_on(&[
            (Strategy::Ilp, 2, b2),
            (Strategy::Ilp, 4, b4),
            (Strategy::FineGrainTlp, 2, b2),
            (Strategy::FineGrainTlp, 4, b4),
            (Strategy::Llp, 2, b2),
            (Strategy::Llp, 4, b4),
            (Strategy::Hybrid, 2, b2),
            (Strategy::Hybrid, 4, b4),
        ])?;
        let mut t2 = [0f64; 3];
        let mut t4 = [0f64; 3];
        for (i, &t) in techniques.iter().enumerate() {
            t2[i] = exp.run_on(t, 2, b2)?.speedup;
            t4[i] = exp.run_on(t, 4, b4)?.speedup;
        }
        let stall_c = stall_row(exp.run_on(Strategy::Ilp, 4, b4)?, base);
        let stall_d = stall_row(exp.run_on(Strategy::FineGrainTlp, 4, b4)?, base);
        let h2 = exp.run_on(Strategy::Hybrid, 2, b2)?.speedup;
        let h4 = exp.run_on(Strategy::Hybrid, 4, b4)?.speedup;
        let coupled = exp.run_on(Strategy::Hybrid, 4, b4)?.coupled_fraction();
        let frac = exp.parallelism_breakdown_on(4, b4)?;
        // Observability pass (only with --trace-out/--probes-out): re-run
        // the 4-core hybrid instrumented and write this workload's
        // artifacts. Figure stdout is untouched; files and stderr only.
        let mut probes = None;
        if args.wants_observation() {
            let o = exp.run_observed_on(Strategy::Hybrid, 4, b4, &args.obs_request())?;
            if let Some(base) = &args.trace_out {
                let path = args.artifact_path(base, w.name);
                match std::fs::write(&path, &o.trace_json) {
                    Ok(()) => eprintln!("[figall] wrote {path}"),
                    Err(e) => eprintln!("[figall] cannot write {path}: {e}"),
                }
            }
            if let (Some(base), Some(series)) = (&args.probes_out, &o.probes) {
                let path = args.artifact_path(base, w.name);
                match std::fs::write(&path, series.render_json()) {
                    Ok(()) => eprintln!("[figall] wrote {path}"),
                    Err(e) => eprintln!("[figall] cannot write {path}: {e}"),
                }
            }
            probes = o.probes.as_ref().map(|s| s.summary());
        }
        Ok(Row {
            t2,
            t4,
            stall_c,
            stall_d,
            h2,
            h4,
            coupled,
            frac,
            probes,
        })
    });

    let mut fig3 = Table::new(&["benchmark", "ILP", "fine-grain TLP", "LLP", "single core"]);
    let mut fig10 = Table::new(&["benchmark", "ILP", "fine-grain TLP", "LLP"]);
    let mut fig11 = Table::new(&["benchmark", "ILP", "fine-grain TLP", "LLP"]);
    let mut fig12 = {
        let mut h: Vec<&str> = vec!["benchmark", "mode"];
        h.extend(StallCategory::ALL.iter().map(|c| c.label()));
        Table::new(&h)
    };
    let mut fig13 = Table::new(&["benchmark", "2 cores", "4 cores"]);
    let mut fig14 = Table::new(&["benchmark", "coupled", "decoupled"]);
    let mut s10 = [Vec::new(), Vec::new(), Vec::new()];
    let mut s11 = [Vec::new(), Vec::new(), Vec::new()];
    let mut s13 = [Vec::new(), Vec::new()];
    let mut s3 = [0f64; 4];
    let mut s14 = Vec::new();

    for (w, r) in &harvest.results {
        let mut row10 = vec![w.name.to_string()];
        let mut row11 = vec![w.name.to_string()];
        for i in 0..3 {
            s10[i].push(r.t2[i]);
            row10.push(speedup(r.t2[i]));
            s11[i].push(r.t4[i]);
            row11.push(speedup(r.t4[i]));
        }
        fig10.row(row10);
        fig11.row(row11);
        let mut row = vec![w.name.to_string(), "coupled".into()];
        row.extend(r.stall_c.iter().cloned());
        fig12.row(row);
        let mut row = vec![String::new(), "decoupled".into()];
        row.extend(r.stall_d.iter().cloned());
        fig12.row(row);
        s13[0].push(r.h2);
        s13[1].push(r.h4);
        fig13.row(vec![w.name.to_string(), speedup(r.h2), speedup(r.h4)]);
        s14.push(r.coupled);
        fig14.row(vec![
            w.name.to_string(),
            pct(r.coupled),
            pct(1.0 - r.coupled),
        ]);
        fig3.row(vec![
            w.name.to_string(),
            pct(r.frac[0]),
            pct(r.frac[1]),
            pct(r.frac[2]),
            pct(r.frac[3]),
        ]);
        for (s, f) in s3.iter_mut().zip(r.frac.iter()) {
            *s += f;
        }
    }

    let n = s14.len().max(1) as f64;
    fig3.row(vec![
        "average".into(),
        pct(s3[0] / n),
        pct(s3[1] / n),
        pct(s3[2] / n),
        pct(s3[3] / n),
    ]);
    fig10.row(vec![
        "average".into(),
        speedup(mean(&s10[0])),
        speedup(mean(&s10[1])),
        speedup(mean(&s10[2])),
    ]);
    fig11.row(vec![
        "average".into(),
        speedup(mean(&s11[0])),
        speedup(mean(&s11[1])),
        speedup(mean(&s11[2])),
    ]);
    fig13.row(vec![
        "average".into(),
        speedup(mean(&s13[0])),
        speedup(mean(&s13[1])),
    ]);
    fig14.row(vec![
        "average".into(),
        pct(s14.iter().sum::<f64>() / n),
        pct(1.0 - s14.iter().sum::<f64>() / n),
    ]);

    println!(
        "== Figure 3: parallelism breakdown (4 cores) ==\n{}",
        fig3.render()
    );
    println!("paper: 30% ILP / 32% fTLP / 31% LLP / 7% single core\n");
    println!(
        "== Figure 10: per-technique speedup (2 cores) ==\n{}",
        fig10.render()
    );
    println!("paper averages: 1.23 / 1.16 / 1.18\n");
    println!(
        "== Figure 11: per-technique speedup (4 cores) ==\n{}",
        fig11.render()
    );
    println!("paper averages: 1.33 / 1.23 / 1.37\n");
    println!(
        "== Figure 12: stall breakdown / serial cycles (4 cores) ==\n{}",
        fig12.render()
    );
    println!("== Figure 13: hybrid speedup ==\n{}", fig13.render());
    println!("paper averages: 1.46 (2 cores) / 1.83 (4 cores)\n");
    println!(
        "== Figure 14: mode residency (4-core hybrid) ==\n{}",
        fig14.render()
    );
    // Rendered only when a workload actually failed, so clean sweeps
    // stay byte-identical to a harness without fault isolation.
    print!("{}", harvest.failure_section());
    // Surviving results and summaries are aligned (both in workload
    // order, failures excluded from each), so zip attaches each
    // workload's probe summary to its sidecar entry.
    for (summary, (_, row)) in harvest.summaries.iter_mut().zip(&harvest.results) {
        summary.probes = row.probes.clone();
    }
    harvest.report("figall", &args);
}
