//! "Table 1": the experimental setup of §5.1, as configured in
//! `MachineConfig::paper`. The paper presents this in prose; printing it
//! makes the simulated machine auditable against the text.

use voltron_core::report::Table;
use voltron_sim::MachineConfig;

fn main() {
    let c = MachineConfig::paper(4);
    let mut t = Table::new(&["parameter", "value", "paper §5.1"]);
    let mut row = |k: &str, v: String, p: &str| t.row(vec![k.into(), v, p.into()]);
    row(
        "cores",
        format!("{} (2x2 mesh)", c.cores),
        "1/2/4 single-issue VLIW",
    );
    row("issue width", "1".into(), "single-issue");
    row(
        "L1 I-cache",
        format!("{} B, {}-way", c.l1i_size, c.l1i_assoc),
        "4 kB 2-way",
    );
    row(
        "L1 D-cache",
        format!("{} B, {}-way", c.l1d_size, c.l1d_assoc),
        "4 kB 2-way",
    );
    row(
        "shared L2",
        format!("{} B, {}-way", c.l2_size, c.l2_assoc),
        "128 kB 4-way",
    );
    row(
        "line size",
        format!("{} B", c.line_size),
        "(not stated; 32 B)",
    );
    row(
        "coherence",
        "MOESI snooping bus".into(),
        "MOESI bus-based snooping",
    );
    row(
        "direct network",
        format!(
            "{} cycle/hop{}",
            c.hop_latency,
            if c.direct_network { "" } else { " (DISABLED)" }
        ),
        "1 cycle per hop",
    );
    row(
        "queue network",
        format!("{} + hops cycles", c.queue_overhead),
        "2 cycles + 1 per hop",
    );
    row(
        "send/recv queue depth",
        format!("{}", c.queue_depth),
        "(not stated; 16)",
    );
    row(
        "L1 hit latency",
        format!("{} cycles", c.l1_hit_latency),
        "Itanium latencies",
    );
    row(
        "L2 latency",
        format!("{} cycles", c.l2_latency),
        "(not stated)",
    );
    row(
        "memory latency",
        format!("{} cycles", c.mem_latency),
        "(not stated)",
    );
    row(
        "cache-to-cache",
        format!("{} cycles", c.c2c_latency),
        "(not stated)",
    );
    row(
        "store buffer",
        format!("{} entries", c.store_buffer_entries),
        "(not stated)",
    );
    row(
        "TM commit cost",
        format!(
            "{} + {}/line cycles",
            c.tm_commit_base, c.tm_commit_per_line
        ),
        "low-cost TM [7,14]",
    );
    println!("Table 1: simulated machine configuration (MachineConfig::paper)");
    println!("{}", t.render());
}
