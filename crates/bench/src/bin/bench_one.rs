//! Deep-dive one benchmark: every strategy's cycles, speedup, stall
//! breakdown, and region plan.
//! `cargo run -p voltron-bench --bin bench_one -- <benchmark> [--full]`

use voltron_bench::harness::{bench_json, workload_summary};
use voltron_core::report::throughput;
use voltron_core::{Experiment, StallCategory, Strategy};
use voltron_workloads::{by_name, Scale};

fn main() {
    let t0 = std::time::Instant::now();
    let mut bench = None;
    let mut scale = Scale::Test;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--test" => scale = Scale::Test,
            other => bench = Some(other.to_string()),
        }
    }
    let bench = bench.unwrap_or_else(|| {
        eprintln!("usage: bench_one <benchmark> [--full]");
        std::process::exit(2);
    });
    let w = by_name(&bench, scale).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    let mut exp = Experiment::new(&w.program).unwrap_or_else(|e| panic!("{e}"));
    let base = exp.baseline_cycles();
    println!(
        "{} ({:?}): serial baseline {base} cycles",
        w.name, w.expected
    );
    let configs = [
        (Strategy::Ilp, 4),
        (Strategy::FineGrainTlp, 4),
        (Strategy::Llp, 4),
        (Strategy::Hybrid, 2),
        (Strategy::Hybrid, 4),
    ];
    if let Err(e) = exp.run_all(&configs) {
        // Per-config errors are reported in the loop below.
        eprintln!("[bench_one] sweep: {e}");
    }
    for (s, c) in configs {
        match exp.run(s, c) {
            Ok(r) => {
                let mut kinds: Vec<_> = r.region_kinds.values().collect();
                kinds.sort();
                kinds.dedup();
                println!(
                    "{s:>15}/{c}: {:>9} cycles  speedup {:.2}  coupled {:>5.1}%  regions {kinds:?}",
                    r.cycles,
                    r.speedup,
                    100.0 * r.coupled_fraction()
                );
                for cat in StallCategory::ALL {
                    let v = r.normalized_stall(cat, base);
                    if v > 0.002 {
                        println!("{:>20}: {v:.3} of serial time", cat.label());
                    }
                }
            }
            Err(e) => println!("{s:>15}/{c}: ERROR {e}"),
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    eprintln!("[bench_one] {}", throughput(exp.simulated_cycles(), secs));
    let scale_name = if scale == Scale::Full { "full" } else { "test" };
    let summary = workload_summary(w.name, &exp, secs);
    let doc = bench_json(
        "bench_one",
        scale_name,
        exp.simulated_cycles(),
        exp.ticked_cycles(),
        secs,
        &[summary],
        &[],
    );
    if let Err(e) = std::fs::write("BENCH_bench_one.json", doc.render()) {
        eprintln!("[bench_one] cannot write BENCH_bench_one.json: {e}");
    }
}
