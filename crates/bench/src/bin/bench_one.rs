//! Deep-dive one benchmark: every strategy's cycles, speedup, stall
//! breakdown, and region plan.
//! `cargo run -p voltron-bench --bin bench_one -- <benchmark> [--full]
//!  [--trace-out FILE] [--probes-out FILE]`
//!
//! With `--trace-out`/`--probes-out` the 4-core hybrid configuration is
//! re-run with observability attached: a Chrome trace-event timeline
//! (open the file in <https://ui.perfetto.dev>) and/or an interval probe
//! series, whose summary also lands in `BENCH_bench_one.json`.

use voltron_bench::harness::{
    append_history, bench_json, chaos_json, history_row, workload_summary, DEFAULT_PROBE_PERIOD,
};
use voltron_core::report::throughput;
use voltron_core::{Experiment, FaultPlan, ObsRequest, StallCategory, Strategy};
use voltron_sim::CoherenceBackend;
use voltron_workloads::{by_name, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: bench_one <benchmark> [--full] [--trace-out FILE] [--probes-out FILE] \
         [--backend snooping|directory] [--faults seed=N,rate=R[,site=LABEL]] [--whatif]"
    );
    std::process::exit(2);
}

fn main() {
    let t0 = std::time::Instant::now();
    let mut bench = None;
    let mut scale = Scale::Test;
    let mut trace_out: Option<String> = None;
    let mut probes_out: Option<String> = None;
    let mut backend = CoherenceBackend::Snooping;
    let mut faults: Option<FaultPlan> = None;
    let mut whatif = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--test" => scale = Scale::Test,
            "--whatif" => whatif = true,
            "--trace-out" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--probes-out" => probes_out = Some(args.next().unwrap_or_else(|| usage())),
            "--backend" => {
                let v = args.next().unwrap_or_else(|| usage());
                backend = CoherenceBackend::parse(&v).unwrap_or_else(|| usage());
            }
            "--faults" => {
                let v = args.next().unwrap_or_else(|| usage());
                faults = match FaultPlan::parse(&v) {
                    Ok(p) => Some(p),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                };
            }
            other => bench = Some(other.to_string()),
        }
    }
    let bench = bench.unwrap_or_else(|| usage());
    let w = by_name(&bench, scale).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(2);
    });
    let mut exp = Experiment::new(&w.program).unwrap_or_else(|e| panic!("{e}"));
    // Installed after construction so the serial baseline stays
    // fault-free (the speedup denominator); every sweep run below is
    // chaos-tested and still held to the golden output.
    exp.set_fault_plan(faults.clone());
    let base = exp.baseline_cycles();
    println!(
        "{} ({:?}): serial baseline {base} cycles",
        w.name, w.expected
    );
    let configs = [
        (Strategy::Ilp, 4, backend),
        (Strategy::FineGrainTlp, 4, backend),
        (Strategy::Llp, 4, backend),
        (Strategy::Hybrid, 2, backend),
        (Strategy::Hybrid, 4, backend),
    ];
    if let Err(e) = exp.run_all_on(&configs) {
        // Per-config errors are reported in the loop below.
        eprintln!("[bench_one] sweep: {e}");
    }
    for (s, c, bk) in configs {
        match exp.run_on(s, c, bk) {
            Ok(r) => {
                let mut kinds: Vec<_> = r.region_kinds.values().collect();
                kinds.sort();
                kinds.dedup();
                println!(
                    "{s:>15}/{c}: {:>9} cycles  speedup {:.2}  coupled {:>5.1}%  regions {kinds:?}",
                    r.cycles,
                    r.speedup,
                    100.0 * r.coupled_fraction()
                );
                for cat in StallCategory::ALL {
                    let v = r.normalized_stall(cat, base);
                    if v > 0.002 {
                        println!("{:>20}: {v:.3} of serial time", cat.label());
                    }
                }
            }
            Err(e) => println!("{s:>15}/{c}: ERROR {e}"),
        }
    }
    // Observability pass: re-run the 4-core hybrid with the requested
    // instruments attached. The architectural result is identical (the
    // observer-effect tests pin this); only the artifacts are new.
    let mut probe_summary = None;
    if trace_out.is_some() || probes_out.is_some() {
        let req = ObsRequest {
            chrome_trace: trace_out.is_some(),
            probe_period: probes_out.as_ref().map(|_| DEFAULT_PROBE_PERIOD),
        };
        match exp.run_observed_on(Strategy::Hybrid, 4, backend, &req) {
            Ok(o) => {
                if let Some(path) = &trace_out {
                    match std::fs::write(path, &o.trace_json) {
                        Ok(()) => eprintln!("[bench_one] wrote {path}"),
                        Err(e) => eprintln!("[bench_one] cannot write {path}: {e}"),
                    }
                }
                if let (Some(path), Some(series)) = (&probes_out, &o.probes) {
                    match std::fs::write(path, series.render_json()) {
                        Ok(()) => eprintln!("[bench_one] wrote {path}"),
                        Err(e) => eprintln!("[bench_one] cannot write {path}: {e}"),
                    }
                }
                probe_summary = o.probes.as_ref().map(|s| s.summary());
            }
            Err(e) => eprintln!("[bench_one] observed run failed: {e}"),
        }
    }
    // Bottleneck pass: diagnose the 4-core hybrid. The measured run is
    // already cached, so this only pays for the five idealized re-runs.
    let mut whatif_report = None;
    if whatif {
        match exp.whatif_on(Strategy::Hybrid, 4, backend) {
            Ok(report) => {
                println!(
                    "\nbottleneck (hybrid/4): bound by {}, best ceiling {} ({:.2}x)",
                    report.bound_by,
                    report.best_ceiling().knob,
                    report.best_ceiling().speedup_ceiling
                );
                for c in &report.ceilings {
                    println!(
                        "{:>22}: {:>9} cycles  ceiling {:.2}x",
                        c.knob.label(),
                        c.ideal_cycles,
                        c.speedup_ceiling
                    );
                }
                whatif_report = Some(report);
            }
            Err(e) => eprintln!("[bench_one] what-if pass failed: {e}"),
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    eprintln!("[bench_one] {}", throughput(exp.simulated_cycles(), secs));
    let scale_name = if scale == Scale::Full { "full" } else { "test" };
    let mut summary = workload_summary(w.name, &exp, secs);
    summary.probes = probe_summary;
    summary.whatif = whatif_report;
    if summary.faults.any() {
        eprintln!(
            "[bench_one] faults: {} injected, {} recovered, {} gave up",
            summary.faults.injected(),
            summary.faults.recovered(),
            summary.faults.gave_up()
        );
    }
    let chaos = faults.as_ref().map(|p| chaos_json(Some(p), 0, &[], 0));
    let summaries = [summary];
    let doc = bench_json(
        "bench_one",
        scale_name,
        exp.simulated_cycles(),
        exp.ticked_cycles(),
        secs,
        &summaries,
        &[],
        chaos,
    );
    if let Err(e) = std::fs::write("BENCH_bench_one.json", doc.render()) {
        eprintln!("[bench_one] cannot write BENCH_bench_one.json: {e}");
    }
    append_history(&history_row(
        "bench_one",
        scale_name,
        exp.simulated_cycles(),
        exp.ticked_cycles(),
        secs,
        &summaries,
        0,
    ));
}
