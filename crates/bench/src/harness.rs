//! Shared driver for the figure-regeneration binaries.
//!
//! Every binary accepts `--test` to run the reduced-size inputs (the
//! default is the full evaluation scale) and `--bench <name>` to restrict
//! to one benchmark.

use voltron_core::report::{mean, speedup, Table};
use voltron_core::{Experiment, RunResult, StallCategory, Strategy, SystemError};
use voltron_workloads::{all, Scale, Workload};

/// Command-line options common to the figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Workload scale.
    pub scale: Scale,
    /// Restrict to one benchmark, when set.
    pub only: Option<String>,
}

impl HarnessArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> HarnessArgs {
        let mut scale = Scale::Full;
        let mut only = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => scale = Scale::Test,
                "--full" => scale = Scale::Full,
                "--bench" => only = args.next(),
                other => {
                    eprintln!("unknown argument {other} (expected --test/--full/--bench NAME)");
                    std::process::exit(2);
                }
            }
        }
        HarnessArgs { scale, only }
    }

    /// The selected workloads.
    pub fn workloads(&self) -> Vec<Workload> {
        let ws = all(self.scale);
        match &self.only {
            Some(n) => ws.into_iter().filter(|w| w.name == n.as_str()).collect(),
            None => ws,
        }
    }
}

/// Run `f` for every selected workload with a ready [`Experiment`].
/// Failures are printed and skipped so one bad configuration cannot hide
/// the rest of a figure.
pub fn for_each_workload(
    args: &HarnessArgs,
    mut f: impl FnMut(&Workload, &mut Experiment<'_>) -> Result<(), SystemError>,
) {
    for w in args.workloads() {
        match Experiment::new(&w.program) {
            Ok(mut exp) => {
                if let Err(e) = f(&w, &mut exp) {
                    eprintln!("{}: {e}", w.name);
                }
            }
            Err(e) => eprintln!("{}: baseline failed: {e}", w.name),
        }
    }
}

/// Render a per-benchmark speedup figure (Figs. 10/11/13 share this
/// shape): one column per (label, strategy, cores).
pub fn speedup_figure(
    title: &str,
    args: &HarnessArgs,
    columns: &[(&str, Strategy, usize)],
) -> String {
    let mut headers: Vec<&str> = vec!["benchmark"];
    headers.extend(columns.iter().map(|(l, _, _)| *l));
    let mut table = Table::new(&headers);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); columns.len()];
    for_each_workload(args, |w, exp| {
        let mut cells = vec![w.name.to_string()];
        for (i, &(_, strat, cores)) in columns.iter().enumerate() {
            let r = exp.run(strat, cores)?;
            sums[i].push(r.speedup);
            cells.push(speedup(r.speedup));
        }
        table.row(cells);
        Ok(())
    });
    let mut avg = vec!["average".to_string()];
    for col in &sums {
        avg.push(speedup(mean(col)));
    }
    table.row(avg);
    format!("{title}\n{}", table.render())
}

/// Render the Fig. 12 stall-breakdown cells for one run.
pub fn stall_row(r: &RunResult, baseline: u64) -> Vec<String> {
    StallCategory::ALL
        .iter()
        .map(|&c| format!("{:.3}", r.normalized_stall(c, baseline)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_filter_selects_one() {
        let args = HarnessArgs { scale: Scale::Test, only: Some("164.gzip".into()) };
        let ws = args.workloads();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].name, "164.gzip");
        let none = HarnessArgs { scale: Scale::Test, only: Some("nope".into()) };
        assert!(none.workloads().is_empty());
    }

    #[test]
    fn speedup_figure_renders_rows_and_average() {
        let args = HarnessArgs { scale: Scale::Test, only: Some("rawcaudio".into()) };
        let out = speedup_figure("t", &args, &[("serial", Strategy::Serial, 1)]);
        assert!(out.contains("rawcaudio"));
        assert!(out.contains("average"));
        assert!(out.contains("1.00"));
    }
}
