//! Shared driver for the figure-regeneration binaries.
//!
//! Every binary accepts `--test` to run the reduced-size inputs (the
//! default is the full evaluation scale) and `--bench <name>` to restrict
//! to one benchmark.
//!
//! Workloads are independent (each gets its own [`Experiment`]), so
//! [`run_workloads`] fans them out across host threads and hands the
//! caller per-workload results in deterministic workload order; the
//! figure tables are assembled sequentially afterwards, so their output
//! is byte-identical to a serial sweep. Each sweep also reports its
//! simulation throughput (simulated cycles per host second, on stderr)
//! and writes a machine-readable `BENCH_<binary>.json` sidecar.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use voltron_core::report::{mean, speedup, throughput, Json, Table};
use voltron_core::{Experiment, RunResult, StallCategory, Strategy, SystemError};
use voltron_workloads::{all, Scale, Workload};

/// Command-line options common to the figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Workload scale.
    pub scale: Scale,
    /// Restrict to one benchmark, when set.
    pub only: Option<String>,
}

impl HarnessArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> HarnessArgs {
        let mut scale = Scale::Full;
        let mut only = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => scale = Scale::Test,
                "--full" => scale = Scale::Full,
                "--bench" => only = args.next(),
                other => {
                    eprintln!("unknown argument {other} (expected --test/--full/--bench NAME)");
                    std::process::exit(2);
                }
            }
        }
        HarnessArgs { scale, only }
    }

    /// The selected workloads.
    pub fn workloads(&self) -> Vec<Workload> {
        let ws = all(self.scale);
        match &self.only {
            Some(n) => ws.into_iter().filter(|w| w.name == n.as_str()).collect(),
            None => ws,
        }
    }

    /// The scale as a lowercase label (for the JSON sidecar).
    pub fn scale_name(&self) -> &'static str {
        match self.scale {
            Scale::Test => "test",
            Scale::Full => "full",
        }
    }
}

/// One workload's run inventory, recorded in the `BENCH_*.json` sidecar.
#[derive(Debug)]
pub struct WorkloadSummary {
    /// Benchmark name.
    pub name: &'static str,
    /// Serial 1-core cycles.
    pub baseline_cycles: u64,
    /// Total simulated cycles across the workload's runs.
    pub simulated_cycles: u64,
    /// (strategy, cores, cycles, speedup) per configuration run.
    pub runs: Vec<(String, usize, u64, f64)>,
}

/// Snapshot an experiment's run inventory for the JSON sidecar.
pub fn workload_summary(name: &'static str, exp: &Experiment<'_>) -> WorkloadSummary {
    WorkloadSummary {
        name,
        baseline_cycles: exp.baseline_cycles(),
        simulated_cycles: exp.simulated_cycles(),
        runs: exp
            .results()
            .iter()
            .map(|r| (r.strategy.to_string(), r.cores, r.cycles, r.speedup))
            .collect(),
    }
}

/// Build the `BENCH_*.json` document for a finished sweep.
pub fn bench_json(
    binary: &str,
    scale: &str,
    simulated_cycles: u64,
    host_seconds: f64,
    summaries: &[WorkloadSummary],
) -> Json {
    let workloads = summaries
        .iter()
        .map(|s| {
            let runs = s
                .runs
                .iter()
                .map(|(strategy, cores, cycles, sp)| {
                    Json::Obj(vec![
                        ("strategy".into(), Json::Str(strategy.clone())),
                        ("cores".into(), Json::UInt(*cores as u64)),
                        ("cycles".into(), Json::UInt(*cycles)),
                        ("speedup".into(), Json::Num(*sp)),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.into())),
                ("baseline_cycles".into(), Json::UInt(s.baseline_cycles)),
                ("simulated_cycles".into(), Json::UInt(s.simulated_cycles)),
                ("runs".into(), Json::Arr(runs)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("binary".into(), Json::Str(binary.into())),
        ("scale".into(), Json::Str(scale.into())),
        ("host_seconds".into(), Json::Num(host_seconds)),
        ("simulated_cycles".into(), Json::UInt(simulated_cycles)),
        (
            "cycles_per_host_second".into(),
            Json::Num(simulated_cycles as f64 / host_seconds.max(1e-9)),
        ),
        ("workloads".into(), Json::Arr(workloads)),
    ])
}

/// What a [`run_workloads`] sweep produced: the per-workload closure
/// results (in workload order; failed workloads are reported on stderr
/// and skipped) plus the aggregate throughput numbers.
#[derive(Debug)]
pub struct Harvest<R> {
    /// Closure results per surviving workload, in workload order.
    pub results: Vec<(Workload, R)>,
    /// Run inventories per surviving workload (same order).
    pub summaries: Vec<WorkloadSummary>,
    /// Total simulated cycles across the sweep.
    pub simulated_cycles: u64,
    /// Wall-clock duration of the sweep.
    pub host_seconds: f64,
}

impl<R> Harvest<R> {
    /// Simulation throughput in simulated cycles per host second.
    pub fn cycles_per_second(&self) -> f64 {
        self.simulated_cycles as f64 / self.host_seconds.max(1e-9)
    }

    /// Print the throughput line (stderr, keeping figure stdout clean)
    /// and write the `BENCH_<binary>.json` sidecar to the working
    /// directory.
    pub fn report(&self, binary: &str, args: &HarnessArgs) {
        eprintln!(
            "[{binary}] {}",
            throughput(self.simulated_cycles, self.host_seconds)
        );
        let doc = bench_json(
            binary,
            args.scale_name(),
            self.simulated_cycles,
            self.host_seconds,
            &self.summaries,
        );
        let path = format!("BENCH_{binary}.json");
        if let Err(e) = std::fs::write(&path, doc.render()) {
            eprintln!("[{binary}] cannot write {path}: {e}");
        }
    }
}

/// Run `f` for every selected workload with a ready [`Experiment`],
/// fanning the workloads out across host threads. Results come back in
/// workload order regardless of completion order; failures are printed
/// and skipped so one bad configuration cannot hide the rest of a
/// figure.
pub fn run_workloads<R: Send>(
    args: &HarnessArgs,
    f: impl Fn(&Workload, &mut Experiment<'_>) -> Result<R, SystemError> + Sync,
) -> Harvest<R> {
    let ws = args.workloads();
    let n = ws.len();
    let slots: Vec<Mutex<Option<(R, WorkloadSummary)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n.max(1));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let w = &ws[i];
                match Experiment::new(&w.program) {
                    Ok(mut exp) => match f(w, &mut exp) {
                        Ok(r) => {
                            let sm = workload_summary(w.name, &exp);
                            *slots[i].lock().expect("result slot poisoned") = Some((r, sm));
                        }
                        Err(e) => eprintln!("{}: {e}", w.name),
                    },
                    Err(e) => eprintln!("{}: baseline failed: {e}", w.name),
                }
            });
        }
    });
    let host_seconds = t0.elapsed().as_secs_f64();
    let mut results = Vec::new();
    let mut summaries = Vec::new();
    let mut simulated_cycles = 0u64;
    for (w, slot) in ws.into_iter().zip(slots) {
        if let Some((r, sm)) = slot.into_inner().expect("result slot poisoned") {
            simulated_cycles += sm.simulated_cycles;
            summaries.push(sm);
            results.push((w, r));
        }
    }
    Harvest {
        results,
        summaries,
        simulated_cycles,
        host_seconds,
    }
}

/// Render a per-benchmark speedup figure (Figs. 10/11/13 share this
/// shape): one column per (label, strategy, cores). Returns the rendered
/// figure and the sweep's [`Harvest`] so the binary can report
/// throughput.
pub fn speedup_figure(
    title: &str,
    args: &HarnessArgs,
    columns: &[(&str, Strategy, usize)],
) -> (String, Harvest<Vec<f64>>) {
    let mut headers: Vec<&str> = vec!["benchmark"];
    headers.extend(columns.iter().map(|(l, _, _)| *l));
    let mut table = Table::new(&headers);
    let harvest = run_workloads(args, |_, exp| {
        let mut vals = Vec::with_capacity(columns.len());
        for &(_, strat, cores) in columns {
            vals.push(exp.run(strat, cores)?.speedup);
        }
        Ok(vals)
    });
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); columns.len()];
    for (w, vals) in &harvest.results {
        let mut cells = vec![w.name.to_string()];
        for (i, v) in vals.iter().enumerate() {
            sums[i].push(*v);
            cells.push(speedup(*v));
        }
        table.row(cells);
    }
    let mut avg = vec!["average".to_string()];
    for col in &sums {
        avg.push(speedup(mean(col)));
    }
    table.row(avg);
    (format!("{title}\n{}", table.render()), harvest)
}

/// Render the Fig. 12 stall-breakdown cells for one run.
pub fn stall_row(r: &RunResult, baseline: u64) -> Vec<String> {
    StallCategory::ALL
        .iter()
        .map(|&c| format!("{:.3}", r.normalized_stall(c, baseline)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_filter_selects_one() {
        let args = HarnessArgs {
            scale: Scale::Test,
            only: Some("164.gzip".into()),
        };
        let ws = args.workloads();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].name, "164.gzip");
        let none = HarnessArgs {
            scale: Scale::Test,
            only: Some("nope".into()),
        };
        assert!(none.workloads().is_empty());
    }

    #[test]
    fn speedup_figure_renders_rows_and_average() {
        let args = HarnessArgs {
            scale: Scale::Test,
            only: Some("rawcaudio".into()),
        };
        let (out, harvest) = speedup_figure("t", &args, &[("serial", Strategy::Serial, 1)]);
        assert!(out.contains("rawcaudio"));
        assert!(out.contains("average"));
        assert!(out.contains("1.00"));
        assert_eq!(harvest.results.len(), 1);
        assert!(harvest.simulated_cycles > 0);
    }

    #[test]
    fn run_workloads_collects_summaries_and_json() {
        let args = HarnessArgs {
            scale: Scale::Test,
            only: Some("rawcaudio".into()),
        };
        let h = run_workloads(&args, |w, exp| {
            exp.run(Strategy::Serial, 1)?;
            Ok(w.name)
        });
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].1, "rawcaudio");
        assert_eq!(h.summaries[0].name, "rawcaudio");
        assert!(!h.summaries[0].runs.is_empty(), "run inventory captured");
        assert!(h.cycles_per_second() > 0.0);
        let doc = bench_json(
            "t",
            args.scale_name(),
            h.simulated_cycles,
            h.host_seconds,
            &h.summaries,
        );
        let s = doc.render();
        assert!(s.contains("\"binary\":\"t\""));
        assert!(s.contains("\"name\":\"rawcaudio\""));
        assert!(s.contains("\"strategy\":\"serial\""));
    }
}
