//! Shared driver for the figure-regeneration binaries.
//!
//! Every binary accepts `--test` to run the reduced-size inputs (the
//! default is the full evaluation scale) and `--bench <name>` to restrict
//! to one benchmark.
//!
//! Workloads are independent (each gets its own [`Experiment`]), so
//! [`run_workloads`] fans them out across host threads and hands the
//! caller per-workload results in deterministic workload order; the
//! figure tables are assembled sequentially afterwards, so their output
//! is byte-identical to a serial sweep. Each sweep also reports its
//! simulation throughput (simulated cycles per host second, on stderr)
//! and writes a machine-readable `BENCH_<binary>.json` sidecar.
//!
//! Workloads are fault-isolated: each one runs under `catch_unwind` with
//! an optional per-workload simulated-cycle budget (`--budget-cycles`),
//! so a panicking, wedged, or miscompiled workload becomes a
//! [`WorkloadFailure`] row in the [`Harvest`] — printed only when
//! something actually failed — while every other workload's figures and
//! sidecar entries are still produced. Wall clock is bounded through the
//! same budget: simulation time is the only unbounded work a workload
//! does, and the machine's own deadlock/livelock watchdogs catch wedges
//! long before the cycle cap.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use voltron_core::report::{mean, speedup, throughput, Json, Table};
use voltron_core::{
    Experiment, FaultPlan, FaultStats, ObsRequest, ProbeSummary, RunResult, StallCategory,
    Strategy, SystemError, WhatIfReport,
};
use voltron_sim::{CoherenceBackend, StallReason};
use voltron_workloads::{all, Scale, Workload};

/// Sampling period `--probes-out` uses, in cycles. Dense enough to
/// resolve mode phases on the test-scale inputs, sparse enough that a
/// full-scale series stays small.
pub const DEFAULT_PROBE_PERIOD: u64 = 256;

/// Command-line options common to the figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Workload scale.
    pub scale: Scale,
    /// Restrict to one benchmark, when set.
    pub only: Option<String>,
    /// Per-workload simulated-cycle budget, when set: a workload whose
    /// runs exceed it fails with `MaxCycles` and is reported as a
    /// [`WorkloadFailure`] instead of holding a host thread.
    pub budget_cycles: Option<u64>,
    /// Write a Chrome trace-event JSON per workload to this path
    /// (see [`HarnessArgs::artifact_path`] for multi-workload naming).
    pub trace_out: Option<String>,
    /// Write the interval probe series per workload to this path.
    pub probes_out: Option<String>,
    /// Coherence backend family for the sweep's runs (default snooping).
    /// Directory bank counts are resolved per core count; see
    /// [`HarnessArgs::backend_for`].
    pub backend: CoherenceBackend,
    /// Fault plan for every non-baseline run (`--faults seed=N,rate=R
    /// [,site=...]`); the serial baseline stays fault-free so speedups
    /// keep their denominator.
    pub faults: Option<FaultPlan>,
    /// Re-run a failed workload up to this many extra times on a fresh
    /// [`Experiment`] (fault plans reseeded per attempt, see
    /// [`FaultPlan::reseeded`]). A workload that recovers is *flaky*; one
    /// that never does is a *hard* failure.
    pub retries: u32,
}

impl HarnessArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> HarnessArgs {
        let mut scale = Scale::Full;
        let mut only = None;
        let mut budget_cycles = None;
        let mut trace_out = None;
        let mut probes_out = None;
        let mut backend = CoherenceBackend::Snooping;
        let mut faults = None;
        let mut retries = 0u32;
        let mut args = std::env::args().skip(1);
        let take = |flag: &str, args: &mut dyn Iterator<Item = String>| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            }
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => scale = Scale::Test,
                "--full" => scale = Scale::Full,
                "--bench" => only = args.next(),
                "--trace-out" => trace_out = Some(take("--trace-out", &mut args)),
                "--probes-out" => probes_out = Some(take("--probes-out", &mut args)),
                "--backend" => {
                    let v = take("--backend", &mut args);
                    backend = match CoherenceBackend::parse(&v) {
                        Some(b) => b,
                        None => {
                            eprintln!("--backend requires 'snooping' or 'directory' (got {v})");
                            std::process::exit(2);
                        }
                    };
                }
                "--budget-cycles" => {
                    budget_cycles = match take("--budget-cycles", &mut args).parse::<u64>() {
                        Ok(n) => Some(n),
                        _ => {
                            eprintln!("--budget-cycles requires an integer cycle count");
                            std::process::exit(2);
                        }
                    }
                }
                "--faults" => {
                    let v = take("--faults", &mut args);
                    faults = match FaultPlan::parse(&v) {
                        Ok(p) => Some(p),
                        Err(e) => {
                            eprintln!("{e}");
                            std::process::exit(2);
                        }
                    };
                }
                "--retries" => {
                    retries = match take("--retries", &mut args).parse::<u32>() {
                        Ok(n) => n,
                        _ => {
                            eprintln!("--retries requires an integer attempt count");
                            std::process::exit(2);
                        }
                    }
                }
                other => {
                    eprintln!(
                        "unknown argument {other} \
                         (expected --test/--full/--bench NAME/--budget-cycles N\
                         /--trace-out FILE/--probes-out FILE\
                         /--backend snooping|directory\
                         /--faults seed=N,rate=R[,site=LABEL]/--retries N)"
                    );
                    std::process::exit(2);
                }
            }
        }
        HarnessArgs {
            scale,
            only,
            budget_cycles,
            trace_out,
            probes_out,
            backend,
            faults,
            retries,
        }
    }

    /// The coherence backend a run at `cores` should use: snooping stays
    /// snooping; a directory request resolves its bank count to the
    /// machine size ([`CoherenceBackend::directory_for`]), so one flag
    /// covers a whole core sweep.
    pub fn backend_for(&self, cores: usize) -> CoherenceBackend {
        match self.backend {
            CoherenceBackend::Snooping => CoherenceBackend::Snooping,
            CoherenceBackend::Directory { .. } => CoherenceBackend::directory_for(cores),
        }
    }

    /// Whether any observability output was requested.
    pub fn wants_observation(&self) -> bool {
        self.trace_out.is_some() || self.probes_out.is_some()
    }

    /// The observability request the flags imply: a Chrome trace when
    /// `--trace-out` was given, interval probes (at
    /// [`DEFAULT_PROBE_PERIOD`]) when `--probes-out` was.
    pub fn obs_request(&self) -> ObsRequest {
        ObsRequest {
            chrome_trace: self.trace_out.is_some(),
            probe_period: self.probes_out.as_ref().map(|_| DEFAULT_PROBE_PERIOD),
        }
    }

    /// Where to write an observability artifact for `workload`. With a
    /// single selected workload (`--bench`) the path is used verbatim;
    /// in a sweep the workload name is spliced in before the extension
    /// (`trace.json` → `trace.164.gzip.json`) so workloads don't
    /// clobber each other.
    pub fn artifact_path(&self, base: &str, workload: &str) -> String {
        if self.only.is_some() {
            return base.to_string();
        }
        match base.rsplit_once('.') {
            Some((stem, ext)) if !stem.is_empty() => format!("{stem}.{workload}.{ext}"),
            _ => format!("{base}.{workload}"),
        }
    }

    /// The selected workloads.
    pub fn workloads(&self) -> Vec<Workload> {
        let ws = all(self.scale);
        match &self.only {
            Some(n) => ws.into_iter().filter(|w| w.name == n.as_str()).collect(),
            None => ws,
        }
    }

    /// The scale as a lowercase label (for the JSON sidecar).
    pub fn scale_name(&self) -> &'static str {
        match self.scale {
            Scale::Test => "test",
            Scale::Full => "full",
        }
    }
}

/// One workload's run inventory, recorded in the `BENCH_*.json` sidecar.
#[derive(Debug)]
pub struct WorkloadSummary {
    /// Benchmark name.
    pub name: &'static str,
    /// Serial 1-core cycles.
    pub baseline_cycles: u64,
    /// Total simulated cycles across the workload's runs.
    pub simulated_cycles: u64,
    /// Cycles the simulator actually ticked for them (the rest were
    /// fast-forwarded; see `voltron_sim::MachineConfig::fast_forward`).
    pub ticked_cycles: u64,
    /// Host wall-clock this workload's sweep took, in seconds.
    pub host_seconds: f64,
    /// One row per configuration run.
    pub runs: Vec<RunRow>,
    /// Bottleneck what-if report for the workload's headline
    /// configuration, when the sweep asked for one (`--whatif`).
    pub whatif: Option<WhatIfReport>,
    /// Interval probe summary, when the sweep ran with `--probes-out`.
    pub probes: Option<ProbeSummary>,
    /// Fault-injection counters summed over the workload's runs (all
    /// zeros — and omitted from the sidecar — without `--faults`).
    pub faults: FaultStats,
}

/// One configuration run in a workload's sidecar inventory.
#[derive(Debug)]
pub struct RunRow {
    /// Strategy label (e.g. "hybrid").
    pub strategy: String,
    /// Core count.
    pub cores: usize,
    /// Coherence backend label.
    pub backend: &'static str,
    /// Execution time in simulated cycles.
    pub cycles: u64,
    /// Speedup over the serial 1-core baseline.
    pub speedup: f64,
    /// The single largest stall bucket summed over cores (`None` for a
    /// run that never stalled) — the sidecar's one-word answer to
    /// "where did this run's time go?".
    pub dominant_stall: Option<String>,
}

/// Snapshot an experiment's run inventory for the JSON sidecar.
/// `host_seconds` is the wall-clock the caller measured around the
/// workload's runs.
pub fn workload_summary(
    name: &'static str,
    exp: &Experiment<'_>,
    host_seconds: f64,
) -> WorkloadSummary {
    let mut faults = FaultStats::default();
    for r in exp.results() {
        for (i, s) in r.stats.faults.sites.iter().enumerate() {
            faults.sites[i].absorb(s);
        }
    }
    WorkloadSummary {
        name,
        baseline_cycles: exp.baseline_cycles(),
        simulated_cycles: exp.simulated_cycles(),
        ticked_cycles: exp.ticked_cycles(),
        host_seconds,
        runs: exp
            .results()
            .iter()
            .map(|r| RunRow {
                strategy: r.strategy.to_string(),
                cores: r.cores,
                backend: r.backend.label(),
                cycles: r.cycles,
                speedup: r.speedup,
                dominant_stall: r
                    .stats
                    .dominant_stall()
                    .map(|(reason, _)| reason.to_string()),
            })
            .collect(),
        probes: None,
        whatif: None,
        faults,
    }
}

/// Render a bottleneck what-if report for the JSON sidecar: the
/// machine-wide classification, the CPI-stack rows (exact by
/// construction, see `voltron_sim::whatif`), one ceiling per
/// idealization knob, and the per-region diagnoses.
pub fn whatif_json(r: &WhatIfReport) -> Json {
    let stack = r
        .stack
        .rows()
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(label, n)| (label, Json::UInt(n)))
        .collect();
    let ceilings = r
        .ceilings
        .iter()
        .map(|c| {
            (
                c.knob.label().to_string(),
                Json::Obj(vec![
                    ("ideal_cycles".into(), Json::UInt(c.ideal_cycles)),
                    ("speedup_ceiling".into(), Json::Num(c.speedup_ceiling)),
                ]),
            )
        })
        .collect();
    let regions = r
        .regions
        .iter()
        .map(|d| {
            Json::Obj(vec![
                (
                    "region".into(),
                    if d.region == u32::MAX {
                        Json::Str("outside".into())
                    } else {
                        Json::UInt(u64::from(d.region))
                    },
                ),
                ("kind".into(), Json::Str(d.kind.into())),
                ("cycles".into(), Json::UInt(d.stack.cycles)),
                ("bound_by".into(), Json::Str(d.bound_by.to_string())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("strategy".into(), Json::Str(r.strategy.to_string())),
        ("cores".into(), Json::UInt(r.cores as u64)),
        ("measured_cycles".into(), Json::UInt(r.measured_cycles)),
        ("bound_by".into(), Json::Str(r.bound_by.to_string())),
        (
            "best_ceiling".into(),
            Json::Str(r.best_ceiling().knob.label().into()),
        ),
        ("stack".into(), Json::Obj(stack)),
        ("ceilings".into(), Json::Obj(ceilings)),
        ("regions".into(), Json::Arr(regions)),
    ])
}

/// Render a workload's fault counters for the JSON sidecar: the totals
/// plus one row per site that actually saw a fault.
pub fn fault_stats_json(fs: &FaultStats) -> Json {
    let sites = fs
        .rows()
        .filter(|(_, s)| s.injected + s.retried + s.recovered + s.gave_up > 0)
        .map(|(label, s)| {
            (
                label.to_string(),
                Json::Obj(vec![
                    ("injected".into(), Json::UInt(s.injected)),
                    ("retried".into(), Json::UInt(s.retried)),
                    ("recovered".into(), Json::UInt(s.recovered)),
                    ("gave_up".into(), Json::UInt(s.gave_up)),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        ("injected".into(), Json::UInt(fs.injected())),
        ("recovered".into(), Json::UInt(fs.recovered())),
        ("gave_up".into(), Json::UInt(fs.gave_up())),
        ("sites".into(), Json::Obj(sites)),
    ])
}

/// Render a probe summary for the JSON sidecar. The stall-phase
/// histogram is keyed by stall-reason label ([`StallReason`] display
/// names), zero-count reasons omitted.
pub fn probe_summary_json(p: &ProbeSummary) -> Json {
    let hist = StallReason::ALL
        .iter()
        .filter(|r| p.stall_phase_hist[r.index()] > 0)
        .map(|r| (r.to_string(), Json::UInt(p.stall_phase_hist[r.index()])))
        .collect();
    Json::Obj(vec![
        ("period".into(), Json::UInt(p.period)),
        ("samples".into(), Json::UInt(p.samples as u64)),
        (
            "peak_send_queue".into(),
            Json::UInt(p.peak_send_queue as u64),
        ),
        (
            "peak_recv_buffered".into(),
            Json::UInt(p.peak_recv_buffered as u64),
        ),
        (
            "peak_tm_write_set".into(),
            Json::UInt(p.peak_tm_write_set as u64),
        ),
        ("bus_utilization".into(), Json::Num(p.bus_utilization)),
        ("quiet_intervals".into(), Json::UInt(p.quiet_intervals)),
        ("stall_phase_histogram".into(), Json::Obj(hist)),
    ])
}

/// Skip-efficiency: the fraction of simulated cycles the simulator had
/// to tick (1.0 = fast-forward never skipped; smaller is better). The
/// ratio can exceed 1.0 slightly: the post-halt grace drain ticks a few
/// cycles past the reported execution time.
pub fn skip_efficiency(ticked: u64, simulated: u64) -> f64 {
    ticked as f64 / simulated.max(1) as f64
}

/// Build the `BENCH_*.json` document for a finished sweep. `chaos` is
/// the `--faults`/`--retries` block ([`chaos_json`]); `None` keeps the
/// document byte-identical to a fault-free harness.
#[allow(clippy::too_many_arguments)]
pub fn bench_json(
    binary: &str,
    scale: &str,
    simulated_cycles: u64,
    ticked_cycles: u64,
    host_seconds: f64,
    summaries: &[WorkloadSummary],
    failures: &[WorkloadFailure],
    chaos: Option<Json>,
) -> Json {
    let workloads = summaries
        .iter()
        .map(|s| {
            let runs = s
                .runs
                .iter()
                .map(|r| {
                    let mut fields = vec![
                        ("strategy".into(), Json::Str(r.strategy.clone())),
                        ("cores".into(), Json::UInt(r.cores as u64)),
                        ("backend".into(), Json::Str(r.backend.into())),
                        ("cycles".into(), Json::UInt(r.cycles)),
                        ("speedup".into(), Json::Num(r.speedup)),
                    ];
                    if let Some(d) = &r.dominant_stall {
                        fields.push(("dominant_stall".into(), Json::Str(d.clone())));
                    }
                    Json::Obj(fields)
                })
                .collect();
            let mut fields = vec![
                ("name".into(), Json::Str(s.name.into())),
                ("baseline_cycles".into(), Json::UInt(s.baseline_cycles)),
                ("simulated_cycles".into(), Json::UInt(s.simulated_cycles)),
                ("ticked_cycles".into(), Json::UInt(s.ticked_cycles)),
                (
                    "skip_efficiency".into(),
                    Json::Num(skip_efficiency(s.ticked_cycles, s.simulated_cycles)),
                ),
                ("host_seconds".into(), Json::Num(s.host_seconds)),
                ("runs".into(), Json::Arr(runs)),
            ];
            if let Some(p) = &s.probes {
                fields.push(("probes".into(), probe_summary_json(p)));
            }
            if let Some(w) = &s.whatif {
                fields.push(("whatif".into(), whatif_json(w)));
            }
            if s.faults.any() {
                fields.push(("faults".into(), fault_stats_json(&s.faults)));
            }
            Json::Obj(fields)
        })
        .collect();
    let mut doc = Json::Obj(vec![
        ("binary".into(), Json::Str(binary.into())),
        ("scale".into(), Json::Str(scale.into())),
        ("host_seconds".into(), Json::Num(host_seconds)),
        ("simulated_cycles".into(), Json::UInt(simulated_cycles)),
        ("ticked_cycles".into(), Json::UInt(ticked_cycles)),
        (
            "skip_efficiency".into(),
            Json::Num(skip_efficiency(ticked_cycles, simulated_cycles)),
        ),
        (
            "cycles_per_host_second".into(),
            Json::Num(simulated_cycles as f64 / host_seconds.max(1e-9)),
        ),
        ("workloads".into(), Json::Arr(workloads)),
        (
            "failures".into(),
            Json::Arr(
                failures
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(f.name.into())),
                            ("reason".into(), Json::Str(f.reason.clone())),
                            ("attempts".into(), Json::UInt(f.attempts as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let (Json::Obj(fields), Some(block)) = (&mut doc, chaos) {
        fields.push(("faults".into(), block));
    }
    doc
}

/// File the perf history accumulates in (working directory, like the
/// `BENCH_*.json` sidecars).
pub const HISTORY_FILE: &str = "BENCH_history.ndjson";

/// The git revision the harness is running from (short hash, plus
/// `-dirty` when the tree has uncommitted changes), or `"unknown"`
/// outside a git checkout. Stamped into every history row so a
/// regression found by `bench_diff` can be bisected.
pub fn git_rev() -> String {
    let run = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    };
    let Some(rev) = run(&["rev-parse", "--short", "HEAD"]) else {
        return "unknown".into();
    };
    match run(&["status", "--porcelain"]) {
        Some(s) if !s.is_empty() => format!("{rev}-dirty"),
        _ => rev,
    }
}

/// One perf-history row: a compact, git-rev-stamped snapshot of a
/// finished sweep. Cycle counts are deterministic (they regress only
/// when the simulator or compiler changes); host throughput tracks the
/// machine the sweep ran on.
pub fn history_row(
    binary: &str,
    scale: &str,
    simulated_cycles: u64,
    ticked_cycles: u64,
    host_seconds: f64,
    summaries: &[WorkloadSummary],
    failures: usize,
) -> Json {
    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let workloads = summaries
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.into())),
                ("baseline_cycles".into(), Json::UInt(s.baseline_cycles)),
                ("simulated_cycles".into(), Json::UInt(s.simulated_cycles)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("unix_seconds".into(), Json::UInt(unix_seconds)),
        ("git_rev".into(), Json::Str(git_rev())),
        ("binary".into(), Json::Str(binary.into())),
        ("scale".into(), Json::Str(scale.into())),
        ("simulated_cycles".into(), Json::UInt(simulated_cycles)),
        ("ticked_cycles".into(), Json::UInt(ticked_cycles)),
        ("host_seconds".into(), Json::Num(host_seconds)),
        (
            "cycles_per_host_second".into(),
            Json::Num(simulated_cycles as f64 / host_seconds.max(1e-9)),
        ),
        ("failures".into(), Json::UInt(failures as u64)),
        ("workloads".into(), Json::Arr(workloads)),
    ])
}

/// Append one [`history_row`] to [`HISTORY_FILE`] (newline-delimited
/// JSON, append-only: the file is the repo's perf memory across
/// commits, so nothing ever rewrites earlier rows).
///
/// Torn-row safe under concurrent writers: the row is rendered into one
/// buffer (trailing newline included) and written with a *single*
/// `write` syscall on an `O_APPEND` handle, which POSIX makes atomic
/// with respect to other appenders for writes this size — and a
/// process-wide mutex serializes the serve daemon's own workers on top,
/// so `bench_diff` never sees two rows interleaved mid-line.
pub fn append_history(row: &Json) {
    use std::io::Write;
    static WRITER: Mutex<()> = Mutex::new(());
    let line = format!("{}\n", row.render());
    let _guard = WRITER.lock().expect("history writer poisoned");
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(HISTORY_FILE)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("cannot append {HISTORY_FILE}: {e}");
    }
}

/// Build the top-level `faults` block for the sidecar: the plan in
/// `--faults` syntax, the retry allowance, and the flaky-vs-hard
/// classification the retry loop produced.
pub fn chaos_json(
    plan: Option<&FaultPlan>,
    retries: u32,
    flaky: &[WorkloadFlake],
    hard: usize,
) -> Json {
    Json::Obj(vec![
        (
            "plan".into(),
            Json::Str(plan.map(FaultPlan::spec).unwrap_or_default()),
        ),
        ("retries".into(), Json::UInt(retries as u64)),
        (
            "flaky".into(),
            Json::Arr(
                flaky
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(f.name.into())),
                            ("attempts".into(), Json::UInt(f.attempts as u64)),
                            ("first_error".into(), Json::Str(f.first_error.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("hard".into(), Json::UInt(hard as u64)),
    ])
}

/// A workload that did not survive its sweep: it panicked, exceeded its
/// cycle budget, or failed to compile, simulate, or validate — on every
/// attempt it was given (a *hard* failure once retries are in play).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadFailure {
    /// Benchmark name.
    pub name: &'static str,
    /// Human-readable cause (the last attempt's panic message or
    /// typed-error rendering).
    pub reason: String,
    /// Attempts made (1 without `--retries`).
    pub attempts: u32,
}

/// A workload that failed at least once but succeeded on a retry: the
/// failure did not reproduce on a fresh [`Experiment`] under a reseeded
/// fault plan, so it is *flaky* rather than *hard*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadFlake {
    /// Benchmark name.
    pub name: &'static str,
    /// Attempts made, including the one that succeeded.
    pub attempts: u32,
    /// What the first failed attempt reported.
    pub first_error: String,
}

/// What a [`run_workloads`] sweep produced: the per-workload closure
/// results (in workload order), the failures (also in workload order),
/// plus the aggregate throughput numbers.
#[derive(Debug)]
pub struct Harvest<R> {
    /// Closure results per surviving workload, in workload order.
    pub results: Vec<(Workload, R)>,
    /// Run inventories per surviving workload (same order).
    pub summaries: Vec<WorkloadSummary>,
    /// Workloads that panicked or returned an error on every attempt, in
    /// workload order.
    pub failures: Vec<WorkloadFailure>,
    /// Workloads that failed but recovered on a retry, in workload order
    /// (always empty without `--retries`).
    pub flaky: Vec<WorkloadFlake>,
    /// Total simulated cycles across the sweep.
    pub simulated_cycles: u64,
    /// Total cycles the simulator actually ticked for them.
    pub ticked_cycles: u64,
    /// Wall-clock duration of the sweep.
    pub host_seconds: f64,
}

impl<R> Harvest<R> {
    /// Simulation throughput in simulated cycles per host second.
    pub fn cycles_per_second(&self) -> f64 {
        self.simulated_cycles as f64 / self.host_seconds.max(1e-9)
    }

    /// A rendered "failed workloads" section for figure stdout — empty
    /// when every workload survived, so clean sweeps stay byte-identical
    /// to a harness without fault isolation.
    pub fn failure_section(&self) -> String {
        if self.failures.is_empty() {
            return String::new();
        }
        let mut s = String::from("== Failed workloads ==\n");
        for f in &self.failures {
            s.push_str(&format!("{}: FAILED: {}\n", f.name, f.reason));
        }
        s
    }

    /// Print the throughput line (stderr, keeping figure stdout clean)
    /// and write the `BENCH_<binary>.json` sidecar to the working
    /// directory.
    pub fn report(&self, binary: &str, args: &HarnessArgs) {
        eprintln!(
            "[{binary}] {}",
            throughput(self.simulated_cycles, self.host_seconds)
        );
        for f in &self.flaky {
            eprintln!(
                "[{binary}] {} FLAKY: recovered on attempt {} (first error: {})",
                f.name, f.attempts, f.first_error
            );
        }
        for f in &self.failures {
            eprintln!(
                "[{binary}] {} FAILED after {} attempt(s): {}",
                f.name, f.attempts, f.reason
            );
        }
        let chaos = (args.faults.is_some() || args.retries > 0).then(|| {
            chaos_json(
                args.faults.as_ref(),
                args.retries,
                &self.flaky,
                self.failures.len(),
            )
        });
        let doc = bench_json(
            binary,
            args.scale_name(),
            self.simulated_cycles,
            self.ticked_cycles,
            self.host_seconds,
            &self.summaries,
            &self.failures,
            chaos,
        );
        let path = format!("BENCH_{binary}.json");
        if let Err(e) = std::fs::write(&path, doc.render()) {
            eprintln!("[{binary}] cannot write {path}: {e}");
        }
        append_history(&history_row(
            binary,
            args.scale_name(),
            self.simulated_cycles,
            self.ticked_cycles,
            self.host_seconds,
            &self.summaries,
            self.failures.len(),
        ));
    }
}

/// Render the panic payload `catch_unwind` hands back.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Run `f` for every selected workload with a ready [`Experiment`],
/// fanning the workloads out across host threads. Results come back in
/// workload order regardless of completion order; a workload that
/// panics, blows its cycle budget, or returns an error becomes a
/// [`Harvest::failures`] entry (also echoed on stderr), so one poisoned
/// workload cannot sink the rest of a figure.
pub fn run_workloads<R: Send>(
    args: &HarnessArgs,
    f: impl Fn(&Workload, &mut Experiment<'_>) -> Result<R, SystemError> + Sync,
) -> Harvest<R> {
    run_workloads_chaos(
        args.workloads(),
        args.budget_cycles,
        args.faults.clone(),
        args.retries,
        f,
    )
}

/// [`run_workloads`] on an explicit workload list and budget — the seam
/// the fault-isolation tests inject through.
pub fn run_workloads_on<R: Send>(
    ws: Vec<Workload>,
    budget_cycles: Option<u64>,
    f: impl Fn(&Workload, &mut Experiment<'_>) -> Result<R, SystemError> + Sync,
) -> Harvest<R> {
    run_workloads_chaos(ws, budget_cycles, None, 0, f)
}

/// What one workload's attempt loop produced: the success payload (with
/// how many attempts failed before it, for flaky classification) or the
/// last attempt's error.
type AttemptOutcome<R> = Result<(R, WorkloadSummary, u32, Option<String>), String>;

/// [`run_workloads_on`] plus chaos: every attempt runs under `faults`
/// (reseeded per attempt so an exhausted fault schedule does not
/// deterministically recur), and a failed workload is retried on a fresh
/// [`Experiment`] up to `retries` extra times. Success after a failure
/// classifies the workload as [`Harvest::flaky`]; failure of every
/// attempt leaves it in [`Harvest::failures`] (hard).
pub fn run_workloads_chaos<R: Send>(
    ws: Vec<Workload>,
    budget_cycles: Option<u64>,
    faults: Option<FaultPlan>,
    retries: u32,
    f: impl Fn(&Workload, &mut Experiment<'_>) -> Result<R, SystemError> + Sync,
) -> Harvest<R> {
    let n = ws.len();
    type Slot<R> = Mutex<Option<AttemptOutcome<R>>>;
    let slots: Vec<Slot<R>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n.max(1));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let w = &ws[i];
                let mut res: AttemptOutcome<R> = Err("workload was never run".into());
                let mut first_error = None;
                for attempt in 0..=retries {
                    let plan = faults.as_ref().map(|p| p.reseeded(attempt as u64));
                    // AssertUnwindSafe: on panic the closure's experiment
                    // is dropped whole and the attempt becomes an error,
                    // so no half-updated state survives into the harvest
                    // (or into the next attempt, which starts fresh).
                    let w0 = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let mut exp = Experiment::with_cycle_budget(&w.program, budget_cycles)?;
                        exp.set_fault_plan(plan);
                        let r = f(w, &mut exp)?;
                        let elapsed = w0.elapsed().as_secs_f64();
                        Ok::<_, SystemError>((r, workload_summary(w.name, &exp, elapsed)))
                    }));
                    let reason = match outcome {
                        Ok(Ok((r, sm))) => {
                            res = Ok((r, sm, attempt, first_error.take()));
                            break;
                        }
                        Ok(Err(e)) => e.to_string(),
                        Err(payload) => format!("panicked: {}", panic_message(&*payload)),
                    };
                    eprintln!("{} (attempt {}): {reason}", w.name, attempt + 1);
                    if first_error.is_none() {
                        first_error = Some(reason.clone());
                    }
                    res = Err(reason);
                }
                *slots[i].lock().expect("result slot poisoned") = Some(res);
            });
        }
    });
    let host_seconds = t0.elapsed().as_secs_f64();
    let mut results = Vec::new();
    let mut summaries = Vec::new();
    let mut failures = Vec::new();
    let mut flaky = Vec::new();
    let mut simulated_cycles = 0u64;
    let mut ticked_cycles = 0u64;
    for (w, slot) in ws.into_iter().zip(slots) {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok((r, sm, failed_before, first_error))) => {
                simulated_cycles += sm.simulated_cycles;
                ticked_cycles += sm.ticked_cycles;
                if failed_before > 0 {
                    flaky.push(WorkloadFlake {
                        name: w.name,
                        attempts: failed_before + 1,
                        first_error: first_error.unwrap_or_default(),
                    });
                }
                summaries.push(sm);
                results.push((w, r));
            }
            Some(Err(reason)) => failures.push(WorkloadFailure {
                name: w.name,
                reason,
                attempts: retries + 1,
            }),
            None => failures.push(WorkloadFailure {
                name: w.name,
                reason: "workload was never run".into(),
                attempts: 0,
            }),
        }
    }
    Harvest {
        results,
        summaries,
        failures,
        flaky,
        simulated_cycles,
        ticked_cycles,
        host_seconds,
    }
}

/// Render a per-benchmark speedup figure (Figs. 10/11/13 share this
/// shape): one column per (label, strategy, cores). Returns the rendered
/// figure and the sweep's [`Harvest`] so the binary can report
/// throughput.
pub fn speedup_figure(
    title: &str,
    args: &HarnessArgs,
    columns: &[(&str, Strategy, usize)],
) -> (String, Harvest<Vec<f64>>) {
    let mut headers: Vec<&str> = vec!["benchmark"];
    headers.extend(columns.iter().map(|(l, _, _)| *l));
    let mut table = Table::new(&headers);
    let harvest = run_workloads(args, |_, exp| {
        // Fan the column configurations out across host threads first;
        // the reads below all hit the cache.
        let configs: Vec<(Strategy, usize, CoherenceBackend)> = columns
            .iter()
            .map(|&(_, strat, cores)| (strat, cores, args.backend_for(cores)))
            .collect();
        exp.run_all_on(&configs)?;
        let mut vals = Vec::with_capacity(columns.len());
        for &(_, strat, cores) in columns {
            vals.push(exp.run_on(strat, cores, args.backend_for(cores))?.speedup);
        }
        Ok(vals)
    });
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); columns.len()];
    for (w, vals) in &harvest.results {
        let mut cells = vec![w.name.to_string()];
        for (i, v) in vals.iter().enumerate() {
            sums[i].push(*v);
            cells.push(speedup(*v));
        }
        table.row(cells);
    }
    let mut avg = vec!["average".to_string()];
    for col in &sums {
        avg.push(speedup(mean(col)));
    }
    table.row(avg);
    let mut out = format!("{title}\n{}", table.render());
    // Gated on failure, so clean sweeps render byte-identically.
    let fails = harvest.failure_section();
    if !fails.is_empty() {
        out.push('\n');
        out.push_str(&fails);
    }
    (out, harvest)
}

/// Render the Fig. 12 stall-breakdown cells for one run.
pub fn stall_row(r: &RunResult, baseline: u64) -> Vec<String> {
    StallCategory::ALL
        .iter()
        .map(|&c| format!("{:.3}", r.normalized_stall(c, baseline)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_filter_selects_one() {
        let args = HarnessArgs {
            scale: Scale::Test,
            only: Some("164.gzip".into()),
            budget_cycles: None,
            trace_out: None,
            probes_out: None,
            backend: CoherenceBackend::Snooping,
            faults: None,
            retries: 0,
        };
        let ws = args.workloads();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].name, "164.gzip");
        let none = HarnessArgs {
            scale: Scale::Test,
            only: Some("nope".into()),
            budget_cycles: None,
            trace_out: None,
            probes_out: None,
            backend: CoherenceBackend::Snooping,
            faults: None,
            retries: 0,
        };
        assert!(none.workloads().is_empty());
    }

    #[test]
    fn speedup_figure_renders_rows_and_average() {
        let args = HarnessArgs {
            scale: Scale::Test,
            only: Some("rawcaudio".into()),
            budget_cycles: None,
            trace_out: None,
            probes_out: None,
            backend: CoherenceBackend::Snooping,
            faults: None,
            retries: 0,
        };
        let (out, harvest) = speedup_figure("t", &args, &[("serial", Strategy::Serial, 1)]);
        assert!(out.contains("rawcaudio"));
        assert!(out.contains("average"));
        assert!(out.contains("1.00"));
        assert_eq!(harvest.results.len(), 1);
        assert!(harvest.simulated_cycles > 0);
    }

    #[test]
    fn run_workloads_collects_summaries_and_json() {
        let args = HarnessArgs {
            scale: Scale::Test,
            only: Some("rawcaudio".into()),
            budget_cycles: None,
            trace_out: None,
            probes_out: None,
            backend: CoherenceBackend::Snooping,
            faults: None,
            retries: 0,
        };
        let h = run_workloads(&args, |w, exp| {
            exp.run(Strategy::Serial, 1)?;
            Ok(w.name)
        });
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].1, "rawcaudio");
        assert_eq!(h.summaries[0].name, "rawcaudio");
        assert!(!h.summaries[0].runs.is_empty(), "run inventory captured");
        assert!(h.failures.is_empty());
        assert_eq!(h.failure_section(), "");
        assert!(h.cycles_per_second() > 0.0);
        let doc = bench_json(
            "t",
            args.scale_name(),
            h.simulated_cycles,
            h.ticked_cycles,
            h.host_seconds,
            &h.summaries,
            &h.failures,
            None,
        );
        let s = doc.render();
        assert!(s.contains("\"binary\":\"t\""));
        assert!(s.contains("\"name\":\"rawcaudio\""));
        assert!(s.contains("\"strategy\":\"serial\""));
        assert!(s.contains("\"backend\":\"snooping\""));
        assert!(s.contains("\"failures\":[]"));
        assert!(s.contains("\"ticked_cycles\""));
        assert!(s.contains("\"skip_efficiency\""));
        assert!(s.contains("\"host_seconds\""));
    }

    /// A deliberately panicking workload must become a marked-failed row
    /// while the other workloads' results are still produced.
    #[test]
    fn panicking_workload_is_isolated() {
        let ws: Vec<Workload> = all(Scale::Test)
            .into_iter()
            .filter(|w| w.name == "rawcaudio" || w.name == "164.gzip")
            .collect();
        assert_eq!(ws.len(), 2);
        let h = run_workloads_on(ws, None, |w, exp| {
            if w.name == "164.gzip" {
                panic!("injected fault in {}", w.name);
            }
            exp.run(Strategy::Serial, 1)?;
            Ok(w.name)
        });
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].1, "rawcaudio");
        assert_eq!(h.summaries.len(), 1);
        assert_eq!(h.failures.len(), 1);
        assert_eq!(h.failures[0].name, "164.gzip");
        assert!(
            h.failures[0].reason.contains("injected fault in 164.gzip"),
            "{}",
            h.failures[0].reason
        );
        let section = h.failure_section();
        assert!(section.contains("== Failed workloads =="));
        assert!(section.contains("164.gzip: FAILED:"));
        let doc = bench_json(
            "t",
            "test",
            h.simulated_cycles,
            h.ticked_cycles,
            1.0,
            &h.summaries,
            &h.failures,
            None,
        );
        assert!(doc.render().contains("injected fault"));
    }

    /// A workload that fails once and then succeeds on a retry is
    /// classified flaky, not failed: its results are harvested and the
    /// first error is kept for the sidecar.
    #[test]
    fn flaky_workload_recovers_on_retry() {
        use std::sync::atomic::AtomicU32;
        let ws: Vec<Workload> = all(Scale::Test)
            .into_iter()
            .filter(|w| w.name == "rawcaudio")
            .collect();
        let calls = AtomicU32::new(0);
        let h = run_workloads_chaos(ws, None, None, 2, |w, exp| {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient failure");
            }
            exp.run(Strategy::Serial, 1)?;
            Ok(w.name)
        });
        assert_eq!(h.results.len(), 1);
        assert!(h.failures.is_empty());
        assert_eq!(h.flaky.len(), 1);
        assert_eq!(h.flaky[0].name, "rawcaudio");
        assert_eq!(h.flaky[0].attempts, 2);
        assert!(
            h.flaky[0].first_error.contains("transient failure"),
            "{}",
            h.flaky[0].first_error
        );
        let doc = chaos_json(None, 2, &h.flaky, h.failures.len());
        let s = doc.render();
        assert!(s.contains("\"flaky\""));
        assert!(s.contains("\"attempts\":2"));
        assert!(s.contains("\"hard\":0"));
    }

    /// A workload that fails every attempt is a hard failure carrying the
    /// full attempt count.
    #[test]
    fn hard_failure_exhausts_its_retries() {
        let ws: Vec<Workload> = all(Scale::Test)
            .into_iter()
            .filter(|w| w.name == "rawcaudio")
            .collect();
        let h = run_workloads_chaos(ws, None, None, 2, |_, _| -> Result<(), SystemError> {
            panic!("hard failure")
        });
        assert!(h.results.is_empty());
        assert!(h.flaky.is_empty());
        assert_eq!(h.failures.len(), 1);
        assert_eq!(h.failures[0].attempts, 3);
        assert!(h.failures[0].reason.contains("hard failure"));
    }

    /// A sweep under a real fault plan recovers (the experiment's output
    /// check holds faulted runs to the golden memory) and surfaces the
    /// injection counters in the summary and sidecar.
    #[test]
    fn faulted_sweep_recovers_and_reports_counters() {
        use voltron_core::FaultSite;
        let ws: Vec<Workload> = all(Scale::Test)
            .into_iter()
            .filter(|w| w.name == "rawcaudio")
            .collect();
        let plan = FaultPlan::seeded(7, 0.01).only(FaultSite::Fetch);
        let h = run_workloads_chaos(ws, None, Some(plan.clone()), 0, |w, exp| {
            exp.run(Strategy::Serial, 1)?;
            Ok(w.name)
        });
        assert!(h.failures.is_empty(), "{:?}", h.failures);
        assert!(h.summaries[0].faults.any(), "no fetch faults fired");
        assert_eq!(
            h.summaries[0].faults.injected(),
            h.summaries[0].faults.recovered(),
            "every injected fetch hiccup is recovered at injection"
        );
        let doc = bench_json(
            "t",
            "test",
            h.simulated_cycles,
            h.ticked_cycles,
            1.0,
            &h.summaries,
            &h.failures,
            Some(chaos_json(Some(&plan), 0, &h.flaky, h.failures.len())),
        );
        let s = doc.render();
        assert!(
            s.contains("\"plan\":\"seed=7,rate=0.01,site=fetch\""),
            "{s}"
        );
        assert!(s.contains("\"injected\""));
        assert!(s.contains("\"fetch\""));
    }

    /// A workload that exceeds its simulated-cycle budget fails with
    /// `MaxCycles` instead of holding its host thread.
    #[test]
    fn budget_overrun_is_a_marked_failure() {
        let ws: Vec<Workload> = all(Scale::Test)
            .into_iter()
            .filter(|w| w.name == "rawcaudio")
            .collect();
        let h = run_workloads_on(ws, Some(10), |w, exp| {
            exp.run(Strategy::Serial, 1)?;
            Ok(w.name)
        });
        assert!(h.results.is_empty());
        assert_eq!(h.failures.len(), 1);
        assert!(
            h.failures[0].reason.contains("max cycles"),
            "{}",
            h.failures[0].reason
        );
    }
}
