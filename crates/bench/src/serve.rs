//! `voltron-serve`: a persistent simulation service.
//!
//! The one-shot binaries (`bench_one`, the `fig*` drivers) pay the full
//! pipeline on every invocation: interpret the golden model, profile and
//! compile the program, build a machine, simulate, tear everything down.
//! For interactive exploration and CI farms that ask many small questions
//! about the same workloads, almost all of that work is re-derivable from
//! content alone. This module keeps it resident:
//!
//! * **Content-addressed caching** ([`Engine`]): programs are keyed by a
//!   hash of their printed IR (not their name), so two requests for the
//!   same content share one golden memory, one serial baseline, at most
//!   two compiler [`FrontEnd`]s (see [`FrontEnd::key`]), one compiled
//!   [`MachineProgram`] image per (strategy, cores, backend), and — when
//!   a request carries no observability or idealization — one cached
//!   [`RunResult`], exactly mirroring `Experiment`'s own result cache.
//! * **Pooled, resettable machines**: simulated machines are expensive to
//!   allocate (caches, network CAMs, TM buffers). Finished machines park
//!   in per-(cores, backend) free-lists and are revived with
//!   [`Machine::reset`], whose reuse-equals-fresh contract is pinned by
//!   the golden tests. A machine that panics, errors, or fails output
//!   validation is *retired* (dropped), never re-pooled.
//! * **A work-stealing scheduler** ([`Server`]): requests land in bounded
//!   per-worker queues; idle workers steal from the back of busy ones.
//!   Each simulation runs under `catch_unwind`, so one poisoned request
//!   becomes a typed error row while the daemon keeps serving.
//!
//! The wire protocol is line-delimited JSON over TCP or stdin (see
//! [`parse_request`] / [`Response::to_json`]); rows carry the same run
//! fields as the `BENCH_*.json` sidecars so `bench_diff` and the perf
//! history understand served results unchanged. DESIGN.md §12 documents
//! the invariants.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use voltron_compiler::{compile_prepared, CompileOptions, FrontEnd};
use voltron_core::report::Json;
use voltron_core::{
    machine_config, outputs_equivalent, run_reference, KnobCeiling, KnobId, ObsRequest,
    ProbeSummary, RegionDiagnosis, RunResult, Strategy, SystemError, WhatIfReport,
};
use voltron_ir::{Memory, Program};
use voltron_sim::whatif::region_stacks;
use voltron_sim::{
    ChromeTracer, CoherenceBackend, CycleStack, FaultPlan, IdealKnobs, Machine, MachineProgram,
    REGION_OUTSIDE,
};
use voltron_workloads::{by_name, Scale};

use crate::harness::DEFAULT_PROBE_PERIOD;
use crate::jsonv::JValue;

/// The scale label used on the wire and in pool/report keys.
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Full => "full",
    }
}

/// Parse a wire scale label.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "test" => Some(Scale::Test),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// One simulation request, as carried on the wire.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response row.
    pub id: u64,
    /// Workload name (must exist in `voltron_workloads::all`).
    pub workload: String,
    /// Workload scale (wire default: `test`).
    pub scale: Scale,
    /// Compilation strategy (wire default: `hybrid`).
    pub strategy: Strategy,
    /// Core count (wire default: 4).
    pub cores: usize,
    /// Coherence backend; directory bank counts resolve per core count
    /// exactly like the harness (`CoherenceBackend::directory_for`).
    pub backend: CoherenceBackend,
    /// Per-request deadline as a simulated-cycle budget: the run fails
    /// with a typed `sim` error instead of holding a worker.
    pub budget_cycles: Option<u64>,
    /// Fault plan (`seed=N,rate=R[,site=LABEL]` syntax).
    pub faults: Option<FaultPlan>,
    /// Bypass the result cache: always simulate, and don't publish the
    /// result. Load generators use this to measure true simulation
    /// throughput; trace/probe requests imply it.
    pub fresh: bool,
    /// Attach the bottleneck what-if report to the response.
    pub whatif: bool,
    /// Sample interval probes (at the harness default period) and attach
    /// their summary.
    pub probes: bool,
    /// Attach the Chrome trace-event JSON.
    pub trace: bool,
}

impl Request {
    /// A plain request for one configuration (the defaults the wire uses).
    pub fn new(workload: &str, strategy: Strategy, cores: usize) -> Request {
        Request {
            id: 0,
            workload: workload.to_string(),
            scale: Scale::Test,
            strategy,
            cores,
            backend: CoherenceBackend::Snooping,
            budget_cycles: None,
            faults: None,
            fresh: false,
            whatif: false,
            probes: false,
            trace: false,
        }
    }
}

/// A typed request failure. The daemon never dies for a bad request: the
/// kind is the machine-readable row discriminator, the message is for
/// humans.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The request line did not parse or had invalid fields.
    BadRequest(String),
    /// No workload of that name exists at that scale.
    UnknownWorkload(String),
    /// Compilation failed.
    Compile(String),
    /// Simulation failed (budget exhaustion lands here as `MaxCycles`).
    Sim(String),
    /// The golden (interpreter) run failed.
    Golden(String),
    /// The machine's output disagreed with the golden model.
    Mismatch(String),
    /// The simulation panicked; the worker survived, the machine was
    /// retired.
    Panic(String),
}

impl ServeError {
    /// Machine-readable discriminator for the response row.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad-request",
            ServeError::UnknownWorkload(_) => "unknown-workload",
            ServeError::Compile(_) => "compile",
            ServeError::Sim(_) => "sim",
            ServeError::Golden(_) => "golden",
            ServeError::Mismatch(_) => "mismatch",
            ServeError::Panic(_) => "panic",
        }
    }

    /// Human-readable detail.
    pub fn message(&self) -> &str {
        match self {
            ServeError::BadRequest(m)
            | ServeError::UnknownWorkload(m)
            | ServeError::Compile(m)
            | ServeError::Sim(m)
            | ServeError::Golden(m)
            | ServeError::Mismatch(m)
            | ServeError::Panic(m) => m,
        }
    }
}

impl From<SystemError> for ServeError {
    fn from(e: SystemError) -> ServeError {
        match e {
            SystemError::Compile(c) => ServeError::Compile(c.to_string()),
            SystemError::Sim(s) => ServeError::Sim(s.to_string()),
            SystemError::Golden(g) => ServeError::Golden(g.to_string()),
            SystemError::OutputMismatch { .. } => ServeError::Mismatch(e.to_string()),
        }
    }
}

/// Which cache layers a request hit (for the response row and the
/// saturation benchmark's hit-rate report).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheInfo {
    /// The golden memory + serial baseline were already resident.
    pub golden_hit: bool,
    /// The compiler front end was already built.
    pub front_end_hit: bool,
    /// The compiled machine image was already built.
    pub image_hit: bool,
    /// The run was served from the result cache (no simulation at all).
    pub result_hit: bool,
    /// The machine came from the free-list (reset) rather than `new`.
    pub machine_pooled: bool,
}

/// A successfully served request.
#[derive(Debug)]
pub struct Served {
    /// The architectural result — field-for-field what the direct
    /// `Experiment` path produces for the same configuration.
    pub run: Arc<RunResult>,
    /// Serial 1-core cycles (the speedup denominator).
    pub baseline_cycles: u64,
    /// Bottleneck report, when requested.
    pub whatif: Option<WhatIfReport>,
    /// Interval probe summary, when requested.
    pub probes: Option<ProbeSummary>,
    /// Chrome trace-event JSON, when requested.
    pub trace_json: Option<String>,
    /// Cache layers hit.
    pub cache: CacheInfo,
    /// Host microseconds spent executing (queue wait excluded).
    pub host_micros: u64,
}

/// One response row. `Run` carries the simulation result; `Stats` answers
/// an in-band `{"stats": true}` probe with the daemon's counters.
#[derive(Debug)]
pub enum Response {
    /// A simulation response.
    Run {
        /// Echoed request id.
        id: u64,
        /// Echoed workload name.
        workload: String,
        /// Echoed scale label.
        scale: &'static str,
        /// End-to-end latency (queue wait + execution), microseconds.
        latency_micros: u64,
        /// The result or a typed error.
        result: Result<Box<Served>, ServeError>,
    },
    /// A server-statistics response.
    Stats {
        /// Echoed request id.
        id: u64,
        /// The counters document.
        stats: Json,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Run { id, .. } | Response::Stats { id, .. } => *id,
        }
    }

    /// Render the NDJSON wire row. Run rows carry the same fields as a
    /// `BENCH_*.json` run entry (strategy/cores/backend/cycles/speedup/
    /// dominant_stall) plus serve metadata; error rows carry the typed
    /// kind and message.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Stats { id, stats } => Json::Obj(vec![
                ("id".into(), Json::UInt(*id)),
                ("ok".into(), Json::UInt(1)),
                ("stats".into(), stats.clone()),
            ]),
            Response::Run {
                id,
                workload,
                scale,
                latency_micros,
                result,
            } => {
                let mut fields = vec![
                    ("id".into(), Json::UInt(*id)),
                    ("workload".into(), Json::Str(workload.clone())),
                    ("scale".into(), Json::Str((*scale).into())),
                ];
                match result {
                    Err(e) => {
                        fields.push(("ok".into(), Json::UInt(0)));
                        fields.push(("error".into(), Json::Str(e.kind().into())));
                        fields.push(("message".into(), Json::Str(e.message().into())));
                    }
                    Ok(s) => {
                        let r = &s.run;
                        fields.push(("ok".into(), Json::UInt(1)));
                        fields.push(("strategy".into(), Json::Str(r.strategy.to_string())));
                        fields.push(("cores".into(), Json::UInt(r.cores as u64)));
                        fields.push(("backend".into(), Json::Str(r.backend.label().into())));
                        fields.push(("cycles".into(), Json::UInt(r.cycles)));
                        fields.push(("ticked_cycles".into(), Json::UInt(r.ticked_cycles)));
                        fields.push(("speedup".into(), Json::Num(r.speedup)));
                        fields.push(("baseline_cycles".into(), Json::UInt(s.baseline_cycles)));
                        if let Some((reason, _)) = r.stats.dominant_stall() {
                            fields.push(("dominant_stall".into(), Json::Str(reason.to_string())));
                        }
                        fields.push((
                            "cache".into(),
                            Json::Obj(vec![
                                ("golden".into(), hit(s.cache.golden_hit)),
                                ("front_end".into(), hit(s.cache.front_end_hit)),
                                ("image".into(), hit(s.cache.image_hit)),
                                ("result".into(), hit(s.cache.result_hit)),
                                (
                                    "machine".into(),
                                    Json::Str(
                                        if s.cache.machine_pooled {
                                            "pooled"
                                        } else {
                                            "fresh"
                                        }
                                        .into(),
                                    ),
                                ),
                            ]),
                        ));
                        if let Some(w) = &s.whatif {
                            fields.push(("whatif".into(), crate::harness::whatif_json(w)));
                        }
                        if let Some(p) = &s.probes {
                            fields.push(("probes".into(), crate::harness::probe_summary_json(p)));
                        }
                        if r.stats.faults.any() {
                            fields.push((
                                "faults".into(),
                                crate::harness::fault_stats_json(&r.stats.faults),
                            ));
                        }
                        if let Some(t) = &s.trace_json {
                            fields.push(("trace".into(), Json::Str(t.clone())));
                        }
                        fields.push(("host_micros".into(), Json::UInt(s.host_micros)));
                    }
                }
                fields.push(("latency_micros".into(), Json::UInt(*latency_micros)));
                Json::Obj(fields)
            }
        }
    }
}

fn hit(b: bool) -> Json {
    Json::Str(if b { "hit" } else { "miss" }.into())
}

/// Parse one NDJSON request line. `{"stats": true}` probes are handled by
/// the connection loop before this is called.
///
/// # Errors
/// A human-readable message naming the offending field.
pub fn parse_request(v: &JValue) -> Result<Request, String> {
    let workload = v
        .get("workload")
        .and_then(JValue::as_str)
        .ok_or("missing 'workload'")?;
    let mut req = Request::new(workload, Strategy::Hybrid, 4);
    if let Some(id) = v.get("id") {
        req.id = id.as_num().ok_or("'id' must be a number")? as u64;
    }
    if let Some(s) = v.get("scale") {
        let s = s.as_str().ok_or("'scale' must be a string")?;
        req.scale = parse_scale(s).ok_or_else(|| format!("unknown scale {s:?}"))?;
    }
    if let Some(s) = v.get("strategy") {
        let s = s.as_str().ok_or("'strategy' must be a string")?;
        req.strategy = Strategy::parse(s).ok_or_else(|| format!("unknown strategy {s:?}"))?;
    }
    if let Some(c) = v.get("cores") {
        let c = c.as_num().ok_or("'cores' must be a number")?;
        if c < 1.0 || c.fract() != 0.0 {
            return Err("'cores' must be a positive integer".into());
        }
        req.cores = c as usize;
    }
    if let Some(b) = v.get("backend") {
        let b = b.as_str().ok_or("'backend' must be a string")?;
        let parsed = CoherenceBackend::parse(b).ok_or_else(|| format!("unknown backend {b:?}"))?;
        // Resolve directory bank counts to the machine size, exactly like
        // `HarnessArgs::backend_for`, so served configs match the harness.
        req.backend = match parsed {
            CoherenceBackend::Snooping => CoherenceBackend::Snooping,
            CoherenceBackend::Directory { .. } => CoherenceBackend::directory_for(req.cores),
        };
    }
    if let Some(n) = v.get("budget_cycles") {
        req.budget_cycles = Some(n.as_num().ok_or("'budget_cycles' must be a number")? as u64);
    }
    if let Some(f) = v.get("faults") {
        let spec = f.as_str().ok_or("'faults' must be a spec string")?;
        req.faults = Some(FaultPlan::parse(spec)?);
    }
    let flag = |field: &str| -> Result<bool, String> {
        match v.get(field) {
            None => Ok(false),
            Some(JValue::Bool(x)) => Ok(*x),
            Some(_) => Err(format!("'{field}' must be a boolean")),
        }
    };
    req.fresh = flag("fresh")?;
    req.whatif = flag("whatif")?;
    req.probes = flag("probes")?;
    req.trace = flag("trace")?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Content-addressed engine
// ---------------------------------------------------------------------------

/// FNV-1a over the printed IR: names are *not* part of the identity, so
/// renaming a workload (or requesting the same content under two names)
/// shares every cache layer.
fn content_hash(program: &Program) -> u64 {
    let text = voltron_ir::pretty::program_to_string(program);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Golden model + serial baseline for one program, computed once.
struct Golden {
    memory: Memory,
    baseline_cycles: u64,
}

/// A compiled machine image plus its planner metadata.
struct Image {
    machine: Arc<MachineProgram>,
    region_kinds: HashMap<u32, &'static str>,
    region_weights: HashMap<u32, u64>,
}

/// Key of one cached result: everything that can move the architectural
/// numbers. Observed or idealized runs never cache (mirroring
/// `Experiment::run_observed`), so neither appears here.
type ResultKey = (
    Strategy,
    usize,
    CoherenceBackend,
    Option<u64>,
    Option<String>,
);

/// Everything the engine keeps per distinct program content.
struct ProgramEntry {
    program: Program,
    golden: Mutex<Option<Arc<Golden>>>,
    /// Front ends, indexed by [`FrontEnd::key`] like `Experiment`.
    front_ends: Mutex<[Option<Arc<FrontEnd>>; 2]>,
    images: Mutex<HashMap<(Strategy, usize, CoherenceBackend), Arc<Image>>>,
    results: Mutex<HashMap<ResultKey, Arc<RunResult>>>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    golden_hits: AtomicU64,
    golden_misses: AtomicU64,
    fe_hits: AtomicU64,
    fe_misses: AtomicU64,
    image_hits: AtomicU64,
    image_misses: AtomicU64,
    result_hits: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    retired: AtomicU64,
}

/// The content-addressed simulation engine: program registry, compile
/// caches, result cache, and the machine pool. Thread-safe; every method
/// takes `&self`.
pub struct Engine {
    /// (workload name, scale label) → content hash, so repeat requests
    /// skip re-rendering the IR.
    names: Mutex<HashMap<(String, &'static str), u64>>,
    programs: Mutex<HashMap<u64, Arc<ProgramEntry>>>,
    /// Parked machines per (cores, backend label); revived by
    /// [`Machine::reset`].
    pool: Mutex<HashMap<(usize, &'static str), Vec<Machine>>>,
    pool_cap: usize,
    counters: Counters,
}

impl Engine {
    /// An empty engine whose free-lists keep at most `pool_cap` machines
    /// per (cores, backend) shape.
    pub fn new(pool_cap: usize) -> Engine {
        Engine {
            names: Mutex::new(HashMap::new()),
            programs: Mutex::new(HashMap::new()),
            pool: Mutex::new(HashMap::new()),
            pool_cap: pool_cap.max(1),
            counters: Counters::default(),
        }
    }

    /// Execute one request to completion on the calling thread.
    ///
    /// # Errors
    /// A typed [`ServeError`]; the engine stays fully serviceable.
    pub fn execute(&self, req: &Request) -> Result<Served, ServeError> {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let out = self.execute_inner(req, t0);
        match &out {
            Ok(_) => self.counters.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.counters.errors.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    fn execute_inner(&self, req: &Request, t0: Instant) -> Result<Served, ServeError> {
        let entry = self.entry(&req.workload, req.scale)?;
        let (golden, golden_hit) = self.golden(&entry)?;
        let obs = ObsRequest {
            chrome_trace: req.trace,
            probe_period: req.probes.then_some(DEFAULT_PROBE_PERIOD),
        };
        let cacheable = !req.trace && !req.probes && !req.fresh;
        let result_key: ResultKey = (
            req.strategy,
            req.cores,
            req.backend,
            req.budget_cycles,
            req.faults.as_ref().map(FaultPlan::spec),
        );
        if cacheable {
            let results = entry.results.lock().expect("results lock");
            if let Some(run) = results.get(&result_key) {
                self.counters.result_hits.fetch_add(1, Ordering::Relaxed);
                let run = Arc::clone(run);
                drop(results);
                let mut cache = CacheInfo {
                    golden_hit,
                    front_end_hit: true,
                    image_hit: true,
                    result_hit: true,
                    machine_pooled: false,
                };
                let whatif = if req.whatif {
                    Some(self.whatif(&entry, &golden, req, &run, &mut cache)?)
                } else {
                    None
                };
                return Ok(Served {
                    run,
                    baseline_cycles: golden.baseline_cycles,
                    whatif,
                    probes: None,
                    trace_json: None,
                    cache,
                    host_micros: t0.elapsed().as_micros() as u64,
                });
            }
        }
        let (run, probes, trace_json, mut cache) = self.run_config(
            &entry,
            &golden,
            req.strategy,
            req.cores,
            req.backend,
            req.budget_cycles,
            req.faults.as_ref(),
            IdealKnobs::default(),
            &obs,
        )?;
        cache.golden_hit = golden_hit;
        let run = Arc::new(run);
        if cacheable {
            entry
                .results
                .lock()
                .expect("results lock")
                .insert(result_key, Arc::clone(&run));
        }
        let whatif = if req.whatif {
            Some(self.whatif(&entry, &golden, req, &run, &mut cache)?)
        } else {
            None
        };
        Ok(Served {
            probes: probes.as_ref().map(|p| p.summary()),
            run,
            baseline_cycles: golden.baseline_cycles,
            whatif,
            trace_json: if req.trace { Some(trace_json) } else { None },
            cache,
            host_micros: t0.elapsed().as_micros() as u64,
        })
    }

    /// Resolve a workload to its content-addressed program entry.
    fn entry(&self, workload: &str, scale: Scale) -> Result<Arc<ProgramEntry>, ServeError> {
        let name_key = (workload.to_string(), scale_label(scale));
        if let Some(h) = self.names.lock().expect("names lock").get(&name_key) {
            let programs = self.programs.lock().expect("programs lock");
            if let Some(e) = programs.get(h) {
                return Ok(Arc::clone(e));
            }
        }
        let w = by_name(workload, scale).ok_or_else(|| {
            ServeError::UnknownWorkload(format!(
                "no workload {workload:?} at scale {}",
                scale_label(scale)
            ))
        })?;
        let h = content_hash(&w.program);
        let entry = {
            let mut programs = self.programs.lock().expect("programs lock");
            Arc::clone(programs.entry(h).or_insert_with(|| {
                Arc::new(ProgramEntry {
                    program: w.program,
                    golden: Mutex::new(None),
                    front_ends: Mutex::new([None, None]),
                    images: Mutex::new(HashMap::new()),
                    results: Mutex::new(HashMap::new()),
                })
            }))
        };
        self.names.lock().expect("names lock").insert(name_key, h);
        Ok(entry)
    }

    /// Golden memory + serial baseline, computed once per program. The
    /// baseline runs unbudgeted — like `Experiment::new` it is the
    /// denominator every served speedup shares — and its machine goes
    /// through the same pool as every other run.
    fn golden(&self, entry: &Arc<ProgramEntry>) -> Result<(Arc<Golden>, bool), ServeError> {
        let mut slot = entry.golden.lock().expect("golden lock");
        if let Some(g) = slot.as_ref() {
            self.counters.golden_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(g), true));
        }
        self.counters.golden_misses.fetch_add(1, Ordering::Relaxed);
        let memory = run_reference(&entry.program)
            .map_err(|e| ServeError::Golden(e.to_string()))?
            .memory;
        // Bootstrap: a provisional golden with baseline 0 lets the
        // baseline run itself flow through `run_config` (its speedup
        // field is meaningless and discarded).
        let boot = Golden {
            memory,
            baseline_cycles: 0,
        };
        let (base, _, _, _) = self.run_config(
            entry,
            &boot,
            Strategy::Serial,
            1,
            CoherenceBackend::Snooping,
            None,
            None,
            IdealKnobs::default(),
            &ObsRequest::default(),
        )?;
        let g = Arc::new(Golden {
            memory: boot.memory,
            baseline_cycles: base.cycles,
        });
        *slot = Some(Arc::clone(&g));
        Ok((g, false))
    }

    /// The front end for this configuration, built at most twice per
    /// program ([`FrontEnd::key`]). Like `Experiment::ensure_front_end`,
    /// the backend is irrelevant: front ends depend on geometry only.
    fn front_end(
        &self,
        entry: &ProgramEntry,
        strategy: Strategy,
        cores: usize,
    ) -> Result<(Arc<FrontEnd>, bool), ServeError> {
        let mcfg = machine_config(cores, CoherenceBackend::Snooping);
        let opts = CompileOptions::default();
        let idx = usize::from(FrontEnd::key(strategy, &mcfg, &opts));
        let mut slots = entry.front_ends.lock().expect("front-end lock");
        if let Some(fe) = slots[idx].as_ref() {
            self.counters.fe_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(fe), true));
        }
        self.counters.fe_misses.fetch_add(1, Ordering::Relaxed);
        let fe = Arc::new(
            FrontEnd::new(&entry.program, strategy, &mcfg, &opts)
                .map_err(|e| ServeError::Compile(e.to_string()))?,
        );
        slots[idx] = Some(Arc::clone(&fe));
        Ok((fe, false))
    }

    /// The compiled machine image for one (strategy, cores, backend).
    fn image(
        &self,
        entry: &ProgramEntry,
        fe: &FrontEnd,
        strategy: Strategy,
        cores: usize,
        backend: CoherenceBackend,
    ) -> Result<(Arc<Image>, bool), ServeError> {
        let key = (strategy, cores, backend);
        {
            let images = entry.images.lock().expect("image lock");
            if let Some(img) = images.get(&key) {
                self.counters.image_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(img), true));
            }
        }
        self.counters.image_misses.fetch_add(1, Ordering::Relaxed);
        let mcfg = machine_config(cores, backend);
        let opts = CompileOptions::default();
        let compiled = compile_prepared(fe, strategy, &mcfg, &opts)
            .map_err(|e| ServeError::Compile(e.to_string()))?;
        let img = Arc::new(Image {
            machine: Arc::new(compiled.machine),
            region_kinds: compiled.region_kinds,
            region_weights: compiled.region_weights,
        });
        let mut images = entry.images.lock().expect("image lock");
        // A racing worker may have inserted first; keep the resident one
        // so every machine shares a single program allocation.
        let img = Arc::clone(images.entry(key).or_insert(img));
        Ok((img, false))
    }

    /// Take a machine for this shape from the free-list (reset to the new
    /// program and config) or build a fresh one.
    fn checkout(
        &self,
        cores: usize,
        backend: CoherenceBackend,
        program: &Arc<MachineProgram>,
        cfg: &voltron_sim::MachineConfig,
    ) -> Result<(Machine, bool), ServeError> {
        let key = (cores, backend.label());
        let parked = self
            .pool
            .lock()
            .expect("pool lock")
            .get_mut(&key)
            .and_then(Vec::pop);
        if let Some(mut m) = parked {
            match m.reset(Arc::clone(program), cfg) {
                Ok(()) => {
                    self.counters.pool_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((m, true));
                }
                Err(_) => {
                    // A reset can only fail on program/config validation;
                    // retire the machine and fall through to a fresh build
                    // (which will report the same validation error).
                    self.counters.retired.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.counters.pool_misses.fetch_add(1, Ordering::Relaxed);
        let m = Machine::new_shared(Arc::clone(program), cfg)
            .map_err(|e| ServeError::Sim(e.to_string()))?;
        Ok((m, false))
    }

    /// Park a machine that finished a *successful* run. Errored,
    /// panicked, or output-mismatched machines never come back here.
    fn checkin(&self, cores: usize, backend: CoherenceBackend, machine: Machine) {
        let key = (cores, backend.label());
        let mut pool = self.pool.lock().expect("pool lock");
        let list = pool.entry(key).or_default();
        if list.len() < self.pool_cap {
            list.push(machine);
        } else {
            self.counters.retired.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Compile (through the caches) and simulate (through the pool) one
    /// configuration, mirroring the direct path's `run_prepared_obs`
    /// field for field.
    #[allow(clippy::too_many_arguments)]
    fn run_config(
        &self,
        entry: &ProgramEntry,
        golden: &Golden,
        strategy: Strategy,
        cores: usize,
        backend: CoherenceBackend,
        budget: Option<u64>,
        faults: Option<&FaultPlan>,
        ideal: IdealKnobs,
        obs: &ObsRequest,
    ) -> Result<
        (
            RunResult,
            Option<voltron_sim::ProbeSeries>,
            String,
            CacheInfo,
        ),
        ServeError,
    > {
        let (fe, front_end_hit) = self.front_end(entry, strategy, cores)?;
        let (image, image_hit) = self.image(entry, &fe, strategy, cores, backend)?;
        // The budget caps simulation only and the idealization knobs are
        // simulator-side only: the compiler saw the pristine config above,
        // exactly like the direct path.
        let mut sim_cfg = machine_config(cores, backend);
        if let Some(b) = budget {
            sim_cfg.max_cycles = sim_cfg.max_cycles.min(b);
        }
        sim_cfg.ideal = ideal;
        sim_cfg.probe_period = obs.probe_period;
        sim_cfg.faults = faults.cloned();
        let (mut machine, machine_pooled) =
            self.checkout(cores, backend, &image.machine, &sim_cfg)?;
        if obs.chrome_trace {
            machine.set_tracer(Box::new(ChromeTracer::new()));
        }
        let out = match machine.run_mut() {
            Ok(o) => o,
            Err(e) => {
                // The machine holds a wedged or budget-blown execution;
                // retire it rather than trusting reset to unwedge it.
                drop(machine);
                self.counters.retired.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Sim(e.to_string()));
            }
        };
        if let Err(addr) = outputs_equivalent(&golden.memory, &out.memory) {
            drop(machine);
            self.counters.retired.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Mismatch(format!(
                "output mismatch under {strategy}/{cores} cores at {addr:#x}"
            )));
        }
        self.checkin(cores, backend, machine);
        let cycles = out.stats.cycles;
        let trace_json = match (obs.chrome_trace, &out.probes) {
            (true, Some(series)) => voltron_sim::trace_with_counters(&out.trace, series),
            _ => out.trace,
        };
        Ok((
            RunResult {
                strategy,
                cores,
                backend,
                cycles,
                ticked_cycles: out.ticked_cycles,
                speedup: golden.baseline_cycles as f64 / cycles.max(1) as f64,
                stats: out.stats,
                region_kinds: image.region_kinds.clone(),
                region_weights: image.region_weights.clone(),
            },
            out.probes,
            trace_json,
            CacheInfo {
                golden_hit: false,
                front_end_hit,
                image_hit,
                result_hit: false,
                machine_pooled,
            },
        ))
    }

    /// Bottleneck what-if for a served run: the CPI stack and region
    /// diagnoses come from the measured run, then the same binary is
    /// re-simulated once per idealization knob (through the same machine
    /// pool). Mirrors `Experiment::whatif_on`.
    fn whatif(
        &self,
        entry: &ProgramEntry,
        golden: &Golden,
        req: &Request,
        measured: &RunResult,
        cache: &mut CacheInfo,
    ) -> Result<WhatIfReport, ServeError> {
        let stack = CycleStack::of(&measured.stats);
        let regions: Vec<RegionDiagnosis> = region_stacks(&measured.stats)
            .into_iter()
            .map(|rs| RegionDiagnosis {
                region: rs.region,
                kind: if rs.region == REGION_OUTSIDE {
                    "outside"
                } else {
                    measured
                        .region_kinds
                        .get(&rs.region)
                        .copied()
                        .unwrap_or("?")
                },
                bound_by: rs.bound_by(),
                stack: rs,
            })
            .collect();
        let bound_by = stack.bound_by();
        let mut ceilings = Vec::with_capacity(KnobId::ALL.len());
        for knob in KnobId::ALL {
            let (r, _, _, c) = self.run_config(
                entry,
                golden,
                req.strategy,
                req.cores,
                req.backend,
                req.budget_cycles,
                req.faults.as_ref(),
                knob.knobs(),
                &ObsRequest::default(),
            )?;
            cache.machine_pooled |= c.machine_pooled;
            ceilings.push(KnobCeiling {
                knob,
                ideal_cycles: r.cycles,
                speedup_ceiling: measured.cycles as f64 / r.cycles.max(1) as f64,
            });
        }
        Ok(WhatIfReport {
            strategy: req.strategy,
            cores: req.cores,
            backend: req.backend,
            measured_cycles: measured.cycles,
            stack,
            bound_by,
            regions,
            ceilings,
        })
    }

    /// Counter snapshot for the stats row and the saturation benchmark.
    pub fn stats_json(&self) -> Json {
        let c = &self.counters;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let rate = |hits: u64, misses: u64| {
            let total = hits + misses;
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }
        };
        let pooled: usize = self
            .pool
            .lock()
            .expect("pool lock")
            .values()
            .map(Vec::len)
            .sum();
        Json::Obj(vec![
            ("requests".into(), Json::UInt(get(&c.requests))),
            ("completed".into(), Json::UInt(get(&c.completed))),
            ("errors".into(), Json::UInt(get(&c.errors))),
            ("panics".into(), Json::UInt(get(&c.panics))),
            ("result_hits".into(), Json::UInt(get(&c.result_hits))),
            (
                "front_end_hit_rate".into(),
                Json::Num(rate(get(&c.fe_hits), get(&c.fe_misses))),
            ),
            (
                "image_hit_rate".into(),
                Json::Num(rate(get(&c.image_hits), get(&c.image_misses))),
            ),
            (
                "machine_pool_hit_rate".into(),
                Json::Num(rate(get(&c.pool_hits), get(&c.pool_misses))),
            ),
            (
                "golden_hit_rate".into(),
                Json::Num(rate(get(&c.golden_hits), get(&c.golden_misses))),
            ),
            ("machines_parked".into(), Json::UInt(pooled as u64)),
            ("machines_retired".into(), Json::UInt(get(&c.retired))),
        ])
    }

    fn note_panic(&self) {
        self.counters.panics.fetch_add(1, Ordering::Relaxed);
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Work-stealing server
// ---------------------------------------------------------------------------

/// Server sizing knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (default: host parallelism).
    pub workers: usize,
    /// Bounded depth of each worker's queue; submitters block when every
    /// queue is full, which is the backpressure a TCP client feels.
    pub queue_depth: usize,
    /// Machines kept per (cores, backend) free-list.
    pub pool_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        ServerConfig {
            workers,
            queue_depth: 4 * workers,
            pool_cap: workers,
        }
    }
}

enum Op {
    Run(Request),
    Stats { id: u64 },
}

struct Job {
    op: Op,
    reply: Sender<Response>,
    submitted: Instant,
}

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

struct Shared {
    engine: Engine,
    queues: Vec<Queue>,
    /// Submitters park here when every queue is at capacity; workers
    /// signal after each pop.
    space: Condvar,
    space_lock: Mutex<()>,
    cursor: AtomicUsize,
    stop: AtomicBool,
    queue_depth: usize,
}

/// The daemon: an [`Engine`] behind a pool of work-stealing workers.
/// In-process callers use [`Server::call`]; the TCP/stdin front ends use
/// [`serve_connection`].
pub struct Server {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Start the worker pool.
    pub fn start(cfg: ServerConfig) -> Server {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            engine: Engine::new(cfg.pool_cap),
            queues: (0..workers)
                .map(|_| Queue {
                    jobs: Mutex::new(VecDeque::new()),
                    ready: Condvar::new(),
                })
                .collect(),
            space: Condvar::new(),
            space_lock: Mutex::new(()),
            cursor: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            queue_depth: cfg.queue_depth.max(1),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// The engine (for direct inspection in tests and benchmarks).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Enqueue a request; the response lands on `reply`. Blocks while
    /// every worker queue is full (bounded-queue backpressure). Submitting
    /// after [`Server::shutdown`] sends an immediate typed error instead.
    pub fn submit(&self, req: Request, reply: Sender<Response>) {
        self.enqueue(Op::Run(req), reply);
    }

    /// Enqueue an in-band stats probe.
    pub fn submit_stats(&self, id: u64, reply: Sender<Response>) {
        self.enqueue(Op::Stats { id }, reply);
    }

    fn enqueue(&self, op: Op, reply: Sender<Response>) {
        let shared = &self.shared;
        if shared.stop.load(Ordering::Acquire) {
            let (id, workload) = match &op {
                Op::Run(r) => (r.id, r.workload.clone()),
                Op::Stats { id } => (*id, String::new()),
            };
            let _ = reply.send(Response::Run {
                id,
                workload,
                scale: "test",
                latency_micros: 0,
                result: Err(ServeError::BadRequest("server is shutting down".into())),
            });
            return;
        }
        let job = Job {
            op,
            reply,
            submitted: Instant::now(),
        };
        loop {
            let n = shared.queues.len();
            let start = shared.cursor.fetch_add(1, Ordering::Relaxed) % n;
            for off in 0..n {
                let q = &shared.queues[(start + off) % n];
                let mut jobs = q.jobs.lock().expect("queue lock");
                if jobs.len() < shared.queue_depth {
                    jobs.push_back(job);
                    drop(jobs);
                    q.ready.notify_one();
                    return;
                }
            }
            // Every queue is full: wait for a worker to pop, then retry.
            let guard = shared.space_lock.lock().expect("space lock");
            let _unused = shared
                .space
                .wait_timeout(guard, Duration::from_millis(5))
                .expect("space wait");
            if shared.stop.load(Ordering::Acquire) {
                let (id, workload) = match &job.op {
                    Op::Run(r) => (r.id, r.workload.clone()),
                    Op::Stats { id } => (*id, String::new()),
                };
                let _ = job.reply.send(Response::Run {
                    id,
                    workload,
                    scale: "test",
                    latency_micros: 0,
                    result: Err(ServeError::BadRequest("server is shutting down".into())),
                });
                return;
            }
        }
    }

    /// Synchronous round-trip: submit and wait for the response. This is
    /// the in-process API the equivalence tests and `serve_bench` use.
    pub fn call(&self, req: Request) -> Response {
        let (tx, rx) = channel();
        self.submit(req, tx);
        rx.recv().expect("worker dropped the reply channel")
    }

    /// Stop accepting work, finish queued jobs, and join the workers.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        for q in &self.shared.queues {
            q.ready.notify_all();
        }
        self.shared.space.notify_all();
        let mut handles = self.handles.lock().expect("handles lock");
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        if let Some(job) = pop_job(shared, me) {
            shared.space.notify_one();
            run_job(shared, job);
            continue;
        }
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // Park briefly on the own-queue condvar; the timeout bounds how
        // stale a steal opportunity can get without routing wakeups.
        let q = &shared.queues[me];
        let jobs = q.jobs.lock().expect("queue lock");
        if jobs.is_empty() {
            let _ = q
                .ready
                .wait_timeout(jobs, Duration::from_millis(1))
                .expect("queue wait");
        }
    }
}

/// Pop from the worker's own queue front, else steal from the *back* of
/// another's (oldest-first for the owner, newest-first for thieves, the
/// classic locality split).
fn pop_job(shared: &Shared, me: usize) -> Option<Job> {
    if let Some(j) = shared.queues[me]
        .jobs
        .lock()
        .expect("queue lock")
        .pop_front()
    {
        return Some(j);
    }
    let n = shared.queues.len();
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(j) = shared.queues[victim]
            .jobs
            .lock()
            .expect("queue lock")
            .pop_back()
        {
            return Some(j);
        }
    }
    None
}

fn run_job(shared: &Shared, job: Job) {
    match job.op {
        Op::Stats { id } => {
            let _ = job.reply.send(Response::Stats {
                id,
                stats: shared.engine.stats_json(),
            });
        }
        Op::Run(req) => {
            // Fault isolation: a panicking simulation is converted into a
            // typed error row. The machine involved was owned by the
            // unwound stack frame, so it was dropped (retired), never
            // re-pooled — the pool only ever holds machines that finished
            // a validated run.
            let outcome = catch_unwind(AssertUnwindSafe(|| shared.engine.execute(&req)));
            let result = match outcome {
                Ok(Ok(served)) => Ok(Box::new(served)),
                Ok(Err(e)) => Err(e),
                Err(payload) => {
                    shared.engine.note_panic();
                    Err(ServeError::Panic(panic_text(payload.as_ref())))
                }
            };
            let _ = job.reply.send(Response::Run {
                id: req.id,
                workload: req.workload,
                scale: scale_label(req.scale),
                latency_micros: job.submitted.elapsed().as_micros() as u64,
                result,
            });
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

// ---------------------------------------------------------------------------
// Connection front end (TCP and stdin share it)
// ---------------------------------------------------------------------------

/// Serve one NDJSON connection: read request lines from `reader`, write
/// one response row per request to `writer` (out of order as they finish;
/// rows carry the request id). Returns when the reader hits EOF and every
/// in-flight response has been written.
pub fn serve_connection<R: BufRead + Send, W: Write>(server: &Server, reader: R, writer: &mut W) {
    let (tx, rx) = channel::<Response>();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for line in reader.lines() {
                let Ok(line) = line else { break };
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match crate::jsonv::parse(line) {
                    Err(e) => {
                        let _ = tx.send(Response::Run {
                            id: 0,
                            workload: String::new(),
                            scale: "test",
                            latency_micros: 0,
                            result: Err(ServeError::BadRequest(e)),
                        });
                    }
                    Ok(v) => {
                        let id = v.get("id").and_then(JValue::as_num).unwrap_or(0.0) as u64;
                        if v.get("stats") == Some(&JValue::Bool(true)) {
                            server.submit_stats(id, tx.clone());
                            continue;
                        }
                        match parse_request(&v) {
                            Ok(req) => server.submit(req, tx.clone()),
                            Err(e) => {
                                let workload = v
                                    .get("workload")
                                    .and_then(JValue::as_str)
                                    .unwrap_or("")
                                    .to_string();
                                let _ = tx.send(Response::Run {
                                    id,
                                    workload,
                                    scale: "test",
                                    latency_micros: 0,
                                    result: Err(ServeError::BadRequest(e)),
                                });
                            }
                        }
                    }
                }
            }
            // Dropping the last sender ends the writer loop below once
            // all in-flight worker replies have drained.
            drop(tx);
        });
        while let Ok(resp) = rx.recv() {
            if writeln!(writer, "{}", resp.to_json().render()).is_err() {
                break;
            }
            let _ = writer.flush();
        }
    });
}
