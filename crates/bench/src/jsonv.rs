//! A minimal JSON parser for validating emitted artifacts.
//!
//! The workspace writes JSON (`voltron_core::report::Json`, the Chrome
//! tracer, the probe series) but never parsed any — and the container
//! has no serde. This recursive-descent parser exists so `trace_check`
//! and the trace-format tests can assert that what we emit actually
//! parses, not just that it looks braced. It accepts exactly RFC 8259
//! JSON (minus `\u` surrogate-pair pedantry) and keeps object keys in
//! insertion order.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, like browsers do).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JValue>),
    /// An object, keys in document order.
    Obj(Vec<(String, JValue)>),
}

impl JValue {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JValue> {
        match self {
            JValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JValue]> {
        match self {
            JValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(src: &str) -> Result<JValue, String> {
    let b = src.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != b.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn ws(&mut self) {
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<JValue, String> {
        match self.b.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JValue::Str),
            Some(b't') => self.lit("true", JValue::Bool(true)),
            Some(b'f') => self.lit("false", JValue::Bool(false)),
            Some(b'n') => self.lit("null", JValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn lit(&mut self, word: &str, v: JValue) -> Result<JValue, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JValue, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.b.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JValue::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            members.push((key, self.value()?));
            self.ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JValue::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self.b.get(self.pos).ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(&c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Copy the full UTF-8 sequence starting here.
                    let start = self.pos;
                    self.pos += 1;
                    while self.b.get(self.pos).is_some_and(|&c| c & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JValue, String> {
        let start = self.pos;
        if self.b.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JValue::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":null},"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JValue::Null));
        assert_eq!(v.get("e"), Some(&JValue::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "\"abc", "{} x", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_report_json() {
        // The report writer's own rendering must be parseable.
        use voltron_core::report::Json;
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("a \"quoted\" name".into())),
            ("n".into(), Json::UInt(42)),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(1.5), Json::Num(f64::NAN)]),
            ),
        ]);
        let v = parse(&j.render()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"quoted\" name"));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap()[1], JValue::Null);
    }
}
