//! Shared harness utilities for the figure-regeneration binaries and
//! Criterion benches (see `src/bin/fig*.rs`).

pub mod harness;
pub mod jsonv;
pub mod serve;
