//! Extra IR coverage: single-block loops, opcode display uniqueness,
//! operand conversions, and interpreter behavior on edge shapes.

use voltron_ir::builder::ProgramBuilder;
use voltron_ir::cfg::{Cfg, Dominators};
use voltron_ir::loops::LoopForest;
use voltron_ir::{CmpCc, MemWidth, Opcode, Operand, Signedness};

#[test]
fn do_while_forms_a_self_loop_and_runs() {
    let mut pb = ProgramBuilder::new("t");
    let out = pb.data_mut().zeroed("out", 8);
    let mut f = pb.function("main");
    let i = f.ldi(0);
    f.do_while(|f| {
        let ni = f.add(i, 1i64);
        f.mov_to(i, ni);
        f.cmp(CmpCc::Lt, i, 10i64)
    });
    let ob = f.ldi(out as i64);
    f.store8(ob, 0, i);
    f.halt();
    pb.finish_function(f);
    let p = pb.finish();

    // The loop body is one block with a back edge to itself.
    let func = p.main_func();
    let cfg = Cfg::build(func);
    let dom = Dominators::compute(&cfg);
    let forest = LoopForest::build(&cfg, &dom);
    assert_eq!(forest.loops.len(), 1);
    let l = &forest.loops[0];
    assert!(l.blocks.contains(&l.header));
    assert_eq!(l.latches, vec![l.header]);

    let o = voltron_ir::interp::run(&p, 100_000).unwrap();
    assert_eq!(o.memory.load_i64(out).unwrap(), 10);
}

#[test]
fn opcode_mnemonics_are_unique() {
    use std::collections::HashSet;
    let mut ops: Vec<Opcode> = vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Sar,
        Opcode::Min,
        Opcode::Max,
        Opcode::Mov,
        Opcode::Ldi,
        Opcode::Fldi,
        Opcode::Sel,
        Opcode::Fsel,
        Opcode::PAnd,
        Opcode::POr,
        Opcode::PNot,
        Opcode::ItoF,
        Opcode::FtoI,
        Opcode::PtoG,
        Opcode::GtoP,
        Opcode::Fadd,
        Opcode::Fsub,
        Opcode::Fmul,
        Opcode::Fdiv,
        Opcode::Fabs,
        Opcode::Fneg,
        Opcode::Fmin,
        Opcode::Fmax,
        Opcode::Fsqrt,
        Opcode::Fload,
        Opcode::Fstore,
        Opcode::Fload4,
        Opcode::Fstore4,
        Opcode::Pbr,
        Opcode::Br,
        Opcode::Jump,
        Opcode::Call,
        Opcode::Ret,
        Opcode::Halt,
        Opcode::Nop,
        Opcode::Put,
        Opcode::Get,
        Opcode::Bcast,
        Opcode::GetB,
        Opcode::Send,
        Opcode::Recv,
        Opcode::Spawn,
        Opcode::Sleep,
        Opcode::ModeSwitch,
        Opcode::Xbegin,
        Opcode::Xcommit,
        Opcode::Xabort,
    ];
    for cc in [
        CmpCc::Eq,
        CmpCc::Ne,
        CmpCc::Lt,
        CmpCc::Le,
        CmpCc::Gt,
        CmpCc::Ge,
        CmpCc::Ltu,
        CmpCc::Geu,
    ] {
        ops.push(Opcode::Cmp(cc));
        ops.push(Opcode::Fcmp(cc));
    }
    for w in [MemWidth::W1, MemWidth::W2, MemWidth::W4, MemWidth::W8] {
        ops.push(Opcode::Store(w));
        for s in [Signedness::Signed, Signedness::Unsigned] {
            ops.push(Opcode::Load(w, s));
        }
    }
    let mut seen = HashSet::new();
    for op in ops {
        let m = op.mnemonic();
        assert!(seen.insert(m.clone()), "duplicate mnemonic {m}");
    }
}

#[test]
fn operand_conversions_and_accessors() {
    let r: Operand = voltron_ir::Reg::gpr(5).into();
    assert_eq!(r.as_reg(), Some(voltron_ir::Reg::gpr(5)));
    assert_eq!(r.as_block(), None);
    let i: Operand = 42i64.into();
    assert_eq!(i.as_reg(), None);
    let f: Operand = 2.5f64.into();
    assert!(matches!(f, Operand::FImm(v) if v == 2.5));
    let c = Operand::Core(3);
    assert_eq!(c.as_core(), Some(3));
}

#[test]
fn unsigned_and_subword_memory_ops_interpret_correctly() {
    let mut pb = ProgramBuilder::new("t");
    let buf = pb.data_mut().array_u8("buf", &[0xff, 0x80, 0x01, 0x00]);
    let out = pb.data_mut().zeroed("out", 40);
    let mut f = pb.function("main");
    let b = f.ldi(buf as i64);
    let o = f.ldi(out as i64);
    let su = f.load1u(b, 0); // 255
    let ss = f.load1(b, 0); // -1
    let wu = f.load2u(b, 0); // 0x80ff
    let ws = f.load2(b, 0); // sign-extended 0x80ff -> negative
    f.store8(o, 0, su);
    f.store8(o, 8, ss);
    f.store8(o, 16, wu);
    f.store8(o, 24, ws);
    f.store2(o, 32, 0x1234i64);
    f.halt();
    pb.finish_function(f);
    let p = pb.finish();
    let m = voltron_ir::interp::run(&p, 1000).unwrap().memory;
    assert_eq!(m.load_i64(out).unwrap(), 255);
    assert_eq!(m.load_i64(out + 8).unwrap(), -1);
    assert_eq!(m.load_i64(out + 16).unwrap(), 0x80ff);
    assert_eq!(m.load_i64(out + 24).unwrap(), 0x80ffu16 as i16 as i64);
    assert_eq!(m.load_uint(out + 32, 2).unwrap(), 0x1234);
}

#[test]
fn predicate_logic_and_conversions_interpret() {
    let mut pb = ProgramBuilder::new("t");
    let out = pb.data_mut().zeroed("out", 24);
    let mut f = pb.function("main");
    let a = f.cmp(CmpCc::Lt, 1i64, 2i64); // true
    let b = f.cmp(CmpCc::Gt, 1i64, 2i64); // false
    let and = f.pand(a, b);
    let or = f.por(a, b);
    let not = f.pnot(a);
    let o = f.ldi(out as i64);
    let g1 = f.ptog(and);
    let g2 = f.ptog(or);
    let g3 = f.ptog(not);
    f.store8(o, 0, g1);
    f.store8(o, 8, g2);
    f.store8(o, 16, g3);
    f.halt();
    pb.finish_function(f);
    let p = pb.finish();
    let m = voltron_ir::interp::run(&p, 1000).unwrap().memory;
    assert_eq!(m.load_i64(out).unwrap(), 0);
    assert_eq!(m.load_i64(out + 8).unwrap(), 1);
    assert_eq!(m.load_i64(out + 16).unwrap(), 0);
}

#[test]
fn float_conversions_round_trip() {
    let mut pb = ProgramBuilder::new("t");
    let out = pb.data_mut().zeroed("out", 16);
    let mut f = pb.function("main");
    let i = f.ldi(-7);
    let x = f.itof(i);
    let two = f.fldi(2.0);
    let y = f.fdiv(x, two);
    let j = f.ftoi(y); // trunc(-3.5) = -3
    let o = f.ldi(out as i64);
    f.store8(o, 0, j);
    f.fstore(o, 8, y);
    f.halt();
    pb.finish_function(f);
    let p = pb.finish();
    let m = voltron_ir::interp::run(&p, 1000).unwrap().memory;
    assert_eq!(m.load_i64(out).unwrap(), -3);
    assert_eq!(m.load_f64(out + 8).unwrap(), -3.5);
}
