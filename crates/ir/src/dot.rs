//! Graphviz export of control-flow graphs (debugging aid).
//!
//! ```
//! use voltron_ir::builder::ProgramBuilder;
//! use voltron_ir::dot;
//!
//! let mut pb = ProgramBuilder::new("demo");
//! pb.data_mut().zeroed("pad", 8);
//! let mut f = pb.function("main");
//! f.counted_loop(0i64, 4i64, 1, |_, _| {});
//! f.halt();
//! pb.finish_function(f);
//! let p = pb.finish();
//! let dot = dot::cfg_to_dot(p.main_func());
//! assert!(dot.starts_with("digraph"));
//! ```

use crate::cfg::Cfg;
use crate::Function;
use std::fmt::Write as _;

/// Render a function's CFG as a Graphviz `digraph`, with instruction
/// listings inside the nodes.
pub fn cfg_to_dot(f: &Function) -> String {
    let cfg = Cfg::build(f);
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", f.name);
    let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
    for (bid, b) in f.iter_blocks() {
        let mut label = format!("{bid}\\l");
        for inst in &b.insts {
            let text = inst.to_string().replace('\\', "\\\\").replace('"', "\\\"");
            label.push_str(&text);
            label.push_str("\\l");
        }
        let _ = writeln!(s, "  b{} [label=\"{}\"];", bid.0, label);
        for t in cfg.succs_of(bid) {
            let _ = writeln!(s, "  b{} -> b{};", bid.0, t.0);
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn loop_cfg_has_back_edge_in_dot() {
        let mut pb = ProgramBuilder::new("t");
        pb.data_mut().zeroed("pad", 8);
        let mut f = pb.function("main");
        f.counted_loop(0i64, 4i64, 1, |f, iv| {
            f.add(iv, 1i64);
        });
        f.halt();
        pb.finish_function(f);
        let p = pb.finish();
        let dot = cfg_to_dot(p.main_func());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        // The latch jumps back: an edge from a later block to an earlier
        // one must appear.
        let back_edge = dot.lines().any(|l| {
            let l = l.trim();
            if !l.starts_with('b') || !l.contains("->") {
                return false;
            }
            let parts: Vec<&str> = l.trim_end_matches(';').split("->").collect();
            let a: u32 = parts[0].trim().trim_start_matches('b').parse().unwrap_or(0);
            let b: u32 = parts[1].trim().trim_start_matches('b').parse().unwrap_or(0);
            b < a
        });
        assert!(back_edge, "no back edge in:\n{dot}");
    }

    #[test]
    fn labels_are_escaped() {
        let mut pb = ProgramBuilder::new("t");
        pb.data_mut().zeroed("pad", 8);
        let mut f = pb.function("main");
        f.ldi(1);
        f.halt();
        pb.finish_function(f);
        let p = pb.finish();
        let dot = cfg_to_dot(p.main_func());
        assert!(dot.contains("ldi 1"));
        assert!(!dot.contains("\n\""), "unescaped newline inside label");
    }
}
