//! Compiler intermediate representation for the Voltron reproduction.
//!
//! This crate plays the role that Trimaran's mid-level IR played in the
//! original paper: a typed, virtual-register, HPL-PD-flavored representation
//! that the Voltron compiler partitions, schedules, and lowers to per-core
//! machine code, and that a reference interpreter can execute directly to
//! produce golden outputs and profiles.
//!
//! # Overview
//!
//! * [`Program`] — a whole program: functions plus a static data segment.
//! * [`Function`] / [`Block`] / [`Inst`] — the code hierarchy. Blocks fall
//!   through in layout order unless terminated by an unconditional
//!   control-flow instruction.
//! * [`Reg`] — typed virtual registers in four classes (general, floating
//!   point, predicate, branch-target), mirroring HPL-PD's GPR/FPR/PR/BTR
//!   files.
//! * [`Opcode`] — the instruction set, including Voltron's inter-core
//!   communication operations (`PUT`/`GET`/`SEND`/`RECV`/`BCAST`/`SPAWN`/
//!   `SLEEP`/`MODE_SWITCH`) and transactional-memory markers.
//! * [`builder`] — ergonomic construction of programs (used heavily by the
//!   `voltron-workloads` crate).
//! * [`interp`] — the reference interpreter (golden model).
//! * [`profile`] — a profiling interpreter collecting block counts, loop
//!   trip counts, per-load cache-miss rates, and cross-iteration memory
//!   dependence observations (the input to statistical-DOALL detection).
//! * [`mod@cfg`] / [`loops`] — dominators, reverse postorder, natural loops.
//!
//! # Example
//!
//! ```
//! use voltron_ir::builder::ProgramBuilder;
//!
//! let mut pb = ProgramBuilder::new("demo");
//! let arr = pb.data_mut().array_i64("a", &[1, 2, 3, 4]);
//! let mut f = pb.function("main");
//! let base = f.ldi(arr as i64);
//! let x = f.load8(base, 0);
//! let y = f.load8(base, 8);
//! let s = f.add(x, y);
//! f.store8(base, 16, s);
//! f.halt();
//! pb.finish_function(f);
//! let program = pb.finish();
//!
//! let out = voltron_ir::interp::run(&program, 1_000_000).unwrap();
//! assert_eq!(out.memory.load_i64(arr + 16).unwrap(), 3);
//! ```

pub mod builder;
pub mod cfg;
pub mod dot;
pub mod inst;
pub mod interp;
pub mod loops;
pub mod mem;
pub mod opcode;
pub mod pretty;
pub mod profile;
pub mod program;
pub mod reg;
pub mod semantics;
pub mod value;
pub mod verify;

pub use inst::{Inst, InstRef, Operand};
pub use mem::{MemError, Memory};
pub use opcode::{CmpCc, Dir, ExecMode, MemWidth, Opcode, Signedness};
pub use program::{Block, BlockId, DataSegment, FuncId, Function, Program, Symbol};
pub use reg::{Reg, RegClass};
pub use value::Value;
