//! Instructions and operands.

use crate::opcode::{Dir, ExecMode, Opcode};
use crate::program::{BlockId, FuncId};
use crate::reg::Reg;
use std::fmt;

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A virtual register.
    Reg(Reg),
    /// An integer immediate.
    Imm(i64),
    /// A float immediate.
    FImm(f64),
    /// A basic-block reference (branch target, spawn target).
    Block(BlockId),
    /// A function reference (call target).
    Func(FuncId),
    /// A mesh direction (direct-mode network).
    Dir(Dir),
    /// A core id (queue-mode network, spawn).
    Core(u8),
    /// An execution mode (mode switch).
    Mode(ExecMode),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The block id, if this operand is one.
    pub fn as_block(&self) -> Option<BlockId> {
        match self {
            Operand::Block(b) => Some(*b),
            _ => None,
        }
    }

    /// The core id, if this operand is one.
    pub fn as_core(&self) -> Option<u8> {
        match self {
            Operand::Core(c) => Some(*c),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Operand {
        Operand::FImm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::FImm(v) => write!(f, "{v}f"),
            Operand::Block(b) => write!(f, "bb{}", b.0),
            Operand::Func(x) => write!(f, "fn{}", x.0),
            Operand::Dir(d) => write!(f, "{d}"),
            Operand::Core(c) => write!(f, "core{c}"),
            Operand::Mode(m) => write!(f, "{m}"),
        }
    }
}

/// One IR (or machine) instruction.
///
/// Instructions may carry a guard predicate (HPL-PD style full predication):
/// when the guard evaluates false the instruction is nullified (no result
/// write, no memory or network effect) but still occupies its issue slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// Destination register, when the opcode produces a value.
    pub dst: Option<Reg>,
    /// Source operands, per the conventions documented on [`Opcode`].
    pub srcs: Vec<Operand>,
    /// Optional guard predicate register.
    pub guard: Option<Reg>,
}

impl Inst {
    /// Create an instruction with a destination.
    pub fn with_dst(op: Opcode, dst: Reg, srcs: Vec<Operand>) -> Inst {
        Inst {
            op,
            dst: Some(dst),
            srcs,
            guard: None,
        }
    }

    /// Create an instruction without a destination.
    pub fn new(op: Opcode, srcs: Vec<Operand>) -> Inst {
        Inst {
            op,
            dst: None,
            srcs,
            guard: None,
        }
    }

    /// A NOP.
    pub fn nop() -> Inst {
        Inst::new(Opcode::Nop, Vec::new())
    }

    /// Attach a guard predicate (builder style).
    pub fn guarded(mut self, p: Reg) -> Inst {
        self.guard = Some(p);
        self
    }

    /// All registers read by this instruction, including the guard.
    pub fn uses(&self) -> Vec<Reg> {
        self.uses_iter().collect()
    }

    /// Allocation-free variant of [`Inst::uses`], for per-cycle paths
    /// (the simulator's scoreboard checks every source every cycle).
    pub fn uses_iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs
            .iter()
            .filter_map(Operand::as_reg)
            .chain(self.guard)
    }

    /// The register written, if any.
    pub fn def(&self) -> Option<Reg> {
        self.dst
    }

    /// Branch / jump target block, if statically known (IR-level form).
    pub fn static_target(&self) -> Option<BlockId> {
        match self.op {
            Opcode::Br | Opcode::Jump => self.srcs.first().and_then(Operand::as_block),
            Opcode::Pbr => self.srcs.first().and_then(Operand::as_block),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "({g}) ")?;
        }
        if let Some(d) = self.dst {
            write!(f, "{d} = ")?;
        }
        write!(f, "{}", self.op)?;
        for (i, s) in self.srcs.iter().enumerate() {
            if i == 0 {
                write!(f, " {s}")?;
            } else {
                write!(f, ", {s}")?;
            }
        }
        Ok(())
    }
}

/// A stable reference to an instruction within a program:
/// (function, block, index within block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstRef {
    /// The containing function.
    pub func: FuncId,
    /// The containing block.
    pub block: BlockId,
    /// Index in the block's instruction vector.
    pub index: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;
    use crate::reg::Reg;

    #[test]
    fn uses_include_guard() {
        let i = Inst::with_dst(
            Opcode::Add,
            Reg::gpr(0),
            vec![Reg::gpr(1).into(), Operand::Imm(3)],
        )
        .guarded(Reg::pred(2));
        assert_eq!(i.uses(), vec![Reg::gpr(1), Reg::pred(2)]);
        assert_eq!(i.def(), Some(Reg::gpr(0)));
    }

    #[test]
    fn display_is_readable() {
        let i = Inst::with_dst(
            Opcode::Add,
            Reg::gpr(0),
            vec![Reg::gpr(1).into(), Operand::Imm(3)],
        );
        assert_eq!(i.to_string(), "r0 = add r1, 3");
    }

    #[test]
    fn static_target_of_jump() {
        let i = Inst::new(Opcode::Jump, vec![Operand::Block(BlockId(4))]);
        assert_eq!(i.static_target(), Some(BlockId(4)));
    }
}
