//! Ergonomic program construction.
//!
//! [`FunctionBuilder`] provides one method per common operation, allocates
//! virtual registers automatically, and supports forward-referenced labels
//! and structured loop helpers. `voltron-workloads` uses it to express the
//! benchmark kernels.
//!
//! Labels are symbolic during construction and resolved to [`BlockId`]s in
//! binding order when the function is finished.

use crate::inst::{Inst, Operand};
use crate::opcode::{CmpCc, MemWidth, Opcode, Signedness};
use crate::program::{Block, BlockId, DataSegment, FuncId, Function, Program};
use crate::reg::{Reg, RegClass};

/// A forward-referencable block label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Builds one function.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: Vec<Reg>,
    /// Blocks in layout (binding) order; the instruction stream under
    /// construction goes into the last one.
    blocks: Vec<Block>,
    /// For each bound label (by raw id), the layout index it was bound to.
    bound: Vec<Option<u32>>,
    next_reg: [u32; 4],
}

impl FunctionBuilder {
    /// Start building a function. The entry block is open immediately.
    pub fn new(name: impl Into<String>) -> FunctionBuilder {
        FunctionBuilder {
            name: name.into(),
            params: Vec::new(),
            blocks: vec![Block::default()],
            bound: Vec::new(),
            next_reg: [0; 4],
        }
    }

    /// Declare a parameter of the given class.
    pub fn param(&mut self, class: RegClass) -> Reg {
        let r = self.fresh(class);
        self.params.push(r);
        r
    }

    /// Allocate a fresh register.
    pub fn fresh(&mut self, class: RegClass) -> Reg {
        let i = self.next_reg[class.index()];
        self.next_reg[class.index()] += 1;
        Reg { class, index: i }
    }

    /// Create a new (unbound) label for forward references.
    pub fn label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() as u32 - 1)
    }

    /// Bind `label` here: subsequent instructions go into a new block that
    /// control reaches by jumping to the label (or by fallthrough from the
    /// previous block).
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.bound[label.0 as usize].is_none(), "label bound twice");
        self.blocks.push(Block::default());
        self.bound[label.0 as usize] = Some(self.blocks.len() as u32 - 1);
    }

    /// Emit a raw instruction (escape hatch).
    pub fn emit(&mut self, inst: Inst) {
        self.blocks
            .last_mut()
            .expect("at least entry block")
            .insts
            .push(inst);
    }

    fn emit_val(&mut self, op: Opcode, class: RegClass, srcs: Vec<Operand>) -> Reg {
        let d = self.fresh(class);
        self.emit(Inst::with_dst(op, d, srcs));
        d
    }

    // ---- constants and moves ----

    /// Load an integer constant.
    pub fn ldi(&mut self, v: i64) -> Reg {
        self.emit_val(Opcode::Ldi, RegClass::Gpr, vec![Operand::Imm(v)])
    }

    /// Load a float constant.
    pub fn fldi(&mut self, v: f64) -> Reg {
        self.emit_val(Opcode::Fldi, RegClass::Fpr, vec![Operand::FImm(v)])
    }

    /// Copy a register (same class).
    pub fn mov(&mut self, src: Reg) -> Reg {
        self.emit_val(Opcode::Mov, src.class, vec![src.into()])
    }

    /// Copy into an existing register (same class).
    pub fn mov_to(&mut self, dst: Reg, src: impl Into<Operand>) {
        let src = src.into();
        let op = match dst.class {
            RegClass::Gpr => {
                if let Operand::Imm(_) = src {
                    Opcode::Ldi
                } else {
                    Opcode::Mov
                }
            }
            RegClass::Fpr => {
                if let Operand::FImm(_) = src {
                    Opcode::Fldi
                } else {
                    Opcode::Mov
                }
            }
            _ => Opcode::Mov,
        };
        self.emit(Inst::with_dst(op, dst, vec![src]));
    }

    // ---- integer ALU ----

    fn binop(&mut self, op: Opcode, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_val(op, RegClass::Gpr, vec![a.into(), b.into()])
    }

    /// `a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Mul, a, b)
    }

    /// `a / b` (0 on division by zero).
    pub fn div(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Div, a, b)
    }

    /// `a % b` (0 on remainder by zero).
    pub fn rem(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Rem, a, b)
    }

    /// Bitwise and.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::And, a, b)
    }

    /// Bitwise or.
    pub fn or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Or, a, b)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Xor, a, b)
    }

    /// Shift left.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Shl, a, b)
    }

    /// Logical shift right.
    pub fn shr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Shr, a, b)
    }

    /// Arithmetic shift right.
    pub fn sar(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Sar, a, b)
    }

    /// Signed minimum.
    pub fn min(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Min, a, b)
    }

    /// Signed maximum.
    pub fn max(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.binop(Opcode::Max, a, b)
    }

    // ---- compare / select / predicates ----

    /// Integer compare producing a predicate.
    pub fn cmp(&mut self, cc: CmpCc, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_val(Opcode::Cmp(cc), RegClass::Pred, vec![a.into(), b.into()])
    }

    /// Float compare producing a predicate.
    pub fn fcmp(&mut self, cc: CmpCc, a: Reg, b: Reg) -> Reg {
        self.emit_val(Opcode::Fcmp(cc), RegClass::Pred, vec![a.into(), b.into()])
    }

    /// `p ? a : b` over integers.
    pub fn sel(&mut self, p: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_val(
            Opcode::Sel,
            RegClass::Gpr,
            vec![p.into(), a.into(), b.into()],
        )
    }

    /// `p ? a : b` over floats.
    pub fn fsel(&mut self, p: Reg, a: Reg, b: Reg) -> Reg {
        self.emit_val(
            Opcode::Fsel,
            RegClass::Fpr,
            vec![p.into(), a.into(), b.into()],
        )
    }

    /// Predicate and.
    pub fn pand(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_val(Opcode::PAnd, RegClass::Pred, vec![a.into(), b.into()])
    }

    /// Predicate or.
    pub fn por(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_val(Opcode::POr, RegClass::Pred, vec![a.into(), b.into()])
    }

    /// Predicate not.
    pub fn pnot(&mut self, a: Reg) -> Reg {
        self.emit_val(Opcode::PNot, RegClass::Pred, vec![a.into()])
    }

    // ---- conversions ----

    /// Int to float.
    pub fn itof(&mut self, a: Reg) -> Reg {
        self.emit_val(Opcode::ItoF, RegClass::Fpr, vec![a.into()])
    }

    /// Float to int (truncating).
    pub fn ftoi(&mut self, a: Reg) -> Reg {
        self.emit_val(Opcode::FtoI, RegClass::Gpr, vec![a.into()])
    }

    /// Predicate to int (0/1).
    pub fn ptog(&mut self, a: Reg) -> Reg {
        self.emit_val(Opcode::PtoG, RegClass::Gpr, vec![a.into()])
    }

    /// Int to predicate (nonzero).
    pub fn gtop(&mut self, a: Reg) -> Reg {
        self.emit_val(Opcode::GtoP, RegClass::Pred, vec![a.into()])
    }

    // ---- floating point ----

    fn fbinop(&mut self, op: Opcode, a: Reg, b: Reg) -> Reg {
        self.emit_val(op, RegClass::Fpr, vec![a.into(), b.into()])
    }

    /// Float add.
    pub fn fadd(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbinop(Opcode::Fadd, a, b)
    }

    /// Float subtract.
    pub fn fsub(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbinop(Opcode::Fsub, a, b)
    }

    /// Float multiply.
    pub fn fmul(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbinop(Opcode::Fmul, a, b)
    }

    /// Float divide.
    pub fn fdiv(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbinop(Opcode::Fdiv, a, b)
    }

    /// Float minimum.
    pub fn fmin(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbinop(Opcode::Fmin, a, b)
    }

    /// Float maximum.
    pub fn fmax(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbinop(Opcode::Fmax, a, b)
    }

    /// Float absolute value.
    pub fn fabs(&mut self, a: Reg) -> Reg {
        self.emit_val(Opcode::Fabs, RegClass::Fpr, vec![a.into()])
    }

    /// Float negate.
    pub fn fneg(&mut self, a: Reg) -> Reg {
        self.emit_val(Opcode::Fneg, RegClass::Fpr, vec![a.into()])
    }

    /// Float square root.
    pub fn fsqrt(&mut self, a: Reg) -> Reg {
        self.emit_val(Opcode::Fsqrt, RegClass::Fpr, vec![a.into()])
    }

    // ---- memory ----

    fn load(&mut self, w: MemWidth, s: Signedness, base: Reg, off: i64) -> Reg {
        self.emit_val(
            Opcode::Load(w, s),
            RegClass::Gpr,
            vec![base.into(), Operand::Imm(off)],
        )
    }

    /// Load a signed 64-bit value.
    pub fn load8(&mut self, base: Reg, off: i64) -> Reg {
        self.load(MemWidth::W8, Signedness::Signed, base, off)
    }

    /// Load a signed 32-bit value.
    pub fn load4(&mut self, base: Reg, off: i64) -> Reg {
        self.load(MemWidth::W4, Signedness::Signed, base, off)
    }

    /// Load an unsigned 32-bit value.
    pub fn load4u(&mut self, base: Reg, off: i64) -> Reg {
        self.load(MemWidth::W4, Signedness::Unsigned, base, off)
    }

    /// Load a signed 16-bit value.
    pub fn load2(&mut self, base: Reg, off: i64) -> Reg {
        self.load(MemWidth::W2, Signedness::Signed, base, off)
    }

    /// Load an unsigned 16-bit value.
    pub fn load2u(&mut self, base: Reg, off: i64) -> Reg {
        self.load(MemWidth::W2, Signedness::Unsigned, base, off)
    }

    /// Load a signed 8-bit value.
    pub fn load1(&mut self, base: Reg, off: i64) -> Reg {
        self.load(MemWidth::W1, Signedness::Signed, base, off)
    }

    /// Load an unsigned 8-bit value.
    pub fn load1u(&mut self, base: Reg, off: i64) -> Reg {
        self.load(MemWidth::W1, Signedness::Unsigned, base, off)
    }

    /// Load an `f64`.
    pub fn fload(&mut self, base: Reg, off: i64) -> Reg {
        self.emit_val(
            Opcode::Fload,
            RegClass::Fpr,
            vec![base.into(), Operand::Imm(off)],
        )
    }

    fn store(&mut self, w: MemWidth, base: Reg, off: i64, v: impl Into<Operand>) {
        self.emit(Inst::new(
            Opcode::Store(w),
            vec![base.into(), Operand::Imm(off), v.into()],
        ));
    }

    /// Store 64 bits.
    pub fn store8(&mut self, base: Reg, off: i64, v: impl Into<Operand>) {
        self.store(MemWidth::W8, base, off, v)
    }

    /// Store 32 bits.
    pub fn store4(&mut self, base: Reg, off: i64, v: impl Into<Operand>) {
        self.store(MemWidth::W4, base, off, v)
    }

    /// Store 16 bits.
    pub fn store2(&mut self, base: Reg, off: i64, v: impl Into<Operand>) {
        self.store(MemWidth::W2, base, off, v)
    }

    /// Store 8 bits.
    pub fn store1(&mut self, base: Reg, off: i64, v: impl Into<Operand>) {
        self.store(MemWidth::W1, base, off, v)
    }

    /// Store an `f64`.
    pub fn fstore(&mut self, base: Reg, off: i64, v: Reg) {
        self.emit(Inst::new(
            Opcode::Fstore,
            vec![base.into(), Operand::Imm(off), v.into()],
        ));
    }

    // ---- control flow ----

    /// Branch to `label` if `p` is true (fallthrough otherwise).
    pub fn br_if(&mut self, p: Reg, label: Label) {
        self.emit(Inst::new(
            Opcode::Br,
            vec![Operand::Block(BlockId(label.0)), p.into()],
        ));
        self.blocks.push(Block::default());
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) {
        self.emit(Inst::new(
            Opcode::Jump,
            vec![Operand::Block(BlockId(label.0))],
        ));
        self.blocks.push(Block::default());
    }

    /// Call `func` with `args`; returns the result register if
    /// `ret_class` is given.
    pub fn call(&mut self, func: FuncId, args: &[Reg], ret_class: Option<RegClass>) -> Option<Reg> {
        let mut srcs: Vec<Operand> = vec![Operand::Func(func)];
        srcs.extend(args.iter().map(|r| Operand::Reg(*r)));
        match ret_class {
            Some(c) => {
                let d = self.fresh(c);
                self.emit(Inst::with_dst(Opcode::Call, d, srcs));
                Some(d)
            }
            None => {
                self.emit(Inst::new(Opcode::Call, srcs));
                None
            }
        }
    }

    /// Return without a value.
    pub fn ret(&mut self) {
        self.emit(Inst::new(Opcode::Ret, vec![]));
        self.blocks.push(Block::default());
    }

    /// Return a value.
    pub fn ret_val(&mut self, v: Reg) {
        self.emit(Inst::new(Opcode::Ret, vec![v.into()]));
        self.blocks.push(Block::default());
    }

    /// Halt the machine (end of `main`).
    pub fn halt(&mut self) {
        self.emit(Inst::new(Opcode::Halt, vec![]));
        self.blocks.push(Block::default());
    }

    // ---- canonical reductions ----
    //
    // These emit the single-instruction accumulation form
    // `acc = op acc, v` that the statistical-DOALL detector recognizes
    // for accumulator expansion. Prefer them over `mov_to(acc, add(...))`
    // in reduction loops.

    /// `acc += v` in the canonical reduction form.
    pub fn reduce_add(&mut self, acc: Reg, v: impl Into<Operand>) {
        self.emit(Inst::with_dst(Opcode::Add, acc, vec![acc.into(), v.into()]));
    }

    /// `acc = min(acc, v)` in the canonical reduction form.
    pub fn reduce_min(&mut self, acc: Reg, v: impl Into<Operand>) {
        self.emit(Inst::with_dst(Opcode::Min, acc, vec![acc.into(), v.into()]));
    }

    /// `acc = max(acc, v)` in the canonical reduction form.
    pub fn reduce_max(&mut self, acc: Reg, v: impl Into<Operand>) {
        self.emit(Inst::with_dst(Opcode::Max, acc, vec![acc.into(), v.into()]));
    }

    /// `acc += v` over floats in the canonical reduction form.
    pub fn reduce_fadd(&mut self, acc: Reg, v: Reg) {
        self.emit(Inst::with_dst(
            Opcode::Fadd,
            acc,
            vec![acc.into(), v.into()],
        ));
    }

    /// `acc = fmin(acc, v)` in the canonical reduction form.
    pub fn reduce_fmin(&mut self, acc: Reg, v: Reg) {
        self.emit(Inst::with_dst(
            Opcode::Fmin,
            acc,
            vec![acc.into(), v.into()],
        ));
    }

    /// `acc = fmax(acc, v)` in the canonical reduction form.
    pub fn reduce_fmax(&mut self, acc: Reg, v: Reg) {
        self.emit(Inst::with_dst(
            Opcode::Fmax,
            acc,
            vec![acc.into(), v.into()],
        ));
    }

    // ---- structured loop helpers ----

    /// Build a canonical counted loop `for (iv = start; iv < bound;
    /// iv += step) body(iv)` in the exact shape the DOALL detector
    /// recognizes: preheader init, header compare + exit branch, body,
    /// latch increment + back jump.
    ///
    /// `start`, `bound`, and `step` must be loop-invariant operands
    /// (`step` a positive immediate).
    pub fn counted_loop(
        &mut self,
        start: impl Into<Operand>,
        bound: impl Into<Operand>,
        step: i64,
        body: impl FnOnce(&mut FunctionBuilder, Reg),
    ) {
        assert!(step > 0, "counted_loop requires a positive step");
        let iv = self.fresh(RegClass::Gpr);
        self.mov_to(iv, start);
        let header = self.label();
        let exit = self.label();
        self.bind(header);
        let done = self.cmp(CmpCc::Ge, iv, bound);
        self.br_if(done, exit);
        body(self, iv);
        // Latch: the canonical `iv = iv + step` the DOALL detector matches.
        self.emit(Inst::with_dst(
            Opcode::Add,
            iv,
            vec![iv.into(), Operand::Imm(step)],
        ));
        self.jump(header);
        self.bind(exit);
    }

    /// Build a do-while style loop: `body` runs at least once and repeats
    /// while the predicate it returns is true.
    pub fn do_while(&mut self, body: impl FnOnce(&mut FunctionBuilder) -> Reg) {
        let head = self.label();
        self.bind(head);
        let again = body(self);
        self.br_if(again, head);
    }

    /// If-then helper: runs `then` when `p` is true.
    pub fn if_then(&mut self, p: Reg, then: impl FnOnce(&mut FunctionBuilder)) {
        let skip = self.label();
        let np = self.pnot(p);
        self.br_if(np, skip);
        then(self);
        self.bind(skip);
    }

    /// If-then-else helper.
    pub fn if_then_else(
        &mut self,
        p: Reg,
        then: impl FnOnce(&mut FunctionBuilder),
        otherwise: impl FnOnce(&mut FunctionBuilder),
    ) {
        let else_l = self.label();
        let join = self.label();
        let np = self.pnot(p);
        self.br_if(np, else_l);
        then(self);
        self.jump(join);
        self.bind(else_l);
        otherwise(self);
        self.bind(join);
    }

    /// Finish: resolve labels to block ids and produce the [`Function`].
    ///
    /// # Panics
    /// Panics if any referenced label was never bound.
    pub fn finish(self) -> Function {
        let FunctionBuilder {
            name,
            params,
            mut blocks,
            bound,
            ..
        } = self;
        // Drop a trailing empty block (created by terminator helpers) if
        // nothing falls into it and no label points at it.
        let last_idx = blocks.len() - 1;
        let last_bound = bound.contains(&Some(last_idx as u32));
        if blocks[last_idx].insts.is_empty() && !last_bound && last_idx > 0 {
            let prev = &blocks[last_idx - 1];
            if !prev.falls_through() {
                blocks.pop();
            }
        }
        // Rewrite label references (stored as BlockId(label raw)) to layout
        // block ids.
        for b in &mut blocks {
            for inst in &mut b.insts {
                for s in &mut inst.srcs {
                    if let Operand::Block(BlockId(raw)) = s {
                        let target = bound
                            .get(*raw as usize)
                            .copied()
                            .flatten()
                            .unwrap_or_else(|| panic!("label {raw} referenced but never bound"));
                        *s = Operand::Block(BlockId(target));
                    }
                }
            }
        }
        Function {
            name,
            params,
            blocks,
        }
    }
}

/// Builds a whole [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    data: DataSegment,
    funcs: Vec<Function>,
}

impl ProgramBuilder {
    /// Start a program with the given name.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            data: DataSegment::default(),
            funcs: Vec::new(),
        }
    }

    /// Access the data segment for allocating globals.
    pub fn data_mut(&mut self) -> &mut DataSegment {
        &mut self.data
    }

    /// Start building a function (finish it with
    /// [`ProgramBuilder::finish_function`]).
    pub fn function(&mut self, name: impl Into<String>) -> FunctionBuilder {
        FunctionBuilder::new(name)
    }

    /// Reserve a function id before building it (for forward calls).
    /// The next `finish_function` calls fill ids in order.
    pub fn next_func_id(&self) -> FuncId {
        FuncId(self.funcs.len() as u32)
    }

    /// Add a finished function; returns its id.
    pub fn finish_function(&mut self, fb: FunctionBuilder) -> FuncId {
        self.funcs.push(fb.finish());
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Produce the program.
    ///
    /// # Panics
    /// Panics if no function is named `main`.
    pub fn finish(self) -> Program {
        let main = self
            .funcs
            .iter()
            .position(|f| f.name == "main")
            .expect("program must define a function named `main`");
        Program {
            name: self.name,
            funcs: self.funcs,
            main: FuncId(main as u32),
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;

    #[test]
    fn labels_resolve_in_binding_order() {
        let mut f = FunctionBuilder::new("t");
        let out = f.label();
        let one = f.ldi(1);
        let p = f.cmp(CmpCc::Eq, one, 1i64);
        f.br_if(p, out);
        let _ = f.ldi(99);
        f.bind(out);
        f.halt();
        let func = f.finish();
        // Entry block branches to the block bound by `out`.
        let br = func.blocks[0].insts.last().unwrap();
        let t = br.static_target().unwrap();
        assert_eq!(func.blocks[t.idx()].insts[0].op, Opcode::Halt);
    }

    #[test]
    fn counted_loop_shape_is_canonical() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.data_mut().zeroed("a", 80);
        let mut f = pb.function("main");
        let base = f.ldi(a as i64);
        f.counted_loop(0i64, 10i64, 1, |f, iv| {
            let off = f.shl(iv, 3i64);
            let addr = f.add(base, off);
            f.store8(addr, 0, iv);
        });
        f.halt();
        pb.finish_function(f);
        let prog = pb.finish();
        let func = prog.main_func();
        let cfg = Cfg::build(func);
        let dom = crate::cfg::Dominators::compute(&cfg);
        let lf = crate::loops::LoopForest::build(&cfg, &dom);
        assert_eq!(lf.loops.len(), 1);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut f = FunctionBuilder::new("t");
        let l = f.label();
        f.jump(l);
        let _ = f.finish();
    }

    #[test]
    fn if_then_else_joins() {
        let mut f = FunctionBuilder::new("main");
        let p = f.cmp(CmpCc::Lt, 1i64, 2i64);
        f.if_then_else(
            p,
            |f| {
                f.ldi(10);
            },
            |f| {
                f.ldi(20);
            },
        );
        f.halt();
        let func = f.finish();
        assert!(func.blocks.len() >= 4);
    }
}
