//! Shared operational semantics for ALU-class operations.
//!
//! Both the reference interpreter and the cycle-level simulator evaluate
//! instructions through these functions, so functional behavior cannot
//! diverge between the golden model and the machine.

use crate::opcode::{CmpCc, Opcode, Signedness};

/// Evaluate an integer two-operand ALU operation.
///
/// Division and remainder by zero are defined to produce 0 (the machine
/// has no exceptions).
///
/// # Panics
/// Panics if `op` is not an integer binary ALU opcode.
pub fn int_binop(op: Opcode, a: i64, b: i64) -> i64 {
    match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Div => {
            if b == 0 || (a == i64::MIN && b == -1) {
                0
            } else {
                a / b
            }
        }
        Opcode::Rem => {
            if b == 0 || (a == i64::MIN && b == -1) {
                0
            } else {
                a % b
            }
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl((b & 63) as u32),
        Opcode::Shr => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
        Opcode::Sar => a.wrapping_shr((b & 63) as u32),
        Opcode::Min => a.min(b),
        Opcode::Max => a.max(b),
        other => panic!("not an integer binop: {other:?}"),
    }
}

/// Evaluate a float two-operand ALU operation.
///
/// # Panics
/// Panics if `op` is not a float binary ALU opcode.
pub fn float_binop(op: Opcode, a: f64, b: f64) -> f64 {
    match op {
        Opcode::Fadd => a + b,
        Opcode::Fsub => a - b,
        Opcode::Fmul => a * b,
        Opcode::Fdiv => a / b,
        Opcode::Fmin => a.min(b),
        Opcode::Fmax => a.max(b),
        other => panic!("not a float binop: {other:?}"),
    }
}

/// Evaluate a float unary operation ([`Opcode::Fabs`], [`Opcode::Fneg`],
/// [`Opcode::Fsqrt`]).
///
/// # Panics
/// Panics if `op` is not a float unary opcode.
pub fn float_unop(op: Opcode, a: f64) -> f64 {
    match op {
        Opcode::Fabs => a.abs(),
        Opcode::Fneg => -a,
        Opcode::Fsqrt => a.sqrt(),
        other => panic!("not a float unop: {other:?}"),
    }
}

/// Evaluate an integer comparison.
pub fn int_cmp(cc: CmpCc, a: i64, b: i64) -> bool {
    match cc {
        CmpCc::Eq => a == b,
        CmpCc::Ne => a != b,
        CmpCc::Lt => a < b,
        CmpCc::Le => a <= b,
        CmpCc::Gt => a > b,
        CmpCc::Ge => a >= b,
        CmpCc::Ltu => (a as u64) < (b as u64),
        CmpCc::Geu => (a as u64) >= (b as u64),
    }
}

/// Evaluate a float comparison (unsigned variants compare absolute values;
/// NaN compares false for everything except `Ne`).
pub fn float_cmp(cc: CmpCc, a: f64, b: f64) -> bool {
    match cc {
        CmpCc::Eq => a == b,
        CmpCc::Ne => a != b,
        CmpCc::Lt => a < b,
        CmpCc::Le => a <= b,
        CmpCc::Gt => a > b,
        CmpCc::Ge => a >= b,
        CmpCc::Ltu => a.abs() < b.abs(),
        CmpCc::Geu => a.abs() >= b.abs(),
    }
}

/// Extend a loaded raw little-endian value per width and signedness.
pub fn extend_load(raw: u64, bytes: u64, sign: Signedness) -> i64 {
    match (bytes, sign) {
        (1, Signedness::Signed) => raw as u8 as i8 as i64,
        (2, Signedness::Signed) => raw as u16 as i16 as i64,
        (4, Signedness::Signed) => raw as u32 as i32 as i64,
        (8, _) => raw as i64,
        (1, Signedness::Unsigned) => raw as u8 as i64,
        (2, Signedness::Unsigned) => raw as u16 as i64,
        (4, Signedness::Unsigned) => raw as u32 as i64,
        _ => unreachable!("invalid load width {bytes}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_by_zero_is_zero() {
        assert_eq!(int_binop(Opcode::Div, 5, 0), 0);
        assert_eq!(int_binop(Opcode::Rem, 5, 0), 0);
        assert_eq!(int_binop(Opcode::Div, i64::MIN, -1), 0);
    }

    #[test]
    fn shifts_mask_count() {
        assert_eq!(int_binop(Opcode::Shl, 1, 64), 1);
        assert_eq!(int_binop(Opcode::Shr, -1, 60), 0xf);
        assert_eq!(int_binop(Opcode::Sar, -16, 2), -4);
    }

    #[test]
    fn unsigned_compare() {
        assert!(int_cmp(CmpCc::Ltu, 1, -1));
        assert!(!int_cmp(CmpCc::Lt, 1, -1));
        assert!(int_cmp(CmpCc::Geu, -1, 1));
    }

    #[test]
    fn extend_load_signs_correctly() {
        assert_eq!(extend_load(0xff, 1, Signedness::Signed), -1);
        assert_eq!(extend_load(0xff, 1, Signedness::Unsigned), 255);
        assert_eq!(extend_load(0x8000, 2, Signedness::Signed), -32768);
        assert_eq!(
            extend_load(0xffff_ffff, 4, Signedness::Unsigned),
            0xffff_ffff
        );
    }

    #[test]
    fn float_ops() {
        assert_eq!(float_binop(Opcode::Fadd, 1.5, 2.5), 4.0);
        assert_eq!(float_unop(Opcode::Fneg, 3.0), -3.0);
        assert!(float_cmp(CmpCc::Lt, 1.0, 2.0));
        assert!(!float_cmp(CmpCc::Lt, f64::NAN, 2.0));
    }
}
