//! The reference interpreter (golden model).
//!
//! Runs IR programs directly with sequential semantics. Every simulated
//! machine execution is checked against this interpreter's final memory in
//! the integration tests, and the profiler ([`crate::profile`]) is a thin
//! observer on top of it.

use crate::inst::{Inst, InstRef, Operand};
use crate::mem::{MemError, Memory};
use crate::opcode::Opcode;
use crate::program::{BlockId, FuncId, Function, Program};
use crate::reg::{Reg, RegClass};
use crate::semantics;
use crate::value::Value;
use std::fmt;

/// Observation hooks used by the profiler; default implementations are
/// no-ops so plain interpretation pays almost nothing.
pub trait Observer {
    /// Called when control enters a block.
    fn on_block(&mut self, _func: FuncId, _block: BlockId) {}
    /// Called for every executed (non-nullified) load.
    fn on_load(&mut self, _at: InstRef, _addr: u64, _bytes: u64) {}
    /// Called for every executed (non-nullified) store.
    fn on_store(&mut self, _at: InstRef, _addr: u64, _bytes: u64) {}
    /// Called on function entry.
    fn on_call(&mut self, _func: FuncId) {}
    /// Called on function return.
    fn on_ret(&mut self, _func: FuncId) {}
}

/// The do-nothing observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoObserver;

impl Observer for NoObserver {}

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// A memory access faulted.
    Mem(MemError),
    /// The step budget was exhausted (probable infinite loop).
    FuelExhausted {
        /// Steps executed before giving up.
        steps: u64,
    },
    /// The program is malformed (e.g. fell off the end of a function, or
    /// contains machine-only operations).
    BadProgram(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Mem(e) => write!(f, "memory fault: {e}"),
            InterpError::FuelExhausted { steps } => {
                write!(f, "fuel exhausted after {steps} steps")
            }
            InterpError::BadProgram(m) => write!(f, "bad program: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<MemError> for InterpError {
    fn from(e: MemError) -> InterpError {
        InterpError::Mem(e)
    }
}

/// A typed register file (one bank per class).
#[derive(Debug, Clone)]
pub struct RegFile {
    gpr: Vec<i64>,
    fpr: Vec<f64>,
    pred: Vec<bool>,
    btr: Vec<BlockId>,
}

impl RegFile {
    /// Zero-initialized file sized for `counts` registers per class.
    pub fn new(counts: [u32; 4]) -> RegFile {
        RegFile {
            gpr: vec![0; counts[0] as usize],
            fpr: vec![0.0; counts[1] as usize],
            pred: vec![false; counts[2] as usize],
            btr: vec![BlockId(0); counts[3] as usize],
        }
    }

    /// Sized for a function's registers.
    pub fn for_function(f: &Function) -> RegFile {
        RegFile::new(f.reg_counts())
    }

    /// Zero every register in place, keeping the bank allocations.
    /// Equivalent to replacing the file with [`RegFile::new`] of the same
    /// counts (the simulator's machine pool reuses files across runs).
    pub fn reset(&mut self) {
        self.gpr.iter_mut().for_each(|r| *r = 0);
        self.fpr.iter_mut().for_each(|r| *r = 0.0);
        self.pred.iter_mut().for_each(|r| *r = false);
        self.btr.iter_mut().for_each(|r| *r = BlockId(0));
    }

    /// Read a register.
    ///
    /// # Panics
    /// Panics if the register is out of range for its class.
    pub fn read(&self, r: Reg) -> Value {
        match r.class {
            RegClass::Gpr => Value::Int(self.gpr[r.index as usize]),
            RegClass::Fpr => Value::Float(self.fpr[r.index as usize]),
            RegClass::Pred => Value::Pred(self.pred[r.index as usize]),
            RegClass::Btr => Value::Target(self.btr[r.index as usize]),
        }
    }

    /// Write a register.
    ///
    /// # Panics
    /// Panics if the register is out of range or the value class mismatches.
    pub fn write(&mut self, r: Reg, v: Value) {
        match (r.class, v) {
            (RegClass::Gpr, Value::Int(x)) => self.gpr[r.index as usize] = x,
            (RegClass::Fpr, Value::Float(x)) => self.fpr[r.index as usize] = x,
            (RegClass::Pred, Value::Pred(x)) => self.pred[r.index as usize] = x,
            (RegClass::Btr, Value::Target(x)) => self.btr[r.index as usize] = x,
            (c, v) => panic!("class mismatch writing {v:?} to {c:?} register"),
        }
    }
}

struct Frame {
    func: FuncId,
    regs: RegFile,
    block: BlockId,
    index: usize,
    /// Where the caller wants the return value.
    ret_dst: Option<Reg>,
}

/// Result of a successful interpretation.
#[derive(Debug)]
pub struct Outcome {
    /// Final data memory.
    pub memory: Memory,
    /// Dynamic instruction count (including nullified ones).
    pub steps: u64,
}

/// Interpret `program` from `main` with the default observer.
///
/// # Errors
/// See [`InterpError`].
pub fn run(program: &Program, fuel: u64) -> Result<Outcome, InterpError> {
    run_observed(program, fuel, &mut NoObserver)
}

/// Interpret `program`, reporting events to `obs`.
///
/// # Errors
/// See [`InterpError`].
pub fn run_observed(
    program: &Program,
    fuel: u64,
    obs: &mut dyn Observer,
) -> Result<Outcome, InterpError> {
    let mut memory = Memory::from_data(&program.data);
    let mut steps: u64 = 0;
    let main = program.main_func();
    let mut stack: Vec<Frame> = vec![Frame {
        func: program.main,
        regs: RegFile::for_function(main),
        block: BlockId(0),
        index: 0,
        ret_dst: None,
    }];
    obs.on_call(program.main);
    obs.on_block(program.main, BlockId(0));

    'outer: loop {
        if steps >= fuel {
            return Err(InterpError::FuelExhausted { steps });
        }
        let depth = stack.len() - 1;
        let (func_id, block, index) = {
            let f = &stack[depth];
            (f.func, f.block, f.index)
        };
        let func = program.func(func_id);
        let blk = &func.blocks[block.idx()];
        if index >= blk.insts.len() {
            // Fall through to the next block in layout order.
            let next = BlockId(block.0 + 1);
            if next.idx() >= func.blocks.len() {
                return Err(InterpError::BadProgram(format!(
                    "fell off the end of function {} at {}",
                    func.name, block
                )));
            }
            let f = &mut stack[depth];
            f.block = next;
            f.index = 0;
            obs.on_block(func_id, next);
            continue;
        }
        let inst = &blk.insts[index];
        steps += 1;
        let at = InstRef {
            func: func_id,
            block,
            index,
        };

        // Guard check: nullified instructions advance the pc and do nothing.
        if let Some(g) = inst.guard {
            if !stack[depth].regs.read(g).as_pred() {
                stack[depth].index += 1;
                continue;
            }
        }

        // Control flow is handled here; everything else in exec_inst.
        match inst.op {
            Opcode::Br | Opcode::Jump => {
                let taken = if inst.op == Opcode::Jump {
                    true
                } else {
                    let p = inst.srcs[1]
                        .as_reg()
                        .ok_or_else(|| InterpError::BadProgram("br without predicate".into()))?;
                    stack[depth].regs.read(p).as_pred()
                };
                if taken {
                    let target = match inst.srcs[0] {
                        Operand::Block(b) => b,
                        Operand::Reg(r) if r.class == RegClass::Btr => {
                            stack[depth].regs.read(r).as_target()
                        }
                        _ => {
                            return Err(InterpError::BadProgram(
                                "branch target is neither block nor btr".into(),
                            ))
                        }
                    };
                    let f = &mut stack[depth];
                    f.block = target;
                    f.index = 0;
                    obs.on_block(func_id, target);
                } else {
                    stack[depth].index += 1;
                }
                continue;
            }
            Opcode::Call => {
                let callee_id = match inst.srcs[0] {
                    Operand::Func(fid) => fid,
                    _ => return Err(InterpError::BadProgram("call without function".into())),
                };
                let callee = program.func(callee_id);
                let mut regs = RegFile::for_function(callee);
                if callee.params.len() != inst.srcs.len() - 1 {
                    return Err(InterpError::BadProgram(format!(
                        "call to {} with {} args, expected {}",
                        callee.name,
                        inst.srcs.len() - 1,
                        callee.params.len()
                    )));
                }
                for (param, arg) in callee.params.iter().zip(inst.srcs[1..].iter()) {
                    let v = eval_operand(&stack[depth].regs, *arg)?;
                    regs.write(*param, v);
                }
                stack[depth].index += 1;
                stack.push(Frame {
                    func: callee_id,
                    regs,
                    block: BlockId(0),
                    index: 0,
                    ret_dst: inst.dst,
                });
                obs.on_call(callee_id);
                obs.on_block(callee_id, BlockId(0));
                continue;
            }
            Opcode::Ret => {
                let retv = match inst.srcs.first() {
                    Some(op) => Some(eval_operand(&stack[depth].regs, *op)?),
                    None => None,
                };
                let frame = stack.pop().expect("frame");
                obs.on_ret(frame.func);
                if stack.is_empty() {
                    return Err(InterpError::BadProgram("ret from main (use halt)".into()));
                }
                if let (Some(dst), Some(v)) = (frame.ret_dst, retv) {
                    let d = stack.len() - 1;
                    stack[d].regs.write(dst, v);
                }
                continue;
            }
            Opcode::Halt => {
                break 'outer;
            }
            _ => {}
        }

        exec_inst(inst, at, &mut stack[depth].regs, &mut memory, obs)?;
        stack[depth].index += 1;
    }

    Ok(Outcome { memory, steps })
}

/// Evaluate a source operand against a register file.
pub fn eval_operand(regs: &RegFile, op: Operand) -> Result<Value, InterpError> {
    match op {
        Operand::Reg(r) => Ok(regs.read(r)),
        Operand::Imm(v) => Ok(Value::Int(v)),
        Operand::FImm(v) => Ok(Value::Float(v)),
        Operand::Block(b) => Ok(Value::Target(b)),
        other => Err(InterpError::BadProgram(format!(
            "operand {other:?} not evaluable in the interpreter"
        ))),
    }
}

/// Execute a non-control, non-call instruction against registers and
/// memory.
///
/// # Errors
/// Returns an error on memory faults or machine-only opcodes.
pub fn exec_inst(
    inst: &Inst,
    at: InstRef,
    regs: &mut RegFile,
    memory: &mut Memory,
    obs: &mut dyn Observer,
) -> Result<(), InterpError> {
    use Opcode::*;
    let get = |i: usize, regs: &RegFile| eval_operand(regs, inst.srcs[i]);
    match inst.op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar | Min | Max => {
            let a = get(0, regs)?.as_int();
            let b = get(1, regs)?.as_int();
            regs.write(
                inst.dst.expect("alu dst"),
                Value::Int(semantics::int_binop(inst.op, a, b)),
            );
        }
        Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => {
            let a = get(0, regs)?.as_float();
            let b = get(1, regs)?.as_float();
            regs.write(
                inst.dst.expect("fpu dst"),
                Value::Float(semantics::float_binop(inst.op, a, b)),
            );
        }
        Fabs | Fneg | Fsqrt => {
            let a = get(0, regs)?.as_float();
            regs.write(
                inst.dst.expect("fpu dst"),
                Value::Float(semantics::float_unop(inst.op, a)),
            );
        }
        Mov => {
            let v = get(0, regs)?;
            regs.write(inst.dst.expect("mov dst"), v);
        }
        Ldi => {
            let v = get(0, regs)?.as_int();
            regs.write(inst.dst.expect("ldi dst"), Value::Int(v));
        }
        Fldi => {
            let v = get(0, regs)?.as_float();
            regs.write(inst.dst.expect("fldi dst"), Value::Float(v));
        }
        Cmp(cc) => {
            let a = get(0, regs)?.as_int();
            let b = get(1, regs)?.as_int();
            regs.write(
                inst.dst.expect("cmp dst"),
                Value::Pred(semantics::int_cmp(cc, a, b)),
            );
        }
        Fcmp(cc) => {
            let a = get(0, regs)?.as_float();
            let b = get(1, regs)?.as_float();
            regs.write(
                inst.dst.expect("fcmp dst"),
                Value::Pred(semantics::float_cmp(cc, a, b)),
            );
        }
        Sel => {
            let p = get(0, regs)?.as_pred();
            let v = if p { get(1, regs)? } else { get(2, regs)? };
            regs.write(inst.dst.expect("sel dst"), Value::Int(v.as_int()));
        }
        Fsel => {
            let p = get(0, regs)?.as_pred();
            let v = if p { get(1, regs)? } else { get(2, regs)? };
            regs.write(inst.dst.expect("fsel dst"), Value::Float(v.as_float()));
        }
        PAnd => {
            let a = get(0, regs)?.as_pred();
            let b = get(1, regs)?.as_pred();
            regs.write(inst.dst.expect("pand dst"), Value::Pred(a && b));
        }
        POr => {
            let a = get(0, regs)?.as_pred();
            let b = get(1, regs)?.as_pred();
            regs.write(inst.dst.expect("por dst"), Value::Pred(a || b));
        }
        PNot => {
            let a = get(0, regs)?.as_pred();
            regs.write(inst.dst.expect("pnot dst"), Value::Pred(!a));
        }
        ItoF => {
            let a = get(0, regs)?.as_int();
            regs.write(inst.dst.expect("itof dst"), Value::Float(a as f64));
        }
        FtoI => {
            let a = get(0, regs)?.as_float();
            regs.write(inst.dst.expect("ftoi dst"), Value::Int(a as i64));
        }
        PtoG => {
            let a = get(0, regs)?.as_pred();
            regs.write(inst.dst.expect("ptog dst"), Value::Int(i64::from(a)));
        }
        GtoP => {
            let a = get(0, regs)?.as_int();
            regs.write(inst.dst.expect("gtop dst"), Value::Pred(a != 0));
        }
        Load(w, s) => {
            let base = get(0, regs)?.as_int() as u64;
            let off = get(1, regs)?.as_int();
            let addr = base.wrapping_add(off as u64);
            obs.on_load(at, addr, w.bytes());
            let raw = memory.load_uint(addr, w.bytes())?;
            regs.write(
                inst.dst.expect("load dst"),
                Value::Int(semantics::extend_load(raw, w.bytes(), s)),
            );
        }
        Store(w) => {
            let base = get(0, regs)?.as_int() as u64;
            let off = get(1, regs)?.as_int();
            let v = get(2, regs)?.as_int();
            let addr = base.wrapping_add(off as u64);
            obs.on_store(at, addr, w.bytes());
            memory.store_uint(addr, w.bytes(), v as u64)?;
        }
        Fload => {
            let base = get(0, regs)?.as_int() as u64;
            let off = get(1, regs)?.as_int();
            let addr = base.wrapping_add(off as u64);
            obs.on_load(at, addr, 8);
            let v = memory.load_f64(addr)?;
            regs.write(inst.dst.expect("fload dst"), Value::Float(v));
        }
        Fstore => {
            let base = get(0, regs)?.as_int() as u64;
            let off = get(1, regs)?.as_int();
            let v = get(2, regs)?.as_float();
            let addr = base.wrapping_add(off as u64);
            obs.on_store(at, addr, 8);
            memory.store_f64(addr, v)?;
        }
        Fload4 => {
            let base = get(0, regs)?.as_int() as u64;
            let off = get(1, regs)?.as_int();
            let addr = base.wrapping_add(off as u64);
            obs.on_load(at, addr, 4);
            let raw = memory.load_uint(addr, 4)? as u32;
            regs.write(
                inst.dst.expect("fload4 dst"),
                Value::Float(f64::from(f32::from_bits(raw))),
            );
        }
        Fstore4 => {
            let base = get(0, regs)?.as_int() as u64;
            let off = get(1, regs)?.as_int();
            let v = get(2, regs)?.as_float() as f32;
            let addr = base.wrapping_add(off as u64);
            obs.on_store(at, addr, 4);
            memory.store_uint(addr, 4, u64::from(v.to_bits()))?;
        }
        Pbr => {
            let t = match inst.srcs[0] {
                Operand::Block(b) => b,
                _ => return Err(InterpError::BadProgram("pbr without block".into())),
            };
            regs.write(inst.dst.expect("pbr dst"), Value::Target(t));
        }
        Nop => {}
        Br | Jump | Call | Ret | Halt => {
            unreachable!("control flow handled by the interpreter loop")
        }
        Put | Get | Bcast | GetB | Send | Recv | Spawn | Sleep | ModeSwitch | Xbegin | Xcommit
        | Xabort => {
            return Err(InterpError::BadProgram(format!(
                "machine-only operation {} in interpreted IR",
                inst.op
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::opcode::CmpCc;

    #[test]
    fn arithmetic_and_store() {
        let mut pb = ProgramBuilder::new("t");
        let out = pb.data_mut().zeroed("out", 8);
        let mut f = pb.function("main");
        let a = f.ldi(6);
        let b = f.ldi(7);
        let c = f.mul(a, b);
        let base = f.ldi(out as i64);
        f.store8(base, 0, c);
        f.halt();
        pb.finish_function(f);
        let p = pb.finish();
        let o = run(&p, 1000).unwrap();
        assert_eq!(o.memory.load_i64(out).unwrap(), 42);
    }

    #[test]
    fn counted_loop_sums() {
        let mut pb = ProgramBuilder::new("t");
        let out = pb.data_mut().zeroed("out", 8);
        let mut f = pb.function("main");
        let acc = f.ldi(0);
        f.counted_loop(0i64, 10i64, 1, |f, iv| {
            let s = f.add(acc, iv);
            f.mov_to(acc, s);
        });
        let base = f.ldi(out as i64);
        f.store8(base, 0, acc);
        f.halt();
        pb.finish_function(f);
        let p = pb.finish();
        let o = run(&p, 10_000).unwrap();
        assert_eq!(o.memory.load_i64(out).unwrap(), 45);
    }

    #[test]
    fn call_and_return() {
        let mut pb = ProgramBuilder::new("t");
        let out = pb.data_mut().zeroed("out", 8);
        // double(x) = x + x
        let mut g = pb.function("double");
        let x = g.param(RegClass::Gpr);
        let y = g.add(x, x);
        g.ret_val(y);
        let gid = pb.finish_function(g);
        let mut f = pb.function("main");
        let v = f.ldi(21);
        let r = f.call(gid, &[v], Some(RegClass::Gpr)).unwrap();
        let base = f.ldi(out as i64);
        f.store8(base, 0, r);
        f.halt();
        pb.finish_function(f);
        let p = pb.finish();
        let o = run(&p, 1000).unwrap();
        assert_eq!(o.memory.load_i64(out).unwrap(), 42);
    }

    #[test]
    fn guarded_inst_is_nullified() {
        let mut pb = ProgramBuilder::new("t");
        let out = pb.data_mut().zeroed("out", 8);
        let mut f = pb.function("main");
        let p0 = f.cmp(CmpCc::Eq, 1i64, 2i64); // false
        let base = f.ldi(out as i64);
        f.emit(
            crate::inst::Inst::new(
                Opcode::Store(crate::opcode::MemWidth::W8),
                vec![base.into(), Operand::Imm(0), Operand::Imm(99)],
            )
            .guarded(p0),
        );
        f.halt();
        pb.finish_function(f);
        let p = pb.finish();
        let o = run(&p, 1000).unwrap();
        assert_eq!(o.memory.load_i64(out).unwrap(), 0);
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let mut pb = ProgramBuilder::new("t");
        pb.data_mut().zeroed("pad", 8);
        let mut f = pb.function("main");
        let head = f.label();
        f.bind(head);
        let t = f.cmp(CmpCc::Eq, 0i64, 0i64);
        f.br_if(t, head);
        f.halt();
        pb.finish_function(f);
        let p = pb.finish();
        assert!(matches!(
            run(&p, 100),
            Err(InterpError::FuelExhausted { .. })
        ));
    }

    #[test]
    fn float_pipeline() {
        let mut pb = ProgramBuilder::new("t");
        let out = pb.data_mut().zeroed("out", 8);
        let mut f = pb.function("main");
        let a = f.fldi(2.0);
        let b = f.fldi(8.0);
        let c = f.fmul(a, b);
        let d = f.fsqrt(c);
        let base = f.ldi(out as i64);
        f.fstore(base, 0, d);
        f.halt();
        pb.finish_function(f);
        let p = pb.finish();
        let o = run(&p, 1000).unwrap();
        assert_eq!(o.memory.load_f64(out).unwrap(), 4.0);
    }
}
