//! Human-readable dumps of functions and programs (for debugging and
//! compiler trace output).

use crate::program::{Function, Program};
use std::fmt::Write as _;

/// Render a function as assembly-like text.
pub fn function_to_string(f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<String> = f.params.iter().map(|p| p.to_string()).collect();
    let _ = writeln!(s, "func {}({}):", f.name, params.join(", "));
    for (bid, b) in f.iter_blocks() {
        let _ = writeln!(s, "{bid}:");
        for inst in &b.insts {
            let _ = writeln!(s, "    {inst}");
        }
    }
    s
}

/// Render a whole program, including the data-segment symbol table.
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "program {}:", p.name);
    let _ = writeln!(s, "  data ({} bytes):", p.data.size());
    for sym in &p.data.symbols {
        let _ = writeln!(
            s,
            "    {:#08x} {:>8}B  {}",
            crate::program::DataSegment::BASE + sym.offset,
            sym.size,
            sym.name
        );
    }
    for f in &p.funcs {
        s.push('\n');
        s.push_str(&function_to_string(f));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn dump_contains_blocks_and_symbols() {
        let mut pb = ProgramBuilder::new("demo");
        pb.data_mut().zeroed("buf", 16);
        let mut f = pb.function("main");
        let a = f.ldi(1);
        let b = f.ldi(2);
        f.add(a, b);
        f.halt();
        pb.finish_function(f);
        let p = pb.finish();
        let text = program_to_string(&p);
        assert!(text.contains("program demo"));
        assert!(text.contains("buf"));
        assert!(text.contains("bb0:"));
        assert!(text.contains("add"));
        assert!(text.contains("halt"));
    }
}
