//! Profiling interpreter.
//!
//! The Voltron compiler is profile-driven in three places (paper §4):
//!
//! 1. **Statistical DOALL detection** needs, per loop, whether any
//!    cross-iteration memory dependence was *observed* during profiling.
//! 2. **eBUG** needs per-load cache-miss likelihood to weight
//!    load→consumer edges.
//! 3. **Parallelism selection** needs block execution counts and loop trip
//!    counts to focus on hot regions and skip short loops.
//!
//! This module runs the reference interpreter with an observer that
//! collects all three.

use crate::cfg::{Cfg, Dominators};
use crate::inst::InstRef;
use crate::interp::{self, InterpError, Observer};
use crate::loops::{LoopForest, LoopId};
use crate::program::{BlockId, FuncId, Program};
use std::collections::HashMap;

/// Per-loop profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopProfile {
    /// How many times the loop was entered.
    pub invocations: u64,
    /// Total iterations across all invocations.
    pub total_iters: u64,
    /// True if any cross-iteration memory dependence (RAW/WAR/WAW at byte
    /// granularity) was observed in any invocation.
    pub cross_iter_dep: bool,
}

impl LoopProfile {
    /// Average trip count (0 if never invoked).
    pub fn avg_trip(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.total_iters as f64 / self.invocations as f64
        }
    }
}

/// Per-static-load profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadProfile {
    /// Dynamic executions of this load.
    pub accesses: u64,
    /// How many missed in the profiling L1D model.
    pub misses: u64,
}

impl LoadProfile {
    /// Miss ratio in `[0, 1]` (0 if never executed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The collected profile of one program run.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Dynamic entries per block.
    pub block_counts: HashMap<(FuncId, BlockId), u64>,
    /// Per-loop statistics.
    pub loops: HashMap<(FuncId, LoopId), LoopProfile>,
    /// Per-load cache behavior.
    pub loads: HashMap<InstRef, LoadProfile>,
    /// Total interpreted instructions.
    pub steps: u64,
}

impl Profile {
    /// Block count lookup (0 when never executed).
    pub fn block_count(&self, f: FuncId, b: BlockId) -> u64 {
        self.block_counts.get(&(f, b)).copied().unwrap_or(0)
    }

    /// Loop profile lookup.
    pub fn loop_profile(&self, f: FuncId, l: LoopId) -> LoopProfile {
        self.loops.get(&(f, l)).copied().unwrap_or_default()
    }

    /// Load profile lookup.
    pub fn load_profile(&self, at: InstRef) -> LoadProfile {
        self.loads.get(&at).copied().unwrap_or_default()
    }
}

/// A small functional set-associative LRU cache used only for miss-rate
/// profiling (matching the paper's 4 KB, 2-way, 32 B-line L1D).
#[derive(Debug, Clone)]
pub struct FunctionalCache {
    sets: Vec<Vec<u64>>, // per-set tag list in LRU order (front = MRU)
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
}

impl FunctionalCache {
    /// Create a cache of `size` bytes, `assoc` ways, `line` bytes per line.
    ///
    /// # Panics
    /// Panics unless size/assoc/line are powers of two that divide evenly.
    pub fn new(size: u64, assoc: usize, line: u64) -> FunctionalCache {
        assert!(line.is_power_of_two() && size.is_power_of_two());
        let nsets = size / line / assoc as u64;
        assert!(nsets.is_power_of_two() && nsets > 0);
        FunctionalCache {
            sets: vec![Vec::new(); nsets as usize],
            assoc,
            line_shift: line.trailing_zeros(),
            set_mask: nsets - 1,
        }
    }

    /// The paper's L1D configuration.
    pub fn paper_l1d() -> FunctionalCache {
        FunctionalCache::new(4096, 2, 32)
    }

    /// Touch an address; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|t| *t == line) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            true
        } else {
            ways.insert(0, line);
            ways.truncate(self.assoc);
            false
        }
    }
}

#[derive(Debug)]
struct ActiveLoop {
    id: LoopId,
    iter: u64,
    /// Per-byte last-writer and last-reader iteration.
    mem: HashMap<u64, (i64, i64)>,
    dep_found: bool,
}

#[derive(Debug)]
struct FrameCtx {
    func: FuncId,
    stack: Vec<ActiveLoop>,
}

struct Profiler<'a> {
    forests: &'a [LoopForest],
    profile: Profile,
    frames: Vec<FrameCtx>,
    cache: FunctionalCache,
}

impl Profiler<'_> {
    fn pop_loop(&mut self, frame_func: FuncId, al: ActiveLoop) {
        let entry = self.profile.loops.entry((frame_func, al.id)).or_default();
        entry.invocations += 1;
        entry.total_iters += al.iter + 1;
        entry.cross_iter_dep |= al.dep_found;
    }

    fn record_access(&mut self, addr: u64, bytes: u64, is_store: bool) {
        let frame = match self.frames.last_mut() {
            Some(f) => f,
            None => return,
        };
        for al in &mut frame.stack {
            if al.dep_found {
                continue;
            }
            let k = al.iter as i64;
            for b in 0..bytes {
                let e = al.mem.entry(addr + b).or_insert((-1, -1));
                if is_store {
                    if (e.0 >= 0 && e.0 < k) || (e.1 >= 0 && e.1 < k) {
                        al.dep_found = true;
                        break;
                    }
                    e.0 = k;
                } else {
                    if e.0 >= 0 && e.0 < k {
                        al.dep_found = true;
                        break;
                    }
                    e.1 = e.1.max(k);
                }
            }
            if al.dep_found {
                al.mem.clear(); // free memory; flag already latched
            }
        }
    }
}

impl Observer for Profiler<'_> {
    fn on_block(&mut self, func: FuncId, block: BlockId) {
        *self.profile.block_counts.entry((func, block)).or_insert(0) += 1;
        let forest = &self.forests[func.idx()];
        let frame = self.frames.last_mut().expect("frame exists");
        debug_assert_eq!(frame.func, func);
        // Pop loops that no longer contain this block.
        while let Some(top) = frame.stack.last() {
            if forest.get(top.id).blocks.contains(&block) {
                break;
            }
            let al = frame.stack.pop().expect("non-empty");
            let f = frame.func;
            // Reborrow dance: record after pop.
            let entry = self.profile.loops.entry((f, al.id)).or_default();
            entry.invocations += 1;
            entry.total_iters += al.iter + 1;
            entry.cross_iter_dep |= al.dep_found;
        }
        // Entering a header either advances or opens an invocation.
        if let Some(lid) = forest.innermost_of(block) {
            if forest.get(lid).header == block {
                match frame.stack.last_mut() {
                    Some(top) if top.id == lid => top.iter += 1,
                    _ => frame.stack.push(ActiveLoop {
                        id: lid,
                        iter: 0,
                        mem: HashMap::new(),
                        dep_found: false,
                    }),
                }
            }
        }
    }

    fn on_load(&mut self, at: InstRef, addr: u64, bytes: u64) {
        let hit = self.cache.access(addr);
        let lp = self.profile.loads.entry(at).or_default();
        lp.accesses += 1;
        if !hit {
            lp.misses += 1;
        }
        self.record_access(addr, bytes, false);
    }

    fn on_store(&mut self, _at: InstRef, addr: u64, bytes: u64) {
        self.cache.access(addr);
        self.record_access(addr, bytes, true);
    }

    fn on_call(&mut self, func: FuncId) {
        self.frames.push(FrameCtx {
            func,
            stack: Vec::new(),
        });
    }

    fn on_ret(&mut self, _func: FuncId) {
        let frame = self.frames.pop().expect("frame exists");
        for al in frame.stack.into_iter().rev() {
            self.pop_loop(frame.func, al);
        }
    }
}

/// Loop forests for every function of a program (computed once, shared by
/// the profiler and the compiler).
pub fn loop_forests(program: &Program) -> Vec<LoopForest> {
    program
        .funcs
        .iter()
        .map(|f| {
            let cfg = Cfg::build(f);
            let dom = Dominators::compute(&cfg);
            LoopForest::build(&cfg, &dom)
        })
        .collect()
}

/// Profile a program by interpreting it.
///
/// # Errors
/// Propagates interpreter failures.
pub fn profile(program: &Program, fuel: u64) -> Result<Profile, InterpError> {
    let forests = loop_forests(program);
    let mut p = Profiler {
        forests: &forests,
        profile: Profile::default(),
        frames: Vec::new(),
        cache: FunctionalCache::paper_l1d(),
    };
    let outcome = interp::run_observed(program, fuel, &mut p)?;
    // Drain remaining frames (main halts without returning).
    while let Some(frame) = p.frames.pop() {
        let func = frame.func;
        for al in frame.stack.into_iter().rev() {
            p.pop_loop(func, al);
        }
    }
    p.profile.steps = outcome.steps;
    Ok(p.profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::loops::LoopId;

    /// A DOALL-style loop: a[i] = i (independent iterations).
    fn doall_program() -> (Program, u64) {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.data_mut().zeroed("a", 8 * 64);
        let mut f = pb.function("main");
        let base = f.ldi(a as i64);
        f.counted_loop(0i64, 64i64, 1, |f, iv| {
            let off = f.shl(iv, 3i64);
            let addr = f.add(base, off);
            f.store8(addr, 0, iv);
        });
        f.halt();
        pb.finish_function(f);
        (pb.finish(), a)
    }

    /// A recurrence: a[i] = a[i-1] + 1 (cross-iteration RAW).
    fn recurrence_program() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.data_mut().zeroed("a", 8 * 64);
        let mut f = pb.function("main");
        let base = f.ldi(a as i64);
        f.counted_loop(1i64, 64i64, 1, |f, iv| {
            let off = f.shl(iv, 3i64);
            let addr = f.add(base, off);
            let prev = f.load8(addr, -8);
            let v = f.add(prev, 1i64);
            f.store8(addr, 0, v);
        });
        f.halt();
        pb.finish_function(f);
        pb.finish()
    }

    #[test]
    fn doall_loop_has_no_cross_dep() {
        let (p, _) = doall_program();
        let prof = profile(&p, 1_000_000).unwrap();
        let lp = prof.loop_profile(p.main, LoopId(0));
        assert_eq!(lp.invocations, 1);
        assert_eq!(lp.total_iters, 65); // 64 body iterations + exit test
        assert!(!lp.cross_iter_dep);
    }

    #[test]
    fn recurrence_has_cross_dep() {
        let p = recurrence_program();
        let prof = profile(&p, 1_000_000).unwrap();
        let lp = prof.loop_profile(p.main, LoopId(0));
        assert!(lp.cross_iter_dep);
    }

    #[test]
    fn load_misses_are_counted() {
        // Stream through 32 KB so the 4 KB cache must miss repeatedly.
        let mut pb = ProgramBuilder::new("t");
        let a = pb.data_mut().zeroed("a", 32 * 1024);
        let mut f = pb.function("main");
        let base = f.ldi(a as i64);
        let acc = f.ldi(0);
        f.counted_loop(0i64, 4096i64, 1, |f, iv| {
            let off = f.shl(iv, 3i64);
            let addr = f.add(base, off);
            let v = f.load8(addr, 0);
            let s = f.add(acc, v);
            f.mov_to(acc, s);
        });
        f.halt();
        pb.finish_function(f);
        let p = pb.finish();
        let prof = profile(&p, 10_000_000).unwrap();
        let total_misses: u64 = prof.loads.values().map(|l| l.misses).sum();
        // 4096 loads * 8B = 32 KB streamed with 32B lines: 1024 misses.
        assert!(total_misses >= 1000, "got {total_misses}");
    }

    #[test]
    fn functional_cache_lru() {
        let mut c = FunctionalCache::new(64, 2, 16); // 2 sets, 2 ways
        assert!(!c.access(0)); // set 0
        assert!(!c.access(32)); // set 0
        assert!(c.access(0)); // hit, now MRU
        assert!(!c.access(64)); // set 0 -> evicts 32
        assert!(c.access(0));
        assert!(!c.access(32));
    }

    #[test]
    fn block_counts_accumulate() {
        let (p, _) = doall_program();
        let prof = profile(&p, 1_000_000).unwrap();
        // Header executes 65 times (64 iterations + final test).
        let max = prof.block_counts.values().max().copied().unwrap_or(0);
        assert!(max >= 64);
    }
}
