//! IR well-formedness checking.
//!
//! The verifier catches malformed programs at construction time (workload
//! bugs) and after each compiler pass (compiler bugs): operand-count and
//! class mismatches, branches into nowhere, terminators in the middle of
//! blocks, and references to unknown functions.

use crate::inst::{Inst, Operand};
use crate::opcode::Opcode;
use crate::program::{BlockId, FuncId, Function, Program};
use crate::reg::RegClass;
use std::fmt;

/// A verification failure, with location context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Containing function name.
    pub func: String,
    /// Containing block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub index: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verify error in {} {} inst {}: {}",
            self.func, self.block, self.index, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole program.
///
/// # Errors
/// Returns the first problem found.
pub fn verify_program(p: &Program) -> Result<(), VerifyError> {
    for (fi, f) in p.funcs.iter().enumerate() {
        verify_function(f, Some(p), FuncId(fi as u32))?;
    }
    Ok(())
}

/// Verify one function. When `program` is provided, call targets and arity
/// are checked too.
///
/// # Errors
/// Returns the first problem found.
pub fn verify_function(
    f: &Function,
    program: Option<&Program>,
    _id: FuncId,
) -> Result<(), VerifyError> {
    let nblocks = f.blocks.len();
    let err = |block: BlockId, index: usize, message: String| VerifyError {
        func: f.name.clone(),
        block,
        index,
        message,
    };
    if nblocks == 0 {
        return Err(err(BlockId(0), 0, "function has no blocks".into()));
    }
    for (bid, b) in f.iter_blocks() {
        for (i, inst) in b.insts.iter().enumerate() {
            // Terminators other than Br must be last; Br may be followed
            // only by an unconditional Jump (branch ladder tail).
            if inst.op.ends_block() && i + 1 != b.insts.len() {
                return Err(err(bid, i, format!("{} not at end of block", inst.op)));
            }
            if inst.op == Opcode::Br {
                let rest = &b.insts[i + 1..];
                let ok = rest.is_empty()
                    || (rest.len() == 1 && rest[0].op == Opcode::Jump)
                    || rest
                        .iter()
                        .all(|x| x.op == Opcode::Br || x.op == Opcode::Jump);
                if !ok {
                    return Err(err(bid, i, "instructions after conditional branch".into()));
                }
            }
            check_inst(inst, program).map_err(|m| err(bid, i, m))?;
            // Branch targets in range.
            if let Some(t) = inst.static_target() {
                if t.idx() >= nblocks {
                    return Err(err(bid, i, format!("branch target {t} out of range")));
                }
            }
        }
        // The last block must not fall off the end of the function.
        if bid.idx() + 1 == nblocks && b.falls_through() {
            return Err(err(bid, b.insts.len(), "last block falls through".into()));
        }
    }
    Ok(())
}

/// Per-instruction shape and register-class check with no surrounding
/// function or program context: exactly the subset of the grammar that is
/// meaningful for lowered machine code, where calls are gone and branch
/// targets are core-image block indices checked elsewhere. The simulator's
/// mcode validator reuses this so the opcode grammar lives in one place.
///
/// # Errors
/// Returns a description of the first shape or class violation.
pub fn check_mcode_inst(inst: &Inst) -> Result<(), String> {
    check_inst(inst, None)
}

fn class_of(op: Operand) -> Option<RegClass> {
    match op {
        Operand::Reg(r) => Some(r.class),
        Operand::Imm(_) => Some(RegClass::Gpr),
        Operand::FImm(_) => Some(RegClass::Fpr),
        Operand::Block(_) => Some(RegClass::Btr),
        _ => None,
    }
}

fn expect_srcs(inst: &Inst, n: usize) -> Result<(), String> {
    if inst.srcs.len() != n {
        return Err(format!(
            "{} expects {} sources, found {}",
            inst.op,
            n,
            inst.srcs.len()
        ));
    }
    Ok(())
}

fn expect_dst(inst: &Inst, class: RegClass) -> Result<(), String> {
    match inst.dst {
        Some(d) if d.class == class => Ok(()),
        Some(d) => Err(format!(
            "{} expects {class} destination, found {}",
            inst.op, d.class
        )),
        None => Err(format!("{} requires a destination", inst.op)),
    }
}

fn expect_src_class(inst: &Inst, i: usize, class: RegClass) -> Result<(), String> {
    match class_of(inst.srcs[i]) {
        Some(c) if c == class => Ok(()),
        other => Err(format!(
            "{} source {i} must be {class}, found {other:?}",
            inst.op
        )),
    }
}

fn check_inst(inst: &Inst, program: Option<&Program>) -> Result<(), String> {
    use Opcode::*;
    if let Some(g) = inst.guard {
        if g.class != RegClass::Pred {
            return Err("guard must be a predicate register".into());
        }
    }
    match inst.op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar | Min | Max => {
            expect_srcs(inst, 2)?;
            expect_dst(inst, RegClass::Gpr)?;
            expect_src_class(inst, 0, RegClass::Gpr)?;
            expect_src_class(inst, 1, RegClass::Gpr)?;
        }
        Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => {
            expect_srcs(inst, 2)?;
            expect_dst(inst, RegClass::Fpr)?;
            expect_src_class(inst, 0, RegClass::Fpr)?;
            expect_src_class(inst, 1, RegClass::Fpr)?;
        }
        Fabs | Fneg | Fsqrt => {
            expect_srcs(inst, 1)?;
            expect_dst(inst, RegClass::Fpr)?;
            expect_src_class(inst, 0, RegClass::Fpr)?;
        }
        Mov => {
            expect_srcs(inst, 1)?;
            let d = inst.dst.ok_or("mov requires a destination")?;
            expect_src_class(inst, 0, d.class)?;
        }
        Ldi => {
            expect_srcs(inst, 1)?;
            expect_dst(inst, RegClass::Gpr)?;
            if !matches!(inst.srcs[0], Operand::Imm(_)) {
                return Err("ldi requires an integer immediate".into());
            }
        }
        Fldi => {
            expect_srcs(inst, 1)?;
            expect_dst(inst, RegClass::Fpr)?;
            if !matches!(inst.srcs[0], Operand::FImm(_)) {
                return Err("fldi requires a float immediate".into());
            }
        }
        Cmp(_) => {
            expect_srcs(inst, 2)?;
            expect_dst(inst, RegClass::Pred)?;
            expect_src_class(inst, 0, RegClass::Gpr)?;
            expect_src_class(inst, 1, RegClass::Gpr)?;
        }
        Fcmp(_) => {
            expect_srcs(inst, 2)?;
            expect_dst(inst, RegClass::Pred)?;
            expect_src_class(inst, 0, RegClass::Fpr)?;
            expect_src_class(inst, 1, RegClass::Fpr)?;
        }
        Sel => {
            expect_srcs(inst, 3)?;
            expect_dst(inst, RegClass::Gpr)?;
            expect_src_class(inst, 0, RegClass::Pred)?;
            expect_src_class(inst, 1, RegClass::Gpr)?;
            expect_src_class(inst, 2, RegClass::Gpr)?;
        }
        Fsel => {
            expect_srcs(inst, 3)?;
            expect_dst(inst, RegClass::Fpr)?;
            expect_src_class(inst, 0, RegClass::Pred)?;
            expect_src_class(inst, 1, RegClass::Fpr)?;
            expect_src_class(inst, 2, RegClass::Fpr)?;
        }
        PAnd | POr => {
            expect_srcs(inst, 2)?;
            expect_dst(inst, RegClass::Pred)?;
            expect_src_class(inst, 0, RegClass::Pred)?;
            expect_src_class(inst, 1, RegClass::Pred)?;
        }
        PNot => {
            expect_srcs(inst, 1)?;
            expect_dst(inst, RegClass::Pred)?;
            expect_src_class(inst, 0, RegClass::Pred)?;
        }
        ItoF => {
            expect_srcs(inst, 1)?;
            expect_dst(inst, RegClass::Fpr)?;
            expect_src_class(inst, 0, RegClass::Gpr)?;
        }
        FtoI => {
            expect_srcs(inst, 1)?;
            expect_dst(inst, RegClass::Gpr)?;
            expect_src_class(inst, 0, RegClass::Fpr)?;
        }
        PtoG => {
            expect_srcs(inst, 1)?;
            expect_dst(inst, RegClass::Gpr)?;
            expect_src_class(inst, 0, RegClass::Pred)?;
        }
        GtoP => {
            expect_srcs(inst, 1)?;
            expect_dst(inst, RegClass::Pred)?;
            expect_src_class(inst, 0, RegClass::Gpr)?;
        }
        Load(..) => {
            expect_srcs(inst, 2)?;
            expect_dst(inst, RegClass::Gpr)?;
            expect_src_class(inst, 0, RegClass::Gpr)?;
            if !matches!(inst.srcs[1], Operand::Imm(_)) {
                return Err("load offset must be an immediate".into());
            }
        }
        Store(_) => {
            expect_srcs(inst, 3)?;
            expect_src_class(inst, 0, RegClass::Gpr)?;
            if !matches!(inst.srcs[1], Operand::Imm(_)) {
                return Err("store offset must be an immediate".into());
            }
            expect_src_class(inst, 2, RegClass::Gpr)?;
        }
        Fload | Fload4 => {
            expect_srcs(inst, 2)?;
            expect_dst(inst, RegClass::Fpr)?;
            expect_src_class(inst, 0, RegClass::Gpr)?;
            if !matches!(inst.srcs[1], Operand::Imm(_)) {
                return Err("load offset must be an immediate".into());
            }
        }
        Fstore | Fstore4 => {
            expect_srcs(inst, 3)?;
            expect_src_class(inst, 0, RegClass::Gpr)?;
            if !matches!(inst.srcs[1], Operand::Imm(_)) {
                return Err("store offset must be an immediate".into());
            }
            expect_src_class(inst, 2, RegClass::Fpr)?;
        }
        Pbr => {
            expect_srcs(inst, 1)?;
            expect_dst(inst, RegClass::Btr)?;
            if !matches!(inst.srcs[0], Operand::Block(_)) {
                return Err("pbr requires a block operand".into());
            }
        }
        Br => {
            expect_srcs(inst, 2)?;
            match inst.srcs[0] {
                Operand::Block(_) => {}
                Operand::Reg(r) if r.class == RegClass::Btr => {}
                _ => return Err("br target must be a block or btr".into()),
            }
            expect_src_class(inst, 1, RegClass::Pred)?;
        }
        Jump => {
            expect_srcs(inst, 1)?;
            match inst.srcs[0] {
                Operand::Block(_) => {}
                Operand::Reg(r) if r.class == RegClass::Btr => {}
                _ => return Err("jump target must be a block or btr".into()),
            }
        }
        Call => {
            if inst.srcs.is_empty() {
                return Err("call requires a function operand".into());
            }
            let fid = match inst.srcs[0] {
                Operand::Func(x) => x,
                _ => return Err("call requires a function operand".into()),
            };
            if let Some(p) = program {
                if fid.idx() >= p.funcs.len() {
                    return Err(format!("call to unknown function fn{}", fid.0));
                }
                let callee = p.func(fid);
                if callee.params.len() != inst.srcs.len() - 1 {
                    return Err(format!(
                        "call to {} with {} args, expected {}",
                        callee.name,
                        inst.srcs.len() - 1,
                        callee.params.len()
                    ));
                }
                for (param, arg) in callee.params.iter().zip(inst.srcs[1..].iter()) {
                    match class_of(*arg) {
                        Some(c) if c == param.class => {}
                        other => {
                            return Err(format!(
                                "call argument class {other:?} does not match parameter {param}"
                            ))
                        }
                    }
                }
            }
        }
        Ret => {
            if inst.srcs.len() > 1 {
                return Err("ret takes at most one value".into());
            }
        }
        Halt | Nop | Sleep | Xcommit | Xabort => {
            expect_srcs(inst, 0)?;
        }
        Put => {
            expect_srcs(inst, 2)?;
            if !matches!(inst.srcs[1], Operand::Dir(_)) {
                return Err("put requires a direction".into());
            }
        }
        Get => {
            expect_srcs(inst, 1)?;
            if inst.dst.is_none() {
                return Err("get requires a destination".into());
            }
            if !matches!(inst.srcs[0], Operand::Dir(_)) {
                return Err("get requires a direction".into());
            }
        }
        Bcast => {
            expect_srcs(inst, 1)?;
        }
        GetB => {
            expect_srcs(inst, 0)?;
            if inst.dst.is_none() {
                return Err("getb requires a destination".into());
            }
        }
        Send => {
            if inst.srcs.len() != 2 && inst.srcs.len() != 3 {
                return Err("send takes value, core, and an optional tag".into());
            }
            if !matches!(inst.srcs[1], Operand::Core(_)) {
                return Err("send requires a core operand".into());
            }
            if inst.srcs.len() == 3 && !matches!(inst.srcs[2], Operand::Imm(_)) {
                return Err("send tag must be an immediate".into());
            }
        }
        Recv => {
            if inst.srcs.len() != 1 && inst.srcs.len() != 2 {
                return Err("recv takes core and an optional tag".into());
            }
            if inst.dst.is_none() {
                return Err("recv requires a destination".into());
            }
            if !matches!(inst.srcs[0], Operand::Core(_)) {
                return Err("recv requires a core operand".into());
            }
            if inst.srcs.len() == 2 && !matches!(inst.srcs[1], Operand::Imm(_)) {
                return Err("recv tag must be an immediate".into());
            }
        }
        Spawn => {
            expect_srcs(inst, 2)?;
            if !matches!(inst.srcs[0], Operand::Core(_)) {
                return Err("spawn requires a core operand".into());
            }
            if !matches!(inst.srcs[1], Operand::Block(_)) {
                return Err("spawn requires a block operand".into());
            }
        }
        ModeSwitch => {
            expect_srcs(inst, 1)?;
            if !matches!(inst.srcs[0], Operand::Mode(_)) {
                return Err("mode switch requires a mode operand".into());
            }
        }
        Xbegin => {
            expect_srcs(inst, 1)?;
            // The chunk order is an integer (immediate or GPR).
            expect_src_class(inst, 0, RegClass::Gpr)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    fn ok_program() -> Program {
        let mut pb = ProgramBuilder::new("t");
        pb.data_mut().zeroed("d", 8);
        let mut f = pb.function("main");
        let a = f.ldi(1);
        let b = f.ldi(2);
        let c = f.add(a, b);
        let base = f.ldi(crate::program::DataSegment::BASE as i64);
        f.store8(base, 0, c);
        f.halt();
        pb.finish_function(f);
        pb.finish()
    }

    #[test]
    fn valid_program_verifies() {
        assert!(verify_program(&ok_program()).is_ok());
    }

    #[test]
    fn class_mismatch_is_caught() {
        let mut p = ok_program();
        // Corrupt: add with a float source.
        p.funcs[0].blocks[0].insts[2].srcs[0] = Operand::Reg(Reg::fpr(0));
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("must be gpr"));
    }

    #[test]
    fn misplaced_terminator_is_caught() {
        let mut p = ok_program();
        let halt = Inst::new(Opcode::Halt, vec![]);
        p.funcs[0].blocks[0].insts.insert(0, halt);
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("not at end"));
    }

    #[test]
    fn out_of_range_branch_is_caught() {
        let mut p = ok_program();
        let n = p.funcs[0].blocks[0].insts.len();
        p.funcs[0].blocks[0].insts[n - 1] =
            Inst::new(Opcode::Jump, vec![Operand::Block(BlockId(99))]);
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn falling_off_function_is_caught() {
        let mut p = ok_program();
        p.funcs[0].blocks[0].insts.pop(); // remove halt
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("falls through"));
    }
}
