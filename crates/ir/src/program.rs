//! Programs, functions, blocks, and the static data segment.

use crate::inst::Inst;
use crate::opcode::Opcode;
use crate::reg::{Reg, RegClass};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a basic block within a function (or per-core image).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of a function within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The function index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: straight-line instructions with terminators at the end.
///
/// Blocks fall through to the next block in layout order unless the last
/// instruction is an unconditional control transfer
/// ([`Opcode::ends_block`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// The instructions, in program order.
    pub insts: Vec<Inst>,
}

impl Block {
    /// True if the block falls through to the next block in layout order.
    pub fn falls_through(&self) -> bool {
        match self.insts.last() {
            Some(i) => !i.op.ends_block(),
            None => true,
        }
    }
}

/// A function: parameters and a vector of basic blocks; block 0 is entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Human-readable name.
    pub name: String,
    /// Parameter registers, filled by the caller's arguments.
    pub params: Vec<Reg>,
    /// The blocks; `BlockId(i)` indexes `blocks[i]`. Block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Create an empty function with one (empty) entry block.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            params: Vec::new(),
            blocks: vec![Block::default()],
        }
    }

    /// Entry block id (always `BlockId(0)`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Shared access to a block.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.idx()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.idx()]
    }

    /// Iterate over `(BlockId, &Block)` pairs in layout order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Highest register index used per class, plus one (register file sizes).
    pub fn reg_counts(&self) -> [u32; 4] {
        let mut counts = [0u32; 4];
        let mut bump = |r: Reg| {
            let c = &mut counts[r.class.index()];
            *c = (*c).max(r.index + 1);
        };
        for r in &self.params {
            bump(*r);
        }
        for b in &self.blocks {
            for i in &b.insts {
                if let Some(d) = i.dst {
                    bump(d);
                }
                for u in i.uses() {
                    bump(u);
                }
            }
        }
        counts
    }

    /// Total static instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Allocate a fresh register of the given class (one past the current
    /// maximum index).
    pub fn fresh_reg(&mut self, class: RegClass) -> Reg {
        let counts = self.reg_counts();
        Reg {
            class,
            index: counts[class.index()],
        }
    }
}

/// A named region of the data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name (unique within the program).
    pub name: String,
    /// Byte offset from [`DataSegment::BASE`].
    pub offset: u64,
    /// Size in bytes.
    pub size: u64,
}

/// The static data segment: initialized globals.
///
/// All workload state lives here (the IR has no stack: calls are inlined
/// before code generation and locals live in virtual registers).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataSegment {
    /// Raw initialized bytes; address of byte `i` is `BASE + i`.
    pub bytes: Vec<u8>,
    /// Symbols, in allocation order.
    pub symbols: Vec<Symbol>,
}

impl DataSegment {
    /// Virtual address of the first data byte.
    pub const BASE: u64 = 0x1_0000;

    /// Allocate `size` bytes aligned to `align`, initialized to zero.
    /// Returns the symbol's virtual address.
    pub fn alloc(&mut self, name: impl Into<String>, size: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut off = self.bytes.len() as u64;
        off = (off + align - 1) & !(align - 1);
        self.bytes.resize((off + size) as usize, 0);
        self.symbols.push(Symbol {
            name: name.into(),
            offset: off,
            size,
        });
        Self::BASE + off
    }

    /// Allocate and initialize an `i64` array. Returns its address.
    pub fn array_i64(&mut self, name: impl Into<String>, init: &[i64]) -> u64 {
        let addr = self.alloc(name, (init.len() * 8) as u64, 8);
        for (i, v) in init.iter().enumerate() {
            let o = (addr - Self::BASE) as usize + i * 8;
            self.bytes[o..o + 8].copy_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Allocate and initialize an `i32` array. Returns its address.
    pub fn array_i32(&mut self, name: impl Into<String>, init: &[i32]) -> u64 {
        let addr = self.alloc(name, (init.len() * 4) as u64, 8);
        for (i, v) in init.iter().enumerate() {
            let o = (addr - Self::BASE) as usize + i * 4;
            self.bytes[o..o + 4].copy_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Allocate and initialize an `i16` array. Returns its address.
    pub fn array_i16(&mut self, name: impl Into<String>, init: &[i16]) -> u64 {
        let addr = self.alloc(name, (init.len() * 2) as u64, 8);
        for (i, v) in init.iter().enumerate() {
            let o = (addr - Self::BASE) as usize + i * 2;
            self.bytes[o..o + 2].copy_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Allocate and initialize a byte array. Returns its address.
    pub fn array_u8(&mut self, name: impl Into<String>, init: &[u8]) -> u64 {
        let addr = self.alloc(name, init.len() as u64, 8);
        let o = (addr - Self::BASE) as usize;
        self.bytes[o..o + init.len()].copy_from_slice(init);
        addr
    }

    /// Allocate and initialize an `f64` array. Returns its address.
    pub fn array_f64(&mut self, name: impl Into<String>, init: &[f64]) -> u64 {
        let addr = self.alloc(name, (init.len() * 8) as u64, 8);
        for (i, v) in init.iter().enumerate() {
            let o = (addr - Self::BASE) as usize + i * 8;
            self.bytes[o..o + 8].copy_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Allocate a zero-initialized region of `size` bytes. Returns its
    /// address.
    pub fn zeroed(&mut self, name: impl Into<String>, size: u64) -> u64 {
        self.alloc(name, size, 8)
    }

    /// Look up a symbol's address by name.
    pub fn symbol_addr(&self, name: &str) -> Option<u64> {
        self.symbols
            .iter()
            .find(|s| s.name == name)
            .map(|s| Self::BASE + s.offset)
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Given an address, the symbol containing it (for alias analysis and
    /// diagnostics).
    pub fn symbol_containing(&self, addr: u64) -> Option<&Symbol> {
        if addr < Self::BASE {
            return None;
        }
        let off = addr - Self::BASE;
        self.symbols
            .iter()
            .find(|s| off >= s.offset && off < s.offset + s.size)
    }
}

/// A whole program: functions (with a designated `main`) and the data
/// segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// All functions; `FuncId(i)` indexes `funcs[i]`.
    pub funcs: Vec<Function>,
    /// Index of the entry function.
    pub main: FuncId,
    /// The static data segment.
    pub data: DataSegment,
}

impl Program {
    /// Shared access to a function.
    ///
    /// # Panics
    /// Panics if `f` is out of range.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.idx()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    /// Panics if `f` is out of range.
    pub fn func_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.funcs[f.idx()]
    }

    /// The entry function.
    pub fn main_func(&self) -> &Function {
        self.func(self.main)
    }

    /// Look up a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Total static instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }

    /// Count of dynamic opcode categories (diagnostic helper).
    pub fn opcode_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for f in &self.funcs {
            for b in &f.blocks {
                for i in &b.insts {
                    let key = match i.op {
                        Opcode::Load(..) | Opcode::Fload | Opcode::Fload4 => "load",
                        Opcode::Store(_) | Opcode::Fstore | Opcode::Fstore4 => "store",
                        Opcode::Br | Opcode::Jump => "branch",
                        Opcode::Call => "call",
                        _ => "other",
                    };
                    *h.entry(key).or_insert(0) += 1;
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_segment_allocates_aligned() {
        let mut d = DataSegment::default();
        let a = d.array_u8("a", &[1, 2, 3]);
        let b = d.array_i64("b", &[10, 20]);
        assert_eq!(a, DataSegment::BASE);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 3);
        assert_eq!(d.symbol_addr("b"), Some(b));
        let sym = d.symbol_containing(b + 8).unwrap();
        assert_eq!(sym.name, "b");
    }

    #[test]
    fn array_init_round_trips() {
        let mut d = DataSegment::default();
        let a = d.array_i32("a", &[-5, 7]);
        let off = (a - DataSegment::BASE) as usize;
        let v = i32::from_le_bytes(d.bytes[off..off + 4].try_into().unwrap());
        assert_eq!(v, -5);
    }

    #[test]
    fn reg_counts_track_max() {
        let mut f = Function::new("t");
        f.block_mut(BlockId(0)).insts.push(Inst::with_dst(
            Opcode::Add,
            Reg::gpr(9),
            vec![Reg::gpr(2).into(), Reg::gpr(3).into()],
        ));
        assert_eq!(f.reg_counts()[0], 10);
        let fresh = f.fresh_reg(RegClass::Gpr);
        assert_eq!(fresh.index, 10);
    }

    #[test]
    fn fallthrough_detection() {
        let mut b = Block::default();
        assert!(b.falls_through());
        b.insts.push(Inst::new(Opcode::Halt, vec![]));
        assert!(!b.falls_through());
    }
}
