//! The instruction set.
//!
//! The ISA is HPL-PD-flavored (the paper's compiler targets HPL-PD via
//! Trimaran) extended with Voltron's inter-core operations:
//!
//! * **Direct-mode network**: [`Opcode::Put`] / [`Opcode::Get`] move a
//!   register value across one mesh link in lock-step (1 cycle/hop), and
//!   [`Opcode::Bcast`] / [`Opcode::GetB`] broadcast branch conditions within
//!   a coupled group.
//! * **Queue-mode network**: [`Opcode::Send`] / [`Opcode::Recv`] communicate
//!   asynchronously through send/receive queues (2 cycles + 1/hop).
//! * **Fine-grain threading**: [`Opcode::Spawn`] / [`Opcode::Sleep`] start
//!   and finish fine-grain threads in the same program context.
//! * **Mode control**: [`Opcode::ModeSwitch`] is the barrier-like switch
//!   between coupled and decoupled execution.
//! * **Transactional memory**: [`Opcode::Xbegin`] / [`Opcode::Xcommit`] /
//!   [`Opcode::Xabort`] delimit the speculative chunks of statistical
//!   DOALL loops.
//! * **Unbundled branches**: [`Opcode::Pbr`] (prepare-to-branch) writes a
//!   branch-target register; [`Opcode::Br`] / [`Opcode::Jump`] transfer
//!   control through it, exactly as in Fig. 5 of the paper.

use std::fmt;

/// Comparison condition codes for [`Opcode::Cmp`] and [`Opcode::Fcmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpCc {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl CmpCc {
    /// The condition that is true exactly when `self` is false.
    pub fn negate(self) -> CmpCc {
        match self {
            CmpCc::Eq => CmpCc::Ne,
            CmpCc::Ne => CmpCc::Eq,
            CmpCc::Lt => CmpCc::Ge,
            CmpCc::Le => CmpCc::Gt,
            CmpCc::Gt => CmpCc::Le,
            CmpCc::Ge => CmpCc::Lt,
            CmpCc::Ltu => CmpCc::Geu,
            CmpCc::Geu => CmpCc::Ltu,
        }
    }
}

impl fmt::Display for CmpCc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpCc::Eq => "eq",
            CmpCc::Ne => "ne",
            CmpCc::Lt => "lt",
            CmpCc::Le => "le",
            CmpCc::Gt => "gt",
            CmpCc::Ge => "ge",
            CmpCc::Ltu => "ltu",
            CmpCc::Geu => "geu",
        };
        f.write_str(s)
    }
}

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    W1,
    /// 2 bytes.
    W2,
    /// 4 bytes.
    W4,
    /// 8 bytes.
    W8,
}

impl MemWidth {
    /// The width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::W1 => 1,
            MemWidth::W2 => 2,
            MemWidth::W4 => 4,
            MemWidth::W8 => 8,
        }
    }
}

/// Whether a sub-word load sign- or zero-extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signedness {
    /// Sign-extend to 64 bits.
    Signed,
    /// Zero-extend to 64 bits.
    Unsigned,
}

/// Mesh link direction for direct-mode `PUT`/`GET`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Toward larger x (core id + 1 in the same row).
    East,
    /// Toward smaller x.
    West,
    /// Toward smaller y (core id - width).
    North,
    /// Toward larger y.
    South,
}

impl Dir {
    /// The direction a matching `GET` must use to read what a `PUT` in
    /// `self` direction wrote (the link's other end).
    pub fn opposite(self) -> Dir {
        match self {
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::North => Dir::South,
            Dir::South => Dir::North,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::East => "E",
            Dir::West => "W",
            Dir::North => "N",
            Dir::South => "S",
        };
        f.write_str(s)
    }
}

/// Voltron execution mode, the operand of [`Opcode::ModeSwitch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Lock-step multicluster-VLIW execution (direct network).
    Coupled,
    /// Independent fine-grain threads (queue network).
    Decoupled,
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecMode::Coupled => f.write_str("coupled"),
            ExecMode::Decoupled => f.write_str("decoupled"),
        }
    }
}

/// An operation code.
///
/// Operand conventions (checked by the verifier) are documented per group;
/// `dst` refers to [`crate::Inst::dst`], `srcs` to [`crate::Inst::srcs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // ---- integer ALU: dst gpr, srcs [gpr|imm, gpr|imm] ----
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (quotient; division by zero yields 0 by definition).
    Div,
    /// Integer remainder (remainder by zero yields 0 by definition).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (count masked to 6 bits).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,

    // ---- moves and constants ----
    /// Register move within a class: dst, srcs `[reg]` (same class as dst).
    Mov,
    /// Load integer immediate: dst gpr, srcs `[imm]`.
    Ldi,
    /// Load float immediate: dst fpr, srcs `[fimm]`.
    Fldi,

    // ---- compare and select ----
    /// Integer compare: dst pred, srcs `[gpr|imm, gpr|imm]`.
    Cmp(CmpCc),
    /// Float compare: dst pred, srcs `[fpr, fpr]`.
    Fcmp(CmpCc),
    /// Integer select: dst gpr, srcs `[pred, gpr|imm, gpr|imm]`
    /// (`dst = p ? a : b`).
    Sel,
    /// Float select: dst fpr, srcs `[pred, fpr, fpr]`.
    Fsel,

    // ---- predicate logic: dst pred, srcs preds ----
    /// Predicate and.
    PAnd,
    /// Predicate or.
    POr,
    /// Predicate negation (one source).
    PNot,

    // ---- conversions ----
    /// Int to float: dst fpr, srcs `[gpr]`.
    ItoF,
    /// Float to int (truncating): dst gpr, srcs `[fpr]`.
    FtoI,
    /// Predicate to int (0/1): dst gpr, srcs `[pred]`.
    PtoG,
    /// Int to predicate (nonzero): dst pred, srcs `[gpr]`.
    GtoP,

    // ---- floating point: dst fpr, srcs fprs ----
    /// Float add.
    Fadd,
    /// Float subtract.
    Fsub,
    /// Float multiply.
    Fmul,
    /// Float divide.
    Fdiv,
    /// Float absolute value (one source).
    Fabs,
    /// Float negate (one source).
    Fneg,
    /// Float minimum.
    Fmin,
    /// Float maximum.
    Fmax,
    /// Float square root (one source).
    Fsqrt,

    // ---- memory ----
    /// Integer load: dst gpr, srcs `[base gpr, imm offset]`.
    Load(MemWidth, Signedness),
    /// Integer store: srcs `[base gpr, imm offset, value gpr|imm]`.
    Store(MemWidth),
    /// f64 load: dst fpr, srcs `[base gpr, imm offset]`.
    Fload,
    /// f64 store: srcs `[base gpr, imm offset, value fpr]`.
    Fstore,
    /// f32 load (widens to f64): dst fpr, srcs `[base gpr, imm offset]`.
    Fload4,
    /// f32 store (narrowing): srcs `[base gpr, imm offset, value fpr]`.
    Fstore4,

    // ---- control flow ----
    /// Prepare-to-branch: dst btr, srcs `[block]`.
    Pbr,
    /// Conditional branch: srcs `[btr|block, pred]`; taken if the predicate
    /// is true. The IR form may name the block directly; lowering rewrites
    /// it to a BTR per the distributed branch architecture.
    Br,
    /// Unconditional jump: srcs `[btr|block]`.
    Jump,
    /// Call: dst optional return value, srcs `[func, args...]`. Calls are
    /// fully inlined before partitioning; the machine never executes one.
    Call,
    /// Return: srcs `[]` or `[reg]` (value matching the caller's dst class).
    Ret,
    /// Stop the machine (end of `main`).
    Halt,
    /// No operation (schedule padding).
    Nop,

    // ---- Voltron scalar operand network ----
    /// Direct-mode put: srcs `[reg, dir]`. Writes the value onto the mesh
    /// link in the given direction; 1 cycle/hop, lock-step with the `GET`.
    Put,
    /// Direct-mode get: dst reg, srcs `[dir]`. Reads the link latch.
    Get,
    /// Direct-mode broadcast of a branch condition within the coupled
    /// group: srcs `[reg]`.
    Bcast,
    /// Read the broadcast latch: dst reg, srcs `[]`.
    GetB,
    /// Queue-mode send: srcs `[reg, core]`. Enqueues a message routed to
    /// the target core.
    Send,
    /// Queue-mode receive: dst reg, srcs `[core]`. Blocks until a message
    /// from the named sender is in the receive queue.
    Recv,

    // ---- fine-grain threads and modes ----
    /// Start a fine-grain thread: srcs `[core, block]`. Sends the start
    /// address to the target core, which must be sleeping.
    Spawn,
    /// Finish a fine-grain thread; the core idles awaiting the next spawn.
    Sleep,
    /// Switch execution mode: srcs `[mode]`. Barrier across the core group.
    ModeSwitch,

    // ---- transactional memory (statistical DOALL support) ----
    /// Begin a speculative chunk: srcs `[gpr|imm chunk-order]`.
    Xbegin,
    /// Commit the chunk, in chunk order (blocks for the commit token).
    Xcommit,
    /// Abort the chunk explicitly.
    Xabort,
}

impl Opcode {
    /// Nominal result latency in cycles, assuming L1 hits for memory
    /// operations. These follow the paper's "latencies of the Itanium
    /// processor are assumed" setup; the scheduler plans with them and the
    /// simulator's scoreboard enforces them.
    pub fn latency(self) -> u32 {
        use Opcode::*;
        match self {
            Mul => 3,
            Div | Rem => 12,
            Fadd | Fsub | Fmul | Fmin | Fmax | Fabs | Fneg => 4,
            Fdiv | Fsqrt => 16,
            ItoF | FtoI => 4,
            Load(..) | Fload | Fload4 => 2,
            _ => 1,
        }
    }

    /// True for operations that read memory.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Load(..) | Opcode::Fload | Opcode::Fload4)
    }

    /// True for operations that write memory.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Store(_) | Opcode::Fstore | Opcode::Fstore4)
    }

    /// True for any memory access.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// True for control-transfer operations (branch/jump/call/ret/halt).
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Opcode::Br | Opcode::Jump | Opcode::Call | Opcode::Ret | Opcode::Halt
        )
    }

    /// True for operations that may end a basic block.
    pub fn is_terminator(self) -> bool {
        self.is_control()
    }

    /// True for unconditional block-enders (no fallthrough).
    pub fn ends_block(self) -> bool {
        matches!(self, Opcode::Jump | Opcode::Ret | Opcode::Halt)
    }

    /// True for inter-core communication operations.
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            Opcode::Put
                | Opcode::Get
                | Opcode::Bcast
                | Opcode::GetB
                | Opcode::Send
                | Opcode::Recv
                | Opcode::Spawn
        )
    }

    /// Mnemonic used by the pretty-printer.
    pub fn mnemonic(self) -> String {
        use Opcode::*;
        match self {
            Add => "add".into(),
            Sub => "sub".into(),
            Mul => "mul".into(),
            Div => "div".into(),
            Rem => "rem".into(),
            And => "and".into(),
            Or => "or".into(),
            Xor => "xor".into(),
            Shl => "shl".into(),
            Shr => "shr".into(),
            Sar => "sar".into(),
            Min => "min".into(),
            Max => "max".into(),
            Mov => "mov".into(),
            Ldi => "ldi".into(),
            Fldi => "fldi".into(),
            Cmp(cc) => format!("cmp.{cc}"),
            Fcmp(cc) => format!("fcmp.{cc}"),
            Sel => "sel".into(),
            Fsel => "fsel".into(),
            PAnd => "pand".into(),
            POr => "por".into(),
            PNot => "pnot".into(),
            ItoF => "itof".into(),
            FtoI => "ftoi".into(),
            PtoG => "ptog".into(),
            GtoP => "gtop".into(),
            Fadd => "fadd".into(),
            Fsub => "fsub".into(),
            Fmul => "fmul".into(),
            Fdiv => "fdiv".into(),
            Fabs => "fabs".into(),
            Fneg => "fneg".into(),
            Fmin => "fmin".into(),
            Fmax => "fmax".into(),
            Fsqrt => "fsqrt".into(),
            Load(w, s) => format!(
                "ld{}{}",
                w.bytes(),
                if matches!(s, Signedness::Unsigned) {
                    "u"
                } else {
                    ""
                }
            ),
            Store(w) => format!("st{}", w.bytes()),
            Fload => "fld".into(),
            Fstore => "fst".into(),
            Fload4 => "fld4".into(),
            Fstore4 => "fst4".into(),
            Pbr => "pbr".into(),
            Br => "br".into(),
            Jump => "jump".into(),
            Call => "call".into(),
            Ret => "ret".into(),
            Halt => "halt".into(),
            Nop => "nop".into(),
            Put => "put".into(),
            Get => "get".into(),
            Bcast => "bcast".into(),
            GetB => "getb".into(),
            Send => "send".into(),
            Recv => "recv".into(),
            Spawn => "spawn".into(),
            Sleep => "sleep".into(),
            ModeSwitch => "mode".into(),
            Xbegin => "xbegin".into(),
            Xcommit => "xcommit".into(),
            Xabort => "xabort".into(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negate_is_involutive() {
        for cc in [
            CmpCc::Eq,
            CmpCc::Ne,
            CmpCc::Lt,
            CmpCc::Le,
            CmpCc::Gt,
            CmpCc::Ge,
            CmpCc::Ltu,
            CmpCc::Geu,
        ] {
            assert_eq!(cc.negate().negate(), cc);
        }
    }

    #[test]
    fn dir_opposite_round_trips() {
        for d in [Dir::East, Dir::West, Dir::North, Dir::South] {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn mem_classification() {
        assert!(Opcode::Load(MemWidth::W4, Signedness::Signed).is_load());
        assert!(Opcode::Store(MemWidth::W8).is_store());
        assert!(Opcode::Fload.is_mem());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn latency_defaults_to_one() {
        assert_eq!(Opcode::Add.latency(), 1);
        assert_eq!(Opcode::Mul.latency(), 3);
        assert_eq!(Opcode::Fadd.latency(), 4);
        assert_eq!(Opcode::Load(MemWidth::W8, Signedness::Signed).latency(), 2);
    }

    #[test]
    fn terminators_end_blocks() {
        assert!(Opcode::Jump.ends_block());
        assert!(Opcode::Halt.ends_block());
        assert!(!Opcode::Br.ends_block());
        assert!(Opcode::Br.is_terminator());
    }
}
