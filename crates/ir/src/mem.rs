//! Byte-addressable data memory shared by the interpreter and simulator.

use crate::program::DataSegment;
use std::fmt;

/// An out-of-range or misaligned memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemError {
    /// The faulting address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// True for stores.
    pub is_store: bool,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out-of-range {} of {} bytes at address {:#x}",
            if self.is_store { "store" } else { "load" },
            self.size,
            self.addr
        )
    }
}

impl std::error::Error for MemError {}

/// Data memory: the materialized data segment.
///
/// Bounds-checked so workload bugs surface as errors rather than silent
/// corruption. The functional state is *eager*: stores apply immediately;
/// the timing model (caches, coherence) lives entirely in `voltron-sim` and
/// never holds data.
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Materialize the data segment into runnable memory.
    pub fn from_data(data: &DataSegment) -> Memory {
        Memory {
            bytes: data.bytes.clone(),
        }
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// The raw bytes (for output comparison).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn range(&self, addr: u64, size: u64, is_store: bool) -> Result<usize, MemError> {
        let base = DataSegment::BASE;
        if addr < base || addr + size > base + self.bytes.len() as u64 {
            return Err(MemError {
                addr,
                size,
                is_store,
            });
        }
        Ok((addr - base) as usize)
    }

    /// Load `size` (1/2/4/8) bytes little-endian as an unsigned integer.
    ///
    /// # Errors
    /// Returns [`MemError`] if the access is out of range.
    pub fn load_uint(&self, addr: u64, size: u64) -> Result<u64, MemError> {
        let o = self.range(addr, size, false)?;
        let mut buf = [0u8; 8];
        buf[..size as usize].copy_from_slice(&self.bytes[o..o + size as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Store the low `size` bytes of `value` little-endian.
    ///
    /// # Errors
    /// Returns [`MemError`] if the access is out of range.
    pub fn store_uint(&mut self, addr: u64, size: u64, value: u64) -> Result<(), MemError> {
        let o = self.range(addr, size, true)?;
        self.bytes[o..o + size as usize].copy_from_slice(&value.to_le_bytes()[..size as usize]);
        Ok(())
    }

    /// Load an `i64`.
    ///
    /// # Errors
    /// Returns [`MemError`] if the access is out of range.
    pub fn load_i64(&self, addr: u64) -> Result<i64, MemError> {
        Ok(self.load_uint(addr, 8)? as i64)
    }

    /// Load an `i32` (sign-extended).
    ///
    /// # Errors
    /// Returns [`MemError`] if the access is out of range.
    pub fn load_i32(&self, addr: u64) -> Result<i64, MemError> {
        Ok(self.load_uint(addr, 4)? as u32 as i32 as i64)
    }

    /// Load an `f64`.
    ///
    /// # Errors
    /// Returns [`MemError`] if the access is out of range.
    pub fn load_f64(&self, addr: u64) -> Result<f64, MemError> {
        Ok(f64::from_bits(self.load_uint(addr, 8)?))
    }

    /// Store an `f64`.
    ///
    /// # Errors
    /// Returns [`MemError`] if the access is out of range.
    pub fn store_f64(&mut self, addr: u64, v: f64) -> Result<(), MemError> {
        self.store_uint(addr, 8, v.to_bits())
    }

    /// Byte-wise equality with another memory, returning the first
    /// differing address if any (for golden-model comparison diagnostics).
    pub fn first_difference(&self, other: &Memory) -> Option<u64> {
        let n = self.bytes.len().min(other.bytes.len());
        for i in 0..n {
            if self.bytes[i] != other.bytes[i] {
                return Some(DataSegment::BASE + i as u64);
            }
        }
        if self.bytes.len() != other.bytes.len() {
            return Some(DataSegment::BASE + n as u64);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(n: usize) -> Memory {
        let mut d = DataSegment::default();
        d.zeroed("z", n as u64);
        Memory::from_data(&d)
    }

    #[test]
    fn load_store_round_trip() {
        let mut m = mem(64);
        let a = DataSegment::BASE + 8;
        m.store_uint(a, 8, 0xdead_beef_0bad_f00d).unwrap();
        assert_eq!(m.load_uint(a, 8).unwrap(), 0xdead_beef_0bad_f00d);
        assert_eq!(m.load_uint(a, 4).unwrap(), 0x0bad_f00d);
        m.store_f64(a, -2.5).unwrap();
        assert_eq!(m.load_f64(a).unwrap(), -2.5);
    }

    #[test]
    fn out_of_range_errors() {
        let mut m = mem(16);
        assert!(m.load_uint(DataSegment::BASE + 12, 8).is_err());
        assert!(m.store_uint(DataSegment::BASE - 1, 1, 0).is_err());
        assert!(m.load_uint(0, 8).is_err());
    }

    #[test]
    fn first_difference_finds_byte() {
        let mut a = mem(32);
        let b = mem(32);
        assert_eq!(a.first_difference(&b), None);
        a.store_uint(DataSegment::BASE + 5, 1, 9).unwrap();
        assert_eq!(a.first_difference(&b), Some(DataSegment::BASE + 5));
    }

    #[test]
    fn sign_extension_on_i32_load() {
        let mut m = mem(16);
        m.store_uint(DataSegment::BASE, 4, 0xffff_ffff).unwrap();
        assert_eq!(m.load_i32(DataSegment::BASE).unwrap(), -1);
    }
}
