//! Control-flow graph utilities: successors, predecessors, reverse
//! postorder, and dominators.

use crate::opcode::Opcode;
use crate::program::{BlockId, Function};
use std::collections::HashMap;

/// The control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists, indexed by block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor lists, indexed by block.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (unreachable blocks are absent).
    pub rpo_index: HashMap<BlockId, usize>,
}

impl Cfg {
    /// Build the CFG of `f`.
    ///
    /// Successor order: branch targets in instruction order, then the
    /// fallthrough block (if the block falls through).
    pub fn build(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut out: Vec<BlockId> = Vec::new();
            for inst in &b.insts {
                match inst.op {
                    Opcode::Br | Opcode::Jump => {
                        if let Some(t) = inst.static_target() {
                            if !out.contains(&t) {
                                out.push(t);
                            }
                        }
                    }
                    _ => {}
                }
            }
            if b.falls_through() {
                let next = BlockId(bi as u32 + 1);
                if (next.idx()) < n && !out.contains(&next) {
                    out.push(next);
                }
            }
            succs[bi] = out;
        }
        let mut preds = vec![Vec::new(); n];
        for (bi, ss) in succs.iter().enumerate() {
            for s in ss {
                preds[s.idx()].push(BlockId(bi as u32));
            }
        }
        // Reverse postorder via iterative DFS.
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::new();
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        visited[0] = true;
        while let Some((b, i)) = stack.pop() {
            if i < succs[b.idx()].len() {
                stack.push((b, i + 1));
                let s = succs[b.idx()][i];
                if !visited[s.idx()] {
                    visited[s.idx()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        let rpo_index: HashMap<BlockId, usize> =
            post.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        Cfg {
            succs,
            preds,
            rpo: post,
            rpo_index,
        }
    }

    /// Successors of a block.
    pub fn succs_of(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.idx()]
    }

    /// Predecessors of a block.
    pub fn preds_of(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.idx()]
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index.contains_key(&b)
    }
}

/// Immediate-dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry's idom
    /// is itself. Unreachable blocks map to `None`.
    pub idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Compute dominators over a CFG.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.succs.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return Dominators { idom };
        }
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds_of(b) {
                    if idom[p.idx()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.idx()] != Some(ni) {
                        idom[b.idx()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom }
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.idx()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    let pos = |x: BlockId| rpo_index[&x];
    while a != b {
        while pos(a) > pos(b) {
            a = idom[a.idx()].expect("reachable block has idom");
        }
        while pos(b) > pos(a) {
            b = idom[b.idx()].expect("reachable block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Operand};
    use crate::program::Block;

    /// Build a function skeleton from (block, branch-target) edges where
    /// each block optionally branches to `br` and falls through.
    fn diamond() -> Function {
        // bb0 -> bb1, bb2 ; bb1 -> bb3 ; bb2 -> bb3 ; bb3 halt
        let mut f = Function::new("t");
        f.blocks = vec![
            Block::default(),
            Block::default(),
            Block::default(),
            Block::default(),
        ];
        f.blocks[0].insts.push(Inst::new(
            Opcode::Br,
            vec![
                Operand::Block(BlockId(2)),
                Operand::Reg(crate::reg::Reg::pred(0)),
            ],
        ));
        f.blocks[1]
            .insts
            .push(Inst::new(Opcode::Jump, vec![Operand::Block(BlockId(3))]));
        f.blocks[3].insts.push(Inst::new(Opcode::Halt, vec![]));
        f
    }

    #[test]
    fn diamond_cfg() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs_of(BlockId(0)), &[BlockId(2), BlockId(1)]);
        assert_eq!(cfg.succs_of(BlockId(1)), &[BlockId(3)]);
        assert_eq!(cfg.succs_of(BlockId(2)), &[BlockId(3)]);
        assert!(cfg.succs_of(BlockId(3)).is_empty());
        assert_eq!(cfg.preds_of(BlockId(3)).len(), 2);
        assert_eq!(cfg.rpo[0], BlockId(0));
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom[3], Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_are_skipped() {
        let mut f = diamond();
        f.blocks.push(Block::default()); // bb4 unreachable (bb3 halts)
        let cfg = Cfg::build(&f);
        assert!(!cfg.is_reachable(BlockId(4)));
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom[4], None);
    }
}
