//! Typed virtual registers.
//!
//! HPL-PD (and hence Voltron) partitions the architectural state into four
//! register files: general-purpose (64-bit integer), floating-point,
//! one-bit predicate, and branch-target registers. The IR mirrors that with
//! a class tag on every virtual register.

use std::fmt;

/// The register file a [`Reg`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General-purpose 64-bit integer register (GPR).
    Gpr,
    /// 64-bit floating-point register (FPR).
    Fpr,
    /// One-bit predicate register (PR).
    Pred,
    /// Branch-target register (BTR), holding a block address.
    Btr,
}

impl RegClass {
    /// All register classes, in a stable order.
    pub const ALL: [RegClass; 4] = [RegClass::Gpr, RegClass::Fpr, RegClass::Pred, RegClass::Btr];

    /// Index of this class in [`RegClass::ALL`] (useful for per-class tables).
    pub fn index(self) -> usize {
        match self {
            RegClass::Gpr => 0,
            RegClass::Fpr => 1,
            RegClass::Pred => 2,
            RegClass::Btr => 3,
        }
    }

    /// Single-letter prefix used by the pretty-printer (`r`, `f`, `p`, `b`).
    pub fn prefix(self) -> char {
        match self {
            RegClass::Gpr => 'r',
            RegClass::Fpr => 'f',
            RegClass::Pred => 'p',
            RegClass::Btr => 'b',
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RegClass::Gpr => "gpr",
            RegClass::Fpr => "fpr",
            RegClass::Pred => "pred",
            RegClass::Btr => "btr",
        };
        f.write_str(name)
    }
}

/// A virtual register: a class plus an index within that class's file.
///
/// Registers are function-local. The compiler renames them per core when
/// lowering to machine code; the IR itself never runs out of registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    /// Which register file this register lives in.
    pub class: RegClass,
    /// Index within the file.
    pub index: u32,
}

impl Reg {
    /// Create a general-purpose register.
    pub fn gpr(index: u32) -> Reg {
        Reg {
            class: RegClass::Gpr,
            index,
        }
    }

    /// Create a floating-point register.
    pub fn fpr(index: u32) -> Reg {
        Reg {
            class: RegClass::Fpr,
            index,
        }
    }

    /// Create a predicate register.
    pub fn pred(index: u32) -> Reg {
        Reg {
            class: RegClass::Pred,
            index,
        }
    }

    /// Create a branch-target register.
    pub fn btr(index: u32) -> Reg {
        Reg {
            class: RegClass::Btr,
            index,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_distinct_and_match_all() {
        for (i, c) in RegClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(Reg::gpr(3).to_string(), "r3");
        assert_eq!(Reg::fpr(0).to_string(), "f0");
        assert_eq!(Reg::pred(7).to_string(), "p7");
        assert_eq!(Reg::btr(1).to_string(), "b1");
    }

    #[test]
    fn regs_are_ordered_by_class_then_index() {
        assert!(Reg::gpr(5) < Reg::fpr(0));
        assert!(Reg::gpr(1) < Reg::gpr(2));
    }
}
