//! Natural-loop detection and the loop forest.

use crate::cfg::{Cfg, Dominators};
use crate::program::BlockId;
use std::collections::BTreeSet;

/// Identifier of a loop within a function's [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl LoopId {
    /// The loop index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop body, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Sources of back edges (latch blocks).
    pub latches: Vec<BlockId>,
    /// The immediately enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Loops nested immediately inside this one.
    pub children: Vec<LoopId>,
    /// Blocks outside the loop that loop blocks branch to (loop exits'
    /// *targets*).
    pub exit_targets: Vec<BlockId>,
}

impl Loop {
    /// Loop depth (1 = outermost).
    pub fn depth(&self, forest: &LoopForest) -> usize {
        let mut d = 1;
        let mut p = self.parent;
        while let Some(pid) = p {
            d += 1;
            p = forest.loops[pid.idx()].parent;
        }
        d
    }
}

/// All natural loops of a function, with nesting.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// The loops; `LoopId(i)` indexes `loops[i]`. Ordered outermost-first
    /// within each nest (parents precede children).
    pub loops: Vec<Loop>,
    /// Innermost loop containing each block (`None` when not in any loop).
    pub innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Find natural loops from back edges (`latch -> header` where the
    /// header dominates the latch); merges loops sharing a header.
    pub fn build(cfg: &Cfg, dom: &Dominators) -> LoopForest {
        let n = cfg.succs.len();
        // Collect back edges grouped by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for b in 0..n {
            let bid = BlockId(b as u32);
            if !cfg.is_reachable(bid) {
                continue;
            }
            for &s in cfg.succs_of(bid) {
                if dom.dominates(s, bid) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(bid),
                        None => by_header.push((s, vec![bid])),
                    }
                }
            }
        }
        // Build each loop body by backwards reachability from latches.
        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in by_header {
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                if blocks.insert(b) {
                    for &p in cfg.preds_of(b) {
                        if !blocks.contains(&p) {
                            stack.push(p);
                        }
                    }
                }
            }
            let mut exit_targets: Vec<BlockId> = Vec::new();
            for &b in &blocks {
                for &s in cfg.succs_of(b) {
                    if !blocks.contains(&s) && !exit_targets.contains(&s) {
                        exit_targets.push(s);
                    }
                }
            }
            loops.push(Loop {
                header,
                blocks,
                latches,
                parent: None,
                children: Vec::new(),
                exit_targets,
            });
        }
        // Sort outermost-first (bigger loops first) so parents get smaller ids.
        loops.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
        // Nesting: the parent of L is the smallest strictly-containing loop.
        let snapshot: Vec<(BTreeSet<BlockId>, BlockId)> =
            loops.iter().map(|l| (l.blocks.clone(), l.header)).collect();
        for i in 0..loops.len() {
            let mut best: Option<(usize, usize)> = None; // (index, size)
            for (j, (blocks, header)) in snapshot.iter().enumerate() {
                if i == j || *header == snapshot[i].1 {
                    continue;
                }
                if snapshot[i].0.is_subset(blocks) && blocks.len() > snapshot[i].0.len() {
                    let sz = blocks.len();
                    if best.is_none_or(|(_, bs)| sz < bs) {
                        best = Some((j, sz));
                    }
                }
            }
            if let Some((j, _)) = best {
                loops[i].parent = Some(LoopId(j as u32));
            }
        }
        for i in 0..loops.len() {
            if let Some(p) = loops[i].parent {
                loops[p.idx()].children.push(LoopId(i as u32));
            }
        }
        // Innermost map: the smallest loop containing each block.
        let mut innermost: Vec<Option<LoopId>> = vec![None; n];
        for (bi, slot) in innermost.iter_mut().enumerate() {
            let bid = BlockId(bi as u32);
            let mut best: Option<(LoopId, usize)> = None;
            for (li, l) in loops.iter().enumerate() {
                if l.blocks.contains(&bid) {
                    let sz = l.blocks.len();
                    if best.is_none_or(|(_, bs)| sz < bs) {
                        best = Some((LoopId(li as u32), sz));
                    }
                }
            }
            *slot = best.map(|(l, _)| l);
        }
        LoopForest { loops, innermost }
    }

    /// The innermost loop containing block `b`.
    pub fn innermost_of(&self, b: BlockId) -> Option<LoopId> {
        self.innermost.get(b.idx()).copied().flatten()
    }

    /// Top-level (outermost) loops.
    pub fn roots(&self) -> impl Iterator<Item = LoopId> + '_ {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.parent.is_none())
            .map(|(i, _)| LoopId(i as u32))
    }

    /// Loop accessor.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Cfg, Dominators};
    use crate::inst::{Inst, Operand};
    use crate::opcode::Opcode;
    use crate::program::{Block, Function};
    use crate::reg::Reg;

    /// bb0 -> bb1(header) -> bb2 -> bb1 (back), bb2 -> bb3 (exit: via br)
    /// and a nested structure in a second helper.
    fn single_loop() -> Function {
        let mut f = Function::new("t");
        f.blocks = vec![Block::default(); 4];
        // bb1 falls to bb2; bb2 branches back to bb1 else falls to bb3.
        f.blocks[2].insts.push(Inst::new(
            Opcode::Br,
            vec![Operand::Block(BlockId(1)), Operand::Reg(Reg::pred(0))],
        ));
        f.blocks[3].insts.push(Inst::new(Opcode::Halt, vec![]));
        f
    }

    #[test]
    fn finds_single_loop() {
        let f = single_loop();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        let lf = LoopForest::build(&cfg, &dom);
        assert_eq!(lf.loops.len(), 1);
        let l = &lf.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert!(l.blocks.contains(&BlockId(2)));
        assert!(!l.blocks.contains(&BlockId(0)));
        assert_eq!(l.exit_targets, vec![BlockId(3)]);
        assert_eq!(lf.innermost_of(BlockId(2)), Some(LoopId(0)));
        assert_eq!(lf.innermost_of(BlockId(0)), None);
    }

    /// Outer loop bb1..bb4 with inner loop bb2..bb3.
    fn nested_loops() -> Function {
        let mut f = Function::new("t");
        f.blocks = vec![Block::default(); 6];
        // bb3 -> bb2 (inner back edge) else fall to bb4
        f.blocks[3].insts.push(Inst::new(
            Opcode::Br,
            vec![Operand::Block(BlockId(2)), Operand::Reg(Reg::pred(0))],
        ));
        // bb4 -> bb1 (outer back edge) else fall to bb5
        f.blocks[4].insts.push(Inst::new(
            Opcode::Br,
            vec![Operand::Block(BlockId(1)), Operand::Reg(Reg::pred(1))],
        ));
        f.blocks[5].insts.push(Inst::new(Opcode::Halt, vec![]));
        f
    }

    #[test]
    fn nesting_is_detected() {
        let f = nested_loops();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        let lf = LoopForest::build(&cfg, &dom);
        assert_eq!(lf.loops.len(), 2);
        // Outer loop sorted first (bigger).
        assert_eq!(lf.loops[0].header, BlockId(1));
        assert_eq!(lf.loops[1].header, BlockId(2));
        assert_eq!(lf.loops[1].parent, Some(LoopId(0)));
        assert_eq!(lf.loops[0].children, vec![LoopId(1)]);
        assert_eq!(lf.loops[1].depth(&lf), 2);
        assert_eq!(lf.innermost_of(BlockId(3)), Some(LoopId(1)));
        assert_eq!(lf.innermost_of(BlockId(4)), Some(LoopId(0)));
        assert_eq!(lf.roots().collect::<Vec<_>>(), vec![LoopId(0)]);
    }
}
