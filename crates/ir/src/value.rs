//! Runtime values flowing through registers.

use crate::program::BlockId;
use crate::reg::RegClass;
use std::fmt;

/// A dynamic value held in a register or message.
///
/// The scalar operand network carries any of these (the paper's network is
/// 64 bits wide plus a small type/route header).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer (GPR contents).
    Int(i64),
    /// 64-bit float (FPR contents).
    Float(f64),
    /// Predicate bit (PR contents).
    Pred(bool),
    /// Branch target (BTR contents). Block ids are per-core-image after
    /// lowering, function-local in the IR.
    Target(BlockId),
}

impl Value {
    /// The register class this value naturally belongs to.
    pub fn class(&self) -> RegClass {
        match self {
            Value::Int(_) => RegClass::Gpr,
            Value::Float(_) => RegClass::Fpr,
            Value::Pred(_) => RegClass::Pred,
            Value::Target(_) => RegClass::Btr,
        }
    }

    /// Interpret as integer.
    ///
    /// # Panics
    /// Panics if the value is not [`Value::Int`]; the verifier guarantees
    /// well-typed programs never hit this.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected int value, found {other:?}"),
        }
    }

    /// Interpret as float.
    ///
    /// # Panics
    /// Panics if the value is not [`Value::Float`].
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            other => panic!("expected float value, found {other:?}"),
        }
    }

    /// Interpret as predicate.
    ///
    /// # Panics
    /// Panics if the value is not [`Value::Pred`].
    pub fn as_pred(&self) -> bool {
        match self {
            Value::Pred(v) => *v,
            other => panic!("expected predicate value, found {other:?}"),
        }
    }

    /// Interpret as branch target.
    ///
    /// # Panics
    /// Panics if the value is not [`Value::Target`].
    pub fn as_target(&self) -> BlockId {
        match self {
            Value::Target(v) => *v,
            other => panic!("expected target value, found {other:?}"),
        }
    }

    /// The all-zeros value of a class (register-file reset contents).
    pub fn zero_of(class: RegClass) -> Value {
        match class {
            RegClass::Gpr => Value::Int(0),
            RegClass::Fpr => Value::Float(0.0),
            RegClass::Pred => Value::Pred(false),
            RegClass::Btr => Value::Target(BlockId(0)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Pred(v) => write!(f, "{}", if *v { 1 } else { 0 }),
            Value::Target(b) => write!(f, "@{}", b.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_round_trip() {
        assert_eq!(Value::Int(1).class(), RegClass::Gpr);
        assert_eq!(Value::Float(1.0).class(), RegClass::Fpr);
        assert_eq!(Value::Pred(true).class(), RegClass::Pred);
        assert_eq!(Value::Target(BlockId(2)).class(), RegClass::Btr);
    }

    #[test]
    fn zero_of_matches_class() {
        for c in RegClass::ALL {
            assert_eq!(Value::zero_of(c).class(), c);
        }
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_int_panics_on_float() {
        Value::Float(1.0).as_int();
    }
}
