//! End-to-end Voltron system: compile, simulate, validate, and measure.
//!
//! This crate ties the stack together the way the paper's evaluation does:
//!
//! * [`run_reference`] interprets a program for the golden output;
//! * [`run_configuration`] compiles with a [`Strategy`] for an N-core
//!   machine, simulates it, and *always* checks the machine's final memory
//!   against the golden model (with a documented FP-reduction tolerance);
//! * [`Experiment`] batches the runs the figures need (baseline + each
//!   technique + hybrid) and computes speedups, stall breakdowns, mode
//!   residency, and per-region technique attribution.
//!
//! # Example
//!
//! ```
//! use voltron_core::{Experiment, Strategy};
//! use voltron_ir::builder::ProgramBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new("quick");
//! let a = pb.data_mut().zeroed("a", 8 * 512);
//! let mut f = pb.function("main");
//! let base = f.ldi(a as i64);
//! f.counted_loop(0i64, 512i64, 1, |f, iv| {
//!     let off = f.shl(iv, 3i64);
//!     let ad = f.add(base, off);
//!     f.store8(ad, 0, iv);
//! });
//! f.halt();
//! pb.finish_function(f);
//! let program = pb.finish();
//!
//! let mut exp = Experiment::new(&program)?;
//! let hybrid = exp.run(Strategy::Hybrid, 4)?;
//! assert!(hybrid.speedup > 1.0);
//! # Ok(())
//! # }
//! ```

pub mod report;

use std::collections::HashMap;
use std::fmt;
use voltron_compiler::{compile_prepared, CompileError, CompileOptions, FrontEnd};
use voltron_ir::{interp, Memory, Program};
use voltron_sim::whatif::region_stacks;
use voltron_sim::{
    ChromeTracer, CoherenceBackend, IdealKnobs, Machine, MachineConfig, MachineStats, SimError,
    StallReason,
};

pub use voltron_compiler::Strategy;
pub use voltron_sim::{
    BoundBy, CycleStack, FaultBudgetReport, FaultEvent, FaultKind, FaultPlan, FaultSite,
    FaultStats, KnobId, ProbeSeries, ProbeSummary, RegionStack,
};

/// The machine configuration for one experiment run: geometry from
/// [`MachineConfig::scaled`] (identical to the paper machine at the
/// paper's 1/2/4-core points), coherence timing from `backend`. Public
/// so the serve engine derives configs identical to the direct path —
/// byte-identical served results depend on it.
pub fn machine_config(cores: usize, backend: CoherenceBackend) -> MachineConfig {
    MachineConfig::scaled(cores).with_backend(backend)
}

/// A system-level failure (compilation, simulation, or validation).
#[derive(Debug)]
pub enum SystemError {
    /// Compilation failed.
    Compile(CompileError),
    /// Simulation failed.
    Sim(SimError),
    /// The golden (interpreter) run failed.
    Golden(interp::InterpError),
    /// The machine's output disagreed with the golden model.
    OutputMismatch {
        /// Strategy that produced the divergence.
        strategy: Strategy,
        /// Core count.
        cores: usize,
        /// First differing address.
        addr: u64,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Compile(e) => write!(f, "compile: {e}"),
            SystemError::Sim(e) => write!(f, "simulate: {e}"),
            SystemError::Golden(e) => write!(f, "golden run: {e}"),
            SystemError::OutputMismatch {
                strategy,
                cores,
                addr,
            } => write!(
                f,
                "output mismatch under {strategy}/{cores} cores at {addr:#x}"
            ),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<CompileError> for SystemError {
    fn from(e: CompileError) -> SystemError {
        SystemError::Compile(e)
    }
}

impl From<SimError> for SystemError {
    fn from(e: SimError) -> SystemError {
        SystemError::Sim(e)
    }
}

impl From<interp::InterpError> for SystemError {
    fn from(e: interp::InterpError) -> SystemError {
        SystemError::Golden(e)
    }
}

/// Compare final memories. Byte equality is required except for 8-byte
/// words that parse as close floating-point values: chunked floating-point
/// reductions legally reassociate (accumulator expansion, DESIGN.md §2),
/// so FP sums may differ in the last bits.
pub fn outputs_equivalent(golden: &Memory, machine: &Memory) -> Result<(), u64> {
    let ga = golden.bytes();
    let mb = machine.bytes();
    if ga.len() != mb.len() {
        return Err(voltron_ir::DataSegment::BASE + ga.len().min(mb.len()) as u64);
    }
    let mut i = 0usize;
    while i < ga.len() {
        if ga[i] == mb[i] {
            i += 1;
            continue;
        }
        // Mismatch: inspect the enclosing aligned 8-byte word as f64.
        let w = i & !7;
        if w + 8 <= ga.len() {
            let fg = f64::from_le_bytes(ga[w..w + 8].try_into().expect("8 bytes"));
            let fm = f64::from_le_bytes(mb[w..w + 8].try_into().expect("8 bytes"));
            // Only genuine (normal or zero) floats qualify for tolerance;
            // integer bytes reinterpreted as f64 are subnormals and fall
            // through to the exact comparison.
            let normal = |v: f64| v == 0.0 || (v.is_finite() && v.abs() >= f64::MIN_POSITIVE);
            let tol = (1e-9 * fg.abs().max(fm.abs())).max(1e-12);
            if normal(fg) && normal(fm) && (fg - fm).abs() <= tol {
                i = w + 8;
                continue;
            }
        }
        return Err(voltron_ir::DataSegment::BASE + i as u64);
    }
    Ok(())
}

/// Result of one compiled-and-simulated configuration.
#[derive(Debug)]
pub struct RunResult {
    /// The strategy used.
    pub strategy: Strategy,
    /// Core count.
    pub cores: usize,
    /// Coherence backend the memory system was timed with.
    pub backend: CoherenceBackend,
    /// Execution time in simulated cycles.
    pub cycles: u64,
    /// Cycles the simulator actually ticked (fast-forward skips the
    /// rest; see `voltron_sim::RunOutcome::ticked_cycles`).
    pub ticked_cycles: u64,
    /// Speedup over the serial baseline.
    pub speedup: f64,
    /// Full machine statistics.
    pub stats: MachineStats,
    /// Planner region kinds (region id -> technique name).
    pub region_kinds: HashMap<u32, &'static str>,
    /// Estimated serial weight per region id.
    pub region_weights: HashMap<u32, u64>,
}

impl RunResult {
    /// Fraction of hybrid time in coupled mode.
    pub fn coupled_fraction(&self) -> f64 {
        if self.stats.cycles == 0 {
            0.0
        } else {
            self.stats.coupled_cycles as f64 / self.stats.cycles as f64
        }
    }

    /// Per-core-average stall cycles for a Fig. 12 category, normalized
    /// by `baseline_cycles`.
    pub fn normalized_stall(&self, category: StallCategory, baseline_cycles: u64) -> f64 {
        let raw: f64 = category
            .reasons()
            .iter()
            .map(|&r| self.stats.avg_stall(r))
            .sum();
        raw / baseline_cycles.max(1) as f64
    }
}

/// Fig. 12 stall categories (see `voltron_sim::stats` for the mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCategory {
    /// Instruction-cache stalls.
    IStall,
    /// Data stalls (cache misses, store-buffer pressure).
    DStall,
    /// Data receive stalls (queue mode) and direct-latch waits.
    RecvData,
    /// Predicate receive stalls (control synchronization).
    RecvPred,
    /// Region-boundary synchronization (the paper's call/return sync):
    /// spawn/join, mode-switch barriers, commit tokens.
    Sync,
    /// Fixed-latency interlock slack (schedule imperfection).
    Other,
}

impl StallCategory {
    /// All categories in display order.
    pub const ALL: [StallCategory; 6] = [
        StallCategory::IStall,
        StallCategory::DStall,
        StallCategory::RecvData,
        StallCategory::RecvPred,
        StallCategory::Sync,
        StallCategory::Other,
    ];

    /// The raw stall reasons aggregated into this category.
    pub fn reasons(self) -> &'static [StallReason] {
        match self {
            StallCategory::IStall => &[StallReason::IFetch],
            StallCategory::DStall => &[StallReason::DMiss, StallReason::StoreBuf],
            StallCategory::RecvData => &[StallReason::RecvData, StallReason::DirectWait],
            StallCategory::RecvPred => &[StallReason::RecvPred],
            StallCategory::Sync => &[StallReason::Sync, StallReason::SendFull],
            StallCategory::Other => &[StallReason::Interlock],
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            StallCategory::IStall => "i-stalls",
            StallCategory::DStall => "d-stalls",
            StallCategory::RecvData => "recv stall",
            StallCategory::RecvPred => "predicate recv",
            StallCategory::Sync => "call/return sync",
            StallCategory::Other => "interlock",
        }
    }
}

/// Interpreter fuel used for golden runs.
pub const GOLDEN_FUEL: u64 = 2_000_000_000;

/// Run the reference interpreter.
///
/// # Errors
/// Propagates interpreter failures.
pub fn run_reference(program: &Program) -> Result<interp::Outcome, SystemError> {
    Ok(interp::run(program, GOLDEN_FUEL)?)
}

/// Compile and simulate one configuration, validating the output against
/// `golden`.
///
/// # Errors
/// Fails on compile/simulate errors or output divergence.
pub fn run_configuration(
    program: &Program,
    golden: &Memory,
    strategy: Strategy,
    cores: usize,
    baseline_cycles: u64,
) -> Result<RunResult, SystemError> {
    let backend = CoherenceBackend::Snooping;
    let mcfg = machine_config(cores, backend);
    let opts = CompileOptions::default();
    let fe = FrontEnd::new(program, strategy, &mcfg, &opts)?;
    run_prepared(
        &fe,
        golden,
        strategy,
        cores,
        backend,
        baseline_cycles,
        None,
        None,
        IdealKnobs::default(),
    )
}

/// What to observe during a run (see `voltron_sim::obs`). The default
/// observes nothing, which is also what every cached/figure run uses —
/// observation never perturbs the architectural results (pinned by the
/// observer-effect tests), but the artifacts are only collected on
/// request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsRequest {
    /// Attach a `ChromeTracer` and return its rendered JSON.
    pub chrome_trace: bool,
    /// Sample interval probes with this period (cycles).
    pub probe_period: Option<u64>,
}

/// A run's result plus the observability artifacts requested for it.
#[derive(Debug)]
pub struct Observed {
    /// The architectural result (identical to an unobserved run).
    pub run: RunResult,
    /// Chrome trace-event JSON (empty string unless requested).
    pub trace_json: String,
    /// The interval probe series, when a period was requested.
    pub probes: Option<ProbeSeries>,
}

/// [`run_configuration`] from a prepared compiler front end: profiling a
/// program dominates compile time but is identical for every
/// configuration with the same [`FrontEnd::key`], so [`Experiment`]
/// builds at most two front ends per program and reuses them here.
#[allow(clippy::too_many_arguments)]
fn run_prepared(
    fe: &FrontEnd,
    golden: &Memory,
    strategy: Strategy,
    cores: usize,
    backend: CoherenceBackend,
    baseline_cycles: u64,
    cycle_budget: Option<u64>,
    faults: Option<&FaultPlan>,
    ideal: IdealKnobs,
) -> Result<RunResult, SystemError> {
    run_prepared_obs(
        fe,
        golden,
        strategy,
        cores,
        backend,
        baseline_cycles,
        cycle_budget,
        faults,
        ideal,
        &ObsRequest::default(),
    )
    .map(|o| o.run)
}

/// [`run_prepared`], optionally with a Chrome tracer and/or interval
/// probes attached per `obs`.
#[allow(clippy::too_many_arguments)]
fn run_prepared_obs(
    fe: &FrontEnd,
    golden: &Memory,
    strategy: Strategy,
    cores: usize,
    backend: CoherenceBackend,
    baseline_cycles: u64,
    cycle_budget: Option<u64>,
    faults: Option<&FaultPlan>,
    ideal: IdealKnobs,
    obs: &ObsRequest,
) -> Result<Observed, SystemError> {
    let mcfg = machine_config(cores, backend);
    let opts = CompileOptions::default();
    let compiled = compile_prepared(fe, strategy, &mcfg, &opts)?;
    let region_kinds = compiled.region_kinds.clone();
    let region_weights = compiled.region_weights.clone();
    // The budget caps simulation only; the compiler must see the pristine
    // paper config so budgeted and unbudgeted builds stay identical.
    // Idealization knobs are likewise simulator-side only: a what-if run
    // executes the *same* code as the measured run, just timed by an
    // idealized machine, so its ceiling is attributable to hardware alone.
    let mut sim_cfg = mcfg;
    if let Some(budget) = cycle_budget {
        sim_cfg.max_cycles = sim_cfg.max_cycles.min(budget);
    }
    sim_cfg.ideal = ideal;
    sim_cfg.probe_period = obs.probe_period;
    // Fault injection perturbs timing only; the output check below still
    // holds faulted runs to the golden memory, which *is* the recovery
    // contract (DESIGN.md §10).
    sim_cfg.faults = faults.cloned();
    let mut machine = Machine::new(compiled.machine, &sim_cfg)?;
    if obs.chrome_trace {
        machine.set_tracer(Box::new(ChromeTracer::new()));
    }
    let out = machine.run()?;
    if let Err(addr) = outputs_equivalent(golden, &out.memory) {
        return Err(SystemError::OutputMismatch {
            strategy,
            cores,
            addr,
        });
    }
    let cycles = out.stats.cycles;
    // When both lenses are on, splice the probe gauges into the trace as
    // Perfetto counter tracks — one document shows spans and gauges.
    let trace_json = match (&obs.chrome_trace, &out.probes) {
        (true, Some(series)) => voltron_sim::trace_with_counters(&out.trace, series),
        _ => out.trace,
    };
    Ok(Observed {
        run: RunResult {
            strategy,
            cores,
            backend,
            cycles,
            ticked_cycles: out.ticked_cycles,
            speedup: baseline_cycles as f64 / cycles.max(1) as f64,
            stats: out.stats,
            region_kinds,
            region_weights,
        },
        trace_json,
        probes: out.probes,
    })
}

/// One counterfactual idealization's ceiling: how much faster the same
/// binary runs when one hardware resource is made perfect.
#[derive(Debug, Clone, Copy)]
pub struct KnobCeiling {
    /// The resource that was idealized.
    pub knob: KnobId,
    /// Execution time under the idealized machine.
    pub ideal_cycles: u64,
    /// `measured_cycles / ideal_cycles`: the speedup *ceiling* any
    /// real-hardware improvement to this resource could reach. Removing a
    /// resource constraint never adds work, so this is ≥ 1 up to
    /// second-order scheduling effects (pinned at ≥ 1 − ε by tests).
    pub speedup_ceiling: f64,
}

/// Bottleneck diagnosis for one planner region.
#[derive(Debug, Clone)]
pub struct RegionDiagnosis {
    /// Region id (`u32::MAX` = outside any planned region).
    pub region: u32,
    /// Planner technique for the region (`"outside"` for the remainder).
    pub kind: &'static str,
    /// Where this region's cycles went.
    pub stack: RegionStack,
    /// The dominant cycle class — what the region is bound by.
    pub bound_by: BoundBy,
}

/// Full bottleneck-intelligence report for one configuration: the CPI
/// stack of the measured run, per-region diagnoses, and the what-if
/// speedup ceiling of each one-hot idealization (see
/// `voltron_sim::whatif`).
#[derive(Debug, Clone)]
pub struct WhatIfReport {
    /// Strategy of the diagnosed run.
    pub strategy: Strategy,
    /// Core count.
    pub cores: usize,
    /// Coherence backend.
    pub backend: CoherenceBackend,
    /// Execution time of the measured (non-idealized) run.
    pub measured_cycles: u64,
    /// Machine-wide cycle stack (sums exactly to cores × cycles).
    pub stack: CycleStack,
    /// The machine-wide dominant cycle class.
    pub bound_by: BoundBy,
    /// Per-region stacks and classifications, outside-region last.
    pub regions: Vec<RegionDiagnosis>,
    /// One ceiling per [`KnobId::ALL`] entry, in that order.
    pub ceilings: Vec<KnobCeiling>,
}

impl WhatIfReport {
    /// The idealization with the highest speedup ceiling — the best
    /// answer to "what single hardware resource should be improved?".
    pub fn best_ceiling(&self) -> &KnobCeiling {
        self.ceilings
            .iter()
            .max_by(|a, b| {
                a.speedup_ceiling
                    .partial_cmp(&b.speedup_ceiling)
                    .expect("ceilings are finite")
            })
            .expect("KnobId::ALL is non-empty")
    }
}

/// Per-benchmark experiment driver: computes the baseline once, then runs
/// any (strategy, cores) combination against it.
pub struct Experiment<'a> {
    program: &'a Program,
    golden: Memory,
    baseline_cycles: u64,
    cache: HashMap<(Strategy, usize, CoherenceBackend), RunResult>,
    /// Compiler front ends, indexed by [`FrontEnd::key`].
    front_ends: [Option<FrontEnd>; 2],
    sim_cycles: u64,
    ticked_cycles: u64,
    cycle_budget: Option<u64>,
    fault_plan: Option<FaultPlan>,
}

impl<'a> Experiment<'a> {
    /// Interpret the golden model and time the 1-core serial baseline.
    ///
    /// # Errors
    /// Fails if the reference run or the baseline build fails.
    pub fn new(program: &'a Program) -> Result<Experiment<'a>, SystemError> {
        Experiment::with_cycle_budget(program, None)
    }

    /// [`Experiment::new`] with a per-run simulated-cycle budget that
    /// also covers the baseline run, so a hanging program cannot hold
    /// the constructor either (see [`Experiment::set_cycle_budget`]).
    ///
    /// # Errors
    /// Fails if the reference run or the baseline build fails.
    pub fn with_cycle_budget(
        program: &'a Program,
        budget: Option<u64>,
    ) -> Result<Experiment<'a>, SystemError> {
        let golden = run_reference(program)?.memory;
        let mut exp = Experiment {
            program,
            golden,
            baseline_cycles: 0,
            cache: HashMap::new(),
            front_ends: [None, None],
            sim_cycles: 0,
            ticked_cycles: 0,
            cycle_budget: budget,
            fault_plan: None,
        };
        let idx = exp.ensure_front_end(Strategy::Serial, 1)?;
        let fe = exp.front_ends[idx].as_ref().expect("just built");
        let base = run_prepared(
            fe,
            &exp.golden,
            Strategy::Serial,
            1,
            CoherenceBackend::Snooping,
            1,
            budget,
            None,
            IdealKnobs::default(),
        )?;
        exp.baseline_cycles = base.cycles;
        exp.sim_cycles = base.cycles;
        exp.ticked_cycles = base.ticked_cycles;
        Ok(exp)
    }

    /// Serial 1-core execution time in cycles.
    pub fn baseline_cycles(&self) -> u64 {
        self.baseline_cycles
    }

    /// Cap every *subsequent* [`Experiment::run`] at `budget` simulated
    /// cycles (never raising the machine's own `max_cycles`). A run that
    /// exhausts the budget fails with `SimError::MaxCycles`, so a
    /// harness can bound how long one workload may hold a host thread.
    /// `None` removes the cap.
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.cycle_budget = budget;
    }

    /// Inject faults into every *subsequent* run per `plan` (see
    /// `voltron_sim::fault`): timing moves, but the output check still
    /// holds every faulted run to the golden memory. The serial baseline
    /// (already computed) stays fault-free — it is the denominator the
    /// speedups are normalized by. Changing the plan clears the result
    /// cache so one `Experiment` never mixes runs under different plans.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        if self.fault_plan != plan {
            self.cache.clear();
        }
        self.fault_plan = plan;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Total simulated cycles across every configuration this experiment
    /// has actually run (cache hits excluded), baseline included. The
    /// harness divides the sum by host wall-clock for its
    /// simulated-cycles-per-second throughput metric.
    pub fn simulated_cycles(&self) -> u64 {
        self.sim_cycles
    }

    /// Total cycles the simulator actually ticked across those runs.
    /// `simulated_cycles / ticked_cycles` is the fast-forward
    /// skip-efficiency the harness reports (1.0 means no cycle was
    /// skippable).
    pub fn ticked_cycles(&self) -> u64 {
        self.ticked_cycles
    }

    /// Every cached configuration result, in deterministic
    /// (strategy name, cores, backend) order — the harness's
    /// `BENCH_*.json` inventory.
    pub fn results(&self) -> Vec<&RunResult> {
        let mut v: Vec<&RunResult> = self.cache.values().collect();
        v.sort_by_key(|r| (r.strategy.to_string(), r.cores, r.backend.label()));
        v
    }

    /// Build (once) the front end whose [`FrontEnd::key`] matches this
    /// configuration, returning its slot in `front_ends`.
    /// The coherence backend is irrelevant here: [`FrontEnd::key`] (and
    /// the front end itself) depend only on geometry, never on memory-
    /// system timing, so one front end serves both backends.
    fn ensure_front_end(&mut self, strategy: Strategy, cores: usize) -> Result<usize, SystemError> {
        let mcfg = machine_config(cores, CoherenceBackend::Snooping);
        let opts = CompileOptions::default();
        let idx = usize::from(FrontEnd::key(strategy, &mcfg, &opts));
        if self.front_ends[idx].is_none() {
            self.front_ends[idx] = Some(FrontEnd::new(self.program, strategy, &mcfg, &opts)?);
        }
        Ok(idx)
    }

    /// Run (or fetch the cached run of) a configuration on the default
    /// snooping backend.
    ///
    /// # Errors
    /// Propagates configuration failures.
    pub fn run(&mut self, strategy: Strategy, cores: usize) -> Result<&RunResult, SystemError> {
        self.run_on(strategy, cores, CoherenceBackend::Snooping)
    }

    /// Run (or fetch the cached run of) a configuration on an explicit
    /// coherence backend.
    ///
    /// # Errors
    /// Propagates configuration failures.
    pub fn run_on(
        &mut self,
        strategy: Strategy,
        cores: usize,
        backend: CoherenceBackend,
    ) -> Result<&RunResult, SystemError> {
        if !self.cache.contains_key(&(strategy, cores, backend)) {
            let idx = self.ensure_front_end(strategy, cores)?;
            let fe = self.front_ends[idx].as_ref().expect("just built");
            let r = run_prepared(
                fe,
                &self.golden,
                strategy,
                cores,
                backend,
                self.baseline_cycles,
                self.cycle_budget,
                self.fault_plan.as_ref(),
                IdealKnobs::default(),
            )?;
            self.sim_cycles += r.cycles;
            self.ticked_cycles += r.ticked_cycles;
            self.cache.insert((strategy, cores, backend), r);
        }
        Ok(&self.cache[&(strategy, cores, backend)])
    }

    /// Run a configuration with observability attached, returning the
    /// trace/probe artifacts alongside the result. Always simulates
    /// fresh (never serves or fills the cache: an observed run is asked
    /// for because its artifacts are wanted, and the cache must keep the
    /// exact object an unobserved sweep produced); the simulated cycles
    /// still count toward the throughput totals.
    ///
    /// # Errors
    /// Propagates configuration failures.
    pub fn run_observed(
        &mut self,
        strategy: Strategy,
        cores: usize,
        obs: &ObsRequest,
    ) -> Result<Observed, SystemError> {
        self.run_observed_on(strategy, cores, CoherenceBackend::Snooping, obs)
    }

    /// [`Experiment::run_observed`] on an explicit coherence backend.
    ///
    /// # Errors
    /// Propagates configuration failures.
    pub fn run_observed_on(
        &mut self,
        strategy: Strategy,
        cores: usize,
        backend: CoherenceBackend,
        obs: &ObsRequest,
    ) -> Result<Observed, SystemError> {
        let idx = self.ensure_front_end(strategy, cores)?;
        let fe = self.front_ends[idx].as_ref().expect("just built");
        let o = run_prepared_obs(
            fe,
            &self.golden,
            strategy,
            cores,
            backend,
            self.baseline_cycles,
            self.cycle_budget,
            self.fault_plan.as_ref(),
            IdealKnobs::default(),
            obs,
        )?;
        self.sim_cycles += o.run.cycles;
        self.ticked_cycles += o.run.ticked_cycles;
        Ok(o)
    }

    /// Run every not-yet-cached configuration in `configs` across host
    /// threads. Configurations are independent simulations sharing only
    /// the immutable front ends and the golden memory, so a workload's
    /// whole sweep finishes in the wall-clock of its slowest member
    /// instead of their sum. Results land in the cache exactly as a
    /// sequence of [`Experiment::run`] calls would have left them: they
    /// are committed in `configs` order up to the first failure, whose
    /// error is returned (later successes are discarded, as a sequential
    /// sweep would never have run them).
    ///
    /// # Errors
    /// The first (in `configs` order) configuration failure.
    pub fn run_all(&mut self, configs: &[(Strategy, usize)]) -> Result<(), SystemError> {
        let on: Vec<(Strategy, usize, CoherenceBackend)> = configs
            .iter()
            .map(|&(s, c)| (s, c, CoherenceBackend::Snooping))
            .collect();
        self.run_all_on(&on)
    }

    /// [`Experiment::run_all`] with an explicit coherence backend per
    /// configuration.
    ///
    /// # Errors
    /// The first (in `configs` order) configuration failure.
    pub fn run_all_on(
        &mut self,
        configs: &[(Strategy, usize, CoherenceBackend)],
    ) -> Result<(), SystemError> {
        let missing: Vec<(Strategy, usize, CoherenceBackend)> = {
            let mut seen = Vec::new();
            configs
                .iter()
                .copied()
                .filter(|c| {
                    !self.cache.contains_key(c) && !seen.contains(c) && {
                        seen.push(*c);
                        true
                    }
                })
                .collect()
        };
        // Front ends are shared mutable state: build them up front,
        // serially (at most two exist per program).
        let mut slots = Vec::with_capacity(missing.len());
        for &(strategy, cores, _) in &missing {
            slots.push(self.ensure_front_end(strategy, cores)?);
        }
        let front_ends = &self.front_ends;
        let golden = &self.golden;
        let baseline = self.baseline_cycles;
        let budget = self.cycle_budget;
        let faults = self.fault_plan.as_ref();
        let outcomes: Vec<Result<RunResult, SystemError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = missing
                .iter()
                .zip(&slots)
                .map(|(&(strategy, cores, backend), &idx)| {
                    scope.spawn(move || {
                        let fe = front_ends[idx].as_ref().expect("built above");
                        run_prepared(
                            fe,
                            golden,
                            strategy,
                            cores,
                            backend,
                            baseline,
                            budget,
                            faults,
                            IdealKnobs::default(),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("config runner panicked"))
                .collect()
        });
        for (key, outcome) in missing.into_iter().zip(outcomes) {
            let r = outcome?;
            self.sim_cycles += r.cycles;
            self.ticked_cycles += r.ticked_cycles;
            self.cache.insert(key, r);
        }
        Ok(())
    }

    /// Fig. 3-style attribution: the fraction of (estimated serial)
    /// execution assigned by the hybrid planner to each parallelism class
    /// on a 4-core machine. Returns fractions for
    /// `[ilp, fine-grain tlp, llp, single-core]` summing to 1.
    ///
    /// # Errors
    /// Propagates configuration failures.
    pub fn parallelism_breakdown(&mut self, cores: usize) -> Result<[f64; 4], SystemError> {
        self.parallelism_breakdown_on(cores, CoherenceBackend::Snooping)
    }

    /// [`Experiment::parallelism_breakdown`] on an explicit coherence
    /// backend (the attribution itself is planner output and identical
    /// on both; this just reuses a run the caller already paid for).
    ///
    /// # Errors
    /// Propagates configuration failures.
    pub fn parallelism_breakdown_on(
        &mut self,
        cores: usize,
        backend: CoherenceBackend,
    ) -> Result<[f64; 4], SystemError> {
        let run = self.run_on(Strategy::Hybrid, cores, backend)?;
        let mut acc = [0u64; 4];
        for (rid, kind) in &run.region_kinds {
            let w = run.region_weights.get(rid).copied().unwrap_or(0);
            let slot = match *kind {
                "ilp" => 0,
                "strands" | "dswp" => 1,
                "doall" => 2,
                _ => 3,
            };
            acc[slot] += w;
        }
        let total: u64 = acc.iter().sum();
        if total == 0 {
            return Ok([0.0, 0.0, 0.0, 1.0]);
        }
        Ok([
            acc[0] as f64 / total as f64,
            acc[1] as f64 / total as f64,
            acc[2] as f64 / total as f64,
            acc[3] as f64 / total as f64,
        ])
    }

    /// Bottleneck intelligence for a configuration on the default
    /// snooping backend (see [`Experiment::whatif_on`]).
    ///
    /// # Errors
    /// Propagates configuration failures.
    pub fn whatif(
        &mut self,
        strategy: Strategy,
        cores: usize,
    ) -> Result<WhatIfReport, SystemError> {
        self.whatif_on(strategy, cores, CoherenceBackend::Snooping)
    }

    /// Diagnose a configuration: build its CPI stack and per-region
    /// classification from the measured run (cached, or run now exactly
    /// as [`Experiment::run_on`] would), then re-simulate the *same
    /// binary* once per [`KnobId::ALL`] idealization across host threads
    /// and report each knob's speedup ceiling.
    ///
    /// The measured run is never perturbed: idealized results live only
    /// in the returned report, never in the result cache, so a sweep
    /// that also asks for what-ifs serves byte-identical `RunResult`s.
    /// Idealized runs are still validated against the golden memory —
    /// idealization changes timing, never architectural output.
    ///
    /// # Errors
    /// Propagates configuration failures (measured or idealized).
    pub fn whatif_on(
        &mut self,
        strategy: Strategy,
        cores: usize,
        backend: CoherenceBackend,
    ) -> Result<WhatIfReport, SystemError> {
        let (measured_cycles, stack, bound_by, regions) = {
            let run = self.run_on(strategy, cores, backend)?;
            let stack = CycleStack::of(&run.stats);
            let regions: Vec<RegionDiagnosis> = region_stacks(&run.stats)
                .into_iter()
                .map(|rs| RegionDiagnosis {
                    region: rs.region,
                    kind: if rs.region == voltron_sim::REGION_OUTSIDE {
                        "outside"
                    } else {
                        run.region_kinds.get(&rs.region).copied().unwrap_or("?")
                    },
                    bound_by: rs.bound_by(),
                    stack: rs,
                })
                .collect();
            let bound_by = stack.bound_by();
            (run.cycles, stack, bound_by, regions)
        };
        let idx = self.ensure_front_end(strategy, cores)?;
        let fe = self.front_ends[idx].as_ref().expect("just built");
        let golden = &self.golden;
        let baseline = self.baseline_cycles;
        let budget = self.cycle_budget;
        let faults = self.fault_plan.as_ref();
        // The five idealized runs are independent simulations of the same
        // compiled binary; fan them out like `run_all_on` does.
        let outcomes: Vec<Result<RunResult, SystemError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = KnobId::ALL
                .iter()
                .map(|&knob| {
                    scope.spawn(move || {
                        run_prepared(
                            fe,
                            golden,
                            strategy,
                            cores,
                            backend,
                            baseline,
                            budget,
                            faults,
                            knob.knobs(),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("what-if runner panicked"))
                .collect()
        });
        let mut ceilings = Vec::with_capacity(KnobId::ALL.len());
        for (knob, outcome) in KnobId::ALL.into_iter().zip(outcomes) {
            let r = outcome?;
            self.sim_cycles += r.cycles;
            self.ticked_cycles += r.ticked_cycles;
            ceilings.push(KnobCeiling {
                knob,
                ideal_cycles: r.cycles,
                speedup_ceiling: measured_cycles as f64 / r.cycles.max(1) as f64,
            });
        }
        Ok(WhatIfReport {
            strategy,
            cores,
            backend,
            measured_cycles,
            stack,
            bound_by,
            regions,
            ceilings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltron_ir::builder::ProgramBuilder;

    fn doall_program() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.data_mut().zeroed("a", 8 * 400);
        let mut f = pb.function("main");
        let base = f.ldi(a as i64);
        f.counted_loop(0i64, 400i64, 1, |f, iv| {
            let off = f.shl(iv, 3i64);
            let ad = f.add(base, off);
            let v = f.mul(iv, 5i64);
            f.store8(ad, 0, v);
        });
        f.halt();
        pb.finish_function(f);
        pb.finish()
    }

    #[test]
    fn hybrid_beats_serial_on_doall() {
        let p = doall_program();
        let mut exp = Experiment::new(&p).unwrap();
        let r = exp.run(Strategy::Hybrid, 4).unwrap();
        assert!(r.speedup > 1.3, "speedup {}", r.speedup);
        let r2 = exp.run(Strategy::Llp, 2).unwrap();
        assert!(r2.speedup > 1.0, "2-core LLP speedup {}", r2.speedup);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let p = doall_program();
        let mut exp = Experiment::new(&p).unwrap();
        let frac = exp.parallelism_breakdown(4).unwrap();
        let sum: f64 = frac.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(frac[2] > 0.5, "doall should dominate: {frac:?}");
    }

    #[test]
    fn equivalence_tolerates_fp_reassociation() {
        let mut d = voltron_ir::DataSegment::default();
        d.zeroed("x", 16);
        let mut a = Memory::from_data(&d);
        let mut b = Memory::from_data(&d);
        let base = voltron_ir::DataSegment::BASE;
        a.store_f64(base, 0.1 + 0.2).unwrap();
        b.store_f64(base, 0.3).unwrap(); // differs in the last ulp
        assert!(outputs_equivalent(&a, &b).is_ok());
        // Integer differences are never tolerated.
        a.store_uint(base + 8, 8, 41).unwrap();
        b.store_uint(base + 8, 8, 42).unwrap();
        assert!(outputs_equivalent(&a, &b).is_err());
    }

    #[test]
    fn cycle_budget_bounds_a_run() {
        let p = doall_program();
        let mut exp = Experiment::new(&p).unwrap();
        exp.set_cycle_budget(Some(10));
        match exp.run(Strategy::Serial, 1) {
            Err(SystemError::Sim(voltron_sim::SimError::MaxCycles(10))) => {}
            other => panic!("expected a budget overrun, got {other:?}"),
        }
        // A failed run is not cached; lifting the budget recovers.
        exp.set_cycle_budget(None);
        assert!(exp.run(Strategy::Serial, 1).is_ok());
    }

    #[test]
    fn whatif_reports_exact_stack_and_sane_ceilings() {
        let p = doall_program();
        let mut exp = Experiment::new(&p).unwrap();
        let before = exp.run(Strategy::Hybrid, 4).unwrap().cycles;
        let report = exp.whatif(Strategy::Hybrid, 4).unwrap();
        assert_eq!(report.measured_cycles, before);
        assert!(report.stack.is_exact(), "machine stack must sum exactly");
        for r in &report.regions {
            assert!(r.stack.is_exact(), "region {} stack must sum", r.region);
        }
        assert_eq!(report.ceilings.len(), KnobId::ALL.len());
        for c in &report.ceilings {
            assert!(
                c.speedup_ceiling >= 1.0 - 1e-9,
                "{} ceiling {} < 1",
                c.knob,
                c.speedup_ceiling
            );
        }
        assert!(report.best_ceiling().speedup_ceiling >= 1.0);
        // The measured run in the cache is byte-identical to the
        // pre-what-if result: idealized runs never touch the cache.
        assert_eq!(exp.run(Strategy::Hybrid, 4).unwrap().cycles, before);
    }

    #[test]
    fn serial_strategy_has_speedup_one() {
        let p = doall_program();
        let mut exp = Experiment::new(&p).unwrap();
        let r = exp.run(Strategy::Serial, 4).unwrap();
        // Serial on a 4-core machine runs on the master only.
        assert!((r.speedup - 1.0).abs() < 0.05, "speedup {}", r.speedup);
    }
}
