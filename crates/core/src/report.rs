//! Plain-text table rendering for the figure harnesses.

/// A simple fixed-width table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width[i] - c.len();
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }
}

/// Format a speedup (2 decimal places).
pub fn speedup(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of positive values (the figures report arithmetic means;
/// both are provided).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["bench", "speedup"]);
        t.row(vec!["gzip".into(), "1.20".into()]);
        t.row(vec!["a-very-long-name".into(), "2.00".into()]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn means_behave() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(pct(0.25), "25.0%");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
