//! Plain-text table rendering and machine-readable output for the figure
//! harnesses: fixed-width [`Table`]s for the human-facing figures, a
//! dependency-free [`Json`] value for the `BENCH_*.json` sidecars, and
//! the [`throughput`] line (simulated cycles per host second) the
//! harness reports after every sweep.

use std::fmt::Write as _;

/// A JSON value, built by hand and rendered with [`Json::render`]. The
/// harness emits small benchmark sidecars; a serialization dependency
/// would be heavier than the minimal tree below.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An unsigned integer (cycle counts; kept exact, not routed
    /// through f64).
    UInt(u64),
    /// A float. Non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serialize to a compact JSON document.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(kvs) => {
                out.push('{');
                for (i, (k, v)) in kvs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The harness's throughput line: how much simulation happened per host
/// second of wall clock.
pub fn throughput(simulated_cycles: u64, host_seconds: f64) -> String {
    let cps = simulated_cycles as f64 / host_seconds.max(1e-9);
    format!(
        "{simulated_cycles} simulated cycles in {host_seconds:.3}s host \
         = {:.2}M cycles/host-second",
        cps / 1e6
    )
}

/// A simple fixed-width table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width[i] - c.len();
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }
}

/// Format a speedup (2 decimal places).
pub fn speedup(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of positive values (the figures report arithmetic means;
/// both are provided).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["bench", "speedup"]);
        t.row(vec!["gzip".into(), "1.20".into()]);
        t.row(vec!["a-very-long-name".into(), "2.00".into()]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn means_behave() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(pct(0.25), "25.0%");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn json_renders_and_escapes() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("a\"b\\c\n".into())),
            ("cycles".into(), Json::UInt(u64::MAX)),
            ("speedup".into(), Json::Num(1.5)),
            ("bad".into(), Json::Num(f64::NAN)),
            ("runs".into(), Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
        ]);
        assert_eq!(
            doc.render(),
            "{\"name\":\"a\\\"b\\\\c\\u000a\",\"cycles\":18446744073709551615,\
             \"speedup\":1.5,\"bad\":null,\"runs\":[1,2]}"
        );
    }

    #[test]
    fn throughput_line_mentions_cycles_and_rate() {
        let s = throughput(2_000_000, 2.0);
        assert!(s.contains("2000000 simulated cycles"));
        assert!(s.contains("1.00M cycles/host-second"));
    }
}
