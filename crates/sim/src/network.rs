//! The dual-mode scalar operand network.
//!
//! * **Direct mode** (coupled execution): per-link single-entry latches.
//!   `PUT` writes the latch at the far end of a mesh link (1 cycle/hop);
//!   the lock-step `GET` consumes it. A broadcast latch per core carries
//!   branch conditions (`BCAST`/`GETB`).
//! * **Queue mode** (decoupled execution): per-core send queues, XY
//!   dimension-ordered routing with per-link occupancy (one message per
//!   link per cycle), and CAM receive queues searched by sender id.
//!   Uncontended latency is `queue_overhead + hops` to queue insertion,
//!   matching the paper's 2 + hops cycles.
//!
//! `SPAWN` rides the queue network as a control message carrying the
//! thread's start block.

use crate::config::MachineConfig;
use std::collections::{HashMap, VecDeque};
use voltron_ir::{BlockId, Dir, Value};

/// Message payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// A scalar operand.
    Data(Value),
    /// A fine-grain-thread start address (target core's block id).
    Spawn(BlockId),
}

/// Tag used by region-join tokens; the machine classifies stalls on
/// these receives as synchronization (the paper's call/return sync).
pub const TAG_JOIN: u32 = 0xffff;

/// A network message.
///
/// The receive-queue CAM matches on `(from, tag)`. The paper's CAM keys on
/// the sender id alone; the tag widens the key so the compiler can name
/// individual communicated values instead of relying on fragile positional
/// ordering between sender and receiver code (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    /// Sender core.
    pub from: usize,
    /// Destination core.
    pub to: usize,
    /// CAM tag (0 for untagged transfers).
    pub tag: u32,
    /// Payload.
    pub payload: Payload,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    msg: Message,
    available: u64,
}

/// Network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Queue-mode messages delivered.
    pub messages: u64,
    /// Total source-to-receive-queue latency of delivered messages.
    pub total_latency: u64,
    /// Direct-mode transfers completed.
    pub direct_transfers: u64,
    /// Broadcasts completed.
    pub broadcasts: u64,
}

/// The operand network (both modes).
#[derive(Debug)]
pub struct OperandNetwork {
    cfg: MachineConfig,
    send_q: Vec<VecDeque<(Message, u64)>>, // (message, enqueue cycle)
    recv_q: Vec<Vec<Queued>>,
    /// Next-free cycle per directed mesh link (from, to).
    link_free: HashMap<(usize, usize), u64>,
    /// Direct-mode latch at (receiver, direction-from-receiver).
    direct: HashMap<(usize, Dir), (Value, u64)>,
    /// Broadcast latch per receiving core.
    bcast: Vec<Option<(Value, u64)>>,
    stats: NetStats,
}

impl OperandNetwork {
    /// Build the network for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> OperandNetwork {
        OperandNetwork {
            send_q: (0..cfg.cores).map(|_| VecDeque::new()).collect(),
            recv_q: (0..cfg.cores).map(|_| Vec::new()).collect(),
            link_free: HashMap::new(),
            direct: HashMap::new(),
            bcast: vec![None; cfg.cores],
            cfg: cfg.clone(),
            stats: NetStats::default(),
        }
    }

    /// XY route: the sequence of cores from `from` to `to` (exclusive of
    /// `from`).
    fn route(&self, from: usize, to: usize) -> Vec<usize> {
        let w = self.cfg.mesh_width();
        let (mut x, mut y) = self.cfg.coords(from);
        let (tx, ty) = self.cfg.coords(to);
        let mut path = Vec::new();
        while x != tx {
            x = if x < tx { x + 1 } else { x - 1 };
            path.push(y * w + x);
        }
        while y != ty {
            y = if y < ty { y + 1 } else { y - 1 };
            path.push(y * w + x);
        }
        path
    }

    // ---- queue mode ----

    /// Enqueue a message into the sender's send queue. Returns false when
    /// the queue is full (the SEND stalls).
    pub fn send(&mut self, from: usize, to: usize, tag: u32, payload: Payload, now: u64) -> bool {
        if self.send_q[from].len() >= self.cfg.queue_depth {
            return false;
        }
        self.send_q[from].push_back((Message { from, to, tag, payload }, now));
        true
    }

    /// True if the sender's queue has room for another message.
    pub fn can_send(&self, from: usize) -> bool {
        self.send_q[from].len() < self.cfg.queue_depth
    }

    /// True if an available spawn message is waiting at `core`.
    pub fn has_spawn(&self, core: usize, now: u64) -> bool {
        self.recv_q[core]
            .iter()
            .any(|q| q.available <= now && matches!(q.msg.payload, Payload::Spawn(_)))
    }

    /// True if a data message from `(from, tag)` is available at `core`.
    pub fn can_recv(&self, core: usize, from: usize, tag: u32, now: u64) -> bool {
        self.recv_q[core].iter().any(|q| {
            q.available <= now
                && q.msg.from == from
                && q.msg.tag == tag
                && matches!(q.msg.payload, Payload::Data(_))
        })
    }

    /// Consume the oldest available data message from `(from, tag)` at
    /// `core`.
    pub fn recv(&mut self, core: usize, from: usize, tag: u32, now: u64) -> Option<Value> {
        let pos = self.recv_q[core].iter().position(|q| {
            q.available <= now
                && q.msg.from == from
                && q.msg.tag == tag
                && matches!(q.msg.payload, Payload::Data(_))
        })?;
        let q = self.recv_q[core].remove(pos);
        match q.msg.payload {
            Payload::Data(v) => Some(v),
            Payload::Spawn(_) => unreachable!("filtered above"),
        }
    }

    /// Consume the oldest available spawn message at an idle `core`.
    pub fn take_spawn(&mut self, core: usize, now: u64) -> Option<(usize, BlockId)> {
        let pos = self.recv_q[core]
            .iter()
            .position(|q| q.available <= now && matches!(q.msg.payload, Payload::Spawn(_)));
        let q = self.recv_q[core].remove(pos?);
        match q.msg.payload {
            Payload::Spawn(b) => Some((q.msg.from, b)),
            Payload::Data(_) => unreachable!("filtered above"),
        }
    }

    /// Advance routing one cycle: each core may inject its send-queue head
    /// if the path's links are free.
    ///
    /// Receive queues are modeled *unbounded*: with a single FIFO per
    /// receiver, finite receive queues deadlock when a decoupled producer
    /// runs many iterations ahead (its broadcast predicates fill a
    /// consumer's queue and block an unrelated pair's data behind
    /// head-of-line). Hardware solves this with per-pair virtual channels
    /// or credits; buffering unboundedly is the standard simulator
    /// idealization and is recorded in DESIGN.md. Send queues stay at the
    /// configured depth, which is what bounds producer run-ahead cost.
    pub fn tick(&mut self, now: u64) {
        for core in 0..self.cfg.cores {
            let Some(&(msg, enq)) = self.send_q[core].front() else {
                continue;
            };
            // Reserve links along the XY path.
            let path = self.route(msg.from, msg.to);
            let mut t = now;
            let mut hops_t = Vec::with_capacity(path.len());
            let mut prev = msg.from;
            for &next in &path {
                let free = self.link_free.get(&(prev, next)).copied().unwrap_or(0);
                t = t.max(free + 1).max(t + self.cfg.hop_latency);
                hops_t.push(((prev, next), t));
                prev = next;
            }
            for (link, at) in hops_t {
                self.link_free.insert(link, at);
            }
            // +1: insertion into the receive queue (the second cycle of
            // the paper's 2-cycle fixed overhead; the first was the send
            // queue write, already implied by injecting one cycle after
            // the SEND executed).
            let available = t + self.cfg.queue_overhead - 1;
            self.send_q[core].pop_front();
            self.recv_q[msg.to].push(Queued { msg, available });
            self.stats.messages += 1;
            self.stats.total_latency += available.saturating_sub(enq);
        }
    }

    // ---- direct mode ----

    /// True when a `PUT` from `core` toward `d` would find its far latch
    /// free (off-mesh directions report false; the `put` itself errors).
    pub fn can_put(&self, core: usize, d: Dir) -> bool {
        match self.cfg.neighbor(core, d) {
            Some(to) => !self.direct.contains_key(&(to, d.opposite())),
            None => false,
        }
    }

    /// True when a `BCAST` from `core` would find all peer latches free.
    pub fn can_bcast(&self, from: usize) -> bool {
        (0..self.cfg.cores).all(|c| c == from || self.bcast[c].is_none())
    }

    /// `PUT`: write `value` onto the link in direction `d`. Returns false
    /// (stall) when the far latch is still occupied, or errors when the
    /// link does not exist.
    ///
    /// # Errors
    /// Returns a message naming the core and direction when no neighbor
    /// exists that way (a compiler bug).
    pub fn put(&mut self, from: usize, d: Dir, value: Value, now: u64) -> Result<bool, String> {
        let to = self
            .cfg
            .neighbor(from, d)
            .ok_or_else(|| format!("core {from} has no neighbor to the {d}"))?;
        let key = (to, d.opposite());
        if self.direct.contains_key(&key) {
            return Ok(false);
        }
        self.direct.insert(key, (value, now + self.cfg.hop_latency));
        self.stats.direct_transfers += 1;
        Ok(true)
    }

    /// True when a `GET` from direction `d` at `core` would succeed now.
    pub fn can_get(&self, core: usize, d: Dir, now: u64) -> bool {
        self.direct.get(&(core, d)).map(|(_, at)| *at <= now).unwrap_or(false)
    }

    /// Consume the direct latch at (`core`, `d`).
    pub fn get(&mut self, core: usize, d: Dir, now: u64) -> Option<Value> {
        if !self.can_get(core, d, now) {
            return None;
        }
        self.direct.remove(&(core, d)).map(|(v, _)| v)
    }

    /// `BCAST`: deliver `value` to every other core's broadcast latch.
    /// Returns false (stall) when any latch is still occupied.
    pub fn bcast(&mut self, from: usize, value: Value, now: u64) -> bool {
        let busy = (0..self.cfg.cores).any(|c| c != from && self.bcast[c].is_some());
        if busy {
            return false;
        }
        for c in 0..self.cfg.cores {
            if c != from {
                self.bcast[c] = Some((value, now + self.cfg.hop_latency));
            }
        }
        self.stats.broadcasts += 1;
        true
    }

    /// True when a `GETB` at `core` would succeed now.
    pub fn can_getb(&self, core: usize, now: u64) -> bool {
        self.bcast[core].map(|(_, at)| at <= now).unwrap_or(false)
    }

    /// Consume the broadcast latch at `core`.
    pub fn getb(&mut self, core: usize, now: u64) -> Option<Value> {
        if !self.can_getb(core, now) {
            return None;
        }
        self.bcast[core].take().map(|(v, _)| v)
    }

    /// True when `core` has nothing buffered anywhere (used in debug
    /// assertions at region boundaries).
    pub fn quiescent(&self, core: usize) -> bool {
        self.send_q[core].is_empty() && self.recv_q[core].is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(cores: usize) -> OperandNetwork {
        OperandNetwork::new(&MachineConfig::paper(cores))
    }

    #[test]
    fn queue_latency_is_two_plus_hops() {
        let mut n = net(4);
        // Send at cycle 10 from core 0 to adjacent core 1 (1 hop).
        assert!(n.send(0, 1, 0, Payload::Data(Value::Int(7)), 10));
        n.tick(11);
        // Available at 10 + 2 + 1 = 13, not earlier.
        assert!(!n.can_recv(1, 0, 0, 12));
        assert!(n.can_recv(1, 0, 0, 13));
        assert_eq!(n.recv(1, 0, 0, 13), Some(Value::Int(7)));
    }

    #[test]
    fn diagonal_costs_two_hops() {
        let mut n = net(4);
        assert!(n.send(0, 3, 0, Payload::Data(Value::Int(1)), 10));
        n.tick(11);
        assert!(!n.can_recv(3, 0, 0, 13));
        assert!(n.can_recv(3, 0, 0, 14)); // 10 + 2 + 2
    }

    #[test]
    fn per_sender_fifo_order() {
        let mut n = net(2);
        n.send(0, 1, 0, Payload::Data(Value::Int(1)), 0);
        n.send(0, 1, 0, Payload::Data(Value::Int(2)), 0);
        for t in 1..10 {
            n.tick(t);
        }
        assert_eq!(n.recv(1, 0, 0, 20), Some(Value::Int(1)));
        assert_eq!(n.recv(1, 0, 0, 20), Some(Value::Int(2)));
        assert_eq!(n.recv(1, 0, 0, 20), None);
    }

    #[test]
    fn recv_matches_sender_id() {
        let mut n = net(4);
        n.send(2, 3, 0, Payload::Data(Value::Int(22)), 0);
        n.send(1, 3, 0, Payload::Data(Value::Int(11)), 0);
        for t in 1..10 {
            n.tick(t);
        }
        // CAM lookup by sender: core 3 can take core 1's message first.
        assert_eq!(n.recv(3, 1, 0, 20), Some(Value::Int(11)));
        assert_eq!(n.recv(3, 2, 0, 20), Some(Value::Int(22)));
    }

    #[test]
    fn send_queue_fills() {
        let mut n = net(2);
        for i in 0..16 {
            assert!(n.send(0, 1, 0, Payload::Data(Value::Int(i)), 0), "send {i}");
        }
        assert!(!n.send(0, 1, 0, Payload::Data(Value::Int(99)), 0));
    }

    #[test]
    fn spawn_messages_are_separate_from_data() {
        let mut n = net(2);
        n.send(0, 1, 0, Payload::Data(Value::Int(5)), 0);
        n.send(0, 1, 0, Payload::Spawn(BlockId(3)), 0);
        for t in 1..10 {
            n.tick(t);
        }
        assert_eq!(n.take_spawn(1, 20), Some((0, BlockId(3))));
        assert!(n.take_spawn(1, 20).is_none());
        assert_eq!(n.recv(1, 0, 0, 20), Some(Value::Int(5)));
    }

    #[test]
    fn direct_put_get_one_cycle_per_hop() {
        let mut n = net(4);
        assert_eq!(n.put(0, Dir::East, Value::Int(42), 5), Ok(true));
        // Not visible in the same cycle; visible one hop later.
        assert!(!n.can_get(1, Dir::West, 5));
        assert!(n.can_get(1, Dir::West, 6));
        assert_eq!(n.get(1, Dir::West, 6), Some(Value::Int(42)));
        assert!(!n.can_get(1, Dir::West, 7)); // consumed
    }

    #[test]
    fn put_stalls_on_occupied_latch() {
        let mut n = net(4);
        assert_eq!(n.put(0, Dir::East, Value::Int(1), 0), Ok(true));
        assert_eq!(n.put(0, Dir::East, Value::Int(2), 1), Ok(false));
        n.get(1, Dir::West, 2);
        assert_eq!(n.put(0, Dir::East, Value::Int(2), 2), Ok(true));
    }

    #[test]
    fn put_off_mesh_is_an_error() {
        let mut n = net(2);
        assert!(n.put(0, Dir::West, Value::Int(1), 0).is_err());
        assert!(n.put(1, Dir::South, Value::Int(1), 0).is_err());
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let mut n = net(4);
        assert!(n.bcast(2, Value::Pred(true), 10));
        for c in [0usize, 1, 3] {
            assert!(!n.can_getb(c, 10));
            assert!(n.can_getb(c, 11));
        }
        assert!(!n.can_getb(2, 11));
        assert_eq!(n.getb(0, 11), Some(Value::Pred(true)));
        // Occupied until everyone consumed.
        assert!(!n.bcast(2, Value::Pred(false), 12));
        n.getb(1, 12);
        n.getb(3, 12);
        assert!(n.bcast(2, Value::Pred(false), 13));
    }

    #[test]
    fn link_contention_delays_second_message() {
        let mut n = net(2);
        n.send(0, 1, 0, Payload::Data(Value::Int(1)), 0);
        n.send(0, 1, 0, Payload::Data(Value::Int(2)), 0);
        n.tick(1);
        n.tick(2);
        // First available at 3; second injected a cycle later at 4.
        assert!(n.can_recv(1, 0, 0, 3));
        n.recv(1, 0, 0, 3);
        assert!(!n.can_recv(1, 0, 0, 3));
        assert!(n.can_recv(1, 0, 0, 4));
    }
}
