//! The dual-mode scalar operand network.
//!
//! * **Direct mode** (coupled execution): per-link single-entry latches.
//!   `PUT` writes the latch at the far end of a mesh link (1 cycle/hop);
//!   the lock-step `GET` consumes it. A broadcast latch per core carries
//!   branch conditions (`BCAST`/`GETB`).
//! * **Queue mode** (decoupled execution): per-core send queues, XY
//!   dimension-ordered routing with per-link occupancy (one message per
//!   link per cycle), and CAM receive queues searched by sender id.
//!   Uncontended latency is `queue_overhead + hops` to queue insertion,
//!   matching the paper's 2 + hops cycles.
//!
//! `SPAWN` rides the queue network as a control message carrying the
//! thread's start block.
//!
//! # Hot-path layout
//!
//! This module sits on the simulator's innermost loop (`tick` runs every
//! simulated cycle; the `can_*` probes run for every stalled instruction
//! every cycle), so the state is laid out for O(1) access with no
//! per-cycle allocation:
//!
//! * Directed-link state (`link_free`, the direct-mode latches, and the
//!   neighbor table) lives in flat arrays indexed `core * 4 + direction`;
//!   every core has at most four mesh links.
//! * The receive CAM is an *indexed* MPMC queue set: one hash-indexed
//!   FIFO per `(sender, tag)` stream (the Virtual-Link-style design),
//!   so `can_recv`/`recv` and tick-time delivery are O(1) regardless of
//!   how many producers or tags converge on a receiver — the old layout
//!   scanned a per-sender bucket list on every probe, which is
//!   O(senders x tags) at 64-core fan-in. Within a stream all messages
//!   cross the same XY route, and link reservations only ever push later
//!   messages further out, so delivery order equals availability order
//!   and the stream head is always the oldest matchable message —
//!   indexed lookup is exact, not an approximation of the scan it
//!   replaced.
//! * Spawn messages keep their own per-sender FIFOs plus a global
//!   delivery sequence number; `take_spawn` picks the earliest-delivered
//!   available head, but only scans the *active-sender list* (senders
//!   with a nonempty spawn FIFO) instead of all cores. Cross-sender
//!   spawn availability is not monotone in delivery sequence (a
//!   later-delivered spawn from a nearer sender can become available
//!   first), so the FIFOs cannot be merged into one queue without
//!   changing semantics; the active list preserves the exact
//!   earliest-delivered-available selection.
//! * Broadcast-latch occupancy is a counter, making `can_bcast` O(1)
//!   instead of an all-cores scan per probe.

use crate::config::MachineConfig;
use crate::fault::{FaultBudgetReport, FaultKind, FaultSite, SiteFaults, SiteInjector};
use std::collections::{HashMap, VecDeque};
use voltron_ir::{BlockId, Dir, Value};

/// Message payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// A scalar operand.
    Data(Value),
    /// A fine-grain-thread start address (target core's block id).
    Spawn(BlockId),
}

/// Tag used by region-join tokens; the machine classifies stalls on
/// these receives as synchronization (the paper's call/return sync).
pub const TAG_JOIN: u32 = 0xffff;

/// A network message.
///
/// The receive-queue CAM matches on `(from, tag)`. The paper's CAM keys on
/// the sender id alone; the tag widens the key so the compiler can name
/// individual communicated values instead of relying on fragile positional
/// ordering between sender and receiver code (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    /// Sender core.
    pub from: usize,
    /// Destination core.
    pub to: usize,
    /// CAM tag (0 for untagged transfers).
    pub tag: u32,
    /// Payload.
    pub payload: Payload,
}

/// Links per core: one per [`Dir`].
const LINKS: usize = 4;

/// Flat index of a direction (E/W/S/N order is arbitrary but fixed).
fn dir_index(d: Dir) -> usize {
    match d {
        Dir::East => 0,
        Dir::West => 1,
        Dir::South => 2,
        Dir::North => 3,
    }
}

/// Fibonacci-multiply hasher for the receive CAM's tag index. The
/// default SipHash costs more than the small-bucket scan it replaced;
/// tags are simulator-internal (never attacker-controlled), so a single
/// multiply is enough to spread them across the table.
#[derive(Default)]
struct TagHasher(u64);

impl std::hash::Hasher for TagHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("tags hash through write_u32");
    }

    fn write_u32(&mut self, tag: u32) {
        self.0 = u64::from(tag).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type TagMap = HashMap<u32, VecDeque<(Value, u64)>, std::hash::BuildHasherDefault<TagHasher>>;

/// Per-receiver CAM state: an indexed MPMC queue set.
#[derive(Debug)]
struct RecvSide {
    /// One FIFO of `(value, available)` per `(sender, tag)` stream:
    /// `data[from]` indexes the sender directly, the inner map hash-
    /// indexes the tag. Entries persist once created (a drained stream
    /// stays as an empty FIFO), so steady-state delivery never
    /// allocates.
    data: Vec<TagMap>,
    /// `spawns[from]`: `(delivery sequence, start block, available)`.
    spawns: Vec<VecDeque<(u64, BlockId, u64)>>,
    /// Senders whose spawn FIFO is nonempty (unordered; `take_spawn`
    /// selects by delivery sequence, not list position).
    spawn_senders: Vec<usize>,
    /// Buffered messages across all streams (data + spawns).
    buffered: usize,
}

impl RecvSide {
    fn new(cores: usize) -> RecvSide {
        RecvSide {
            data: (0..cores).map(|_| TagMap::default()).collect(),
            spawns: (0..cores).map(|_| VecDeque::new()).collect(),
            spawn_senders: Vec::new(),
            buffered: 0,
        }
    }

    /// Drop `from` from the active-sender list once its FIFO drains.
    fn deactivate_spawn_sender(&mut self, from: usize) {
        if let Some(i) = self.spawn_senders.iter().position(|&s| s == from) {
            self.spawn_senders.swap_remove(i);
        }
    }
}

/// A send-queue entry. Fault-free runs only ever see `enq` vary: the
/// retry state stays zeroed and the sequence number is stamped only when
/// a fault plan is attached, so the hot path is untouched.
#[derive(Debug, Clone, Copy)]
struct SendEntry {
    msg: Message,
    /// Enqueue cycle (for the latency statistic).
    enq: u64,
    /// Drop-retry count for this message (fault injection only).
    attempts: u32,
    /// Cycle before which the head must not reinject (exponential
    /// backoff after a drop; `u64::MAX` parks a head whose budget is
    /// exhausted until the machine surfaces the typed error).
    not_before: u64,
    /// The message was already delivered once; this entry is the
    /// injected duplicate the receiver must dedup.
    dup: bool,
    /// Per-`(from, to, tag)` stream sequence number (fault runs only).
    seq: u64,
}

/// Runtime fault state for the network's three sites. Present only when
/// the machine config carries a fault plan; `None` keeps every fault
/// branch off the fault-free hot path.
#[derive(Debug)]
struct NetFaults {
    drop: SiteInjector,
    delay: SiteInjector,
    dup: SiteInjector,
    /// Drop-retry budget per message ([`crate::config::Watchdogs`]).
    budget: u32,
    /// Backoff base ([`crate::config::Watchdogs::fault_backoff_base`]).
    backoff_base: u64,
    /// First budget exhaustion, held for the machine to surface.
    failure: Option<FaultBudgetReport>,
    /// `tx_seq[from]`: next sequence number per `(to, tag)` stream.
    tx_seq: Vec<HashMap<(usize, u32), u64>>,
    /// `rx_seq[to][from]`: next expected sequence number per tag; a
    /// delivery below it is a duplicate and is dropped at CAM insertion.
    rx_seq: Vec<Vec<HashMap<u32, u64>>>,
    /// Fault/recovery log `(cycle, core, site, action)` drained by the
    /// machine into trace events; populated only when a tracer asks.
    log_enabled: bool,
    events: Vec<(u64, usize, FaultSite, &'static str)>,
}

impl NetFaults {
    /// Bounded exponential backoff, mirroring
    /// [`crate::config::Watchdogs::backoff`].
    fn backoff(&self, attempt: u32) -> u64 {
        self.backoff_base << attempt.saturating_sub(1).min(10)
    }

    fn log(&mut self, now: u64, core: usize, site: FaultSite, action: &'static str) {
        if self.log_enabled {
            self.events.push((now, core, site, action));
        }
    }
}

/// Network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Queue-mode messages delivered.
    pub messages: u64,
    /// Total source-to-receive-queue latency of delivered messages.
    pub total_latency: u64,
    /// Direct-mode transfers completed.
    pub direct_transfers: u64,
    /// Broadcasts completed.
    pub broadcasts: u64,
}

/// The operand network (both modes).
#[derive(Debug)]
pub struct OperandNetwork {
    cfg: MachineConfig,
    /// Mesh width, cached off the config (it recomputes per call).
    width: usize,
    /// `neighbor[core * 4 + dir]`, cached off the config.
    neighbor: Vec<Option<usize>>,
    send_q: Vec<VecDeque<SendEntry>>,
    recv: Vec<RecvSide>,
    /// Fault-injection state; `None` on fault-free runs.
    faults: Option<Box<NetFaults>>,
    /// Monotone counter stamping queue-mode deliveries in order.
    deliver_seq: u64,
    /// Next-free cycle per directed mesh link, indexed by the link's
    /// source core and direction.
    link_free: Vec<u64>,
    /// Direct-mode latch at `receiver * 4 + direction-from-receiver`.
    direct: Vec<Option<(Value, u64)>>,
    /// Broadcast latch per receiving core.
    bcast: Vec<Option<(Value, u64)>>,
    /// Occupied broadcast latches (makes `can_bcast` O(1)).
    bcast_occupied: usize,
    stats: NetStats,
}

impl OperandNetwork {
    /// Build the network for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> OperandNetwork {
        let n = cfg.cores;
        let mut neighbor = vec![None; n * LINKS];
        for core in 0..n {
            for d in [Dir::East, Dir::West, Dir::South, Dir::North] {
                neighbor[core * LINKS + dir_index(d)] = cfg.neighbor(core, d);
            }
        }
        let faults = cfg.faults.as_ref().map(|plan| {
            Box::new(NetFaults {
                drop: plan.injector(FaultSite::NetDrop),
                delay: plan.injector(FaultSite::NetDelay),
                dup: plan.injector(FaultSite::NetDuplicate),
                budget: cfg.watchdogs.fault_retry_budget,
                backoff_base: cfg.watchdogs.fault_backoff_base,
                failure: None,
                tx_seq: (0..n).map(|_| HashMap::new()).collect(),
                rx_seq: (0..n).map(|_| vec![HashMap::new(); n]).collect(),
                log_enabled: false,
                events: Vec::new(),
            })
        });
        OperandNetwork {
            width: cfg.mesh_width(),
            neighbor,
            send_q: (0..n).map(|_| VecDeque::new()).collect(),
            recv: (0..n).map(|_| RecvSide::new(n)).collect(),
            faults,
            deliver_seq: 0,
            link_free: vec![0; n * LINKS],
            direct: vec![None; n * LINKS],
            bcast: vec![None; n],
            bcast_occupied: 0,
            cfg: cfg.clone(),
            stats: NetStats::default(),
        }
    }

    // ---- queue mode ----

    /// Enqueue a message into the sender's send queue. Returns false when
    /// the queue is full (the SEND stalls).
    pub fn send(&mut self, from: usize, to: usize, tag: u32, payload: Payload, now: u64) -> bool {
        // Free-spawn idealization: thread-start messages bypass the send
        // queue and land in the target's CAM instantly, so spawn cost
        // vanishes from both the sender (no queue slot, no SendFull) and
        // the receiver (no in-flight wait).
        if self.cfg.ideal.free_spawn {
            if let Payload::Spawn(b) = payload {
                let side = &mut self.recv[to];
                if side.spawns[from].is_empty() {
                    side.spawn_senders.push(from);
                }
                side.spawns[from].push_back((self.deliver_seq, b, now));
                side.buffered += 1;
                self.deliver_seq += 1;
                self.stats.messages += 1;
                return true;
            }
        }
        if self.send_q[from].len() >= self.cfg.queue_depth {
            return false;
        }
        // Stream sequence numbers exist only to let the receiver dedup
        // injected duplicates; fault-free runs never stamp or check them.
        let seq = match self.faults.as_mut() {
            Some(f) => {
                let s = f.tx_seq[from].entry((to, tag)).or_insert(0);
                let seq = *s;
                *s += 1;
                seq
            }
            None => 0,
        };
        self.send_q[from].push_back(SendEntry {
            msg: Message {
                from,
                to,
                tag,
                payload,
            },
            enq: now,
            attempts: 0,
            not_before: 0,
            dup: false,
            seq,
        });
        true
    }

    /// True if the sender's queue has room for another message.
    pub fn can_send(&self, from: usize) -> bool {
        self.send_q[from].len() < self.cfg.queue_depth
    }

    /// True if an available spawn message is waiting at `core`. Scans
    /// only the senders with a nonempty spawn FIFO (usually zero or
    /// one), not all cores.
    pub fn has_spawn(&self, core: usize, now: u64) -> bool {
        let side = &self.recv[core];
        side.spawn_senders.iter().any(|&from| {
            side.spawns[from]
                .front()
                .is_some_and(|&(_, _, at)| at <= now)
        })
    }

    /// True if a data message from `(from, tag)` is available at `core`
    /// (O(1) stream lookup).
    pub fn can_recv(&self, core: usize, from: usize, tag: u32, now: u64) -> bool {
        self.recv[core].data[from]
            .get(&tag)
            .is_some_and(|q| q.front().is_some_and(|&(_, at)| at <= now))
    }

    /// Consume the oldest available data message from `(from, tag)` at
    /// `core` (O(1) stream lookup).
    pub fn recv(&mut self, core: usize, from: usize, tag: u32, now: u64) -> Option<Value> {
        let side = &mut self.recv[core];
        let q = side.data[from].get_mut(&tag)?;
        let &(v, at) = q.front()?;
        if at > now {
            return None;
        }
        q.pop_front();
        side.buffered -= 1;
        Some(v)
    }

    /// Consume the oldest available spawn message at an idle `core`
    /// (earliest-delivered across all senders, as the CAM scan found it).
    /// Selection order must stay by delivery sequence: availability is
    /// not monotone across senders, so the per-sender FIFOs cannot be
    /// merged — but only active senders are scanned.
    pub fn take_spawn(&mut self, core: usize, now: u64) -> Option<(usize, BlockId)> {
        let side = &mut self.recv[core];
        let mut best: Option<(u64, usize)> = None;
        for &from in &side.spawn_senders {
            if let Some(&(seq, _, at)) = side.spawns[from].front() {
                if at <= now && best.is_none_or(|(s, _)| seq < s) {
                    best = Some((seq, from));
                }
            }
        }
        let (_, from) = best?;
        let (_, blk, _) = side.spawns[from].pop_front().expect("head checked above");
        if side.spawns[from].is_empty() {
            side.deactivate_spawn_sender(from);
        }
        side.buffered -= 1;
        Some((from, blk))
    }

    /// Advance routing one cycle: each core may inject its send-queue head
    /// if the path's links are free.
    ///
    /// Receive queues are modeled *unbounded*: with a single FIFO per
    /// receiver, finite receive queues deadlock when a decoupled producer
    /// runs many iterations ahead (its broadcast predicates fill a
    /// consumer's queue and block an unrelated pair's data behind
    /// head-of-line). Hardware solves this with per-pair virtual channels
    /// or credits; buffering unboundedly is the standard simulator
    /// idealization and is recorded in DESIGN.md. Send queues stay at the
    /// configured depth, which is what bounds producer run-ahead cost.
    pub fn tick(&mut self, now: u64) {
        for core in 0..self.cfg.cores {
            if self.cfg.ideal.zero_latency_network {
                // Zero-latency idealization: no link serialization either,
                // so the whole queue drains in one tick.
                while self.inject_head(core, now) {}
            } else {
                self.inject_head(core, now);
            }
        }
    }

    /// Inject `core`'s send-queue head if possible; returns true when a
    /// delivery attempt consumed (or re-marked) the head, false when the
    /// queue is empty or the head must wait (backoff, drop).
    fn inject_head(&mut self, core: usize, now: u64) -> bool {
        let Some(&entry) = self.send_q[core].front() else {
            return false;
        };
        // A head backing off after a drop waits for its retry slot.
        if entry.not_before > now {
            return false;
        }
        let msg = entry.msg;
        // Consult the fault injectors at the injection attempt — the
        // architectural event, so the draw sequence is identical with
        // fast-forward on or off. An injected duplicate resend is
        // recovery machinery, not a fresh send: it draws nothing.
        let mut extra_delay = 0;
        let mut duplicate_after = false;
        if let Some(f) = self.faults.as_deref_mut() {
            if !entry.dup {
                if f.drop.fire(now).is_some() {
                    // Dropped at injection: no link is reserved, the
                    // head stays queued and reinjects after backoff.
                    let attempts = entry.attempts + 1;
                    let head = self.send_q[core].front_mut().expect("head exists");
                    if attempts > f.budget {
                        f.drop.note_gave_up();
                        head.not_before = u64::MAX;
                        f.failure.get_or_insert(FaultBudgetReport {
                            cycle: now,
                            site: FaultSite::NetDrop,
                            attempts,
                            budget: f.budget,
                            detail: format!(
                                "message core {} -> core {} tag {}",
                                msg.from, msg.to, msg.tag
                            ),
                        });
                        f.log(now, core, FaultSite::NetDrop, "gave-up");
                    } else {
                        f.drop.note_retried(1);
                        head.attempts = attempts;
                        head.not_before = now + f.backoff(attempts);
                        f.log(now, core, FaultSite::NetDrop, "dropped");
                    }
                    return false;
                }
                if let Some(FaultKind::Delay(d)) = f.delay.fire(now) {
                    extra_delay = d;
                    f.log(now, core, FaultSite::NetDelay, "delayed");
                }
                if f.dup.fire(now).is_some() {
                    duplicate_after = true;
                    f.log(now, core, FaultSite::NetDuplicate, "duplicated");
                }
            }
        }
        let available = if self.cfg.ideal.zero_latency_network {
            // Zero-latency idealization: no hops, no fixed overhead,
            // no link reservation (injected faults still delay).
            now + extra_delay
        } else {
            // Walk the XY route, reserving each directed link as it is
            // crossed. A link appears at most once on an XY path, so
            // committing reservations inline is the same as computing
            // the whole path first.
            let w = self.width;
            let (mut x, mut y) = (msg.from % w, msg.from / w);
            let (tx, ty) = (msg.to % w, msg.to / w);
            let mut t = now;
            let mut prev = msg.from;
            while x != tx {
                let d = if x < tx { Dir::East } else { Dir::West };
                x = if x < tx { x + 1 } else { x - 1 };
                let slot = prev * LINKS + dir_index(d);
                t = t
                    .max(self.link_free[slot] + 1)
                    .max(t + self.cfg.hop_latency);
                self.link_free[slot] = t;
                prev = y * w + x;
            }
            while y != ty {
                let d = if y < ty { Dir::South } else { Dir::North };
                y = if y < ty { y + 1 } else { y - 1 };
                let slot = prev * LINKS + dir_index(d);
                t = t
                    .max(self.link_free[slot] + 1)
                    .max(t + self.cfg.hop_latency);
                self.link_free[slot] = t;
                prev = y * w + x;
            }
            // +1: insertion into the receive queue (the second cycle of
            // the paper's 2-cycle fixed overhead; the first was the send
            // queue write, already implied by injecting one cycle after
            // the SEND executed).
            t + self.cfg.queue_overhead - 1 + extra_delay
        };
        if duplicate_after {
            // Keep the head: the next tick reinjects it as the
            // duplicate (consuming real link bandwidth) and the
            // receiver's sequence check drops it at CAM insertion.
            self.send_q[core].front_mut().expect("head exists").dup = true;
        } else {
            self.send_q[core].pop_front();
        }
        // Receive-side idempotence: a delivery below the expected
        // stream sequence is a duplicate — count it recovered and
        // drop it before it reaches the CAM.
        if let Some(f) = self.faults.as_deref_mut() {
            let expected = f.rx_seq[msg.to][msg.from].entry(msg.tag).or_insert(0);
            if entry.seq < *expected {
                f.dup.note_recovered();
                f.log(now, core, FaultSite::NetDuplicate, "deduped");
                return true;
            }
            *expected = entry.seq + 1;
            if entry.attempts > 0 {
                f.drop.note_recovered();
                f.log(now, core, FaultSite::NetDrop, "recovered");
            }
            if extra_delay > 0 {
                f.delay.note_recovered();
            }
        }
        let side = &mut self.recv[msg.to];
        match msg.payload {
            Payload::Data(v) => {
                side.data[msg.from]
                    .entry(msg.tag)
                    .or_default()
                    .push_back((v, available));
            }
            Payload::Spawn(b) => {
                if side.spawns[msg.from].is_empty() {
                    side.spawn_senders.push(msg.from);
                }
                side.spawns[msg.from].push_back((self.deliver_seq, b, available));
            }
        }
        side.buffered += 1;
        self.deliver_seq += 1;
        self.stats.messages += 1;
        self.stats.total_latency += available.saturating_sub(entry.enq);
        true
    }

    // ---- direct mode ----

    /// Hop latency of a direct-mode latch write (zero under the
    /// zero-latency idealization: the value is visible the same cycle).
    fn direct_latency(&self) -> u64 {
        if self.cfg.ideal.zero_latency_network {
            0
        } else {
            self.cfg.hop_latency
        }
    }

    /// True when a `PUT` from `core` toward `d` would find its far latch
    /// free (off-mesh directions report false; the `put` itself errors).
    pub fn can_put(&self, core: usize, d: Dir) -> bool {
        match self.neighbor[core * LINKS + dir_index(d)] {
            Some(to) => self.direct[to * LINKS + dir_index(d.opposite())].is_none(),
            None => false,
        }
    }

    /// True when a `BCAST` from `core` would find all peer latches free
    /// (O(1): occupancy counter minus the sender's own latch).
    pub fn can_bcast(&self, from: usize) -> bool {
        self.bcast_occupied == usize::from(self.bcast[from].is_some())
    }

    /// `PUT`: write `value` onto the link in direction `d`. Returns false
    /// (stall) when the far latch is still occupied, or errors when the
    /// link does not exist.
    ///
    /// # Errors
    /// Returns a message naming the core and direction when no neighbor
    /// exists that way (a compiler bug).
    pub fn put(&mut self, from: usize, d: Dir, value: Value, now: u64) -> Result<bool, String> {
        let to = self.neighbor[from * LINKS + dir_index(d)]
            .ok_or_else(|| format!("core {from} has no neighbor to the {d}"))?;
        let slot = to * LINKS + dir_index(d.opposite());
        if self.direct[slot].is_some() {
            return Ok(false);
        }
        self.direct[slot] = Some((value, now + self.direct_latency()));
        self.stats.direct_transfers += 1;
        Ok(true)
    }

    /// True when a `GET` from direction `d` at `core` would succeed now.
    pub fn can_get(&self, core: usize, d: Dir, now: u64) -> bool {
        self.direct[core * LINKS + dir_index(d)].is_some_and(|(_, at)| at <= now)
    }

    /// Consume the direct latch at (`core`, `d`).
    pub fn get(&mut self, core: usize, d: Dir, now: u64) -> Option<Value> {
        if !self.can_get(core, d, now) {
            return None;
        }
        self.direct[core * LINKS + dir_index(d)]
            .take()
            .map(|(v, _)| v)
    }

    /// `BCAST`: deliver `value` to every other core's broadcast latch.
    /// Returns false (stall) when any latch is still occupied.
    pub fn bcast(&mut self, from: usize, value: Value, now: u64) -> bool {
        if !self.can_bcast(from) {
            return false;
        }
        for c in 0..self.cfg.cores {
            if c != from {
                self.bcast[c] = Some((value, now + self.direct_latency()));
            }
        }
        self.bcast_occupied += self.cfg.cores - 1;
        self.stats.broadcasts += 1;
        true
    }

    /// True when a `GETB` at `core` would succeed now.
    pub fn can_getb(&self, core: usize, now: u64) -> bool {
        self.bcast[core].is_some_and(|(_, at)| at <= now)
    }

    /// Consume the broadcast latch at `core`.
    pub fn getb(&mut self, core: usize, now: u64) -> Option<Value> {
        if !self.can_getb(core, now) {
            return None;
        }
        let v = self.bcast[core].take().map(|(v, _)| v);
        self.bcast_occupied -= 1;
        v
    }

    /// True when `core` has nothing buffered anywhere — queues in either
    /// direction, its inbound direct-mode latches, or its broadcast latch
    /// (used in debug assertions at region boundaries).
    pub fn quiescent(&self, core: usize) -> bool {
        self.send_q[core].is_empty()
            && self.recv[core].buffered == 0
            && self.direct[core * LINKS..(core + 1) * LINKS]
                .iter()
                .all(Option::is_none)
            && self.bcast[core].is_none()
    }

    // ---- forensics ----
    //
    // Read-only introspection used by the machine's deadlock diagnosis to
    // annotate wait-for-graph edges with queue occupancies.

    /// Messages buffered at `core` from `(from, tag)` — delivered into the
    /// CAM, whether or not available yet this cycle.
    pub fn buffered_from(&self, core: usize, from: usize, tag: u32) -> usize {
        self.recv[core].data[from]
            .get(&tag)
            .map_or(0, VecDeque::len)
    }

    /// Total messages buffered in `core`'s receive CAM, across all
    /// senders and tags (the interval probes' receive-bucket depth).
    pub fn recv_buffered(&self, core: usize) -> usize {
        self.recv[core].buffered
    }

    /// `core`'s send-queue head destination (if any) and total occupancy.
    pub fn send_queue(&self, core: usize) -> (Option<usize>, usize) {
        (
            self.send_q[core].front().map(|e| e.msg.to),
            self.send_q[core].len(),
        )
    }

    /// Peers whose broadcast latch is still occupied, blocking the next
    /// `BCAST` from `from` until they drain it.
    pub fn bcast_blockers(&self, from: usize) -> Vec<usize> {
        (0..self.cfg.cores)
            .filter(|&c| c != from && self.bcast[c].is_some())
            .collect()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Return the network to its just-constructed state for `cfg`,
    /// reusing the queue, CAM, and latch allocations when the core count
    /// is unchanged. Behaviourally equivalent to
    /// `*self = OperandNetwork::new(cfg)` (the machine pool's
    /// reset-equals-fresh tests pin this), but steady-state reuse keeps
    /// every per-stream FIFO's capacity.
    pub fn reset(&mut self, cfg: &MachineConfig) {
        if cfg.cores != self.cfg.cores {
            *self = OperandNetwork::new(cfg);
            return;
        }
        let n = cfg.cores;
        self.width = cfg.mesh_width();
        for core in 0..n {
            for d in [Dir::East, Dir::West, Dir::South, Dir::North] {
                self.neighbor[core * LINKS + dir_index(d)] = cfg.neighbor(core, d);
            }
        }
        for q in &mut self.send_q {
            q.clear();
        }
        for side in &mut self.recv {
            for streams in &mut side.data {
                for q in streams.values_mut() {
                    q.clear();
                }
            }
            for q in &mut side.spawns {
                q.clear();
            }
            side.spawn_senders.clear();
            side.buffered = 0;
        }
        // Fault state is rebuilt rather than cleared: the plan (seeds,
        // rates, sites) is per-request and cheap next to a run.
        self.faults = cfg.faults.as_ref().map(|plan| {
            Box::new(NetFaults {
                drop: plan.injector(FaultSite::NetDrop),
                delay: plan.injector(FaultSite::NetDelay),
                dup: plan.injector(FaultSite::NetDuplicate),
                budget: cfg.watchdogs.fault_retry_budget,
                backoff_base: cfg.watchdogs.fault_backoff_base,
                failure: None,
                tx_seq: (0..n).map(|_| HashMap::new()).collect(),
                rx_seq: (0..n).map(|_| vec![HashMap::new(); n]).collect(),
                log_enabled: false,
                events: Vec::new(),
            })
        });
        self.deliver_seq = 0;
        self.link_free.iter_mut().for_each(|c| *c = 0);
        self.direct.iter_mut().for_each(|l| *l = None);
        self.bcast.iter_mut().for_each(|l| *l = None);
        self.bcast_occupied = 0;
        self.cfg = cfg.clone();
        self.stats = NetStats::default();
    }

    // ---- fault injection ----

    /// Enable the fault/recovery event log (only useful with a tracer
    /// attached; unbounded otherwise, so off by default).
    pub fn set_fault_logging(&mut self, on: bool) {
        if let Some(f) = self.faults.as_deref_mut() {
            f.log_enabled = on;
        }
    }

    /// Drain the fault/recovery log: `(cycle, core, site, action)`.
    pub fn take_fault_events(&mut self) -> Vec<(u64, usize, FaultSite, &'static str)> {
        self.faults
            .as_deref_mut()
            .map_or_else(Vec::new, |f| std::mem::take(&mut f.events))
    }

    /// The first retry-budget exhaustion, if one occurred (the machine
    /// polls this after each tick and fails the run closed).
    pub fn take_fault_failure(&mut self) -> Option<FaultBudgetReport> {
        self.faults.as_deref_mut().and_then(|f| f.failure.take())
    }

    /// Per-site fault counters for the network's three sites.
    pub fn fault_stats(&self) -> Vec<(FaultSite, SiteFaults)> {
        self.faults.as_deref().map_or_else(Vec::new, |f| {
            vec![
                (FaultSite::NetDrop, f.drop.stats()),
                (FaultSite::NetDelay, f.delay.stats()),
                (FaultSite::NetDuplicate, f.dup.stats()),
            ]
        })
    }

    /// Earliest future cycle at which the network's observable state can
    /// change on its own, for the machine's fast-forward engine.
    ///
    /// `Some(now)` whenever any send queue holds a message: injection
    /// happens inside `tick` and depends on link reservations, so the
    /// next tick is not the identity. Otherwise the network is purely a
    /// set of parked values with availability times, and the answer is
    /// the minimum `at > now` across direct latches, broadcast latches,
    /// CAM bucket heads and spawn heads (an already-available value stays
    /// available forever, so it never constitutes a *future* event).
    /// Over-reporting is safe — the machine just ticks one identity cycle
    /// and skips again — and heads suffice because every bucket is in
    /// availability order.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let mut wake: Option<u64> = None;
        let mut consider = |at: u64| {
            if at > now && wake.is_none_or(|w| at < w) {
                wake = Some(at);
            }
        };
        for q in &self.send_q {
            if let Some(e) = q.front() {
                if e.not_before <= now {
                    return Some(now);
                }
                // A head backing off after a drop retries at `not_before`
                // (a parked gave-up head never does; the machine surfaces
                // the budget error instead).
                if e.not_before != u64::MAX {
                    consider(e.not_before);
                }
            }
        }
        for (_, at) in self.direct.iter().chain(self.bcast.iter()).flatten() {
            consider(*at);
        }
        for side in &self.recv {
            // HashMap iteration order is arbitrary, but only the minimum
            // is taken, so the result is deterministic.
            for q in side.data.iter().flat_map(HashMap::values) {
                if let Some(&(_, at)) = q.front() {
                    consider(at);
                }
            }
            for &from in &side.spawn_senders {
                if let Some(&(_, _, at)) = side.spawns[from].front() {
                    consider(at);
                }
            }
        }
        wake
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn net(cores: usize) -> OperandNetwork {
        OperandNetwork::new(&MachineConfig::paper(cores))
    }

    fn faulty_net(cores: usize, plan: FaultPlan) -> OperandNetwork {
        let mut cfg = MachineConfig::paper(cores);
        cfg.faults = Some(plan);
        OperandNetwork::new(&cfg)
    }

    #[test]
    fn queue_latency_is_two_plus_hops() {
        let mut n = net(4);
        // Send at cycle 10 from core 0 to adjacent core 1 (1 hop).
        assert!(n.send(0, 1, 0, Payload::Data(Value::Int(7)), 10));
        n.tick(11);
        // Available at 10 + 2 + 1 = 13, not earlier.
        assert!(!n.can_recv(1, 0, 0, 12));
        assert!(n.can_recv(1, 0, 0, 13));
        assert_eq!(n.recv(1, 0, 0, 13), Some(Value::Int(7)));
    }

    #[test]
    fn diagonal_costs_two_hops() {
        let mut n = net(4);
        assert!(n.send(0, 3, 0, Payload::Data(Value::Int(1)), 10));
        n.tick(11);
        assert!(!n.can_recv(3, 0, 0, 13));
        assert!(n.can_recv(3, 0, 0, 14)); // 10 + 2 + 2
    }

    #[test]
    fn per_sender_fifo_order() {
        let mut n = net(2);
        n.send(0, 1, 0, Payload::Data(Value::Int(1)), 0);
        n.send(0, 1, 0, Payload::Data(Value::Int(2)), 0);
        for t in 1..10 {
            n.tick(t);
        }
        assert_eq!(n.recv(1, 0, 0, 20), Some(Value::Int(1)));
        assert_eq!(n.recv(1, 0, 0, 20), Some(Value::Int(2)));
        assert_eq!(n.recv(1, 0, 0, 20), None);
    }

    #[test]
    fn recv_matches_sender_id() {
        let mut n = net(4);
        n.send(2, 3, 0, Payload::Data(Value::Int(22)), 0);
        n.send(1, 3, 0, Payload::Data(Value::Int(11)), 0);
        for t in 1..10 {
            n.tick(t);
        }
        // CAM lookup by sender: core 3 can take core 1's message first.
        assert_eq!(n.recv(3, 1, 0, 20), Some(Value::Int(11)));
        assert_eq!(n.recv(3, 2, 0, 20), Some(Value::Int(22)));
    }

    #[test]
    fn send_queue_fills() {
        let mut n = net(2);
        for i in 0..16 {
            assert!(n.send(0, 1, 0, Payload::Data(Value::Int(i)), 0), "send {i}");
        }
        assert!(!n.send(0, 1, 0, Payload::Data(Value::Int(99)), 0));
    }

    #[test]
    fn spawn_messages_are_separate_from_data() {
        let mut n = net(2);
        n.send(0, 1, 0, Payload::Data(Value::Int(5)), 0);
        n.send(0, 1, 0, Payload::Spawn(BlockId(3)), 0);
        for t in 1..10 {
            n.tick(t);
        }
        assert_eq!(n.take_spawn(1, 20), Some((0, BlockId(3))));
        assert!(n.take_spawn(1, 20).is_none());
        assert_eq!(n.recv(1, 0, 0, 20), Some(Value::Int(5)));
    }

    #[test]
    fn spawns_from_distinct_senders_arrive_in_delivery_order() {
        let mut n = net(4);
        // Core 2's spawn is enqueued first; both are delivered the same
        // tick (core order), so core 2's delivery sequence is lower.
        n.send(2, 3, 0, Payload::Spawn(BlockId(7)), 0);
        n.send(1, 3, 0, Payload::Spawn(BlockId(5)), 0);
        for t in 1..10 {
            n.tick(t);
        }
        assert_eq!(n.take_spawn(3, 20), Some((1, BlockId(5))));
        assert_eq!(n.take_spawn(3, 20), Some((2, BlockId(7))));
    }

    #[test]
    fn direct_put_get_one_cycle_per_hop() {
        let mut n = net(4);
        assert_eq!(n.put(0, Dir::East, Value::Int(42), 5), Ok(true));
        // Not visible in the same cycle; visible one hop later.
        assert!(!n.can_get(1, Dir::West, 5));
        assert!(n.can_get(1, Dir::West, 6));
        assert_eq!(n.get(1, Dir::West, 6), Some(Value::Int(42)));
        assert!(!n.can_get(1, Dir::West, 7)); // consumed
    }

    #[test]
    fn put_stalls_on_occupied_latch() {
        let mut n = net(4);
        assert_eq!(n.put(0, Dir::East, Value::Int(1), 0), Ok(true));
        assert_eq!(n.put(0, Dir::East, Value::Int(2), 1), Ok(false));
        n.get(1, Dir::West, 2);
        assert_eq!(n.put(0, Dir::East, Value::Int(2), 2), Ok(true));
    }

    #[test]
    fn put_off_mesh_is_an_error() {
        let mut n = net(2);
        assert!(n.put(0, Dir::West, Value::Int(1), 0).is_err());
        assert!(n.put(1, Dir::South, Value::Int(1), 0).is_err());
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let mut n = net(4);
        assert!(n.bcast(2, Value::Pred(true), 10));
        for c in [0usize, 1, 3] {
            assert!(!n.can_getb(c, 10));
            assert!(n.can_getb(c, 11));
        }
        assert!(!n.can_getb(2, 11));
        assert_eq!(n.getb(0, 11), Some(Value::Pred(true)));
        // Occupied until everyone consumed.
        assert!(!n.bcast(2, Value::Pred(false), 12));
        n.getb(1, 12);
        n.getb(3, 12);
        assert!(n.bcast(2, Value::Pred(false), 13));
    }

    #[test]
    fn link_contention_delays_second_message() {
        let mut n = net(2);
        n.send(0, 1, 0, Payload::Data(Value::Int(1)), 0);
        n.send(0, 1, 0, Payload::Data(Value::Int(2)), 0);
        n.tick(1);
        n.tick(2);
        // First available at 3; second injected a cycle later at 4.
        assert!(n.can_recv(1, 0, 0, 3));
        n.recv(1, 0, 0, 3);
        assert!(!n.can_recv(1, 0, 0, 3));
        assert!(n.can_recv(1, 0, 0, 4));
    }

    #[test]
    fn dropped_flit_retries_after_backoff_and_delivers() {
        let plan = FaultPlan::seeded(0, 0.0).with_event(0, FaultKind::Drop);
        let mut n = faulty_net(2, plan);
        assert!(n.send(0, 1, 7, Payload::Data(Value::Int(42)), 0));
        // First injection attempt (cycle 1) drops; backoff base is 8, so
        // the head reinjects at cycle 9 and is available at 9 + 1 hop
        // + 1 insertion cycle.
        n.tick(1);
        assert_eq!(n.next_event(1), Some(9));
        for t in 2..=9 {
            n.tick(t);
        }
        assert!(!n.can_recv(1, 0, 7, 10));
        assert!(n.can_recv(1, 0, 7, 11));
        assert_eq!(n.recv(1, 0, 7, 11), Some(Value::Int(42)));
        let drop = n.fault_stats()[FaultSite::NetDrop.index()].1;
        assert_eq!((drop.injected, drop.retried, drop.recovered), (1, 1, 1));
        assert!(n.take_fault_failure().is_none());
    }

    #[test]
    fn delayed_flit_arrives_late_but_intact() {
        let plan = FaultPlan::seeded(0, 0.0).with_event(0, FaultKind::Delay(5));
        let mut n = faulty_net(2, plan);
        assert!(n.send(0, 1, 0, Payload::Data(Value::Int(9)), 10));
        n.tick(11);
        // Fault-free availability is 13; the injected delay adds 5.
        assert!(!n.can_recv(1, 0, 0, 17));
        assert!(n.can_recv(1, 0, 0, 18));
        assert_eq!(n.recv(1, 0, 0, 18), Some(Value::Int(9)));
        let delay = n.fault_stats()[FaultSite::NetDelay.index()].1;
        assert_eq!((delay.injected, delay.recovered), (1, 1));
    }

    #[test]
    fn duplicated_flit_is_deduped_at_the_receiver() {
        let plan = FaultPlan::seeded(0, 0.0).with_event(0, FaultKind::Duplicate);
        let mut n = faulty_net(2, plan);
        assert!(n.send(0, 1, 0, Payload::Data(Value::Int(1)), 0));
        assert!(n.send(0, 1, 0, Payload::Data(Value::Int(2)), 0));
        for t in 1..10 {
            n.tick(t);
        }
        // The receiver sees each value exactly once, in order.
        assert_eq!(n.recv(1, 0, 0, 20), Some(Value::Int(1)));
        assert_eq!(n.recv(1, 0, 0, 20), Some(Value::Int(2)));
        assert_eq!(n.recv(1, 0, 0, 20), None);
        let dup = n.fault_stats()[FaultSite::NetDuplicate.index()].1;
        assert_eq!((dup.injected, dup.recovered), (1, 1));
        assert!(n.quiescent(0) && n.quiescent(1));
    }

    #[test]
    fn drop_budget_exhaustion_fails_closed() {
        // Rate 1.0 on the drop site alone: every injection attempt drops,
        // so the default budget of 8 retries must run out.
        let mut n = faulty_net(2, FaultPlan::seeded(1, 1.0).only(FaultSite::NetDrop));
        assert!(n.send(0, 1, 3, Payload::Data(Value::Int(5)), 0));
        for t in 1..2100 {
            n.tick(t);
        }
        let report = n.take_fault_failure().expect("budget must exhaust");
        assert_eq!(report.site, FaultSite::NetDrop);
        assert!(report.attempts > report.budget);
        assert!(report.detail.contains("core 0 -> core 1"));
        let drop = n.fault_stats()[FaultSite::NetDrop.index()].1;
        assert_eq!(drop.gave_up, 1);
        // The parked head never delivers and never wakes fast-forward.
        assert!(!n.can_recv(1, 0, 3, 10_000));
        assert_eq!(n.next_event(2100), None);
    }

    #[test]
    fn quiescent_sees_queues_latches_and_broadcasts() {
        let mut n = net(4);
        assert!((0..4).all(|c| n.quiescent(c)));
        // A queued (not yet delivered) message makes the sender busy.
        n.send(0, 1, 0, Payload::Data(Value::Int(1)), 0);
        assert!(!n.quiescent(0));
        n.tick(1);
        // Delivered but unconsumed: the receiver is busy, sender is clear.
        assert!(n.quiescent(0));
        assert!(!n.quiescent(1));
        n.recv(1, 0, 0, 10);
        assert!(n.quiescent(1));
        // An occupied direct latch belongs to the receiving core.
        n.put(0, Dir::East, Value::Int(9), 10).unwrap();
        assert!(!n.quiescent(1));
        assert!(n.quiescent(0));
        n.get(1, Dir::West, 11);
        assert!(n.quiescent(1));
        // A pending broadcast marks every peer busy until consumed.
        assert!(n.bcast(2, Value::Pred(true), 12));
        assert!(n.quiescent(2));
        assert!(!n.quiescent(0) && !n.quiescent(1) && !n.quiescent(3));
        for c in [0, 1, 3] {
            n.getb(c, 13);
        }
        assert!((0..4).all(|c| n.quiescent(c)));
    }
}
