//! Observability: Chrome-trace export and interval time-series probes.
//!
//! Two complementary lenses, both zero-overhead when off:
//!
//! * [`ChromeTracer`] — a [`Tracer`] that renders the machine's span
//!   events (stall phases, planner regions, TM transactions, bus
//!   occupancy, mode residency, SEND→RECV edges) as Chrome trace-event
//!   JSON, loadable in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`. One timeline track per core, plus TM tracks per
//!   core and machine-wide region/mode/bus tracks.
//! * [`ProbeSeries`] — an interval sampler (period set by
//!   [`crate::MachineConfig::probe_period`]) recording per-core
//!   occupancy counters, operand-network queue depths, TM read/write-set
//!   sizes, and bus utilization every `period` cycles. The series is
//!   bit-identical with fast-forward on or off: `Machine::fast_forward`
//!   splits skipped spans at period boundaries and bulk-fills before
//!   each sample (DESIGN.md §8).
//!
//! Nothing here parses JSON; both renderers emit it with plain string
//! building, mirroring `voltron-core`'s report writer.

use crate::stats::StallReason;
use crate::trace::{TraceEvent, Tracer};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt::Write as _;
use voltron_ir::ExecMode;

/// Virtual thread id of the planner-region track.
const TID_REGION: u64 = 90;
/// Virtual thread id of the execution-mode track.
const TID_MODE: u64 = 91;
/// Virtual thread id of the bus-occupancy track.
const TID_BUS: u64 = 92;
/// Virtual thread id of the fault-injection track.
const TID_FAULT: u64 = 93;
/// Base virtual thread id of the per-core TM tracks.
const TID_TM_BASE: u64 = 100;

/// A [`Tracer`] rendering machine events as Chrome trace-event JSON.
///
/// Spans arrive as begin/end pairs; any still open when the run ends are
/// closed at the last observed cycle by [`ChromeTracer::render`].
/// Instruction issues are ignored (a per-instruction timeline would dwarf
/// everything else); the structural timeline is the point.
#[derive(Debug, Default)]
pub struct ChromeTracer {
    /// Rendered event objects, in arrival order.
    events: Vec<String>,
    /// Tids that already got a `thread_name` metadata record.
    named: BTreeSet<u64>,
    /// Open stall span per core.
    open_stall: BTreeMap<usize, (u64, StallReason)>,
    /// Open region span.
    open_region: Option<(u64, u32)>,
    /// Open transaction span per core.
    open_txn: BTreeMap<usize, (u64, u32)>,
    /// Start cycle of the current mode-residency span, if a switch was
    /// seen (the machine starts decoupled; residency before the first
    /// switch is synthesized in `render`).
    open_mode: Option<(u64, ExecMode)>,
    /// Pending SEND flow ids per `(from, to, tag)`, FIFO.
    pending_flows: HashMap<(usize, usize, u32), VecDeque<u64>>,
    /// Next flow id.
    next_flow: u64,
    /// Largest cycle seen in any event.
    max_ts: u64,
}

impl ChromeTracer {
    /// A fresh tracer.
    pub fn new() -> ChromeTracer {
        ChromeTracer::default()
    }

    /// Number of events captured so far (metadata records included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn see(&mut self, ts: u64) {
        self.max_ts = self.max_ts.max(ts);
    }

    /// Emit the `thread_name` metadata record for `tid` once.
    fn name_tid(&mut self, tid: u64) {
        if !self.named.insert(tid) {
            return;
        }
        let name = match tid {
            TID_REGION => "regions".to_string(),
            TID_MODE => "mode".to_string(),
            TID_BUS => "bus".to_string(),
            TID_FAULT => "faults".to_string(),
            t if t >= TID_TM_BASE => format!("tm {}", t - TID_TM_BASE),
            t => format!("core {t}"),
        };
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
        // Sort core tracks first, then TM, then the machine-wide tracks.
        let rank = match tid {
            t if t < TID_REGION => t,
            t if t >= TID_TM_BASE => 1000 + t,
            t => 2000 + t,
        };
        self.events.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"sort_index\":{rank}}}}}"
        ));
    }

    fn begin(&mut self, tid: u64, ts: u64, cat: &str, name: &str) {
        self.name_tid(tid);
        self.see(ts);
        self.events.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{ts},\
             \"pid\":1,\"tid\":{tid}}}"
        ));
    }

    fn end(&mut self, tid: u64, ts: u64) {
        self.see(ts);
        self.events.push(render_end(tid, ts));
    }

    fn instant(&mut self, tid: u64, ts: u64, cat: &str, name: &str) {
        self.name_tid(tid);
        self.see(ts);
        self.events.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts},\
             \"pid\":1,\"tid\":{tid},\"s\":\"t\"}}"
        ));
    }

    fn complete(&mut self, tid: u64, ts: u64, dur: u64, cat: &str, name: &str) {
        self.name_tid(tid);
        self.see(ts + dur);
        self.events.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
             \"dur\":{dur},\"pid\":1,\"tid\":{tid}}}"
        ));
    }

    fn flow(&mut self, tid: u64, ts: u64, id: u64, phase: char) {
        self.see(ts);
        let bind = if phase == 'f' { ",\"bp\":\"e\"" } else { "" };
        self.events.push(format!(
            "{{\"name\":\"msg\",\"cat\":\"net\",\"ph\":\"{phase}\",\"id\":{id},\
             \"ts\":{ts},\"pid\":1,\"tid\":{tid}{bind}}}"
        ));
    }
}

fn render_end(tid: u64, ts: u64) -> String {
    format!("{{\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}")
}

fn mode_label(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Coupled => "coupled",
        ExecMode::Decoupled => "decoupled",
    }
}

fn region_name(region: u32) -> String {
    if region == crate::mcode::REGION_OUTSIDE {
        "outside".to_string()
    } else {
        format!("region {region}")
    }
}

impl Tracer for ChromeTracer {
    fn event(&mut self, e: TraceEvent<'_>) {
        match e {
            // Per-instruction issues would dwarf the structural timeline.
            TraceEvent::Issue { .. } => {}
            TraceEvent::StallBegin {
                cycle,
                core,
                reason,
            } => {
                self.open_stall.insert(core, (cycle, reason));
                self.begin(core as u64, cycle, "stall", &reason.to_string());
            }
            TraceEvent::StallEnd { cycle, core } => {
                if self.open_stall.remove(&core).is_some() {
                    self.end(core as u64, cycle);
                }
            }
            TraceEvent::RegionEnter { cycle, region } => {
                self.open_region = Some((cycle, region));
                self.begin(TID_REGION, cycle, "region", &region_name(region));
            }
            TraceEvent::RegionExit { cycle, .. } => {
                if self.open_region.take().is_some() {
                    self.end(TID_REGION, cycle);
                }
            }
            TraceEvent::TmBegin { cycle, core, order } => {
                self.open_txn.insert(core, (cycle, order));
                self.begin(
                    TID_TM_BASE + core as u64,
                    cycle,
                    "tm",
                    &format!("txn #{order}"),
                );
            }
            TraceEvent::TmCommit { cycle, core, lines } => {
                if self.open_txn.remove(&core).is_some() {
                    self.end(TID_TM_BASE + core as u64, cycle);
                }
                self.instant(
                    TID_TM_BASE + core as u64,
                    cycle,
                    "tm",
                    &format!("commit ({lines} lines)"),
                );
            }
            TraceEvent::TmAbort { cycle, core } => {
                if self.open_txn.remove(&core).is_some() {
                    self.end(TID_TM_BASE + core as u64, cycle);
                }
                self.instant(TID_TM_BASE + core as u64, cycle, "tm", "abort");
            }
            TraceEvent::BarrierWait { cycle, core, mode } => {
                self.instant(
                    core as u64,
                    cycle,
                    "mode",
                    &format!("at barrier (-> {})", mode_label(mode)),
                );
            }
            TraceEvent::ModeSwitch { cycle, mode } => {
                // Close the previous residency span; before the first
                // switch the machine was decoupled since cycle 0.
                let (start, prev) = self.open_mode.take().unwrap_or((0, ExecMode::Decoupled));
                self.complete(TID_MODE, start, cycle - start, "mode", mode_label(prev));
                self.open_mode = Some((cycle, mode));
            }
            TraceEvent::Bus {
                start,
                finish,
                core,
                kind,
            } => {
                self.complete(
                    TID_BUS,
                    start,
                    finish - start,
                    "bus",
                    &format!("{kind} (core {core})"),
                );
            }
            TraceEvent::MsgSend {
                cycle,
                from,
                to,
                tag,
            } => {
                let id = self.next_flow;
                self.next_flow += 1;
                self.pending_flows
                    .entry((from, to, tag))
                    .or_default()
                    .push_back(id);
                self.instant(
                    from as u64,
                    cycle,
                    "net",
                    &format!("send tag {tag} -> {to}"),
                );
                self.flow(from as u64, cycle, id, 's');
            }
            TraceEvent::MsgRecv {
                cycle,
                core,
                from,
                tag,
            } => {
                self.instant(
                    core as u64,
                    cycle,
                    "net",
                    &format!("recv tag {tag} <- {from}"),
                );
                if let Some(id) = self
                    .pending_flows
                    .get_mut(&(from, core, tag))
                    .and_then(VecDeque::pop_front)
                {
                    self.flow(core as u64, cycle, id, 'f');
                }
            }
            TraceEvent::ThreadStart { cycle, core, block } => {
                self.instant(core as u64, cycle, "thread", &format!("spawn bb{block}"));
            }
            TraceEvent::Halt { cycle, core } => {
                self.instant(core as u64, cycle, "thread", "halt");
            }
            TraceEvent::Fault {
                cycle,
                core,
                site,
                action,
            } => {
                self.instant(
                    TID_FAULT,
                    cycle,
                    "fault",
                    &format!("{} {action} (core {core})", site.label()),
                );
            }
        }
    }

    /// Render `{"traceEvents":[...]}`, closing any spans still open at
    /// the last observed cycle.
    fn render(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, e: &str| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(e);
        };
        for e in &self.events {
            push(&mut out, e);
        }
        let close = self.max_ts;
        for &core in self.open_stall.keys() {
            push(&mut out, &render_end(core as u64, close));
        }
        if self.open_region.is_some() {
            push(&mut out, &render_end(TID_REGION, close));
        }
        for &core in self.open_txn.keys() {
            push(&mut out, &render_end(TID_TM_BASE + core as u64, close));
        }
        if let Some((start, mode)) = self.open_mode {
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"{}\",\"cat\":\"mode\",\"ph\":\"X\",\"ts\":{start},\
                     \"dur\":{},\"pid\":1,\"tid\":{TID_MODE}}}",
                    mode_label(mode),
                    close - start
                ),
            );
        }
        out.push_str("]}");
        out
    }
}

/// One interval sample: the machine's occupancy counters and queue
/// gauges at a period boundary.
///
/// Counter fields (`issued`, `idle`, `stalls`, `bus_busy`) are
/// *cumulative* since cycle 0 — interval rates are first differences, and
/// cumulative counters make the fast-forward bulk-fill equivalence exact
/// by construction. Gauge fields (`send_queue`, `recv_buffered`,
/// `tm_read_set`, `tm_write_set`) are instantaneous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSample {
    /// The period boundary this sample was taken at (cycles elapsed).
    pub cycle: u64,
    /// Per-core cycles that issued (useful ops and NOPs), cumulative.
    pub issued: Vec<u64>,
    /// Per-core idle cycles, cumulative.
    pub idle: Vec<u64>,
    /// Per-core stall cycles by [`StallReason::index`], cumulative.
    pub stalls: Vec<[u64; 9]>,
    /// Per-core operand-network send-queue occupancy.
    pub send_queue: Vec<usize>,
    /// Per-core receive-CAM occupancy (all senders and tags).
    pub recv_buffered: Vec<usize>,
    /// Per-core live-transaction read-set lines (0 when no txn).
    pub tm_read_set: Vec<usize>,
    /// Per-core live-transaction write-set lines (0 when no txn).
    pub tm_write_set: Vec<usize>,
    /// Bus-busy cycles, cumulative.
    pub bus_busy: u64,
}

/// The interval time series recorded by a probed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSeries {
    /// Sampling period in cycles.
    pub period: u64,
    /// Core count (length of every per-core vector).
    pub cores: usize,
    /// Samples, one per period boundary reached.
    pub samples: Vec<ProbeSample>,
}

/// Aggregates of a [`ProbeSeries`] for `BENCH_*.json` summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSummary {
    /// Sampling period in cycles.
    pub period: u64,
    /// Samples recorded.
    pub samples: usize,
    /// Peak sampled send-queue occupancy (any core).
    pub peak_send_queue: usize,
    /// Peak sampled receive-CAM occupancy (any core).
    pub peak_recv_buffered: usize,
    /// Peak sampled TM write-set size (any core).
    pub peak_tm_write_set: usize,
    /// Bus-busy cycles over elapsed cycles at the last sample. Busy
    /// time is booked at grant for the whole transfer, so a transfer
    /// straddling the final sample can push this slightly above 1.0.
    pub bus_utilization: f64,
    /// Intervals whose dominant occupancy was each stall reason
    /// (summed across cores; by [`StallReason::index`]).
    pub stall_phase_hist: [u64; 9],
    /// Intervals in which no core stalled at all.
    pub quiet_intervals: u64,
}

impl ProbeSeries {
    /// An empty series for a `cores`-core machine sampling every
    /// `period` cycles.
    pub fn new(period: u64, cores: usize) -> ProbeSeries {
        ProbeSeries {
            period,
            cores,
            samples: Vec::new(),
        }
    }

    /// Summarize the series (zeroes when no sample was taken).
    pub fn summary(&self) -> ProbeSummary {
        let mut s = ProbeSummary {
            period: self.period,
            samples: self.samples.len(),
            peak_send_queue: 0,
            peak_recv_buffered: 0,
            peak_tm_write_set: 0,
            bus_utilization: 0.0,
            stall_phase_hist: [0; 9],
            quiet_intervals: 0,
        };
        let zero = vec![[0u64; 9]; self.cores];
        let mut prev: &[[u64; 9]] = &zero;
        for sample in &self.samples {
            s.peak_send_queue = s
                .peak_send_queue
                .max(sample.send_queue.iter().copied().max().unwrap_or(0));
            s.peak_recv_buffered = s
                .peak_recv_buffered
                .max(sample.recv_buffered.iter().copied().max().unwrap_or(0));
            s.peak_tm_write_set = s
                .peak_tm_write_set
                .max(sample.tm_write_set.iter().copied().max().unwrap_or(0));
            // Dominant stall reason of the interval ending here.
            let mut delta = [0u64; 9];
            for (cur, old) in sample.stalls.iter().zip(prev) {
                for r in 0..9 {
                    delta[r] += cur[r] - old[r];
                }
            }
            match StallReason::ALL
                .iter()
                .map(|&r| (r, delta[r.index()]))
                .max_by_key(|&(_, n)| n)
                .filter(|&(_, n)| n > 0)
            {
                Some((r, _)) => s.stall_phase_hist[r.index()] += 1,
                None => s.quiet_intervals += 1,
            }
            prev = &sample.stalls;
        }
        if let Some(last) = self.samples.last() {
            if last.cycle > 0 {
                s.bus_utilization = last.bus_busy as f64 / last.cycle as f64;
            }
        }
        s
    }

    /// Render the series' gauges as Chrome trace-event *counter* records
    /// (`"ph":"C"`), one per sample: machine-wide send-queue depth,
    /// receive-CAM occupancy, live transactions (cores with a non-empty
    /// read or write set), and interval bus utilization in percent
    /// (first difference of the cumulative busy counter over the
    /// period). Perfetto draws each as a stacked counter track above the
    /// span timeline. Returns the comma-separated records without
    /// surrounding brackets so [`trace_with_counters`] can splice them
    /// into a rendered trace; empty when the series has no samples.
    pub fn counter_events(&self) -> String {
        let mut out = String::new();
        let mut prev_busy = 0u64;
        let mut prev_cycle = 0u64;
        for sample in &self.samples {
            let ts = sample.cycle;
            let send: usize = sample.send_queue.iter().sum();
            let recv: usize = sample.recv_buffered.iter().sum();
            let live = sample
                .tm_read_set
                .iter()
                .zip(&sample.tm_write_set)
                .filter(|&(r, w)| *r > 0 || *w > 0)
                .count();
            let span = ts.saturating_sub(prev_cycle).max(1);
            let busy = sample.bus_busy.saturating_sub(prev_busy);
            let util = 100.0 * busy as f64 / span as f64;
            prev_busy = sample.bus_busy;
            prev_cycle = ts;
            if !out.is_empty() {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"send queue\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\
                 \"args\":{{\"depth\":{send}}}}},\
                 {{\"name\":\"recv buffered\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\
                 \"args\":{{\"entries\":{recv}}}}},\
                 {{\"name\":\"live txns\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\
                 \"args\":{{\"count\":{live}}}}},\
                 {{\"name\":\"bus util %\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\
                 \"args\":{{\"percent\":{util:.2}}}}}"
            );
        }
        out
    }

    /// Render the series as JSON (one object per sample, columnar
    /// per-core arrays), for `--probes-out`.
    pub fn render_json(&self) -> String {
        fn ints<T: std::fmt::Display>(out: &mut String, vals: &[T]) {
            out.push('[');
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"period\":{},\"cores\":{},\"samples\":[",
            self.period, self.cores
        );
        for (i, sample) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"cycle\":{},\"issued\":", sample.cycle);
            ints(&mut out, &sample.issued);
            out.push_str(",\"idle\":");
            ints(&mut out, &sample.idle);
            out.push_str(",\"stalls\":[");
            for (c, row) in sample.stalls.iter().enumerate() {
                if c > 0 {
                    out.push(',');
                }
                ints(&mut out, row);
            }
            out.push_str("],\"send_queue\":");
            ints(&mut out, &sample.send_queue);
            out.push_str(",\"recv_buffered\":");
            ints(&mut out, &sample.recv_buffered);
            out.push_str(",\"tm_read_set\":");
            ints(&mut out, &sample.tm_read_set);
            out.push_str(",\"tm_write_set\":");
            ints(&mut out, &sample.tm_write_set);
            let _ = write!(out, ",\"bus_busy\":{}}}", sample.bus_busy);
        }
        out.push_str("]}");
        out
    }
}

/// Splice a probe series' counter tracks ([`ProbeSeries::counter_events`])
/// into a rendered Chrome trace (`{"traceEvents":[...]}`): the span
/// timeline and the gauges land in one Perfetto document. Returns the
/// trace unchanged when the series has no samples or the document does
/// not end in a trace-event array.
pub fn trace_with_counters(trace: &str, series: &ProbeSeries) -> String {
    let counters = series.counter_events();
    if counters.is_empty() {
        return trace.to_string();
    }
    let Some(body) = trace.strip_suffix("]}") else {
        return trace.to_string();
    };
    let sep = if body.ends_with('[') { "" } else { "," };
    format!("{body}{sep}{counters}]}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced(s: &str) -> bool {
        let (mut braces, mut brackets) = (0i64, 0i64);
        let mut in_str = false;
        let mut prev_escape = false;
        for c in s.chars() {
            if in_str {
                match c {
                    '\\' if !prev_escape => prev_escape = true,
                    '"' if !prev_escape => in_str = false,
                    _ => prev_escape = false,
                }
                if c != '\\' {
                    prev_escape = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => braces += 1,
                '}' => braces -= 1,
                '[' => brackets += 1,
                ']' => brackets -= 1,
                _ => {}
            }
        }
        braces == 0 && brackets == 0 && !in_str
    }

    #[test]
    fn chrome_tracer_closes_open_spans_and_pairs_flows() {
        let mut t = ChromeTracer::new();
        t.event(TraceEvent::StallBegin {
            cycle: 3,
            core: 0,
            reason: StallReason::RecvData,
        });
        t.event(TraceEvent::MsgSend {
            cycle: 5,
            from: 1,
            to: 0,
            tag: 7,
        });
        t.event(TraceEvent::MsgRecv {
            cycle: 9,
            core: 0,
            from: 1,
            tag: 7,
        });
        t.event(TraceEvent::StallEnd { cycle: 9, core: 0 });
        t.event(TraceEvent::TmBegin {
            cycle: 10,
            core: 1,
            order: 2,
        });
        let json = t.render();
        assert!(balanced(&json), "balanced JSON: {json}");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"recv-data\""));
        assert!(json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""));
        // The open txn span is closed at the last seen cycle.
        assert!(json.contains("\"ph\":\"E\",\"ts\":10,\"pid\":1,\"tid\":101"));
    }

    #[test]
    fn mode_residency_spans_cover_the_run() {
        let mut t = ChromeTracer::new();
        t.event(TraceEvent::ModeSwitch {
            cycle: 100,
            mode: ExecMode::Coupled,
        });
        t.event(TraceEvent::ModeSwitch {
            cycle: 250,
            mode: ExecMode::Decoupled,
        });
        t.event(TraceEvent::Halt {
            cycle: 300,
            core: 0,
        });
        let json = t.render();
        // decoupled 0..100, coupled 100..250, decoupled 250..close.
        assert!(json
            .contains("\"name\":\"decoupled\",\"cat\":\"mode\",\"ph\":\"X\",\"ts\":0,\"dur\":100"));
        assert!(json
            .contains("\"name\":\"coupled\",\"cat\":\"mode\",\"ph\":\"X\",\"ts\":100,\"dur\":150"));
        assert!(json.contains(
            "\"name\":\"decoupled\",\"cat\":\"mode\",\"ph\":\"X\",\"ts\":250,\"dur\":50"
        ));
    }

    #[test]
    fn probe_summary_histogram_and_peaks() {
        let mut series = ProbeSeries::new(10, 2);
        let base = ProbeSample {
            cycle: 10,
            issued: vec![5, 5],
            idle: vec![0, 0],
            stalls: vec![[0; 9]; 2],
            send_queue: vec![0, 3],
            recv_buffered: vec![1, 0],
            tm_read_set: vec![0, 0],
            tm_write_set: vec![0, 2],
            bus_busy: 4,
        };
        let mut second = base.clone();
        second.cycle = 20;
        second.stalls[0][StallReason::RecvData.index()] = 6;
        second.stalls[1][StallReason::Sync.index()] = 2;
        second.send_queue = vec![0, 1];
        second.bus_busy = 10;
        series.samples.push(base);
        series.samples.push(second);
        let s = series.summary();
        assert_eq!(s.samples, 2);
        assert_eq!(s.peak_send_queue, 3);
        assert_eq!(s.peak_recv_buffered, 1);
        assert_eq!(s.peak_tm_write_set, 2);
        assert_eq!(s.quiet_intervals, 1, "first interval had no stalls");
        assert_eq!(s.stall_phase_hist[StallReason::RecvData.index()], 1);
        assert!((s.bus_utilization - 0.5).abs() < 1e-12);
        assert!(balanced(&series.render_json()));
    }

    /// A hand-built sample for the directed summary-math tests below.
    fn sample(cycle: u64, cores: usize) -> ProbeSample {
        ProbeSample {
            cycle,
            issued: vec![0; cores],
            idle: vec![0; cores],
            stalls: vec![[0; 9]; cores],
            send_queue: vec![0; cores],
            recv_buffered: vec![0; cores],
            tm_read_set: vec![0; cores],
            tm_write_set: vec![0; cores],
            bus_busy: 0,
        }
    }

    #[test]
    fn summary_of_empty_series_is_all_zero() {
        let s = ProbeSeries::new(10, 4).summary();
        assert_eq!(s.samples, 0);
        assert_eq!(s.peak_send_queue, 0);
        assert_eq!(s.peak_recv_buffered, 0);
        assert_eq!(s.peak_tm_write_set, 0);
        assert_eq!(s.bus_utilization, 0.0);
        assert_eq!(s.quiet_intervals, 0);
        assert_eq!(s.stall_phase_hist, [0; 9]);
    }

    /// Peaks are maxima over *all* samples and *all* cores, not just the
    /// last sample or core 0.
    #[test]
    fn peaks_track_any_core_at_any_sample() {
        let mut series = ProbeSeries::new(10, 3);
        let mut a = sample(10, 3);
        a.send_queue = vec![1, 7, 0];
        let mut b = sample(20, 3);
        b.send_queue = vec![2, 0, 5];
        b.recv_buffered = vec![0, 0, 9];
        b.tm_write_set = vec![4, 0, 0];
        series.samples.push(a);
        series.samples.push(b);
        let s = series.summary();
        assert_eq!(s.peak_send_queue, 7, "peak was in the first sample");
        assert_eq!(s.peak_recv_buffered, 9);
        assert_eq!(s.peak_tm_write_set, 4);
    }

    /// Bus utilization is cumulative-busy over elapsed at the *last*
    /// sample — intermediate samples only matter through their deltas.
    #[test]
    fn bus_utilization_uses_the_last_sample() {
        let mut series = ProbeSeries::new(100, 1);
        let mut a = sample(100, 1);
        a.bus_busy = 90; // briefly saturated...
        let mut b = sample(400, 1);
        b.bus_busy = 100; // ...then nearly idle.
        series.samples.push(a);
        series.samples.push(b);
        let s = series.summary();
        assert!(
            (s.bus_utilization - 0.25).abs() < 1e-12,
            "{}",
            s.bus_utilization
        );
    }

    /// The phase histogram classifies each interval by its dominant
    /// stall *delta* (cumulative counters differenced), and an interval
    /// with no stall growth anywhere is quiet.
    #[test]
    fn stall_phase_histogram_differences_cumulative_counters() {
        let mut series = ProbeSeries::new(10, 2);
        let mut a = sample(10, 2);
        a.stalls[0][StallReason::DMiss.index()] = 8;
        let mut b = sample(20, 2);
        // Cumulative counts carry forward: no growth this interval.
        b.stalls[0][StallReason::DMiss.index()] = 8;
        let mut c = sample(30, 2);
        c.stalls[0][StallReason::DMiss.index()] = 9; // +1
        c.stalls[1][StallReason::Sync.index()] = 5; // +5 dominates
        series.samples.push(a);
        series.samples.push(b);
        series.samples.push(c);
        let s = series.summary();
        assert_eq!(s.stall_phase_hist[StallReason::DMiss.index()], 1);
        assert_eq!(s.stall_phase_hist[StallReason::Sync.index()], 1);
        assert_eq!(s.quiet_intervals, 1, "the flat interval is quiet");
    }

    #[test]
    fn counter_events_emit_gauges_and_interval_utilization() {
        let mut series = ProbeSeries::new(10, 2);
        let mut a = sample(10, 2);
        a.send_queue = vec![2, 1];
        a.recv_buffered = vec![0, 4];
        a.tm_read_set = vec![3, 0];
        a.tm_write_set = vec![0, 0];
        a.bus_busy = 5;
        let mut b = sample(20, 2);
        b.bus_busy = 5; // idle interval
        series.samples.push(a);
        series.samples.push(b);
        let ev = series.counter_events();
        assert!(ev.contains("\"name\":\"send queue\",\"ph\":\"C\",\"ts\":10"));
        assert!(ev.contains("\"args\":{\"depth\":3}"), "{ev}");
        assert!(ev.contains("\"args\":{\"entries\":4}"), "{ev}");
        // Core 0 has a live read set, so one transaction is live.
        assert!(ev.contains("\"args\":{\"count\":1}"), "{ev}");
        assert!(ev.contains("\"args\":{\"percent\":50.00}"), "{ev}");
        assert!(ev.contains("\"ts\":20") && ev.contains("\"percent\":0.00"));
        // Splicing keeps the document balanced and appends every record.
        let spliced = trace_with_counters("{\"traceEvents\":[]}", &series);
        assert!(balanced(&spliced), "{spliced}");
        assert!(spliced.contains("bus util %"));
        let untouched = trace_with_counters("{\"traceEvents\":[]}", &ProbeSeries::new(10, 1));
        assert_eq!(untouched, "{\"traceEvents\":[]}");
    }
}
