//! Execution tracing.
//!
//! A [`Tracer`] installed on a [`crate::Machine`] receives the
//! architecturally interesting events — instruction issues, thread
//! spawns, mode switches, transactional commits/aborts — as they happen.
//! This is the debugging lens for compiler work: a deadlock dump tells
//! you where the machine wedged; a trace tells you how it got there.
//!
//! Events borrow from the machine program (the block name and the issued
//! instruction) so emitting them costs nothing on the simulation hot
//! path; a tracer that wants to keep an event must render or copy what
//! it needs inside [`Tracer::event`].

use std::fmt::Write as _;
use voltron_ir::{ExecMode, Inst};

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent<'a> {
    /// A core issued an instruction.
    Issue {
        /// Cycle of issue.
        cycle: u64,
        /// Issuing core.
        core: usize,
        /// Machine block name.
        block: &'a str,
        /// The issued instruction.
        inst: &'a Inst,
    },
    /// An idle core picked up a spawned thread.
    ThreadStart {
        /// Cycle.
        cycle: u64,
        /// The core that woke.
        core: usize,
        /// Target block index in its image.
        block: usize,
    },
    /// The group switched execution mode.
    ModeSwitch {
        /// Cycle.
        cycle: u64,
        /// The new mode.
        mode: ExecMode,
    },
    /// A transaction committed.
    TmCommit {
        /// Cycle.
        cycle: u64,
        /// Committing core.
        core: usize,
        /// Lines broadcast.
        lines: usize,
    },
    /// A transaction was aborted (and will re-execute).
    TmAbort {
        /// Cycle.
        cycle: u64,
        /// Rolled-back core.
        core: usize,
    },
    /// A core halted.
    Halt {
        /// Cycle.
        cycle: u64,
        /// The core.
        core: usize,
    },
}

/// Receiver of trace events.
pub trait Tracer {
    /// Called for every event, in cycle order.
    fn event(&mut self, e: TraceEvent<'_>);

    /// Render whatever was captured (returned in
    /// [`crate::machine::RunOutcome::trace`] after a traced run).
    fn render(&self) -> String {
        String::new()
    }
}

/// A tracer that renders events as text lines, with a cap so hot loops
/// cannot balloon memory.
#[derive(Debug)]
pub struct TextTracer {
    lines: Vec<String>,
    /// Stop recording after this many events (issues included).
    pub limit: usize,
    /// Record instruction issues (very verbose) or only the structural
    /// events.
    pub issues: bool,
}

impl TextTracer {
    /// A tracer capturing up to `limit` events; `issues` selects whether
    /// per-instruction lines are included.
    pub fn new(limit: usize, issues: bool) -> TextTracer {
        TextTracer {
            lines: Vec::new(),
            limit,
            issues,
        }
    }

    /// The captured lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Render the whole trace.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for l in &self.lines {
            let _ = writeln!(s, "{l}");
        }
        s
    }
}

impl Tracer for TextTracer {
    fn render(&self) -> String {
        TextTracer::render(self)
    }

    fn event(&mut self, e: TraceEvent<'_>) {
        if self.lines.len() >= self.limit {
            return;
        }
        let line = match e {
            TraceEvent::Issue {
                cycle,
                core,
                block,
                inst,
            } => {
                if !self.issues {
                    return;
                }
                format!("[{cycle:>8}] core{core} <{block}> {inst}")
            }
            TraceEvent::ThreadStart { cycle, core, block } => {
                format!("[{cycle:>8}] core{core} SPAWNED at bb{block}")
            }
            TraceEvent::ModeSwitch { cycle, mode } => {
                format!("[{cycle:>8}] MODE -> {mode}")
            }
            TraceEvent::TmCommit { cycle, core, lines } => {
                format!("[{cycle:>8}] core{core} XCOMMIT ({lines} lines)")
            }
            TraceEvent::TmAbort { cycle, core } => {
                format!("[{cycle:>8}] core{core} ABORTED (replaying chunk)")
            }
            TraceEvent::Halt { cycle, core } => {
                format!("[{cycle:>8}] core{core} HALT")
            }
        };
        self.lines.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltron_ir::Opcode;

    #[test]
    fn text_tracer_respects_limit_and_issue_filter() {
        let nop = Inst::new(Opcode::Nop, vec![]);
        let mut t = TextTracer::new(2, false);
        t.event(TraceEvent::Issue {
            cycle: 1,
            core: 0,
            block: "b",
            inst: &nop,
        });
        assert!(t.lines().is_empty(), "issues filtered out");
        t.event(TraceEvent::ModeSwitch {
            cycle: 2,
            mode: ExecMode::Coupled,
        });
        t.event(TraceEvent::Halt { cycle: 3, core: 0 });
        t.event(TraceEvent::Halt { cycle: 4, core: 1 });
        assert_eq!(t.lines().len(), 2, "limit enforced");
        assert!(t.render().contains("MODE -> coupled"));
    }

    #[test]
    fn issue_lines_render_the_borrowed_instruction() {
        let nop = Inst::new(Opcode::Nop, vec![]);
        let mut t = TextTracer::new(8, true);
        t.event(TraceEvent::Issue {
            cycle: 7,
            core: 1,
            block: "entry",
            inst: &nop,
        });
        assert_eq!(t.lines().len(), 1);
        assert!(t.lines()[0].contains("<entry>"));
    }
}
