//! Execution tracing.
//!
//! A [`Tracer`] installed on a [`crate::Machine`] receives the
//! architecturally interesting events — instruction issues, thread
//! spawns, mode switches, transactional commits/aborts — as they happen.
//! This is the debugging lens for compiler work: a deadlock dump tells
//! you where the machine wedged; a trace tells you how it got there.
//!
//! Events borrow from the machine program (the block name and the issued
//! instruction) so emitting them costs nothing on the simulation hot
//! path; a tracer that wants to keep an event must render or copy what
//! it needs inside [`Tracer::event`].

use crate::fault::FaultSite;
use crate::stats::StallReason;
use std::fmt::Write as _;
use voltron_ir::{ExecMode, Inst};

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent<'a> {
    /// A core issued an instruction.
    Issue {
        /// Cycle of issue.
        cycle: u64,
        /// Issuing core.
        core: usize,
        /// Machine block name.
        block: &'a str,
        /// The issued instruction.
        inst: &'a Inst,
    },
    /// An idle core picked up a spawned thread.
    ThreadStart {
        /// Cycle.
        cycle: u64,
        /// The core that woke.
        core: usize,
        /// Target block index in its image.
        block: usize,
    },
    /// The group switched execution mode.
    ModeSwitch {
        /// Cycle.
        cycle: u64,
        /// The new mode.
        mode: ExecMode,
    },
    /// A transaction committed.
    TmCommit {
        /// Cycle.
        cycle: u64,
        /// Committing core.
        core: usize,
        /// Lines broadcast.
        lines: usize,
    },
    /// A transaction was aborted (and will re-execute).
    TmAbort {
        /// Cycle.
        cycle: u64,
        /// Rolled-back core.
        core: usize,
    },
    /// A core halted.
    Halt {
        /// Cycle.
        cycle: u64,
        /// The core.
        core: usize,
    },
    /// A core entered a stall phase (span start; closed by the matching
    /// [`TraceEvent::StallEnd`], or by end of run for still-open spans).
    /// Emitted only on transitions, so a 10 000-cycle receive wait is two
    /// events, and fast-forwarded spans need no events at all.
    StallBegin {
        /// First stalled cycle.
        cycle: u64,
        /// The stalled core.
        core: usize,
        /// Why — the same classification `CoreStats::stalls` accumulates.
        reason: StallReason,
    },
    /// A core left its stall phase (span end, exclusive).
    StallEnd {
        /// First non-stalled cycle.
        cycle: u64,
        /// The core.
        core: usize,
    },
    /// The master core entered a planner region (span start).
    /// `crate::REGION_OUTSIDE` marks inter-region glue.
    RegionEnter {
        /// First cycle attributed to the region.
        cycle: u64,
        /// Region id.
        region: u32,
    },
    /// The master core left a planner region (span end, exclusive).
    RegionExit {
        /// First cycle no longer attributed to the region.
        cycle: u64,
        /// Region id.
        region: u32,
    },
    /// A transaction began (span start; closed by
    /// [`TraceEvent::TmCommit`] or [`TraceEvent::TmAbort`]).
    TmBegin {
        /// Cycle.
        cycle: u64,
        /// The core.
        core: usize,
        /// Commit-order rank of the chunk.
        order: u32,
    },
    /// A core arrived at the mode-switch barrier; the barrier releases at
    /// the next [`TraceEvent::ModeSwitch`].
    BarrierWait {
        /// Arrival cycle.
        cycle: u64,
        /// The core.
        core: usize,
        /// The mode it is switching to.
        mode: ExecMode,
    },
    /// The bus was granted to one transaction — a complete span (the
    /// finish cycle is known at grant time).
    Bus {
        /// Grant cycle.
        start: u64,
        /// Release cycle (exclusive).
        finish: u64,
        /// Requesting core.
        core: usize,
        /// Transaction kind label ("read-shared", "tm-commit", ...).
        kind: &'static str,
    },
    /// A core enqueued an operand-network SEND (flow edge source).
    MsgSend {
        /// Cycle.
        cycle: u64,
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Stream tag.
        tag: u32,
    },
    /// A core's RECV consumed a message (flow edge sink). Edges pair with
    /// [`TraceEvent::MsgSend`] in FIFO order per `(from, to, tag)`.
    MsgRecv {
        /// Cycle.
        cycle: u64,
        /// Receiver.
        core: usize,
        /// Sender.
        from: usize,
        /// Stream tag.
        tag: u32,
    },
    /// The fault layer injected or recovered from a fault (see
    /// [`crate::fault`]). Emitted only when a plan is active, so
    /// fault-free traces are untouched.
    Fault {
        /// Cycle of the fault action.
        cycle: u64,
        /// The core the fault struck (sender/requester for
        /// network/interconnect sites).
        core: usize,
        /// Injection site.
        site: FaultSite,
        /// What happened ("dropped", "retried", "spurious abort", ...).
        action: &'static str,
    },
}

/// Receiver of trace events. `Send` so a machine carrying a tracer can
/// live in the serve daemon's cross-thread machine pool (both provided
/// tracers are plain data).
pub trait Tracer: Send {
    /// Called for every event, in cycle order.
    fn event(&mut self, e: TraceEvent<'_>);

    /// Render whatever was captured (returned in
    /// [`crate::machine::RunOutcome::trace`] after a traced run).
    fn render(&self) -> String {
        String::new()
    }
}

/// A tracer that renders events as text lines, with a cap so hot loops
/// cannot balloon memory.
#[derive(Debug)]
pub struct TextTracer {
    lines: Vec<String>,
    suppressed: u64,
    /// Stop recording after this many events (issues included).
    pub limit: usize,
    /// Record instruction issues and per-cycle span events (very verbose)
    /// or only the structural events.
    pub issues: bool,
}

impl TextTracer {
    /// A tracer capturing up to `limit` events; `issues` selects whether
    /// per-instruction lines are included.
    pub fn new(limit: usize, issues: bool) -> TextTracer {
        TextTracer {
            lines: Vec::new(),
            suppressed: 0,
            limit,
            issues,
        }
    }

    /// The captured lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// How many wanted events were dropped because `limit` was reached.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Render the whole trace.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for l in &self.lines {
            let _ = writeln!(s, "{l}");
        }
        if self.suppressed > 0 {
            let _ = writeln!(s, "... {} events suppressed", self.suppressed);
        }
        s
    }
}

impl Tracer for TextTracer {
    fn render(&self) -> String {
        TextTracer::render(self)
    }

    fn event(&mut self, e: TraceEvent<'_>) {
        // Fine-grained span/flow events ride the `issues` verbosity knob:
        // a default text trace stays structural.
        let wanted = match e {
            TraceEvent::Issue { .. }
            | TraceEvent::StallBegin { .. }
            | TraceEvent::StallEnd { .. }
            | TraceEvent::RegionEnter { .. }
            | TraceEvent::RegionExit { .. }
            | TraceEvent::Bus { .. }
            | TraceEvent::MsgSend { .. }
            | TraceEvent::MsgRecv { .. } => self.issues,
            _ => true,
        };
        if !wanted {
            return;
        }
        if self.lines.len() >= self.limit {
            self.suppressed += 1;
            return;
        }
        let line = match e {
            TraceEvent::Issue {
                cycle,
                core,
                block,
                inst,
            } => {
                format!("[{cycle:>8}] core{core} <{block}> {inst}")
            }
            TraceEvent::ThreadStart { cycle, core, block } => {
                format!("[{cycle:>8}] core{core} SPAWNED at bb{block}")
            }
            TraceEvent::ModeSwitch { cycle, mode } => {
                format!("[{cycle:>8}] MODE -> {mode}")
            }
            TraceEvent::TmCommit { cycle, core, lines } => {
                format!("[{cycle:>8}] core{core} XCOMMIT ({lines} lines)")
            }
            TraceEvent::TmAbort { cycle, core } => {
                format!("[{cycle:>8}] core{core} ABORTED (replaying chunk)")
            }
            TraceEvent::Halt { cycle, core } => {
                format!("[{cycle:>8}] core{core} HALT")
            }
            TraceEvent::StallBegin {
                cycle,
                core,
                reason,
            } => {
                format!("[{cycle:>8}] core{core} STALL {reason}")
            }
            TraceEvent::StallEnd { cycle, core } => {
                format!("[{cycle:>8}] core{core} UNSTALL")
            }
            TraceEvent::RegionEnter { cycle, region } => {
                format!("[{cycle:>8}] REGION -> r{region}")
            }
            TraceEvent::RegionExit { cycle, region } => {
                format!("[{cycle:>8}] REGION <- r{region}")
            }
            TraceEvent::TmBegin { cycle, core, order } => {
                format!("[{cycle:>8}] core{core} XBEGIN (order {order})")
            }
            TraceEvent::BarrierWait { cycle, core, mode } => {
                format!("[{cycle:>8}] core{core} AT BARRIER (-> {mode})")
            }
            TraceEvent::Bus {
                start,
                finish,
                core,
                kind,
            } => {
                format!("[{start:>8}] core{core} BUS {kind} until {finish}")
            }
            TraceEvent::MsgSend {
                cycle,
                from,
                to,
                tag,
            } => {
                format!("[{cycle:>8}] core{from} SEND -> core{to} tag {tag}")
            }
            TraceEvent::MsgRecv {
                cycle,
                core,
                from,
                tag,
            } => {
                format!("[{cycle:>8}] core{core} RECV <- core{from} tag {tag}")
            }
            TraceEvent::Fault {
                cycle,
                core,
                site,
                action,
            } => {
                format!("[{cycle:>8}] core{core} FAULT {} {action}", site.label())
            }
        };
        self.lines.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltron_ir::Opcode;

    #[test]
    fn text_tracer_respects_limit_and_issue_filter() {
        let nop = Inst::new(Opcode::Nop, vec![]);
        let mut t = TextTracer::new(2, false);
        t.event(TraceEvent::Issue {
            cycle: 1,
            core: 0,
            block: "b",
            inst: &nop,
        });
        assert!(t.lines().is_empty(), "issues filtered out");
        t.event(TraceEvent::ModeSwitch {
            cycle: 2,
            mode: ExecMode::Coupled,
        });
        t.event(TraceEvent::Halt { cycle: 3, core: 0 });
        t.event(TraceEvent::Halt { cycle: 4, core: 1 });
        assert_eq!(t.lines().len(), 2, "limit enforced");
        assert!(t.render().contains("MODE -> coupled"));
    }

    #[test]
    fn truncated_traces_report_the_suppressed_count() {
        let mut t = TextTracer::new(1, false);
        t.event(TraceEvent::Halt { cycle: 1, core: 0 });
        t.event(TraceEvent::Halt { cycle: 2, core: 1 });
        t.event(TraceEvent::Halt { cycle: 3, core: 2 });
        // Filtered events (issues off) are not "suppressed" — they were
        // never wanted.
        let nop = Inst::new(Opcode::Nop, vec![]);
        t.event(TraceEvent::Issue {
            cycle: 4,
            core: 0,
            block: "b",
            inst: &nop,
        });
        assert_eq!(t.lines().len(), 1);
        assert_eq!(t.suppressed(), 2);
        assert!(t.render().ends_with("... 2 events suppressed\n"));

        let mut clean = TextTracer::new(8, false);
        clean.event(TraceEvent::Halt { cycle: 1, core: 0 });
        assert!(
            !clean.render().contains("suppressed"),
            "no trailer when nothing was dropped"
        );
    }

    #[test]
    fn issue_lines_render_the_borrowed_instruction() {
        let nop = Inst::new(Opcode::Nop, vec![]);
        let mut t = TextTracer::new(8, true);
        t.event(TraceEvent::Issue {
            cycle: 7,
            core: 1,
            block: "entry",
            inst: &nop,
        });
        assert_eq!(t.lines().len(), 1);
        assert!(t.lines()[0].contains("<entry>"));
    }
}
