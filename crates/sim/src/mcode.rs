//! Lowered machine code: per-core instruction images.
//!
//! In Voltron each core fetches from its own L1 I-cache, so a compiled
//! program is one instruction image *per core*. Block operands inside an
//! image refer to that image's own blocks (the same *logical* block has a
//! different physical location on every core, exactly as in the paper's
//! distributed branch architecture).

use voltron_ir::{BlockId, DataSegment, Inst, Opcode};

/// Region identifier used for per-region cycle attribution (Fig. 3).
pub type RegionId = u32;

/// Region id assigned to bookkeeping code outside any planned region.
pub const REGION_OUTSIDE: RegionId = u32::MAX;

/// One machine basic block on one core.
#[derive(Debug, Clone, PartialEq)]
pub struct MBlock {
    /// Debug label (e.g. `"gsm.bb3.c0"`).
    pub name: String,
    /// The scheduled instructions, one issue slot per entry.
    pub insts: Vec<Inst>,
    /// The planner region this block belongs to.
    pub region: RegionId,
}

impl MBlock {
    /// An empty block with the given name and region.
    pub fn new(name: impl Into<String>, region: RegionId) -> MBlock {
        MBlock {
            name: name.into(),
            insts: Vec::new(),
            region,
        }
    }
}

/// The instruction image of one core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreImage {
    /// Blocks; `BlockId(i)` indexes `blocks[i]`. Block 0 is where the core
    /// starts (master) or where spawns land (workers choose their own
    /// entry blocks, block 0 of a worker is unused unless targeted).
    pub blocks: Vec<MBlock>,
}

impl CoreImage {
    /// Byte address of instruction `(block, index)` in this core's
    /// instruction space. Instructions are 4 bytes; cores' spaces are
    /// disjoint (`core` selects a 16 MiB window).
    pub fn inst_addr(&self, core: usize, block: BlockId, index: usize) -> u64 {
        // The simulator caches flattened offsets (`block_offsets`); this
        // linear walk is only for tests and diagnostics.
        let mut off = 0u64;
        for b in &self.blocks[..block.idx()] {
            off += b.insts.len() as u64;
        }
        Self::base(core) + (off + index as u64) * 4
    }

    /// Base address of a core's instruction window.
    pub fn base(core: usize) -> u64 {
        0x8000_0000 + (core as u64) * 0x0100_0000
    }

    /// Flattened instruction offsets per block (for fast address
    /// computation by the simulator).
    pub fn block_offsets(&self) -> Vec<u64> {
        let mut offs = Vec::with_capacity(self.blocks.len());
        let mut off = 0u64;
        for b in &self.blocks {
            offs.push(off);
            off += b.insts.len() as u64;
        }
        offs
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Maximum register index + 1 per class used in this image.
    pub fn reg_counts(&self) -> [u32; 4] {
        let mut counts = [0u32; 4];
        for b in &self.blocks {
            for i in &b.insts {
                if let Some(d) = i.dst {
                    let c = &mut counts[d.class.index()];
                    *c = (*c).max(d.index + 1);
                }
                for u in i.uses() {
                    let c = &mut counts[u.class.index()];
                    *c = (*c).max(u.index + 1);
                }
            }
        }
        counts
    }
}

/// A compiled program: one image per core plus the data segment.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProgram {
    /// Program name (reports).
    pub name: String,
    /// Per-core instruction images; `cores.len()` is the core count the
    /// program was compiled for.
    pub cores: Vec<CoreImage>,
    /// The data segment to materialize at boot.
    pub data: DataSegment,
}

impl MachineProgram {
    /// Verify structural sanity of the machine code: branch targets in
    /// range and block-terminating rules, per image.
    ///
    /// # Errors
    /// Returns a description of the first problem.
    pub fn check(&self) -> Result<(), String> {
        for (ci, img) in self.cores.iter().enumerate() {
            for (bi, b) in img.blocks.iter().enumerate() {
                for (ii, inst) in b.insts.iter().enumerate() {
                    if let Some(t) = inst.static_target() {
                        if t.idx() >= img.blocks.len() {
                            return Err(format!(
                                "core {ci} block {bi} ({}) inst {ii}: target {t} out of range",
                                b.name
                            ));
                        }
                    }
                    if inst.op == Opcode::Call || inst.op == Opcode::Ret {
                        return Err(format!(
                            "core {ci} block {bi}: {} survives lowering (calls must be inlined)",
                            inst.op
                        ));
                    }
                }
                // `SLEEP` also ends a block in machine code: the core
                // idles and only re-enters at a spawned block.
                let falls = match b.insts.last() {
                    Some(i) => !i.op.ends_block() && i.op != Opcode::Sleep,
                    None => true,
                };
                if falls && bi + 1 == img.blocks.len() {
                    return Err(format!(
                        "core {ci}: last block {bi} ({}) falls off the image",
                        b.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Pretty-print one core's image (debugging aid).
    pub fn dump_core(&self, core: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "core {core}:");
        for (bi, b) in self.cores[core].blocks.iter().enumerate() {
            let _ = writeln!(s, "  bb{bi} <{}> region {}:", b.name, b.region);
            for i in &b.insts {
                let _ = writeln!(s, "      {i}");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltron_ir::{Inst, Opcode, Operand};

    fn halt_image() -> CoreImage {
        let mut b = MBlock::new("entry", 0);
        b.insts.push(Inst::nop());
        b.insts.push(Inst::new(Opcode::Halt, vec![]));
        CoreImage { blocks: vec![b] }
    }

    #[test]
    fn addresses_are_per_core_disjoint() {
        let img = halt_image();
        let a0 = img.inst_addr(0, BlockId(0), 0);
        let a1 = img.inst_addr(1, BlockId(0), 0);
        assert_ne!(a0, a1);
        assert_eq!(img.inst_addr(0, BlockId(0), 1), a0 + 4);
    }

    #[test]
    fn check_catches_bad_target() {
        let mut img = halt_image();
        img.blocks[0].insts[0] = Inst::new(Opcode::Jump, vec![Operand::Block(BlockId(7))]);
        let p = MachineProgram {
            name: "t".into(),
            cores: vec![img],
            data: DataSegment::default(),
        };
        assert!(p.check().unwrap_err().contains("out of range"));
    }

    #[test]
    fn check_catches_fallthrough_off_image() {
        let mut img = halt_image();
        img.blocks[0].insts.pop();
        let p = MachineProgram {
            name: "t".into(),
            cores: vec![img],
            data: DataSegment::default(),
        };
        assert!(p.check().unwrap_err().contains("falls off"));
    }

    #[test]
    fn block_offsets_accumulate() {
        let mut img = halt_image();
        img.blocks.push(MBlock::new("b1", 0));
        img.blocks[1].insts.push(Inst::new(Opcode::Halt, vec![]));
        assert_eq!(img.block_offsets(), vec![0, 2]);
        assert_eq!(img.inst_count(), 3);
    }
}
