//! Tag-state caches.
//!
//! The simulator separates *function* from *timing*: data values live in
//! the eager functional [`voltron_ir::Memory`]; caches track only tags and
//! MOESI states to decide hit/miss timing and coherence traffic. This is
//! the standard timing-directed-functional simulator split and keeps the
//! golden-model equivalence trivially independent of cache bugs (which
//! then only mis-time, and are caught by the unit tests here).

/// MOESI line state (the paper's bus-based snooping protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Modified: dirty, exclusive.
    M,
    /// Owned: dirty, shared (supplies data on snoop).
    O,
    /// Exclusive: clean, exclusive.
    E,
    /// Shared: clean, shared.
    S,
}

impl LineState {
    /// True if this state must supply data / be written back.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::M | LineState::O)
    }

    /// True if a store can hit this line without a bus transaction.
    pub fn is_writable(self) -> bool {
        matches!(self, LineState::M | LineState::E)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    lru: u64,
}

/// A set-associative tag-state cache (LRU replacement).
#[derive(Debug, Clone)]
pub struct TagCache {
    sets: Vec<Vec<Line>>,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl TagCache {
    /// Build a cache of `size` bytes with `assoc` ways and `line`-byte
    /// lines.
    ///
    /// # Panics
    /// Panics unless the geometry is a power-of-two split.
    pub fn new(size: u64, assoc: usize, line: u64) -> TagCache {
        assert!(line.is_power_of_two() && size.is_power_of_two() && assoc > 0);
        let nsets = size / line / assoc as u64;
        assert!(nsets.is_power_of_two() && nsets > 0, "bad cache geometry");
        TagCache {
            sets: vec![Vec::new(); nsets as usize],
            assoc,
            line_shift: line.trailing_zeros(),
            set_mask: nsets - 1,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The line-aligned address containing `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    /// Look up `addr`; returns its state without changing LRU.
    pub fn peek(&self, addr: u64) -> Option<LineState> {
        let tag = addr >> self.line_shift;
        self.sets[self.set_of(addr)]
            .iter()
            .find(|l| l.tag == tag)
            .map(|l| l.state)
    }

    /// Look up `addr`, updating LRU and hit/miss counters.
    pub fn access(&mut self, addr: u64) -> Option<LineState> {
        self.tick += 1;
        let tick = self.tick;
        let tag = addr >> self.line_shift;
        let set = self.set_of(addr);
        match self.sets[set].iter_mut().find(|l| l.tag == tag) {
            Some(l) => {
                l.lru = tick;
                self.hits += 1;
                Some(l.state)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Change the state of a present line (no-op when absent).
    pub fn set_state(&mut self, addr: u64, state: LineState) {
        let tag = addr >> self.line_shift;
        let set = self.set_of(addr);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            l.state = state;
        }
    }

    /// Remove a line; returns its state if it was present.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let tag = addr >> self.line_shift;
        let set = self.set_of(addr);
        let ways = &mut self.sets[set];
        ways.iter()
            .position(|l| l.tag == tag)
            .map(|pos| ways.remove(pos).state)
    }

    /// The state the LRU victim would have if a fill happened now (for
    /// writeback-penalty prediction).
    pub fn victim_state(&self, addr: u64) -> Option<LineState> {
        let set = &self.sets[self.set_of(addr)];
        if set.len() < self.assoc {
            return None;
        }
        set.iter().min_by_key(|l| l.lru).map(|l| l.state)
    }

    /// Insert `addr` with `state`, evicting LRU if needed. Returns the
    /// evicted `(line_address, state)` when a line was displaced.
    pub fn fill(&mut self, addr: u64, state: LineState) -> Option<(u64, LineState)> {
        self.tick += 1;
        let tick = self.tick;
        let tag = addr >> self.line_shift;
        let set = self.set_of(addr);
        let shift = self.line_shift;
        let assoc = self.assoc;
        let ways = &mut self.sets[set];
        if let Some(l) = ways.iter_mut().find(|l| l.tag == tag) {
            l.state = state;
            l.lru = tick;
            return None;
        }
        let mut evicted = None;
        if ways.len() >= assoc {
            let pos = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("nonempty set");
            let v = ways.remove(pos);
            evicted = Some((v.tag << shift, v.state));
        }
        ways.push(Line {
            tag,
            state,
            lru: tick,
        });
        evicted
    }

    /// (hits, misses) counted by [`TagCache::access`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Empty the cache and zero its counters, keeping every set's
    /// allocated capacity. After `reset` the cache is indistinguishable
    /// from a freshly built one with the same geometry (the machine pool
    /// relies on this for reset-equals-fresh runs).
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Credit `n` repeat hits without touching LRU state. Used by the
    /// fast-forward engine to replay a blocked core's per-cycle refetch
    /// of its current instruction: the last real [`TagCache::access`]
    /// already made that line MRU, so `n` further touches would not
    /// change the eviction order, only this counter.
    pub fn credit_hits(&mut self, n: u64) {
        self.hits += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = TagCache::new(4096, 2, 32);
        assert_eq!(c.access(0x100), None);
        c.fill(0x100, LineState::S);
        assert_eq!(c.access(0x100), Some(LineState::S));
        assert_eq!(c.access(0x11f), Some(LineState::S)); // same line
        assert_eq!(c.access(0x120), None); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction_returns_victim() {
        let mut c = TagCache::new(64, 2, 32); // one set, two ways
        c.fill(0, LineState::M);
        c.fill(32, LineState::S);
        assert_eq!(c.victim_state(64), Some(LineState::M));
        let ev = c.fill(64, LineState::E);
        assert_eq!(ev, Some((0, LineState::M)));
        assert_eq!(c.peek(0), None);
        assert_eq!(c.peek(32), Some(LineState::S));
    }

    #[test]
    fn access_refreshes_lru() {
        let mut c = TagCache::new(64, 2, 32);
        c.fill(0, LineState::S);
        c.fill(32, LineState::S);
        c.access(0); // 0 becomes MRU; 32 is the victim now
        let ev = c.fill(64, LineState::S);
        assert_eq!(ev, Some((32, LineState::S)));
    }

    #[test]
    fn state_transitions() {
        let mut c = TagCache::new(4096, 2, 32);
        c.fill(0x40, LineState::E);
        c.set_state(0x40, LineState::M);
        assert_eq!(c.peek(0x40), Some(LineState::M));
        assert!(LineState::M.is_dirty() && LineState::M.is_writable());
        assert!(LineState::O.is_dirty() && !LineState::O.is_writable());
        assert_eq!(c.invalidate(0x40), Some(LineState::M));
        assert_eq!(c.invalidate(0x40), None);
    }

    #[test]
    fn line_of_masks_low_bits() {
        let c = TagCache::new(4096, 2, 32);
        assert_eq!(c.line_of(0x123), 0x120);
    }
}
