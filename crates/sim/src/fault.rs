//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes *what can go wrong* during a run: a seeded
//! random component (per-opportunity injection with probability
//! [`FaultPlan::rate`], restricted to [`FaultPlan::sites`]) plus an
//! optional directed [`FaultEvent`] list for reproducing a specific
//! scenario. The plan itself is pure data (it lives in
//! [`crate::config::MachineConfig`] and participates in its `PartialEq`);
//! the mutable runtime state — one seeded RNG stream per site plus the
//! pending directed events — lives in a [`SiteInjector`] owned by the
//! subsystem that hosts the site.
//!
//! # Determinism and fast-forward safety
//!
//! Every random draw is made at a *fault opportunity*: a flit injection
//! attempt, a bank grant, an instruction issue inside a transaction.
//! Opportunities are architectural events, and the event-driven
//! fast-forward engine (DESIGN.md §6) only ever skips spans in which no
//! architectural event occurs — so the sequence of draws is identical
//! with fast-forward on or off, and identical across reruns of the same
//! seed. Directed events are pinned to a cycle; their `at_cycle` joins
//! the fast-forward wake computation (via each injector's
//! [`SiteInjector::next_event`]) so the machine always ticks the cycle
//! at which one fires.
//!
//! # Recovery contract
//!
//! Injected faults are *transient*: the recovery paths (sender
//! timeout/retry with bounded exponential backoff, receive-side dedup,
//! bank-request reissue, TM re-execution) must absorb them without any
//! architectural effect beyond cycle counts. A run under any fault plan
//! either completes with final memory byte-identical to the fault-free
//! run, or fails closed with [`crate::machine::SimError::FaultBudget`]
//! forensics once a retry budget is exhausted. DESIGN.md §10 carries the
//! full argument.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An injection site: where in the machine a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Operand-network flit dropped in flight (sender must retry).
    NetDrop,
    /// Operand-network flit delayed in flight.
    NetDelay,
    /// Operand-network flit delivered twice (receiver must dedup).
    NetDuplicate,
    /// Interconnect bank loses a grant (request must be reissued).
    GrantLoss,
    /// Interconnect bank stalls transiently, inflating a grant latency.
    BankStall,
    /// Spurious abort of a live transaction, drawn at its commit attempt
    /// (TM re-executes the chunk). Irrevocable transactions — those that
    /// already issued a network operation — are never aborted: the
    /// in-flight message could not be replayed.
    TmAbort,
    /// Transient instruction-fetch hiccup on a core.
    Fetch,
}

impl FaultSite {
    /// Every site, in a fixed order (stats tables index by position).
    pub const ALL: [FaultSite; 7] = [
        FaultSite::NetDrop,
        FaultSite::NetDelay,
        FaultSite::NetDuplicate,
        FaultSite::GrantLoss,
        FaultSite::BankStall,
        FaultSite::TmAbort,
        FaultSite::Fetch,
    ];

    /// Dense index into per-site tables.
    pub fn index(self) -> usize {
        match self {
            FaultSite::NetDrop => 0,
            FaultSite::NetDelay => 1,
            FaultSite::NetDuplicate => 2,
            FaultSite::GrantLoss => 3,
            FaultSite::BankStall => 4,
            FaultSite::TmAbort => 5,
            FaultSite::Fetch => 6,
        }
    }

    /// Stable label for flags, stats, and trace tracks.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::NetDrop => "net-drop",
            FaultSite::NetDelay => "net-delay",
            FaultSite::NetDuplicate => "net-dup",
            FaultSite::GrantLoss => "grant-loss",
            FaultSite::BankStall => "bank-stall",
            FaultSite::TmAbort => "tm-abort",
            FaultSite::Fetch => "fetch",
        }
    }

    /// Parse a `site=` flag value (the inverse of [`FaultSite::label`]).
    pub fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|f| f.label() == s)
    }
}

/// What a fault does when it strikes. The delay/stall payloads carry the
/// magnitude in cycles; random injection draws them from small bounded
/// ranges so a transient can never masquerade as a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Drop the flit (network).
    Drop,
    /// Delay delivery by the given extra cycles (network).
    Delay(u64),
    /// Deliver the flit twice (network).
    Duplicate,
    /// Lose the grant; the request is reissued (interconnect bank).
    GrantLoss,
    /// Inflate the grant latency by the given cycles (interconnect bank).
    Stall(u64),
    /// Abort a live transaction spuriously (TM).
    SpuriousAbort,
    /// Block instruction fetch for the given cycles (core front end).
    FetchHiccup(u64),
}

impl FaultKind {
    /// The site a directed event of this kind belongs to.
    pub fn site(self) -> FaultSite {
        match self {
            FaultKind::Drop => FaultSite::NetDrop,
            FaultKind::Delay(_) => FaultSite::NetDelay,
            FaultKind::Duplicate => FaultSite::NetDuplicate,
            FaultKind::GrantLoss => FaultSite::GrantLoss,
            FaultKind::Stall(_) => FaultSite::BankStall,
            FaultKind::SpuriousAbort => FaultSite::TmAbort,
            FaultKind::FetchHiccup(_) => FaultSite::Fetch,
        }
    }
}

/// A directed fault: fire `kind` at the first opportunity at or after
/// `at_cycle`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Cycle at (or after) which the fault fires.
    pub at_cycle: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Largest random delivery delay / bank stall / fetch hiccup, cycles.
const MAX_RANDOM_MAGNITUDE: u64 = 16;

/// A deterministic fault plan: pure data, attached to
/// [`crate::config::MachineConfig::faults`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-site RNG streams.
    pub seed: u64,
    /// Per-opportunity injection probability (0.0 disables the random
    /// component; directed events still fire).
    pub rate: f64,
    /// Sites the random component may strike. Empty means *all* sites.
    pub sites: Vec<FaultSite>,
    /// Directed events, in any order (each injector sorts its own).
    pub directed: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with only the random component.
    pub fn seeded(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            sites: Vec::new(),
            directed: Vec::new(),
        }
    }

    /// True when the random component may strike `site`.
    pub fn site_enabled(&self, site: FaultSite) -> bool {
        self.sites.is_empty() || self.sites.contains(&site)
    }

    /// Restrict the random component to one site (builder style).
    pub fn only(mut self, site: FaultSite) -> FaultPlan {
        self.sites = vec![site];
        self
    }

    /// Add a directed event (builder style).
    pub fn with_event(mut self, at_cycle: u64, kind: FaultKind) -> FaultPlan {
        self.directed.push(FaultEvent { at_cycle, kind });
        self
    }

    /// Derive the plan a retry attempt should run under: same shape,
    /// seed salted by the attempt index, so a fault schedule that
    /// exhausted a budget does not deterministically recur.
    pub fn reseeded(&self, attempt: u64) -> FaultPlan {
        let mut p = self.clone();
        p.seed = self
            .seed
            .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        p
    }

    /// Parse a `--faults` flag value: comma-separated `key=value` pairs —
    /// `seed=N` (default 0), `rate=R` (default 0.0), and any number of
    /// `site=LABEL` restrictions (default: all sites).
    ///
    /// # Errors
    /// Returns a message naming the offending pair.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::seeded(0, 0.0);
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("--faults: expected key=value, got `{pair}`"))?;
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("--faults: bad seed `{value}`"))?;
                }
                "rate" => {
                    plan.rate = value
                        .parse()
                        .map_err(|_| format!("--faults: bad rate `{value}`"))?;
                    if !(0.0..=1.0).contains(&plan.rate) {
                        return Err(format!("--faults: rate {value} outside [0, 1]"));
                    }
                }
                "site" => {
                    let site = FaultSite::parse(value).ok_or_else(|| {
                        format!(
                            "--faults: unknown site `{value}` (one of {})",
                            FaultSite::ALL.map(FaultSite::label).join("|")
                        )
                    })?;
                    if !plan.sites.contains(&site) {
                        plan.sites.push(site);
                    }
                }
                other => return Err(format!("--faults: unknown key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Render the plan back into `--faults` syntax (for `BENCH_*.json`).
    pub fn spec(&self) -> String {
        let mut s = format!("seed={},rate={}", self.seed, self.rate);
        for site in &self.sites {
            s.push_str(",site=");
            s.push_str(site.label());
        }
        s
    }

    /// Build the runtime injector for one site. Each site gets an
    /// independent RNG stream (seed XOR a site-specific splitmix of the
    /// index) so enabling one site never perturbs another's schedule.
    pub fn injector(&self, site: FaultSite) -> SiteInjector {
        let stream = self.seed ^ (site.index() as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut directed: Vec<FaultEvent> = self
            .directed
            .iter()
            .filter(|e| e.kind.site() == site)
            .copied()
            .collect();
        // Latest first, so the runtime pops due events off the back.
        directed.sort_by_key(|e| std::cmp::Reverse(e.at_cycle));
        SiteInjector {
            site,
            rng: StdRng::seed_from_u64(stream),
            rate: if self.site_enabled(site) {
                self.rate
            } else {
                0.0
            },
            directed,
            stats: SiteFaults::default(),
        }
    }
}

/// Per-site fault counters, threaded through
/// [`crate::stats::MachineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteFaults {
    /// Faults injected at this site.
    pub injected: u64,
    /// Recovery retries taken (resends, reissues, re-executions).
    pub retried: u64,
    /// Faults fully recovered from.
    pub recovered: u64,
    /// Faults that exhausted their retry budget (each one surfaces as a
    /// [`crate::machine::SimError::FaultBudget`]).
    pub gave_up: u64,
}

impl SiteFaults {
    /// Merge another site's counters into this one.
    pub fn absorb(&mut self, other: &SiteFaults) {
        self.injected += other.injected;
        self.retried += other.retried;
        self.recovered += other.recovered;
        self.gave_up += other.gave_up;
    }
}

/// All sites' counters (one row per [`FaultSite::ALL`] entry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Counters indexed by [`FaultSite::index`].
    pub sites: [SiteFaults; FaultSite::ALL.len()],
}

impl FaultStats {
    /// Counters for one site.
    pub fn site(&self, site: FaultSite) -> &SiteFaults {
        &self.sites[site.index()]
    }

    /// Mutable counters for one site.
    pub fn site_mut(&mut self, site: FaultSite) -> &mut SiteFaults {
        &mut self.sites[site.index()]
    }

    /// Total faults injected across sites.
    pub fn injected(&self) -> u64 {
        self.sites.iter().map(|s| s.injected).sum()
    }

    /// Total faults recovered across sites.
    pub fn recovered(&self) -> u64 {
        self.sites.iter().map(|s| s.recovered).sum()
    }

    /// Total budget exhaustions across sites.
    pub fn gave_up(&self) -> u64 {
        self.sites.iter().map(|s| s.gave_up).sum()
    }

    /// True when any counter is nonzero (gates report sections so
    /// fault-free output stays byte-identical).
    pub fn any(&self) -> bool {
        self.sites
            .iter()
            .any(|s| s.injected + s.retried + s.recovered + s.gave_up > 0)
    }

    /// `(label, counters)` rows for report rendering.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, &SiteFaults)> {
        FaultSite::ALL
            .iter()
            .map(move |&s| (s.label(), self.site(s)))
    }
}

/// Runtime injection state for one site: the seeded RNG stream, the
/// pending directed events, and the site's counters. Owned by the
/// subsystem hosting the site; consulted only at fault opportunities.
#[derive(Debug, Clone)]
pub struct SiteInjector {
    site: FaultSite,
    rng: StdRng,
    rate: f64,
    /// Pending directed events, sorted latest-first (pop due from back).
    directed: Vec<FaultEvent>,
    stats: SiteFaults,
}

impl SiteInjector {
    /// The site this injector serves.
    pub fn site(&self) -> FaultSite {
        self.site
    }

    /// Consult the injector at a fault opportunity: a due directed event
    /// fires first; otherwise the RNG draws against the rate. Exactly one
    /// draw is consumed per opportunity with a nonzero rate, keeping the
    /// stream aligned across fast-forward modes.
    pub fn fire(&mut self, now: u64) -> Option<FaultKind> {
        if let Some(e) = self.directed.last() {
            if e.at_cycle <= now {
                let e = self.directed.pop().expect("checked non-empty");
                self.stats.injected += 1;
                return Some(e.kind);
            }
        }
        if self.rate > 0.0 && self.rng.gen_range(0.0f64..1.0) < self.rate {
            self.stats.injected += 1;
            return Some(self.random_kind());
        }
        None
    }

    /// The kind a random strike at this site produces (magnitudes drawn
    /// from the same stream, bounded by [`MAX_RANDOM_MAGNITUDE`]).
    fn random_kind(&mut self) -> FaultKind {
        match self.site {
            FaultSite::NetDrop => FaultKind::Drop,
            FaultSite::NetDelay => FaultKind::Delay(self.rng.gen_range(1..=MAX_RANDOM_MAGNITUDE)),
            FaultSite::NetDuplicate => FaultKind::Duplicate,
            FaultSite::GrantLoss => FaultKind::GrantLoss,
            FaultSite::BankStall => FaultKind::Stall(self.rng.gen_range(1..=MAX_RANDOM_MAGNITUDE)),
            FaultSite::TmAbort => FaultKind::SpuriousAbort,
            FaultSite::Fetch => {
                FaultKind::FetchHiccup(self.rng.gen_range(1..=MAX_RANDOM_MAGNITUDE))
            }
        }
    }

    /// Earliest pending directed event at or after `now`, for the
    /// fast-forward wake computation: the machine must tick that cycle so
    /// both modes consume the event at the same opportunity.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.directed.last().map(|e| e.at_cycle.max(now))
    }

    /// Record recovery retries.
    pub fn note_retried(&mut self, n: u64) {
        self.stats.retried += n;
    }

    /// Record a full recovery.
    pub fn note_recovered(&mut self) {
        self.stats.recovered += 1;
    }

    /// Record a budget exhaustion.
    pub fn note_gave_up(&mut self) {
        self.stats.gave_up += 1;
    }

    /// Counters snapshot.
    pub fn stats(&self) -> SiteFaults {
        self.stats
    }
}

/// A retry budget was exhausted: the typed forensics payload of
/// [`crate::machine::SimError::FaultBudget`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultBudgetReport {
    /// Cycle at which recovery gave up.
    pub cycle: u64,
    /// The site whose budget ran out.
    pub site: FaultSite,
    /// Retries taken before giving up.
    pub attempts: u32,
    /// The budget that was exceeded.
    pub budget: u32,
    /// What was being retried (message route, bank request, ...).
    pub detail: String,
}

impl std::fmt::Display for FaultBudgetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault recovery gave up at cycle {}: site {} exhausted its retry budget \
             ({} attempts > {} allowed) on {}",
            self.cycle,
            self.site.label(),
            self.attempts,
            self.budget,
            self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let p = FaultPlan::parse("seed=42,rate=0.25,site=net-drop,site=fetch").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.rate, 0.25);
        assert_eq!(p.sites, vec![FaultSite::NetDrop, FaultSite::Fetch]);
        assert_eq!(p.spec(), "seed=42,rate=0.25,site=net-drop,site=fetch");
        assert_eq!(FaultPlan::parse(&p.spec()).unwrap(), p);
    }

    #[test]
    fn parse_rejects_bad_pairs() {
        assert!(FaultPlan::parse("seed").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("rate=1.5").is_err());
        assert!(FaultPlan::parse("site=warp-core").is_err());
        assert!(FaultPlan::parse("flux=1").is_err());
    }

    #[test]
    fn site_filter_defaults_to_all() {
        let p = FaultPlan::seeded(1, 0.5);
        assert!(FaultSite::ALL.iter().all(|&s| p.site_enabled(s)));
        let p = p.only(FaultSite::TmAbort);
        assert!(p.site_enabled(FaultSite::TmAbort));
        assert!(!p.site_enabled(FaultSite::NetDrop));
        // A disabled site's injector never strikes randomly.
        let mut inj = p.injector(FaultSite::NetDrop);
        assert!((0..10_000).all(|t| inj.fire(t).is_none()));
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let fires = |seed: u64| -> Vec<u64> {
            let mut inj = FaultPlan::seeded(seed, 0.1).injector(FaultSite::NetDrop);
            (0..1000).filter(|&t| inj.fire(t).is_some()).collect()
        };
        assert_eq!(fires(7), fires(7));
        assert_ne!(fires(7), fires(8));
        let n = fires(7).len() as f64;
        assert!((50.0..200.0).contains(&n), "rate 0.1 fired {n} of 1000");
    }

    #[test]
    fn directed_events_fire_in_cycle_order() {
        let plan = FaultPlan::seeded(0, 0.0)
            .with_event(50, FaultKind::FetchHiccup(3))
            .with_event(10, FaultKind::FetchHiccup(1));
        let mut inj = plan.injector(FaultSite::Fetch);
        assert_eq!(inj.next_event(0), Some(10));
        assert_eq!(inj.fire(9), None);
        assert_eq!(inj.fire(10), Some(FaultKind::FetchHiccup(1)));
        assert_eq!(inj.next_event(12), Some(50));
        // A late opportunity still consumes the event.
        assert_eq!(inj.fire(60), Some(FaultKind::FetchHiccup(3)));
        assert_eq!(inj.next_event(61), None);
        assert_eq!(inj.stats().injected, 2);
    }

    #[test]
    fn reseeding_changes_the_schedule_but_not_the_shape() {
        let p = FaultPlan::seeded(3, 0.2).only(FaultSite::BankStall);
        let r = p.reseeded(1);
        assert_ne!(p.seed, r.seed);
        assert_eq!(p.rate, r.rate);
        assert_eq!(p.sites, r.sites);
        assert_eq!(p.reseeded(0), p);
    }

    #[test]
    fn stats_aggregate_across_sites() {
        let mut fs = FaultStats::default();
        fs.site_mut(FaultSite::NetDrop).injected = 3;
        fs.site_mut(FaultSite::NetDrop).recovered = 3;
        fs.site_mut(FaultSite::TmAbort).injected = 2;
        fs.site_mut(FaultSite::TmAbort).gave_up = 1;
        assert_eq!(fs.injected(), 5);
        assert_eq!(fs.recovered(), 3);
        assert_eq!(fs.gave_up(), 1);
        assert!(fs.any());
        assert!(!FaultStats::default().any());
        let rows: Vec<_> = fs.rows().collect();
        assert_eq!(rows.len(), FaultSite::ALL.len());
        assert_eq!(rows[0].0, "net-drop");
        assert_eq!(rows[0].1.injected, 3);
    }
}
