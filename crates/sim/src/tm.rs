//! Low-cost transactional memory for speculative (statistical) DOALL
//! execution.
//!
//! The paper's design (§3, citing the Lieberman tech report): loop chunks
//! run as ordered transactions; the hardware watches coherence traffic for
//! cross-core dependences and rolls back memory state on a violation,
//! while register state is restored so the chunk re-executes from its
//! start.
//!
//! This implementation is lazy-versioned with ordered commits:
//!
//! * writes are buffered byte-granular per transaction;
//! * a commit token enforces chunk order (chunk *k* commits only after
//!   chunk *k − 1*), so the committing transaction never fails;
//! * at commit, the write-set is broadcast (a bus transaction in
//!   [`crate::memsys`]); any *later-ordered* live transaction whose
//!   line-granular read-set intersects the committed write-set aborts and
//!   restarts — it may have read stale pre-commit data.

use std::collections::{HashMap, HashSet};

/// Per-core transaction bookkeeping.
#[derive(Debug, Clone)]
pub struct Txn {
    /// Chunk order within the current speculative region (0-based).
    pub order: u32,
    read_lines: HashSet<u64>,
    write_lines: HashSet<u64>,
    writes: HashMap<u64, u8>,
    /// First-read committed value per byte actually read (not forwarded
    /// from the transaction's own write buffer). Populated only in
    /// value-based conflict mode ([`TxnManager::set_value_conflicts`]);
    /// empty — and never consulted — on the default line-granular path.
    observed: HashMap<u64, u8>,
}

/// TM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TmStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted (and restarted) transactions.
    pub aborts: u64,
    /// Lines broadcast at commits.
    pub committed_lines: u64,
    /// Core-cycles spent inside transactions that later aborted — the
    /// re-executed (wasted) work. Accounted by the machine (the manager
    /// has no clock); an overlay on the CPI-stack categories, not a
    /// separate term of the exact-sum decomposition.
    pub wasted_cycles: u64,
}

/// The transaction manager (one per machine).
#[derive(Debug)]
pub struct TxnManager {
    line_mask: u64,
    txns: Vec<Option<Txn>>,
    /// Retired transactions, recycled by [`TxnManager::begin`] so their
    /// hash containers keep their capacity (transactions are begun every
    /// few hundred cycles on the DOALL path).
    pool: Vec<Txn>,
    /// The commit token: the order the next commit must have.
    expected: u32,
    /// Value-based (byte-granular) conflict detection: a commit aborts a
    /// later-ordered reader only when it changes the *value* of a byte
    /// that reader observed. The what-if "zero TM conflict aborts"
    /// idealization — it removes false-sharing and silent-store aborts,
    /// the recoverable ones, while true data conflicts still abort (they
    /// must: the reader consumed a stale value and re-execution is the
    /// recovery contract). Off on every measured run.
    value_conflicts: bool,
    stats: TmStats,
}

/// Clear a retired transaction's sets (keeping capacity) for reuse.
fn retire(mut txn: Txn) -> Txn {
    txn.read_lines.clear();
    txn.write_lines.clear();
    txn.writes.clear();
    txn.observed.clear();
    txn
}

impl TxnManager {
    /// Create a manager for `cores` cores and `line_size`-byte conflict
    /// granularity.
    pub fn new(cores: usize, line_size: u64) -> TxnManager {
        assert!(line_size.is_power_of_two());
        TxnManager {
            line_mask: !(line_size - 1),
            txns: vec![None; cores],
            pool: Vec::new(),
            expected: 0,
            value_conflicts: false,
            stats: TmStats::default(),
        }
    }

    /// Switch conflict detection to value-based byte granularity (the
    /// what-if idealization). Must be set before any transaction begins.
    pub fn set_value_conflicts(&mut self, on: bool) {
        self.value_conflicts = on;
    }

    /// True if `core` has a live transaction.
    pub fn active(&self, core: usize) -> bool {
        self.txns[core].is_some()
    }

    /// Begin a transaction of the given chunk `order`. Order 0 resets the
    /// commit token. Each DOALL invocation numbers its chunks from 0;
    /// chunk 0 runs on the master core, and the code generator emits the
    /// master's `XBEGIN 0` *before* the worker spawns, so the reset is
    /// ordered before any worker activity of the invocation.
    ///
    /// # Panics
    /// Panics if the core already has a live transaction (no nesting).
    pub fn begin(&mut self, core: usize, order: u32) {
        assert!(self.txns[core].is_none(), "core {core}: nested transaction");
        if order == 0 {
            self.expected = 0;
        }
        let mut txn = self.pool.pop().unwrap_or_else(|| Txn {
            order: 0,
            read_lines: HashSet::new(),
            write_lines: HashSet::new(),
            writes: HashMap::new(),
            observed: HashMap::new(),
        });
        txn.order = order;
        self.txns[core] = Some(txn);
    }

    /// Transactional read: merge the transaction's own buffered bytes over
    /// the globally committed bytes, recording the read-set.
    ///
    /// `committed` supplies the committed value of the addressed bytes
    /// (little-endian, as [`voltron_ir::Memory::load_uint`] returns).
    pub fn read(&mut self, core: usize, addr: u64, width: u64, committed: u64) -> u64 {
        let txn = self.txns[core]
            .as_mut()
            .expect("transactional read outside txn");
        // Insert per spanned line, not per byte (accesses are narrow, so
        // this is one or two inserts instead of `width`).
        let line_size = !self.line_mask + 1;
        let last = (addr + width - 1) & self.line_mask;
        let mut line = addr & self.line_mask;
        loop {
            txn.read_lines.insert(line);
            if line == last {
                break;
            }
            line += line_size;
        }
        let mut bytes = committed.to_le_bytes();
        for (i, byte) in bytes.iter_mut().enumerate().take(width as usize) {
            match txn.writes.get(&(addr + i as u64)) {
                Some(v) => *byte = *v,
                // First-read value of a byte taken from committed memory:
                // the evidence value-based conflict detection compares a
                // later commit against. Self-written bytes are immune to
                // external commits and are never recorded.
                None if self.value_conflicts => {
                    txn.observed.entry(addr + i as u64).or_insert(*byte);
                }
                None => {}
            }
        }
        u64::from_le_bytes(bytes)
    }

    /// Transactional write: buffer bytes, recording the write-set.
    pub fn write(&mut self, core: usize, addr: u64, width: u64, value: u64) {
        let txn = self.txns[core]
            .as_mut()
            .expect("transactional write outside txn");
        let bytes = value.to_le_bytes();
        let line_size = !self.line_mask + 1;
        let last = (addr + width - 1) & self.line_mask;
        let mut line = addr & self.line_mask;
        loop {
            txn.write_lines.insert(line);
            if line == last {
                break;
            }
            line += line_size;
        }
        for b in 0..width {
            txn.writes.insert(addr + b, bytes[b as usize]);
        }
    }

    /// True when `core` holds the commit token.
    pub fn can_commit(&self, core: usize) -> bool {
        self.txns[core]
            .as_ref()
            .map(|t| t.order == self.expected)
            .unwrap_or(false)
    }

    /// Commit `core`'s transaction: apply its buffered writes through
    /// `apply`, advance the token, and abort any later-ordered live
    /// transaction that read a committed line. Returns the committed
    /// line-set (for the bus broadcast) and the cores that must restart.
    ///
    /// # Panics
    /// Panics if the core holds no transaction or lacks the token.
    pub fn commit(
        &mut self,
        core: usize,
        mut apply: impl FnMut(u64, u8),
    ) -> (Vec<u64>, Vec<usize>) {
        assert!(self.can_commit(core), "commit without token on core {core}");
        let txn = self.txns[core].take().expect("checked by can_commit");
        for (addr, byte) in &txn.writes {
            apply(*addr, *byte);
        }
        self.expected = txn.order + 1;
        let mut aborted = Vec::new();
        for (c, slot) in self.txns.iter_mut().enumerate() {
            if let Some(other) = slot {
                let conflicts = other.order > txn.order
                    && if self.value_conflicts {
                        // Abort only when a committed byte *changes* a
                        // value the later transaction actually observed:
                        // false sharing and silent stores survive, stale
                        // reads still roll back.
                        txn.writes
                            .iter()
                            .any(|(a, v)| other.observed.get(a).is_some_and(|o| o != v))
                    } else {
                        !other.read_lines.is_disjoint(&txn.write_lines)
                    };
                if conflicts {
                    self.pool.push(retire(slot.take().expect("just matched")));
                    aborted.push(c);
                    self.stats.aborts += 1;
                }
            }
        }
        self.stats.commits += 1;
        self.stats.committed_lines += txn.write_lines.len() as u64;
        let mut lines: Vec<u64> = txn.write_lines.iter().copied().collect();
        lines.sort_unstable();
        self.pool.push(retire(txn));
        (lines, aborted)
    }

    /// The order the next commit must have (the commit-token position).
    pub fn expected(&self) -> u32 {
        self.expected
    }

    /// The chunk order of `core`'s live transaction, if any.
    pub fn order_of(&self, core: usize) -> Option<u32> {
        self.txns[core].as_ref().map(|t| t.order)
    }

    /// `(read set, write set)` line counts of `core`'s live transaction,
    /// or `(0, 0)` when none is active (the interval probes' TM gauge).
    pub fn set_sizes(&self, core: usize) -> (usize, usize) {
        self.txns[core]
            .as_ref()
            .map_or((0, 0), |t| (t.read_lines.len(), t.write_lines.len()))
    }

    /// The core whose live transaction has chunk `order`, if any (used by
    /// deadlock forensics to point at the commit-token holder).
    pub fn holder_of(&self, order: u32) -> Option<usize> {
        self.txns
            .iter()
            .position(|t| t.as_ref().is_some_and(|t| t.order == order))
    }

    /// Explicitly abort `core`'s transaction (XABORT or machine-initiated).
    pub fn abort(&mut self, core: usize) {
        if let Some(txn) = self.txns[core].take() {
            self.pool.push(retire(txn));
            self.stats.aborts += 1;
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TmStats {
        self.stats
    }

    /// Return the manager to its just-constructed state for `cores` cores
    /// and `line_size` granularity, retiring any live transactions into
    /// the pool so their hash containers keep their capacity. Equivalent
    /// to `*self = TxnManager::new(cores, line_size)` except for the
    /// recycled allocations; callers re-apply
    /// [`TxnManager::set_value_conflicts`] afterwards, exactly as after
    /// `new`.
    ///
    /// # Panics
    /// Panics unless `line_size` is a power of two.
    pub fn reset(&mut self, cores: usize, line_size: u64) {
        assert!(line_size.is_power_of_two());
        self.line_mask = !(line_size - 1);
        for slot in &mut self.txns {
            if let Some(txn) = slot.take() {
                self.pool.push(retire(txn));
            }
        }
        self.txns.resize(cores, None);
        self.expected = 0;
        self.value_conflicts = false;
        self.stats = TmStats::default();
    }

    /// Earliest future cycle at which the TM's state can change on its
    /// own, for the machine's fast-forward engine: always `None`.
    ///
    /// Every TM transition is progress-driven, never time-driven. The
    /// commit token advances only when a core executes `XEND` (an issue,
    /// so the machine is not fully blocked), the commit's bus broadcast
    /// latency is owned by [`crate::memsys::MemSys`] and surfaces through
    /// its `next_event`, and aborts happen synchronously inside
    /// [`TxnManager::commit`]. A machine whose cores are all blocked can
    /// therefore never be woken *by* the TM, only by the bus completion
    /// that lets a committer finish.
    pub fn next_event(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_own_writes() {
        let mut tm = TxnManager::new(2, 32);
        tm.begin(0, 0);
        tm.write(0, 100, 4, 0xaabbccdd);
        assert_eq!(tm.read(0, 100, 4, 0), 0xaabbccdd);
        // Partial overlap merges committed and buffered bytes.
        assert_eq!(tm.read(0, 102, 4, 0x11110000), 0x1111aabb);
    }

    #[test]
    fn ordered_commit_token() {
        let mut tm = TxnManager::new(2, 32);
        tm.begin(0, 0);
        tm.begin(1, 1);
        assert!(!tm.can_commit(1));
        assert!(tm.can_commit(0));
        let mut mem: HashMap<u64, u8> = HashMap::new();
        tm.commit(0, |a, b| {
            mem.insert(a, b);
        });
        assert!(tm.can_commit(1));
    }

    #[test]
    fn raw_conflict_aborts_later_txn() {
        let mut tm = TxnManager::new(2, 32);
        tm.begin(0, 0);
        tm.begin(1, 1);
        // Later txn reads a line the earlier one writes.
        tm.read(1, 64, 8, 0);
        tm.write(0, 64, 8, 42);
        let (lines, aborted) = tm.commit(0, |_, _| {});
        assert_eq!(lines, vec![64]);
        assert_eq!(aborted, vec![1]);
        assert!(!tm.active(1));
        assert_eq!(tm.stats().aborts, 1);
    }

    #[test]
    fn disjoint_lines_do_not_conflict() {
        let mut tm = TxnManager::new(2, 32);
        tm.begin(0, 0);
        tm.begin(1, 1);
        tm.read(1, 128, 8, 0);
        tm.write(0, 64, 8, 42);
        let (_, aborted) = tm.commit(0, |_, _| {});
        assert!(aborted.is_empty());
        assert!(tm.active(1));
    }

    #[test]
    fn false_sharing_within_a_line_conflicts() {
        let mut tm = TxnManager::new(2, 32);
        tm.begin(0, 0);
        tm.begin(1, 1);
        tm.read(1, 40, 8, 0); // same 32B line as addr 32..63
        tm.write(0, 32, 8, 1);
        let (_, aborted) = tm.commit(0, |_, _| {});
        assert_eq!(aborted, vec![1]);
    }

    #[test]
    fn order_zero_resets_token_for_next_invocation() {
        let mut tm = TxnManager::new(2, 32);
        tm.begin(0, 0);
        tm.commit(0, |_, _| {});
        // Next invocation. The codegen contract: the master's XBEGIN 0
        // precedes worker spawns, so begin(0) happens before any worker
        // begin of the same invocation.
        tm.begin(0, 0);
        tm.begin(1, 1);
        assert!(!tm.can_commit(1));
        tm.commit(0, |_, _| {});
        assert!(tm.can_commit(1));
    }

    #[test]
    fn value_mode_spares_false_sharing_and_silent_stores() {
        let mut tm = TxnManager::new(3, 32);
        tm.set_value_conflicts(true);
        tm.begin(0, 0);
        tm.begin(1, 1);
        tm.begin(2, 2);
        // Core 1 reads bytes 40..48 (committed value 7); core 2 reads
        // bytes 0..8 (committed value 9). Core 0 writes byte 32..40 on
        // core 1's line (false sharing) and silently re-stores 9 over
        // core 2's bytes.
        tm.read(1, 40, 8, 7);
        tm.read(2, 0, 8, 9);
        tm.write(0, 32, 8, 1);
        tm.write(0, 0, 8, 9);
        let (_, aborted) = tm.commit(0, |_, _| {});
        assert!(aborted.is_empty(), "aborted {aborted:?}");
        assert!(tm.active(1) && tm.active(2));
        assert_eq!(tm.stats().aborts, 0);
    }

    #[test]
    fn value_mode_still_aborts_true_conflicts() {
        let mut tm = TxnManager::new(2, 32);
        tm.set_value_conflicts(true);
        tm.begin(0, 0);
        tm.begin(1, 1);
        tm.read(1, 64, 8, 0); // observes 0
        tm.write(0, 64, 8, 42); // commits a different value
        let (_, aborted) = tm.commit(0, |_, _| {});
        assert_eq!(aborted, vec![1]);
        assert_eq!(tm.stats().aborts, 1);
    }

    #[test]
    fn value_mode_ignores_self_written_bytes() {
        let mut tm = TxnManager::new(2, 32);
        tm.set_value_conflicts(true);
        tm.begin(0, 0);
        tm.begin(1, 1);
        // Core 1 writes the byte first, then reads it back: the value is
        // forwarded from its own buffer and is immune to the commit.
        tm.write(1, 64, 8, 5);
        tm.read(1, 64, 8, 0);
        tm.write(0, 64, 8, 42);
        let (_, aborted) = tm.commit(0, |_, _| {});
        assert!(aborted.is_empty());
    }

    #[test]
    fn commit_applies_bytes() {
        let mut tm = TxnManager::new(1, 32);
        tm.begin(0, 0);
        tm.write(0, 10, 2, 0xbeef);
        let mut mem: HashMap<u64, u8> = HashMap::new();
        tm.commit(0, |a, b| {
            mem.insert(a, b);
        });
        assert_eq!(mem.get(&10), Some(&0xef));
        assert_eq!(mem.get(&11), Some(&0xbe));
    }
}
