//! Machine configuration.

/// Configuration of the simulated Voltron machine.
///
/// Defaults ([`MachineConfig::paper`]) follow the paper's experimental
/// setup (§5.1): single-issue cores, 4 KB 2-way L1 I/D caches, a shared
/// 128 KB 4-way L2, Itanium-like operation latencies, a 1 cycle/hop direct
/// operand network and a 2 + hops queue network, and bus-based MOESI
/// snooping coherence.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of cores (1, 2 or 4; the mesh is 1x1, 2x1 or 2x2).
    pub cores: usize,
    /// L1 data cache size in bytes.
    pub l1d_size: u64,
    /// L1 data cache associativity.
    pub l1d_assoc: usize,
    /// L1 instruction cache size in bytes.
    pub l1i_size: u64,
    /// L1 instruction cache associativity.
    pub l1i_assoc: usize,
    /// Shared L2 size in bytes.
    pub l2_size: u64,
    /// Shared L2 associativity.
    pub l2_assoc: usize,
    /// Cache line size in bytes (all levels).
    pub line_size: u64,
    /// L1 load-to-use latency on a hit, in cycles.
    pub l1_hit_latency: u32,
    /// Bus occupancy + fill latency when the L2 supplies a line.
    pub l2_latency: u64,
    /// Bus occupancy + fill latency for a cache-to-cache transfer.
    pub c2c_latency: u64,
    /// Bus occupancy + fill latency when main memory supplies a line.
    pub mem_latency: u64,
    /// Extra bus occupancy when a fill evicts a dirty line.
    pub writeback_penalty: u64,
    /// Store buffer entries per core.
    pub store_buffer_entries: usize,
    /// Send/receive queue depth of the queue-mode operand network.
    pub queue_depth: usize,
    /// Cycles to enqueue into the send queue plus dequeue at the receiver
    /// (the "2" in the paper's 2 + hops queue-mode latency).
    pub queue_overhead: u64,
    /// Per-hop network latency (both modes), cycles.
    pub hop_latency: u64,
    /// Whether the direct-mode (1 cycle/hop) network exists. Disabling it
    /// is the dual-mode-network ablation: coupled-mode code then pays
    /// queue-mode latency for every operand transfer.
    pub direct_network: bool,
    /// Base bus occupancy of a transactional commit.
    pub tm_commit_base: u64,
    /// Extra bus occupancy per committed line.
    pub tm_commit_per_line: u64,
    /// Cycles without any core issuing before the machine declares
    /// deadlock.
    pub deadlock_window: u64,
    /// Cycles without any *architectural* state change (register write,
    /// memory write, network traffic, thread or mode event) before the
    /// machine declares livelock: cores are issuing — so the deadlock
    /// window never closes — but only spinning on control flow.
    pub livelock_window: u64,
    /// Hard cap on simulated cycles.
    pub max_cycles: u64,
    /// Event-driven fast-forward: when every core is blocked and no
    /// same-cycle event is due, jump `cycle` straight to the earliest
    /// subsystem wake time instead of ticking the identity transition
    /// once per cycle. Statistics are bulk-accounted over the skipped
    /// span, so every reported number is identical either way (see
    /// DESIGN.md §6); the toggle exists so that equivalence can be
    /// tested in-process.
    pub fast_forward: bool,
    /// Interval probe sampling period in cycles: `Some(p)` records a
    /// [`crate::obs::ProbeSample`] every `p` cycles (returned in
    /// [`crate::machine::RunOutcome::probes`]). `None` (the default)
    /// records nothing and costs one branch per tick. The sampled series
    /// is bit-identical with `fast_forward` on or off: skipped spans are
    /// split at period boundaries and bulk-filled (see DESIGN.md §8).
    pub probe_period: Option<u64>,
}

impl MachineConfig {
    /// The paper's configuration for `cores` cores.
    ///
    /// # Panics
    /// Panics unless `cores` is 1, 2, or 4.
    pub fn paper(cores: usize) -> MachineConfig {
        assert!(
            matches!(cores, 1 | 2 | 4),
            "the evaluation uses 1-, 2- or 4-core machines (got {cores})"
        );
        MachineConfig {
            cores,
            l1d_size: 4 * 1024,
            l1d_assoc: 2,
            l1i_size: 4 * 1024,
            l1i_assoc: 2,
            l2_size: 128 * 1024,
            l2_assoc: 4,
            line_size: 32,
            l1_hit_latency: 2,
            l2_latency: 12,
            c2c_latency: 8,
            mem_latency: 120,
            writeback_penalty: 2,
            store_buffer_entries: 8,
            queue_depth: 16,
            queue_overhead: 2,
            hop_latency: 1,
            direct_network: true,
            tm_commit_base: 6,
            tm_commit_per_line: 1,
            deadlock_window: 50_000,
            livelock_window: 1_000_000,
            max_cycles: 2_000_000_000,
            fast_forward: true,
            probe_period: None,
        }
    }

    /// Mesh width (cores per row): the near-square factorization `w x h`
    /// with `w >= h`, so 2 cores form a 2x1 row, 4 form 2x2, 8 form 4x2,
    /// and 16 form 4x4 — not a 2-wide strip whose hop counts would grow
    /// linearly with the core count.
    pub fn mesh_width(&self) -> usize {
        let n = self.cores.max(1);
        let mut h = 1;
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                h = d;
            }
            d += 1;
        }
        n / h
    }

    /// Grid coordinates of a core.
    pub fn coords(&self, core: usize) -> (usize, usize) {
        let w = self.mesh_width();
        (core % w, core / w)
    }

    /// Manhattan hop distance between two cores.
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// The neighbor of `core` in direction `d`, if it exists.
    pub fn neighbor(&self, core: usize, d: voltron_ir::Dir) -> Option<usize> {
        use voltron_ir::Dir;
        let w = self.mesh_width();
        let h = self.cores.div_ceil(w);
        let (x, y) = self.coords(core);
        let (nx, ny) = match d {
            Dir::East => (x + 1, y),
            Dir::West => (x.wrapping_sub(1), y),
            Dir::South => (x, y + 1),
            Dir::North => (x, y.wrapping_sub(1)),
        };
        if nx < w && ny < h {
            let n = ny * w + nx;
            if n < self.cores && n != core {
                return Some(n);
            }
        }
        None
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::paper(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltron_ir::Dir;

    #[test]
    fn four_core_mesh_is_2x2() {
        let c = MachineConfig::paper(4);
        assert_eq!(c.coords(0), (0, 0));
        assert_eq!(c.coords(1), (1, 0));
        assert_eq!(c.coords(2), (0, 1));
        assert_eq!(c.coords(3), (1, 1));
        assert_eq!(c.hops(0, 3), 2);
        assert_eq!(c.hops(0, 1), 1);
        assert_eq!(c.hops(1, 2), 2);
    }

    #[test]
    fn neighbors_in_2x2() {
        let c = MachineConfig::paper(4);
        assert_eq!(c.neighbor(0, Dir::East), Some(1));
        assert_eq!(c.neighbor(0, Dir::South), Some(2));
        assert_eq!(c.neighbor(0, Dir::West), None);
        assert_eq!(c.neighbor(3, Dir::North), Some(1));
        assert_eq!(c.neighbor(3, Dir::West), Some(2));
    }

    #[test]
    fn two_core_mesh_is_1x2() {
        let c = MachineConfig::paper(2);
        assert_eq!(c.hops(0, 1), 1);
        assert_eq!(c.neighbor(0, Dir::East), Some(1));
        assert_eq!(c.neighbor(1, Dir::West), Some(0));
        assert_eq!(c.neighbor(0, Dir::South), None);
    }

    #[test]
    #[should_panic(expected = "1-, 2- or 4-core")]
    fn odd_core_counts_rejected() {
        MachineConfig::paper(3);
    }

    /// A scaling config beyond the paper's 4 cores (built by widening a
    /// paper config, as the Fig. 13 scaling runs do).
    fn scaled(cores: usize) -> MachineConfig {
        MachineConfig {
            cores,
            ..MachineConfig::paper(4)
        }
    }

    #[test]
    fn eight_core_mesh_is_4x2() {
        let c = scaled(8);
        assert_eq!(c.mesh_width(), 4);
        assert_eq!(c.coords(0), (0, 0));
        assert_eq!(c.coords(3), (3, 0));
        assert_eq!(c.coords(4), (0, 1));
        assert_eq!(c.coords(7), (3, 1));
        // Corner-to-corner: 3 across + 1 down, not the 2x4 strip's 1 + 3.
        assert_eq!(c.hops(0, 7), 4);
        assert_eq!(c.neighbor(0, Dir::East), Some(1));
        assert_eq!(c.neighbor(0, Dir::South), Some(4));
        assert_eq!(c.neighbor(3, Dir::East), None);
        assert_eq!(c.neighbor(4, Dir::North), Some(0));
    }

    #[test]
    fn sixteen_core_mesh_is_4x4() {
        let c = scaled(16);
        assert_eq!(c.mesh_width(), 4);
        assert_eq!(c.coords(5), (1, 1));
        assert_eq!(c.coords(15), (3, 3));
        // Corner-to-corner is 6 hops on 4x4; the old 2x8 strip made it 8.
        assert_eq!(c.hops(0, 15), 6);
        // Mean pairwise distance must beat the strip layout's.
        let total: u64 = (0..16)
            .flat_map(|a| (0..16).map(move |b| (a, b)))
            .map(|(a, b)| c.hops(a, b))
            .sum();
        assert!(total < 16 * 16 * 4, "4x4 mean hops should be well under 4");
        assert_eq!(c.neighbor(3, Dir::South), Some(7));
        assert_eq!(c.neighbor(12, Dir::East), Some(13));
        assert_eq!(c.neighbor(12, Dir::South), None);
    }

    #[test]
    fn paper_configs_keep_their_seed_layouts() {
        // The rewrite must not disturb the 1/2/4-core geometries the
        // whole golden matrix is calibrated against.
        assert_eq!(MachineConfig::paper(1).mesh_width(), 1);
        assert_eq!(MachineConfig::paper(2).mesh_width(), 2);
        assert_eq!(MachineConfig::paper(4).mesh_width(), 2);
    }
}
