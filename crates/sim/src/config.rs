//! Machine configuration.

use crate::fault::FaultPlan;

/// The machine's robustness knobs, unified: the hang detectors'
/// observation windows plus the fault-recovery retry budgets. One struct
/// so the relationships between them can be *validated* instead of
/// silently misbehaving at runtime — a zero window would fire a watchdog
/// on a healthy machine, and a livelock window shorter than the deadlock
/// window would report pure deadlocks as livelocks.
///
/// [`Watchdogs::validate`] is enforced by `Machine::new`, so every
/// constructed machine has a coherent set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdogs {
    /// Cycles without any core issuing before the machine declares
    /// deadlock.
    pub deadlock_window: u64,
    /// Cycles without any *architectural* state change (register write,
    /// memory write, network traffic, thread or mode event) before the
    /// machine declares livelock: cores are issuing — so the deadlock
    /// window never closes — but only spinning on control flow.
    pub livelock_window: u64,
    /// Observation window for interconnect forensics
    /// ([`crate::memsys::MemSys::run_until_completion`] callers that
    /// don't pick their own): cycles without a bus completion before a
    /// [`crate::memsys::BusTimeout`] snapshot is taken.
    pub bus_timeout_window: u64,
    /// Fault recovery: retries a single recovery path may take (flit
    /// resends, bank-request reissues) before giving up with
    /// [`crate::machine::SimError::FaultBudget`].
    pub fault_retry_budget: u32,
    /// Fault recovery: base backoff delay in cycles; retry `k` waits
    /// `base << min(k, 10)` cycles (bounded exponential backoff).
    pub fault_backoff_base: u64,
}

impl Watchdogs {
    /// Check the knobs for zero or contradictory values.
    ///
    /// # Errors
    /// Returns a message naming the first bad knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.deadlock_window == 0 {
            return Err("deadlock_window must be nonzero".into());
        }
        if self.livelock_window == 0 {
            return Err("livelock_window must be nonzero".into());
        }
        if self.livelock_window < self.deadlock_window {
            return Err(format!(
                "livelock_window ({}) must be at least deadlock_window ({}): \
                 a deadlocked machine makes no architectural change either, so a \
                 shorter livelock window would misreport every deadlock",
                self.livelock_window, self.deadlock_window
            ));
        }
        if self.bus_timeout_window == 0 {
            return Err("bus_timeout_window must be nonzero".into());
        }
        if self.fault_retry_budget == 0 {
            return Err(
                "fault_retry_budget must be nonzero (retries are how faults recover)".into(),
            );
        }
        if self.fault_backoff_base == 0 {
            return Err(
                "fault_backoff_base must be nonzero (a zero backoff retries forever in place)"
                    .into(),
            );
        }
        Ok(())
    }

    /// Backoff delay before retry `attempt` (1-based): bounded
    /// exponential, `base << min(attempt - 1, 10)`.
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.fault_backoff_base << attempt.saturating_sub(1).min(10)
    }
}

impl Default for Watchdogs {
    fn default() -> Watchdogs {
        Watchdogs {
            deadlock_window: 50_000,
            livelock_window: 1_000_000,
            bus_timeout_window: 10_000,
            fault_retry_budget: 8,
            fault_backoff_base: 8,
        }
    }
}

/// Which coherence interconnect keeps the L1s coherent.
///
/// [`CoherenceBackend::Snooping`] is the paper's machine: one bus, one
/// transaction in flight at a time, every grant snoops every peer. It is
/// the default and the backend every golden fingerprint is pinned
/// against. [`CoherenceBackend::Directory`] is the scalable alternative
/// for ≥8-core machines: lines are home-banked, each bank serializes
/// only its own transactions (so distinct-bank traffic overlaps), and
/// every grant pays a fixed directory-indirection latency
/// ([`MachineConfig::dir_latency`]). Functional MOESI state transitions
/// are identical on both backends — only occupancy and latency differ
/// (see DESIGN.md §9 for where cycle counts legitimately diverge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceBackend {
    /// Single snooped bus (the paper's machine; the default).
    Snooping,
    /// Address-interleaved directory banks.
    Directory {
        /// Number of home banks (lines interleave across them).
        banks: usize,
    },
}

impl CoherenceBackend {
    /// Short label for reports and flags.
    pub fn label(self) -> &'static str {
        match self {
            CoherenceBackend::Snooping => "snooping",
            CoherenceBackend::Directory { .. } => "directory",
        }
    }

    /// How many independent request streams the backend serializes.
    pub fn bank_count(self) -> usize {
        match self {
            CoherenceBackend::Snooping => 1,
            CoherenceBackend::Directory { banks } => banks.max(1),
        }
    }

    /// The directory sizing the scaling sweeps use: one bank per four
    /// cores, at least two, so bank parallelism grows with the machine.
    pub fn directory_for(cores: usize) -> CoherenceBackend {
        CoherenceBackend::Directory {
            banks: (cores / 4).max(2),
        }
    }

    /// Parse a `--backend` flag value.
    pub fn parse(s: &str) -> Option<CoherenceBackend> {
        match s {
            "snooping" | "bus" => Some(CoherenceBackend::Snooping),
            "directory" | "dir" => Some(CoherenceBackend::Directory { banks: 4 }),
            _ => None,
        }
    }
}

/// Configuration of the simulated Voltron machine.
///
/// Defaults ([`MachineConfig::paper`]) follow the paper's experimental
/// setup (§5.1): single-issue cores, 4 KB 2-way L1 I/D caches, a shared
/// 128 KB 4-way L2, Itanium-like operation latencies, a 1 cycle/hop direct
/// operand network and a 2 + hops queue network, and bus-based MOESI
/// snooping coherence.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of cores (1, 2 or 4; the mesh is 1x1, 2x1 or 2x2).
    pub cores: usize,
    /// L1 data cache size in bytes.
    pub l1d_size: u64,
    /// L1 data cache associativity.
    pub l1d_assoc: usize,
    /// L1 instruction cache size in bytes.
    pub l1i_size: u64,
    /// L1 instruction cache associativity.
    pub l1i_assoc: usize,
    /// Shared L2 size in bytes.
    pub l2_size: u64,
    /// Shared L2 associativity.
    pub l2_assoc: usize,
    /// Cache line size in bytes (all levels).
    pub line_size: u64,
    /// L1 load-to-use latency on a hit, in cycles.
    pub l1_hit_latency: u32,
    /// Bus occupancy + fill latency when the L2 supplies a line.
    pub l2_latency: u64,
    /// Bus occupancy + fill latency for a cache-to-cache transfer.
    pub c2c_latency: u64,
    /// Bus occupancy + fill latency when main memory supplies a line.
    pub mem_latency: u64,
    /// Extra bus occupancy when a fill evicts a dirty line.
    pub writeback_penalty: u64,
    /// Store buffer entries per core.
    pub store_buffer_entries: usize,
    /// Send/receive queue depth of the queue-mode operand network.
    pub queue_depth: usize,
    /// Cycles to enqueue into the send queue plus dequeue at the receiver
    /// (the "2" in the paper's 2 + hops queue-mode latency).
    pub queue_overhead: u64,
    /// Per-hop network latency (both modes), cycles.
    pub hop_latency: u64,
    /// Whether the direct-mode (1 cycle/hop) network exists. Disabling it
    /// is the dual-mode-network ablation: coupled-mode code then pays
    /// queue-mode latency for every operand transfer.
    pub direct_network: bool,
    /// Base bus occupancy of a transactional commit.
    pub tm_commit_base: u64,
    /// Extra bus occupancy per committed line.
    pub tm_commit_per_line: u64,
    /// The unified robustness knobs: hang-detector windows and fault
    /// retry budgets (validated by `Machine::new`; see [`Watchdogs`]).
    pub watchdogs: Watchdogs,
    /// Hard cap on simulated cycles.
    pub max_cycles: u64,
    /// Event-driven fast-forward: when every core is blocked and no
    /// same-cycle event is due, jump `cycle` straight to the earliest
    /// subsystem wake time instead of ticking the identity transition
    /// once per cycle. Statistics are bulk-accounted over the skipped
    /// span, so every reported number is identical either way (see
    /// DESIGN.md §6); the toggle exists so that equivalence can be
    /// tested in-process.
    pub fast_forward: bool,
    /// Coherence interconnect (see [`CoherenceBackend`]). Snooping is
    /// the paper's machine and the default; the directory backend
    /// overlaps distinct-bank transactions at the cost of
    /// [`MachineConfig::dir_latency`] per grant.
    pub coherence: CoherenceBackend,
    /// Directory-indirection latency: extra cycles every directory-bank
    /// grant pays for the home-bank lookup and forwarding that the
    /// snooping bus gets for free by broadcasting. Ignored by
    /// [`CoherenceBackend::Snooping`].
    pub dir_latency: u64,
    /// Interval probe sampling period in cycles: `Some(p)` records a
    /// [`crate::obs::ProbeSample`] every `p` cycles (returned in
    /// [`crate::machine::RunOutcome::probes`]). `None` (the default)
    /// records nothing and costs one branch per tick. The sampled series
    /// is bit-identical with `fast_forward` on or off: skipped spans are
    /// split at period boundaries and bulk-filled (see DESIGN.md §8).
    pub probe_period: Option<u64>,
    /// Deterministic fault injection plan. `None` (the default) disables
    /// the fault layer entirely: no RNG is built, no opportunity is
    /// consulted, and every golden fingerprint is byte-identical to a
    /// build without the layer (see DESIGN.md §10).
    pub faults: Option<FaultPlan>,
    /// What-if idealization knobs (see [`crate::whatif`]). All off by
    /// default; every measured/golden run keeps them off, and the
    /// compiler never sees them — the what-if driver sets them on the
    /// *simulator-side* config copy only, after compilation.
    pub ideal: IdealKnobs,
}

/// Counterfactual idealization knobs for the what-if engine
/// ([`crate::whatif`]): each removes one class of cost at simulation
/// time, bounding the speedup obtainable by optimizing that class. The
/// knobs are timing-only — program semantics, compiled code, and the
/// golden-output contract are untouched, so an idealized run still
/// validates against the reference memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealKnobs {
    /// Zero-latency operand network: queue-mode messages, direct-mode
    /// latches, and broadcasts deliver with no hop latency, no fixed
    /// overhead, and no link serialization.
    pub zero_latency_network: bool,
    /// Infinite interconnect bandwidth: every bus/bank request is
    /// granted the cycle it arrives (latency still paid), so requests
    /// never queue behind each other.
    pub infinite_bandwidth: bool,
    /// Perfect L1 caches: every load, store and instruction fetch hits.
    pub perfect_l1: bool,
    /// Zero recoverable TM conflict aborts: value-based byte-granular
    /// conflict detection ([`crate::tm::TxnManager::set_value_conflicts`])
    /// plus free commit broadcasts. True data conflicts still abort.
    pub zero_tm_conflicts: bool,
    /// Free spawn: thread-start messages bypass the send queue and
    /// arrive at the target core instantly.
    pub free_spawn: bool,
}

impl IdealKnobs {
    /// True when any knob is set (the measured-run fast path checks
    /// this once and skips all idealization branches).
    pub fn any(self) -> bool {
        self.zero_latency_network
            || self.infinite_bandwidth
            || self.perfect_l1
            || self.zero_tm_conflicts
            || self.free_spawn
    }
}

impl MachineConfig {
    /// The paper's configuration for `cores` cores.
    ///
    /// # Panics
    /// Panics unless `cores` is 1, 2, or 4.
    pub fn paper(cores: usize) -> MachineConfig {
        assert!(
            matches!(cores, 1 | 2 | 4),
            "the evaluation uses 1-, 2- or 4-core machines (got {cores})"
        );
        MachineConfig {
            cores,
            l1d_size: 4 * 1024,
            l1d_assoc: 2,
            l1i_size: 4 * 1024,
            l1i_assoc: 2,
            l2_size: 128 * 1024,
            l2_assoc: 4,
            line_size: 32,
            l1_hit_latency: 2,
            l2_latency: 12,
            c2c_latency: 8,
            mem_latency: 120,
            writeback_penalty: 2,
            store_buffer_entries: 8,
            queue_depth: 16,
            queue_overhead: 2,
            hop_latency: 1,
            direct_network: true,
            tm_commit_base: 6,
            tm_commit_per_line: 1,
            watchdogs: Watchdogs::default(),
            max_cycles: 2_000_000_000,
            fast_forward: true,
            coherence: CoherenceBackend::Snooping,
            dir_latency: 3,
            probe_period: None,
            faults: None,
            ideal: IdealKnobs::default(),
        }
    }

    /// A scaled machine beyond the paper's core counts: the paper's
    /// per-core parameters (caches, latencies, queue depths) on a
    /// power-of-two mesh up to 64 cores. For 1, 2 and 4 cores this is
    /// exactly [`MachineConfig::paper`], so the golden matrix is
    /// unaffected by building through `scaled`; the larger counts get
    /// the near-square meshes the geometry tests pin (8 → 4x2, 16 → 4x4,
    /// 32 → 8x4, 64 → 8x8).
    ///
    /// # Panics
    /// Panics unless `cores` is a power of two no larger than 64.
    pub fn scaled(cores: usize) -> MachineConfig {
        assert!(
            cores.is_power_of_two() && cores <= 64,
            "scaled machines use power-of-two core counts up to 64 (got {cores})"
        );
        MachineConfig {
            cores,
            ..MachineConfig::paper(4)
        }
    }

    /// Builder-style backend selection.
    pub fn with_backend(mut self, backend: CoherenceBackend) -> MachineConfig {
        self.coherence = backend;
        self
    }

    /// Mesh width (cores per row): the near-square factorization `w x h`
    /// with `w >= h`, so 2 cores form a 2x1 row, 4 form 2x2, 8 form 4x2,
    /// and 16 form 4x4 — not a 2-wide strip whose hop counts would grow
    /// linearly with the core count.
    pub fn mesh_width(&self) -> usize {
        let n = self.cores.max(1);
        let mut h = 1;
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                h = d;
            }
            d += 1;
        }
        n / h
    }

    /// Grid coordinates of a core.
    pub fn coords(&self, core: usize) -> (usize, usize) {
        let w = self.mesh_width();
        (core % w, core / w)
    }

    /// Manhattan hop distance between two cores.
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// The neighbor of `core` in direction `d`, if it exists.
    pub fn neighbor(&self, core: usize, d: voltron_ir::Dir) -> Option<usize> {
        use voltron_ir::Dir;
        let w = self.mesh_width();
        let h = self.cores.div_ceil(w);
        let (x, y) = self.coords(core);
        let (nx, ny) = match d {
            Dir::East => (x + 1, y),
            Dir::West => (x.wrapping_sub(1), y),
            Dir::South => (x, y + 1),
            Dir::North => (x, y.wrapping_sub(1)),
        };
        if nx < w && ny < h {
            let n = ny * w + nx;
            if n < self.cores && n != core {
                return Some(n);
            }
        }
        None
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::paper(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltron_ir::Dir;

    #[test]
    fn four_core_mesh_is_2x2() {
        let c = MachineConfig::paper(4);
        assert_eq!(c.coords(0), (0, 0));
        assert_eq!(c.coords(1), (1, 0));
        assert_eq!(c.coords(2), (0, 1));
        assert_eq!(c.coords(3), (1, 1));
        assert_eq!(c.hops(0, 3), 2);
        assert_eq!(c.hops(0, 1), 1);
        assert_eq!(c.hops(1, 2), 2);
    }

    #[test]
    fn neighbors_in_2x2() {
        let c = MachineConfig::paper(4);
        assert_eq!(c.neighbor(0, Dir::East), Some(1));
        assert_eq!(c.neighbor(0, Dir::South), Some(2));
        assert_eq!(c.neighbor(0, Dir::West), None);
        assert_eq!(c.neighbor(3, Dir::North), Some(1));
        assert_eq!(c.neighbor(3, Dir::West), Some(2));
    }

    #[test]
    fn two_core_mesh_is_1x2() {
        let c = MachineConfig::paper(2);
        assert_eq!(c.hops(0, 1), 1);
        assert_eq!(c.neighbor(0, Dir::East), Some(1));
        assert_eq!(c.neighbor(1, Dir::West), Some(0));
        assert_eq!(c.neighbor(0, Dir::South), None);
    }

    #[test]
    #[should_panic(expected = "1-, 2- or 4-core")]
    fn odd_core_counts_rejected() {
        MachineConfig::paper(3);
    }

    #[test]
    fn eight_core_mesh_is_4x2() {
        let c = MachineConfig::scaled(8);
        assert_eq!(c.mesh_width(), 4);
        assert_eq!(c.coords(0), (0, 0));
        assert_eq!(c.coords(3), (3, 0));
        assert_eq!(c.coords(4), (0, 1));
        assert_eq!(c.coords(7), (3, 1));
        // Corner-to-corner: 3 across + 1 down, not the 2x4 strip's 1 + 3.
        assert_eq!(c.hops(0, 7), 4);
        assert_eq!(c.neighbor(0, Dir::East), Some(1));
        assert_eq!(c.neighbor(0, Dir::South), Some(4));
        assert_eq!(c.neighbor(3, Dir::East), None);
        assert_eq!(c.neighbor(4, Dir::North), Some(0));
    }

    #[test]
    fn sixteen_core_mesh_is_4x4() {
        let c = MachineConfig::scaled(16);
        assert_eq!(c.mesh_width(), 4);
        assert_eq!(c.coords(5), (1, 1));
        assert_eq!(c.coords(15), (3, 3));
        // Corner-to-corner is 6 hops on 4x4; the old 2x8 strip made it 8.
        assert_eq!(c.hops(0, 15), 6);
        // Mean pairwise distance must beat the strip layout's.
        let total: u64 = (0..16)
            .flat_map(|a| (0..16).map(move |b| (a, b)))
            .map(|(a, b)| c.hops(a, b))
            .sum();
        assert!(total < 16 * 16 * 4, "4x4 mean hops should be well under 4");
        assert_eq!(c.neighbor(3, Dir::South), Some(7));
        assert_eq!(c.neighbor(12, Dir::East), Some(13));
        assert_eq!(c.neighbor(12, Dir::South), None);
    }

    #[test]
    fn thirtytwo_core_mesh_is_8x4() {
        let c = MachineConfig::scaled(32);
        assert_eq!(c.mesh_width(), 8);
        assert_eq!(c.coords(0), (0, 0));
        assert_eq!(c.coords(8), (0, 1));
        assert_eq!(c.coords(31), (7, 3));
        // Corner-to-corner: 7 across + 3 down on 8x4.
        assert_eq!(c.hops(0, 31), 10);
        assert_eq!(c.neighbor(7, Dir::East), None);
        assert_eq!(c.neighbor(7, Dir::South), Some(15));
        assert_eq!(c.neighbor(24, Dir::North), Some(16));
        assert_eq!(c.neighbor(24, Dir::South), None);
    }

    #[test]
    fn sixtyfour_core_mesh_is_8x8() {
        let c = MachineConfig::scaled(64);
        assert_eq!(c.mesh_width(), 8);
        assert_eq!(c.coords(9), (1, 1));
        assert_eq!(c.coords(63), (7, 7));
        // Corner-to-corner is 14 hops on 8x8.
        assert_eq!(c.hops(0, 63), 14);
        assert_eq!(c.neighbor(0, Dir::South), Some(8));
        assert_eq!(c.neighbor(63, Dir::North), Some(55));
        assert_eq!(c.neighbor(63, Dir::East), None);
        assert_eq!(c.neighbor(56, Dir::West), None);
    }

    #[test]
    fn scaled_matches_paper_at_paper_core_counts() {
        for cores in [1, 2, 4] {
            assert_eq!(MachineConfig::scaled(cores), MachineConfig::paper(cores));
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two core counts up to 64")]
    fn scaled_rejects_128() {
        MachineConfig::scaled(128);
    }

    #[test]
    #[should_panic(expected = "power-of-two core counts up to 64")]
    fn scaled_rejects_non_power_of_two() {
        MachineConfig::scaled(12);
    }

    #[test]
    fn backend_helpers() {
        assert_eq!(CoherenceBackend::Snooping.bank_count(), 1);
        assert_eq!(CoherenceBackend::Directory { banks: 4 }.bank_count(), 4);
        assert_eq!(CoherenceBackend::directory_for(8).bank_count(), 2);
        assert_eq!(CoherenceBackend::directory_for(64).bank_count(), 16);
        assert_eq!(
            CoherenceBackend::parse("snooping"),
            Some(CoherenceBackend::Snooping)
        );
        assert_eq!(
            CoherenceBackend::parse("directory"),
            Some(CoherenceBackend::Directory { banks: 4 })
        );
        assert_eq!(CoherenceBackend::parse("mesi"), None);
        let cfg = MachineConfig::scaled(16).with_backend(CoherenceBackend::directory_for(16));
        assert_eq!(cfg.coherence.label(), "directory");
        assert_eq!(MachineConfig::paper(4).coherence.label(), "snooping");
    }

    #[test]
    fn watchdogs_reject_zero_and_contradictory_windows() {
        assert!(Watchdogs::default().validate().is_ok());
        let bad = Watchdogs {
            deadlock_window: 0,
            ..Watchdogs::default()
        };
        assert!(bad.validate().unwrap_err().contains("deadlock_window"));
        let bad = Watchdogs {
            livelock_window: 0,
            ..Watchdogs::default()
        };
        assert!(bad.validate().unwrap_err().contains("livelock_window"));
        // Livelock window shorter than the deadlock window misreports
        // every deadlock as a livelock: contradictory, rejected.
        let bad = Watchdogs {
            deadlock_window: 10_000,
            livelock_window: 500,
            ..Watchdogs::default()
        };
        assert!(bad.validate().unwrap_err().contains("at least"));
        let bad = Watchdogs {
            bus_timeout_window: 0,
            ..Watchdogs::default()
        };
        assert!(bad.validate().unwrap_err().contains("bus_timeout_window"));
        let bad = Watchdogs {
            fault_retry_budget: 0,
            ..Watchdogs::default()
        };
        assert!(bad.validate().unwrap_err().contains("fault_retry_budget"));
        let bad = Watchdogs {
            fault_backoff_base: 0,
            ..Watchdogs::default()
        };
        assert!(bad.validate().unwrap_err().contains("fault_backoff_base"));
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let w = Watchdogs::default();
        assert_eq!(w.backoff(1), w.fault_backoff_base);
        assert_eq!(w.backoff(2), w.fault_backoff_base * 2);
        assert_eq!(w.backoff(4), w.fault_backoff_base * 8);
        // Capped at 10 doublings: no overflow, no unbounded wait.
        assert_eq!(w.backoff(50), w.fault_backoff_base << 10);
        assert_eq!(w.backoff(u32::MAX), w.fault_backoff_base << 10);
    }

    #[test]
    fn paper_configs_keep_their_seed_layouts() {
        // The rewrite must not disturb the 1/2/4-core geometries the
        // whole golden matrix is calibrated against.
        assert_eq!(MachineConfig::paper(1).mesh_width(), 1);
        assert_eq!(MachineConfig::paper(2).mesh_width(), 2);
        assert_eq!(MachineConfig::paper(4).mesh_width(), 2);
    }
}
