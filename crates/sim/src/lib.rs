//! Cycle-level simulator of the Voltron dual-mode multicore (HPCA 2007).
//!
//! The machine consists of single-issue, statically scheduled VLIW cores
//! on a 2-D mesh with:
//!
//! * private L1 instruction/data caches kept coherent by a bus-based MOESI
//!   snooping protocol over a shared banked L2 ([`memsys`]);
//! * the **dual-mode scalar operand network** ([`network`]): a 1 cycle/hop
//!   direct mode for lock-step (coupled) execution and a 2 + hops queue
//!   mode for decoupled fine-grain threads;
//! * a 1-bit stall bus that stalls the whole coupled group when any member
//!   stalls ([`machine`]);
//! * low-cost ordered transactional memory for speculative statistical-
//!   DOALL loops ([`tm`]).
//!
//! # Example
//!
//! Machine code is normally produced by `voltron-compiler`; hand-written
//! images work too:
//!
//! ```
//! use voltron_sim::{Machine, MachineConfig, MachineProgram, CoreImage, MBlock};
//! use voltron_ir::{DataSegment, Inst, Opcode, Operand, Reg};
//!
//! let mut data = DataSegment::default();
//! let out = data.zeroed("out", 8);
//! let mut b = MBlock::new("entry", 0);
//! b.insts.push(Inst::with_dst(Opcode::Ldi, Reg::gpr(0), vec![Operand::Imm(out as i64)]));
//! b.insts.push(Inst::with_dst(Opcode::Ldi, Reg::gpr(1), vec![Operand::Imm(41)]));
//! b.insts.push(Inst::with_dst(Opcode::Add, Reg::gpr(2), vec![Reg::gpr(1).into(), Operand::Imm(1)]));
//! b.insts.push(Inst::new(Opcode::Store(voltron_ir::MemWidth::W8),
//!     vec![Reg::gpr(0).into(), Operand::Imm(0), Reg::gpr(2).into()]));
//! b.insts.push(Inst::new(Opcode::Halt, vec![]));
//! let prog = MachineProgram { name: "demo".into(), cores: vec![CoreImage { blocks: vec![b] }], data };
//!
//! let outcome = Machine::new(prog, &MachineConfig::paper(1)).unwrap().run().unwrap();
//! assert_eq!(outcome.memory.load_i64(out).unwrap(), 42);
//! ```

pub mod cache;
pub mod config;
pub mod fault;
pub mod machine;
pub mod mcode;
pub mod memsys;
pub mod network;
pub mod obs;
pub mod stats;
pub mod tm;
pub mod trace;
pub mod validate;
pub mod whatif;

pub use config::{CoherenceBackend, IdealKnobs, MachineConfig, Watchdogs};
pub use fault::{FaultBudgetReport, FaultEvent, FaultKind, FaultPlan, FaultSite, FaultStats};
pub use machine::{CoreWait, Machine, RunOutcome, SimError, WaitCause};
pub use mcode::{CoreImage, MBlock, MachineProgram, RegionId, REGION_OUTSIDE};
pub use obs::{trace_with_counters, ChromeTracer, ProbeSample, ProbeSeries, ProbeSummary};
pub use stats::{CoreStats, MachineStats, RegionBreakdown, StallReason};
pub use validate::{Site, ValidateError};
pub use whatif::{BoundBy, CycleStack, KnobId, RegionStack};
