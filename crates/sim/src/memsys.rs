//! The memory hierarchy: per-core L1s, shared L2, snooping bus, store
//! buffers.
//!
//! Timing only — data values live in the eager functional memory (see
//! [`crate::cache`] for the rationale). The bus serializes one coherence
//! transaction at a time, exactly like the paper's bus-based MOESI
//! snooping protocol; cache-to-cache transfers are cheaper than memory.

use crate::cache::{LineState, TagCache};
use crate::config::MachineConfig;
use std::collections::VecDeque;
use std::fmt;
use voltron_ir::Reg;

/// Bus occupancy of an ownership upgrade (S -> M invalidation round).
const UPGRADE_LATENCY: u64 = 4;

/// What a bus transaction is for.
#[derive(Debug, Clone, PartialEq)]
pub enum BusKind {
    /// A load miss: fetch a line in shared state.
    ReadShared {
        /// Destination register to wake.
        dst: Reg,
        /// Core epoch at issue (stale fills after a TM abort are dropped).
        epoch: u64,
    },
    /// A store miss: fetch the line with ownership.
    ReadExclusive,
    /// A store hit on a Shared line: invalidate other copies.
    Upgrade,
    /// An instruction-cache fill.
    IFill,
    /// A transactional commit broadcasting `extra_lines + 1` lines.
    TmCommit {
        /// All written lines (the req's `line` is the first).
        lines: Vec<u64>,
    },
}

impl BusKind {
    /// Short label for trace tracks.
    pub fn label(&self) -> &'static str {
        match self {
            BusKind::ReadShared { .. } => "read-shared",
            BusKind::ReadExclusive => "read-exclusive",
            BusKind::Upgrade => "upgrade",
            BusKind::IFill => "i-fill",
            BusKind::TmCommit { .. } => "tm-commit",
        }
    }
}

/// A queued bus request.
#[derive(Debug, Clone, PartialEq)]
pub struct BusReq {
    /// Requesting core.
    pub core: usize,
    /// Line-aligned address.
    pub line: u64,
    /// Transaction type.
    pub kind: BusKind,
}

/// A completion the machine must dispatch to a core.
#[derive(Debug, Clone, PartialEq)]
pub enum Completion {
    /// A load fill arrived: wake `dst` (if `epoch` still matches).
    LoadFill {
        /// The core that issued the load.
        core: usize,
        /// The register the load targets.
        dst: Reg,
        /// Epoch at issue.
        epoch: u64,
    },
    /// A transactional commit finished its bus broadcast.
    TmCommitDone {
        /// The committing core.
        core: usize,
    },
}

/// Result of a load lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// L1 (or store-buffer forwarding) hit; data usable after the hit
    /// latency.
    Hit,
    /// Miss; a bus request was enqueued, the destination register stays
    /// pending until the fill completes.
    Miss,
}

/// The bus produced no completion within an observation window: the
/// typed snapshot of everything still pending (in place of the panic
/// this condition used to raise), so a wedged hierarchy is diagnosable.
#[derive(Debug, Clone, PartialEq)]
pub struct BusTimeout {
    /// First cycle of the observation window.
    pub start: u64,
    /// Cycles observed.
    pub window: u64,
    /// The transaction occupying the bus, if any.
    pub in_flight: Option<BusReq>,
    /// Requests still queued behind it.
    pub queued: Vec<BusReq>,
    /// Store-buffer occupancy per core.
    pub store_buffered: Vec<usize>,
}

impl fmt::Display for BusTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no bus completion within {} cycles from {}: in-flight {:?}, {} queued, \
             store buffers {:?}",
            self.window,
            self.start,
            self.in_flight,
            self.queued.len(),
            self.store_buffered
        )
    }
}

impl std::error::Error for BusTimeout {}

#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    addr: u64,
    width: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    req: BusReq,
    finish: u64,
    /// Whether peers/L2/memory supplied (grant-time decision, applied at
    /// completion).
    others_had_copy: bool,
}

/// Memory-system statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Completed bus transactions.
    pub bus_transactions: u64,
    /// Total cycles the bus was occupied.
    pub bus_busy_cycles: u64,
    /// Cache-to-cache supplies.
    pub c2c_transfers: u64,
    /// Lines supplied by main memory.
    pub mem_fetches: u64,
    /// L1D (hits, misses) per core.
    pub l1d: Vec<(u64, u64)>,
    /// L1I (hits, misses) per core.
    pub l1i: Vec<(u64, u64)>,
}

/// The full memory system.
#[derive(Debug)]
pub struct MemSys {
    cfg: MachineConfig,
    l1d: Vec<TagCache>,
    l1i: Vec<TagCache>,
    l2: TagCache,
    queue: VecDeque<BusReq>,
    current: Option<InFlight>,
    store_bufs: Vec<VecDeque<StoreEntry>>,
    /// Head-of-buffer bus request outstanding.
    sb_waiting: Vec<bool>,
    /// Line being I-fetched per core.
    ifill_pending: Vec<Option<u64>>,
    stats_bus: u64,
    stats_busy: u64,
    stats_c2c: u64,
    stats_mem: u64,
    /// The most recent bus grant `(core, kind label, start, finish)`,
    /// for the machine's trace path (drained via
    /// [`MemSys::take_last_grant`]; overwritten untaken when no tracer
    /// is installed).
    last_grant: Option<(usize, &'static str, u64, u64)>,
}

impl MemSys {
    /// Build the hierarchy for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> MemSys {
        let n = cfg.cores;
        MemSys {
            l1d: (0..n)
                .map(|_| TagCache::new(cfg.l1d_size, cfg.l1d_assoc, cfg.line_size))
                .collect(),
            l1i: (0..n)
                .map(|_| TagCache::new(cfg.l1i_size, cfg.l1i_assoc, cfg.line_size))
                .collect(),
            l2: TagCache::new(cfg.l2_size, cfg.l2_assoc, cfg.line_size),
            queue: VecDeque::new(),
            current: None,
            store_bufs: (0..n).map(|_| VecDeque::new()).collect(),
            sb_waiting: vec![false; n],
            ifill_pending: vec![None; n],
            cfg: cfg.clone(),
            stats_bus: 0,
            stats_busy: 0,
            stats_c2c: 0,
            stats_mem: 0,
            last_grant: None,
        }
    }

    /// Line-align an address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_size - 1)
    }

    /// Issue a load. On a miss the fill is requested and `dst` must stay
    /// pending until the matching [`Completion::LoadFill`].
    pub fn load(&mut self, core: usize, addr: u64, dst: Reg, epoch: u64) -> LoadOutcome {
        // Store-buffer forwarding.
        if self.store_bufs[core]
            .iter()
            .any(|e| e.addr < addr + 8 && addr < e.addr + e.width)
        {
            return LoadOutcome::Hit;
        }
        let line = self.line_of(addr);
        if self.l1d[core].access(line).is_some() {
            return LoadOutcome::Hit;
        }
        self.queue.push_back(BusReq {
            core,
            line,
            kind: BusKind::ReadShared { dst, epoch },
        });
        LoadOutcome::Miss
    }

    /// Issue a store into the core's store buffer. Returns false when the
    /// buffer is full (the core must stall and retry).
    pub fn store(&mut self, core: usize, addr: u64, width: u64) -> bool {
        if self.store_bufs[core].len() >= self.cfg.store_buffer_entries {
            return false;
        }
        self.store_bufs[core].push_back(StoreEntry { addr, width });
        true
    }

    /// True when the core's store buffer has drained (used at memory
    /// synchronization points).
    pub fn store_buffer_empty(&self, core: usize) -> bool {
        self.store_bufs[core].is_empty()
    }

    /// True when the core's store buffer cannot accept another entry.
    pub fn store_buffer_full(&self, core: usize) -> bool {
        self.store_bufs[core].len() >= self.cfg.store_buffer_entries
    }

    /// Instruction fetch: true when the line is in the I-cache; otherwise
    /// a fill is requested (at most one outstanding per core).
    pub fn ifetch(&mut self, core: usize, addr: u64) -> bool {
        let line = self.line_of(addr);
        if self.ifill_pending[core] == Some(line) {
            return false;
        }
        if self.l1i[core].access(line).is_some() {
            return true;
        }
        if self.ifill_pending[core].is_none() {
            self.ifill_pending[core] = Some(line);
            self.queue.push_back(BusReq {
                core,
                line,
                kind: BusKind::IFill,
            });
        }
        false
    }

    /// Credit `n` repeat instruction-fetch hits on `core`'s L1I, for
    /// the fast-forward engine: every skipped cycle, a running core
    /// would have re-fetched its current (cached) instruction.
    pub fn credit_ifetch_hits(&mut self, core: usize, n: u64) {
        self.l1i[core].credit_hits(n);
    }

    /// Enqueue a transactional-commit broadcast of `lines`.
    ///
    /// # Panics
    /// Panics if `lines` is empty.
    pub fn enqueue_tm_commit(&mut self, core: usize, mut lines: Vec<u64>) {
        assert!(!lines.is_empty(), "tm commit needs at least one line");
        let first = lines.remove(0);
        self.queue.push_back(BusReq {
            core,
            line: first,
            kind: BusKind::TmCommit { lines },
        });
    }

    fn grant_latency(&self, req: &BusReq) -> (u64, bool) {
        let peers_dirty = (0..self.cfg.cores).any(|j| {
            j != req.core
                && self.l1d[j]
                    .peek(req.line)
                    .map(LineState::is_dirty)
                    .unwrap_or(false)
        });
        let peers_any =
            (0..self.cfg.cores).any(|j| j != req.core && self.l1d[j].peek(req.line).is_some());
        let base = match &req.kind {
            BusKind::Upgrade => UPGRADE_LATENCY,
            BusKind::TmCommit { lines } => {
                self.cfg.tm_commit_base + (lines.len() as u64 + 1) * self.cfg.tm_commit_per_line
            }
            BusKind::IFill => {
                if self.l2.peek(req.line).is_some() {
                    self.cfg.l2_latency
                } else {
                    self.cfg.mem_latency
                }
            }
            BusKind::ReadShared { .. } | BusKind::ReadExclusive => {
                if peers_dirty {
                    self.cfg.c2c_latency
                } else if self.l2.peek(req.line).is_some() {
                    self.cfg.l2_latency
                } else if peers_any {
                    self.cfg.c2c_latency
                } else {
                    self.cfg.mem_latency
                }
            }
        };
        let mut lat = base;
        if matches!(
            req.kind,
            BusKind::ReadShared { .. } | BusKind::ReadExclusive
        ) {
            if let Some(v) = self.l1d[req.core].victim_state(req.line) {
                if v.is_dirty() {
                    lat += self.cfg.writeback_penalty;
                }
            }
        }
        (lat, peers_any)
    }

    fn writeback_to_l2(&mut self, line: u64) {
        // Dirty L1 eviction: install/mark dirty in L2 (L2 evictions go to
        // memory for free — memory is always functionally up to date).
        self.l2.fill(line, LineState::M);
    }

    fn fill_l1d(&mut self, core: usize, line: u64, state: LineState) {
        if let Some((vline, vstate)) = self.l1d[core].fill(line, state) {
            if vstate.is_dirty() {
                self.writeback_to_l2(vline);
            }
        }
    }

    fn complete(&mut self, inflight: InFlight, out: &mut Vec<Completion>) {
        let req = inflight.req;
        let n = self.cfg.cores;
        match req.kind {
            BusKind::ReadShared { dst, epoch } => {
                let mut shared = false;
                for j in 0..n {
                    if j == req.core {
                        continue;
                    }
                    match self.l1d[j].peek(req.line) {
                        Some(LineState::M) => {
                            self.l1d[j].set_state(req.line, LineState::O);
                            shared = true;
                            self.stats_c2c += 1;
                        }
                        Some(LineState::E) => {
                            self.l1d[j].set_state(req.line, LineState::S);
                            shared = true;
                        }
                        Some(_) => shared = true,
                        None => {}
                    }
                }
                if self.l2.peek(req.line).is_none() && !shared {
                    // Came from memory: install in L2 too.
                    self.l2.fill(req.line, LineState::E);
                    self.stats_mem += 1;
                }
                let state = if shared { LineState::S } else { LineState::E };
                self.fill_l1d(req.core, req.line, state);
                out.push(Completion::LoadFill {
                    core: req.core,
                    dst,
                    epoch,
                });
            }
            BusKind::ReadExclusive => {
                for j in 0..n {
                    if j != req.core {
                        self.l1d[j].invalidate(req.line);
                    }
                }
                if self.l2.peek(req.line).is_none() && !inflight.others_had_copy {
                    self.l2.fill(req.line, LineState::E);
                    self.stats_mem += 1;
                }
                self.fill_l1d(req.core, req.line, LineState::M);
                self.retire_store(req.core);
            }
            BusKind::Upgrade => {
                for j in 0..n {
                    if j != req.core {
                        self.l1d[j].invalidate(req.line);
                    }
                }
                match self.l1d[req.core].peek(req.line) {
                    Some(_) => self.l1d[req.core].set_state(req.line, LineState::M),
                    None => self.fill_l1d(req.core, req.line, LineState::M),
                }
                self.retire_store(req.core);
            }
            BusKind::IFill => {
                self.l1i[req.core].fill(req.line, LineState::E);
                if self.l2.peek(req.line).is_none() {
                    self.l2.fill(req.line, LineState::E);
                }
                self.ifill_pending[req.core] = None;
            }
            BusKind::TmCommit { lines } => {
                let mut all = lines;
                all.push(req.line);
                for line in all {
                    for j in 0..n {
                        if j != req.core {
                            self.l1d[j].invalidate(line);
                        }
                    }
                    match self.l1d[req.core].peek(line) {
                        Some(_) => self.l1d[req.core].set_state(line, LineState::M),
                        None => self.fill_l1d(req.core, line, LineState::M),
                    }
                }
                out.push(Completion::TmCommitDone { core: req.core });
            }
        }
        self.stats_bus += 1;
    }

    fn retire_store(&mut self, core: usize) {
        self.sb_waiting[core] = false;
        self.store_bufs[core].pop_front();
    }

    fn drain_store_buffers(&mut self) {
        for core in 0..self.cfg.cores {
            if self.sb_waiting[core] {
                continue;
            }
            let Some(head) = self.store_bufs[core].front().copied() else {
                continue;
            };
            let line = self.line_of(head.addr);
            match self.l1d[core].access(line) {
                Some(s) if s.is_writable() => {
                    self.l1d[core].set_state(line, LineState::M);
                    self.store_bufs[core].pop_front();
                }
                Some(_) => {
                    // Shared or Owned: need exclusive ownership.
                    self.queue.push_back(BusReq {
                        core,
                        line,
                        kind: BusKind::Upgrade,
                    });
                    self.sb_waiting[core] = true;
                }
                None => {
                    self.queue.push_back(BusReq {
                        core,
                        line,
                        kind: BusKind::ReadExclusive,
                    });
                    self.sb_waiting[core] = true;
                }
            }
        }
    }

    /// Advance one cycle: finish a due transaction, grant the next,
    /// drain store buffers. Returns completions for the machine to
    /// dispatch.
    pub fn tick(&mut self, now: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        if let Some(cur) = &self.current {
            if now >= cur.finish {
                let cur = self.current.take().expect("checked above");
                self.complete(cur, &mut out);
            }
        }
        if self.current.is_none() {
            if let Some(req) = self.queue.pop_front() {
                let (lat, others) = self.grant_latency(&req);
                self.stats_busy += lat;
                self.last_grant = Some((req.core, req.kind.label(), now, now + lat));
                self.current = Some(InFlight {
                    req,
                    finish: now + lat,
                    others_had_copy: others,
                });
            }
        }
        self.drain_store_buffers();
        out
    }

    /// Earliest future cycle at which [`MemSys::tick`] would do anything
    /// beyond the identity transition, for the machine's fast-forward
    /// engine. `Some(now)` means the very next tick has work (queued
    /// requests can be granted, or an unblocked store buffer has a head
    /// to drain — both happen at grant/drain time, not at a known future
    /// cycle); `Some(t)` with `t > now` is the in-flight transaction's
    /// completion; `None` means the hierarchy is fully quiescent.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let sb_busy = self
            .store_bufs
            .iter()
            .zip(&self.sb_waiting)
            .any(|(q, &w)| !q.is_empty() && !w);
        if sb_busy || (self.current.is_none() && !self.queue.is_empty()) {
            return Some(now);
        }
        self.current.as_ref().map(|c| c.finish)
    }

    /// Tick from `start` until a completion arrives, returning the cycle
    /// it arrived at and the completions. Intended for tests and drivers
    /// that step the hierarchy in isolation; the machine's cycle loop
    /// calls [`MemSys::tick`] directly and never blocks on the bus.
    ///
    /// # Errors
    /// Returns a [`BusTimeout`] carrying the pending-request state when
    /// `window` cycles pass without a completion.
    pub fn run_until_completion(
        &mut self,
        start: u64,
        window: u64,
    ) -> Result<(u64, Vec<Completion>), BusTimeout> {
        for t in start..start + window {
            let c = self.tick(t);
            if !c.is_empty() {
                return Ok((t, c));
            }
        }
        Err(BusTimeout {
            start,
            window,
            in_flight: self.current.as_ref().map(|c| c.req.clone()),
            queued: self.queue.iter().cloned().collect(),
            store_buffered: self.store_bufs.iter().map(VecDeque::len).collect(),
        })
    }

    /// The bus grant made by the last [`MemSys::tick`], if any — at most
    /// one grant happens per tick, so draining this after each tick sees
    /// every grant.
    pub fn take_last_grant(&mut self) -> Option<(usize, &'static str, u64, u64)> {
        self.last_grant.take()
    }

    /// Cumulative bus-busy cycles so far (the interval probes' bus
    /// utilization counter; also in [`MemStats::bus_busy_cycles`]).
    pub fn bus_busy_cycles(&self) -> u64 {
        self.stats_busy
    }

    /// Snapshot the statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            bus_transactions: self.stats_bus,
            bus_busy_cycles: self.stats_busy,
            c2c_transfers: self.stats_c2c,
            mem_fetches: self.stats_mem,
            l1d: self.l1d.iter().map(|c| c.stats()).collect(),
            l1i: self.l1i.iter().map(|c| c.stats()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSys {
        MemSys::new(&MachineConfig::paper(4))
    }

    fn r0() -> Reg {
        Reg::gpr(0)
    }

    /// Run ticks until a completion arrives (the typed path asserts one
    /// comes within `cap` cycles).
    fn run_until_completion(m: &mut MemSys, start: u64, cap: u64) -> (u64, Vec<Completion>) {
        m.run_until_completion(start, cap)
            .expect("a completion within the window")
    }

    #[test]
    fn quiet_bus_times_out_with_pending_state() {
        let mut m = sys();
        // Nothing enqueued: the window lapses and the snapshot is empty.
        let err = m.run_until_completion(0, 50).unwrap_err();
        assert_eq!(err.start, 0);
        assert_eq!(err.window, 50);
        assert_eq!(err.in_flight, None);
        assert!(err.queued.is_empty());
        assert_eq!(err.store_buffered, vec![0; 4]);
        // A buffered store that cannot complete in one cycle shows up in
        // the snapshot instead of a bare panic message.
        assert!(m.store(2, 0x1_0000, 8));
        let err = m.run_until_completion(100, 1).unwrap_err();
        assert_eq!(err.store_buffered[2], 1);
        assert!(err.in_flight.is_some() || !err.queued.is_empty());
    }

    #[test]
    fn cold_load_misses_then_hits() {
        let mut m = sys();
        assert_eq!(m.load(0, 0x1_0000, r0(), 0), LoadOutcome::Miss);
        let (t, c) = run_until_completion(&mut m, 0, 1000);
        assert_eq!(
            c,
            vec![Completion::LoadFill {
                core: 0,
                dst: r0(),
                epoch: 0
            }]
        );
        // Memory latency for a cold miss.
        assert!(t >= 120, "completed too fast at {t}");
        assert_eq!(m.load(0, 0x1_0008, r0(), 0), LoadOutcome::Hit);
    }

    #[test]
    fn second_core_gets_line_faster_from_l2_or_peer() {
        let mut m = sys();
        m.load(0, 0x1_0000, r0(), 0);
        run_until_completion(&mut m, 0, 1000);
        m.load(1, 0x1_0000, r0(), 0);
        let (t0, _) = run_until_completion(&mut m, 200, 1000);
        assert!(
            t0 - 200 < 120,
            "should be served by L2/peer, took {}",
            t0 - 200
        );
    }

    #[test]
    fn store_gains_ownership_and_invalidates_sharers() {
        let mut m = sys();
        // Both cores read the line -> shared.
        m.load(0, 0x1_0000, r0(), 0);
        run_until_completion(&mut m, 0, 1000);
        m.load(1, 0x1_0000, r0(), 0);
        run_until_completion(&mut m, 200, 1000);
        // Core 0 stores: must upgrade and invalidate core 1.
        assert!(m.store(0, 0x1_0000, 8));
        for t in 400..800 {
            m.tick(t);
        }
        assert!(m.store_buffer_empty(0));
        assert_eq!(m.l1d[1].peek(0x1_0000), None);
        assert_eq!(m.l1d[0].peek(0x1_0000), Some(LineState::M));
    }

    #[test]
    fn dirty_line_is_supplied_cache_to_cache() {
        let mut m = sys();
        assert!(m.store(0, 0x1_0000, 8));
        for t in 0..400 {
            m.tick(t);
        }
        assert_eq!(m.l1d[0].peek(0x1_0000), Some(LineState::M));
        // Core 1 load: supplier is core 0 (dirty), downgrading it to O.
        m.load(1, 0x1_0000, r0(), 0);
        let (t, _) = run_until_completion(&mut m, 400, 1000);
        assert!(t - 400 <= 16, "c2c should be fast, took {}", t - 400);
        assert_eq!(m.l1d[0].peek(0x1_0000), Some(LineState::O));
        assert_eq!(m.l1d[1].peek(0x1_0000), Some(LineState::S));
    }

    #[test]
    fn store_buffer_forwards_to_loads() {
        let mut m = sys();
        assert!(m.store(0, 0x1_0000, 8));
        // Load overlapping the buffered store hits by forwarding.
        assert_eq!(m.load(0, 0x1_0004, r0(), 0), LoadOutcome::Hit);
    }

    #[test]
    fn store_buffer_fills_up() {
        let mut m = sys();
        // The drain needs bus round-trips, so 8 quick stores to distinct
        // lines fill the buffer.
        for i in 0..8 {
            assert!(m.store(0, 0x1_0000 + i * 64, 8), "store {i} rejected");
            m.tick(i);
        }
        assert!(!m.store(0, 0x2_0000, 8));
    }

    #[test]
    fn ifetch_fills_once() {
        let mut m = sys();
        assert!(!m.ifetch(0, 0x8000_0000));
        assert!(!m.ifetch(0, 0x8000_0004)); // same line, already pending
        let mut done = false;
        for t in 0..400 {
            m.tick(t);
            if m.ifetch(0, 0x8000_0000) {
                done = true;
                break;
            }
        }
        assert!(done);
        assert!(m.ifetch(0, 0x8000_001c)); // same 32B line
    }

    #[test]
    fn tm_commit_invalidates_peers_and_completes() {
        let mut m = sys();
        m.load(1, 0x1_0000, r0(), 0);
        run_until_completion(&mut m, 0, 1000);
        m.enqueue_tm_commit(0, vec![0x1_0000, 0x1_0020]);
        let (_, c) = run_until_completion(&mut m, 200, 1000);
        assert_eq!(c, vec![Completion::TmCommitDone { core: 0 }]);
        assert_eq!(m.l1d[1].peek(0x1_0000), None);
        assert_eq!(m.l1d[0].peek(0x1_0000), Some(LineState::M));
    }

    #[test]
    fn bus_serializes_requests() {
        let mut m = sys();
        m.load(0, 0x1_0000, r0(), 0);
        m.load(1, 0x2_0000, r0(), 1);
        // First completion strictly before the second.
        let (t1, c1) = run_until_completion(&mut m, 0, 1000);
        let (t2, c2) = run_until_completion(&mut m, t1 + 1, 1000);
        assert!(matches!(c1[0], Completion::LoadFill { core: 0, .. }));
        assert!(matches!(c2[0], Completion::LoadFill { core: 1, .. }));
        assert!(t2 > t1);
    }
}
