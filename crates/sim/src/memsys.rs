//! The memory hierarchy: per-core L1s, shared L2, the coherence
//! interconnect, store buffers.
//!
//! Timing only — data values live in the eager functional memory (see
//! [`crate::cache`] for the rationale). The interconnect is organized as
//! address-interleaved *banks*, each serializing one coherence
//! transaction at a time:
//!
//! * [`CoherenceBackend::Snooping`] is a single bank — the paper's
//!   bus-based MOESI snooping protocol, one transaction machine-wide,
//!   cache-to-cache transfers cheaper than memory. Every pinned golden
//!   fingerprint runs on this backend.
//! * [`CoherenceBackend::Directory`] home-banks lines across several
//!   banks: transactions to distinct banks overlap, and each grant pays
//!   the directory-indirection latency (`MachineConfig::dir_latency`)
//!   for the home lookup the snooping broadcast gets for free.
//!
//! Functional MOESI state transitions are identical on both backends (a
//! directory tracks precise sharers, so it invalidates/downgrades the
//! same caches the snoop would); only occupancy and latency differ. See
//! DESIGN.md §9 for the divergence argument.

use crate::cache::{LineState, TagCache};
use crate::config::{CoherenceBackend, MachineConfig};
use crate::fault::{FaultBudgetReport, FaultKind, FaultSite, SiteFaults, SiteInjector};
use std::collections::VecDeque;
use std::fmt;
use voltron_ir::Reg;

/// Bus occupancy of an ownership upgrade (S -> M invalidation round).
const UPGRADE_LATENCY: u64 = 4;

/// What a bus transaction is for.
#[derive(Debug, Clone, PartialEq)]
pub enum BusKind {
    /// A load miss: fetch a line in shared state.
    ReadShared {
        /// Destination register to wake.
        dst: Reg,
        /// Core epoch at issue (stale fills after a TM abort are dropped).
        epoch: u64,
    },
    /// A store miss: fetch the line with ownership.
    ReadExclusive,
    /// A store hit on a Shared line: invalidate other copies.
    Upgrade,
    /// An instruction-cache fill.
    IFill,
    /// A transactional commit broadcasting `extra_lines + 1` lines.
    TmCommit {
        /// All written lines (the req's `line` is the first).
        lines: Vec<u64>,
    },
}

impl BusKind {
    /// Short label for trace tracks.
    pub fn label(&self) -> &'static str {
        match self {
            BusKind::ReadShared { .. } => "read-shared",
            BusKind::ReadExclusive => "read-exclusive",
            BusKind::Upgrade => "upgrade",
            BusKind::IFill => "i-fill",
            BusKind::TmCommit { .. } => "tm-commit",
        }
    }
}

/// A queued bus request.
#[derive(Debug, Clone, PartialEq)]
pub struct BusReq {
    /// Requesting core.
    pub core: usize,
    /// Line-aligned address.
    pub line: u64,
    /// Transaction type.
    pub kind: BusKind,
}

/// A completion the machine must dispatch to a core.
#[derive(Debug, Clone, PartialEq)]
pub enum Completion {
    /// A load fill arrived: wake `dst` (if `epoch` still matches).
    LoadFill {
        /// The core that issued the load.
        core: usize,
        /// The register the load targets.
        dst: Reg,
        /// Epoch at issue.
        epoch: u64,
    },
    /// A transactional commit finished its bus broadcast.
    TmCommitDone {
        /// The committing core.
        core: usize,
    },
}

/// Result of a load lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// L1 (or store-buffer forwarding) hit; data usable after the hit
    /// latency.
    Hit,
    /// Miss; a bus request was enqueued, the destination register stays
    /// pending until the fill completes.
    Miss,
}

/// Pending state of one interconnect bank at timeout.
#[derive(Debug, Clone, PartialEq)]
pub struct BankStall {
    /// Bank index (always 0 on the snooping backend's single bus).
    pub bank: usize,
    /// The transaction occupying the bank, if any.
    pub in_flight: Option<BusReq>,
    /// Requests still queued behind it.
    pub queued: Vec<BusReq>,
}

impl BankStall {
    /// True when anything is pending on this bank.
    pub fn is_stalled(&self) -> bool {
        self.in_flight.is_some() || !self.queued.is_empty()
    }
}

/// The interconnect produced no completion within an observation window:
/// the typed snapshot of everything still pending (in place of the panic
/// this condition used to raise), so a wedged hierarchy is diagnosable.
/// The snapshot is per bank, so on a directory machine the forensics
/// name *which* bank wedged instead of assuming a single bus.
#[derive(Debug, Clone, PartialEq)]
pub struct BusTimeout {
    /// First cycle of the observation window.
    pub start: u64,
    /// Cycles observed.
    pub window: u64,
    /// Backend label (`"snooping"` or `"directory"`).
    pub backend: &'static str,
    /// Per-bank pending snapshots, indexed by bank id (one entry, the
    /// bus, on the snooping backend).
    pub banks: Vec<BankStall>,
    /// Store-buffer occupancy per core.
    pub store_buffered: Vec<usize>,
}

impl BusTimeout {
    /// The banks with anything still pending — the segments that wedged.
    pub fn stalled_banks(&self) -> Vec<&BankStall> {
        self.banks.iter().filter(|b| b.is_stalled()).collect()
    }

    /// Total requests pending (in flight or queued) across all banks.
    pub fn pending_requests(&self) -> usize {
        self.banks
            .iter()
            .map(|b| usize::from(b.in_flight.is_some()) + b.queued.len())
            .sum()
    }
}

impl fmt::Display for BusTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no {} completion within {} cycles from {}: ",
            self.backend, self.window, self.start
        )?;
        let stalled = self.stalled_banks();
        if stalled.is_empty() {
            write!(f, "all {} bank(s) idle", self.banks.len())?;
        } else {
            let segment = if self.backend == "snooping" {
                "bus"
            } else {
                "bank"
            };
            for (i, b) in stalled.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(
                    f,
                    "{segment} {}: in-flight {:?}, {} queued",
                    b.bank,
                    b.in_flight,
                    b.queued.len()
                )?;
            }
        }
        write!(f, ", store buffers {:?}", self.store_buffered)
    }
}

impl std::error::Error for BusTimeout {}

#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    addr: u64,
    width: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    req: BusReq,
    finish: u64,
    /// Whether peers/L2/memory supplied (grant-time decision, applied at
    /// completion).
    others_had_copy: bool,
}

/// Memory-system statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Completed bus transactions.
    pub bus_transactions: u64,
    /// Total cycles the interconnect was occupied, summed over banks.
    pub bus_busy_cycles: u64,
    /// Occupied cycles per bank (one entry, equal to
    /// `bus_busy_cycles`, on the snooping backend).
    pub bank_busy_cycles: Vec<u64>,
    /// Cache-to-cache supplies.
    pub c2c_transfers: u64,
    /// Lines supplied by main memory.
    pub mem_fetches: u64,
    /// L1D (hits, misses) per core.
    pub l1d: Vec<(u64, u64)>,
    /// L1I (hits, misses) per core.
    pub l1i: Vec<(u64, u64)>,
}

/// One interconnect bank: a request queue and at most one transaction in
/// flight. The snooping backend is exactly one bank, which reproduces
/// the old single-bus `queue`/`current` pair field for field.
#[derive(Debug, Default)]
struct Bank {
    queue: VecDeque<BusReq>,
    current: Option<InFlight>,
    /// Overlapping in-flight transactions, used only under the
    /// infinite-bandwidth idealization (always empty on measured runs,
    /// so the hot path never scans it).
    extra: Vec<InFlight>,
    busy: u64,
}

/// Runtime fault state for the interconnect's two sites (grant loss and
/// transient bank stalls). Present only when the machine config carries
/// a fault plan.
#[derive(Debug)]
struct MemFaults {
    grant_loss: SiteInjector,
    stall: SiteInjector,
    /// Reissue budget per request ([`crate::config::Watchdogs`]).
    budget: u32,
    backoff_base: u64,
    /// First budget exhaustion, held for the machine to surface.
    failure: Option<FaultBudgetReport>,
    /// Consecutive grant losses of each bank's head request.
    lost: Vec<u32>,
    /// Cycle before which a bank may not grant again (post-loss backoff;
    /// `u64::MAX` parks a bank whose budget is exhausted).
    blocked_until: Vec<u64>,
    log_enabled: bool,
    events: Vec<(u64, usize, FaultSite, &'static str)>,
}

impl MemFaults {
    /// Bounded exponential backoff, mirroring
    /// [`crate::config::Watchdogs::backoff`].
    fn backoff(&self, attempt: u32) -> u64 {
        self.backoff_base << attempt.saturating_sub(1).min(10)
    }

    fn log(&mut self, now: u64, core: usize, site: FaultSite, action: &'static str) {
        if self.log_enabled {
            self.events.push((now, core, site, action));
        }
    }
}

/// The full memory system.
#[derive(Debug)]
pub struct MemSys {
    cfg: MachineConfig,
    l1d: Vec<TagCache>,
    l1i: Vec<TagCache>,
    l2: TagCache,
    banks: Vec<Bank>,
    /// Directory-indirection latency per grant (0 on snooping).
    dir_penalty: u64,
    store_bufs: Vec<VecDeque<StoreEntry>>,
    /// Head-of-buffer bus request outstanding.
    sb_waiting: Vec<bool>,
    /// Line being I-fetched per core.
    ifill_pending: Vec<Option<u64>>,
    stats_bus: u64,
    stats_busy: u64,
    stats_c2c: u64,
    stats_mem: u64,
    /// Grants made by the last [`MemSys::tick`] `(core, kind label,
    /// start, finish)`, for the machine's trace path (cleared at the top
    /// of every tick, drained via [`MemSys::take_grants`]). The snooping
    /// backend grants at most once per tick; the directory backend can
    /// grant once per bank.
    grants: Vec<(usize, &'static str, u64, u64)>,
    /// Fault-injection state; `None` on fault-free runs.
    faults: Option<Box<MemFaults>>,
}

impl MemSys {
    /// Build the hierarchy for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> MemSys {
        let n = cfg.cores;
        let n_banks = cfg.coherence.bank_count();
        let dir_penalty = match cfg.coherence {
            CoherenceBackend::Snooping => 0,
            CoherenceBackend::Directory { .. } => cfg.dir_latency,
        };
        MemSys {
            l1d: (0..n)
                .map(|_| TagCache::new(cfg.l1d_size, cfg.l1d_assoc, cfg.line_size))
                .collect(),
            l1i: (0..n)
                .map(|_| TagCache::new(cfg.l1i_size, cfg.l1i_assoc, cfg.line_size))
                .collect(),
            l2: TagCache::new(cfg.l2_size, cfg.l2_assoc, cfg.line_size),
            banks: (0..n_banks).map(|_| Bank::default()).collect(),
            dir_penalty,
            store_bufs: (0..n).map(|_| VecDeque::new()).collect(),
            sb_waiting: vec![false; n],
            ifill_pending: vec![None; n],
            cfg: cfg.clone(),
            stats_bus: 0,
            stats_busy: 0,
            stats_c2c: 0,
            stats_mem: 0,
            grants: Vec::new(),
            faults: cfg.faults.as_ref().map(|plan| {
                Box::new(MemFaults {
                    grant_loss: plan.injector(FaultSite::GrantLoss),
                    stall: plan.injector(FaultSite::BankStall),
                    budget: cfg.watchdogs.fault_retry_budget,
                    backoff_base: cfg.watchdogs.fault_backoff_base,
                    failure: None,
                    lost: vec![0; n_banks],
                    blocked_until: vec![0; n_banks],
                    log_enabled: false,
                    events: Vec::new(),
                })
            }),
        }
    }

    /// Return the hierarchy to its just-constructed state for `cfg`,
    /// reusing the tag-cache, bank, and store-buffer allocations when the
    /// geometry (core count, bank count, cache shapes) is unchanged.
    /// Behaviourally equivalent to `*self = MemSys::new(cfg)` — the
    /// machine pool's reset-equals-fresh tests pin this.
    pub fn reset(&mut self, cfg: &MachineConfig) {
        let same_geometry = self.cfg.cores == cfg.cores
            && self.cfg.coherence.bank_count() == cfg.coherence.bank_count()
            && (
                self.cfg.l1d_size,
                self.cfg.l1d_assoc,
                self.cfg.l1i_size,
                self.cfg.l1i_assoc,
                self.cfg.l2_size,
                self.cfg.l2_assoc,
                self.cfg.line_size,
            ) == (
                cfg.l1d_size,
                cfg.l1d_assoc,
                cfg.l1i_size,
                cfg.l1i_assoc,
                cfg.l2_size,
                cfg.l2_assoc,
                cfg.line_size,
            );
        if !same_geometry {
            *self = MemSys::new(cfg);
            return;
        }
        let n_banks = cfg.coherence.bank_count();
        for c in self.l1d.iter_mut().chain(&mut self.l1i) {
            c.reset();
        }
        self.l2.reset();
        for b in &mut self.banks {
            b.queue.clear();
            b.current = None;
            b.extra.clear();
            b.busy = 0;
        }
        self.dir_penalty = match cfg.coherence {
            CoherenceBackend::Snooping => 0,
            CoherenceBackend::Directory { .. } => cfg.dir_latency,
        };
        for q in &mut self.store_bufs {
            q.clear();
        }
        self.sb_waiting.iter_mut().for_each(|w| *w = false);
        self.ifill_pending.iter_mut().for_each(|p| *p = None);
        self.stats_bus = 0;
        self.stats_busy = 0;
        self.stats_c2c = 0;
        self.stats_mem = 0;
        self.grants.clear();
        // Fault state is rebuilt rather than cleared: the plan is
        // per-request and cheap next to a run.
        self.faults = cfg.faults.as_ref().map(|plan| {
            Box::new(MemFaults {
                grant_loss: plan.injector(FaultSite::GrantLoss),
                stall: plan.injector(FaultSite::BankStall),
                budget: cfg.watchdogs.fault_retry_budget,
                backoff_base: cfg.watchdogs.fault_backoff_base,
                failure: None,
                lost: vec![0; n_banks],
                blocked_until: vec![0; n_banks],
                log_enabled: false,
                events: Vec::new(),
            })
        });
        self.cfg = cfg.clone();
    }

    /// Home bank of a line: address-interleaved at line granularity.
    fn bank_of(&self, line: u64) -> usize {
        if self.banks.len() == 1 {
            0
        } else {
            ((line / self.cfg.line_size) % self.banks.len() as u64) as usize
        }
    }

    /// Route a request to its line's home bank.
    fn enqueue(&mut self, req: BusReq) {
        let b = self.bank_of(req.line);
        self.banks[b].queue.push_back(req);
    }

    /// Line-align an address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_size - 1)
    }

    /// Issue a load. On a miss the fill is requested and `dst` must stay
    /// pending until the matching [`Completion::LoadFill`].
    pub fn load(&mut self, core: usize, addr: u64, dst: Reg, epoch: u64) -> LoadOutcome {
        // Perfect-L1 idealization: every load hits. Sound because the
        // caches are tag-only timing models — data always comes from the
        // functional memory — so skipping the fill machinery changes
        // timing alone.
        if self.cfg.ideal.perfect_l1 {
            self.l1d[core].credit_hits(1);
            return LoadOutcome::Hit;
        }
        // Store-buffer forwarding.
        if self.store_bufs[core]
            .iter()
            .any(|e| e.addr < addr + 8 && addr < e.addr + e.width)
        {
            return LoadOutcome::Hit;
        }
        let line = self.line_of(addr);
        if self.l1d[core].access(line).is_some() {
            return LoadOutcome::Hit;
        }
        self.enqueue(BusReq {
            core,
            line,
            kind: BusKind::ReadShared { dst, epoch },
        });
        LoadOutcome::Miss
    }

    /// Issue a store into the core's store buffer. Returns false when the
    /// buffer is full (the core must stall and retry).
    pub fn store(&mut self, core: usize, addr: u64, width: u64) -> bool {
        if self.store_bufs[core].len() >= self.cfg.store_buffer_entries {
            return false;
        }
        self.store_bufs[core].push_back(StoreEntry { addr, width });
        true
    }

    /// True when the core's store buffer has drained (used at memory
    /// synchronization points).
    pub fn store_buffer_empty(&self, core: usize) -> bool {
        self.store_bufs[core].is_empty()
    }

    /// True when the core's store buffer cannot accept another entry.
    pub fn store_buffer_full(&self, core: usize) -> bool {
        self.store_bufs[core].len() >= self.cfg.store_buffer_entries
    }

    /// Instruction fetch: true when the line is in the I-cache; otherwise
    /// a fill is requested (at most one outstanding per core).
    pub fn ifetch(&mut self, core: usize, addr: u64) -> bool {
        // Perfect-L1 idealization: every fetch hits.
        if self.cfg.ideal.perfect_l1 {
            self.l1i[core].credit_hits(1);
            return true;
        }
        let line = self.line_of(addr);
        if self.ifill_pending[core] == Some(line) {
            return false;
        }
        if self.l1i[core].access(line).is_some() {
            return true;
        }
        if self.ifill_pending[core].is_none() {
            self.ifill_pending[core] = Some(line);
            self.enqueue(BusReq {
                core,
                line,
                kind: BusKind::IFill,
            });
        }
        false
    }

    /// Credit `n` repeat instruction-fetch hits on `core`'s L1I, for
    /// the fast-forward engine: every skipped cycle, a running core
    /// would have re-fetched its current (cached) instruction.
    pub fn credit_ifetch_hits(&mut self, core: usize, n: u64) {
        self.l1i[core].credit_hits(n);
    }

    /// Enqueue a transactional-commit broadcast of `lines`.
    ///
    /// # Panics
    /// Panics if `lines` is empty.
    pub fn enqueue_tm_commit(&mut self, core: usize, mut lines: Vec<u64>) {
        assert!(!lines.is_empty(), "tm commit needs at least one line");
        let first = lines.remove(0);
        self.enqueue(BusReq {
            core,
            line: first,
            kind: BusKind::TmCommit { lines },
        });
    }

    fn grant_latency(&self, req: &BusReq) -> (u64, bool) {
        let peers_dirty = (0..self.cfg.cores).any(|j| {
            j != req.core
                && self.l1d[j]
                    .peek(req.line)
                    .map(LineState::is_dirty)
                    .unwrap_or(false)
        });
        let peers_any =
            (0..self.cfg.cores).any(|j| j != req.core && self.l1d[j].peek(req.line).is_some());
        let base = match &req.kind {
            BusKind::Upgrade => UPGRADE_LATENCY,
            BusKind::TmCommit { lines } => {
                if self.cfg.ideal.zero_tm_conflicts {
                    // The knob also idealizes commit broadcasts to a
                    // single cycle: the TM ceiling covers conflict *and*
                    // commit-serialization cost together.
                    1
                } else {
                    self.cfg.tm_commit_base + (lines.len() as u64 + 1) * self.cfg.tm_commit_per_line
                }
            }
            BusKind::IFill => {
                if self.l2.peek(req.line).is_some() {
                    self.cfg.l2_latency
                } else {
                    self.cfg.mem_latency
                }
            }
            BusKind::ReadShared { .. } | BusKind::ReadExclusive => {
                if peers_dirty {
                    self.cfg.c2c_latency
                } else if self.l2.peek(req.line).is_some() {
                    self.cfg.l2_latency
                } else if peers_any {
                    self.cfg.c2c_latency
                } else {
                    self.cfg.mem_latency
                }
            }
        };
        // Directory indirection: the home-bank lookup + forwarding that
        // the snooping broadcast resolves combinationally.
        let mut lat = base + self.dir_penalty;
        if matches!(
            req.kind,
            BusKind::ReadShared { .. } | BusKind::ReadExclusive
        ) {
            if let Some(v) = self.l1d[req.core].victim_state(req.line) {
                if v.is_dirty() {
                    lat += self.cfg.writeback_penalty;
                }
            }
        }
        (lat, peers_any)
    }

    fn writeback_to_l2(&mut self, line: u64) {
        // Dirty L1 eviction: install/mark dirty in L2 (L2 evictions go to
        // memory for free — memory is always functionally up to date).
        self.l2.fill(line, LineState::M);
    }

    fn fill_l1d(&mut self, core: usize, line: u64, state: LineState) {
        if let Some((vline, vstate)) = self.l1d[core].fill(line, state) {
            if vstate.is_dirty() {
                self.writeback_to_l2(vline);
            }
        }
    }

    fn complete(&mut self, inflight: InFlight, out: &mut Vec<Completion>) {
        let req = inflight.req;
        let n = self.cfg.cores;
        match req.kind {
            BusKind::ReadShared { dst, epoch } => {
                let mut shared = false;
                for j in 0..n {
                    if j == req.core {
                        continue;
                    }
                    match self.l1d[j].peek(req.line) {
                        Some(LineState::M) => {
                            self.l1d[j].set_state(req.line, LineState::O);
                            shared = true;
                            self.stats_c2c += 1;
                        }
                        Some(LineState::E) => {
                            self.l1d[j].set_state(req.line, LineState::S);
                            shared = true;
                        }
                        Some(_) => shared = true,
                        None => {}
                    }
                }
                if self.l2.peek(req.line).is_none() && !shared {
                    // Came from memory: install in L2 too.
                    self.l2.fill(req.line, LineState::E);
                    self.stats_mem += 1;
                }
                let state = if shared { LineState::S } else { LineState::E };
                self.fill_l1d(req.core, req.line, state);
                out.push(Completion::LoadFill {
                    core: req.core,
                    dst,
                    epoch,
                });
            }
            BusKind::ReadExclusive => {
                for j in 0..n {
                    if j != req.core {
                        self.l1d[j].invalidate(req.line);
                    }
                }
                if self.l2.peek(req.line).is_none() && !inflight.others_had_copy {
                    self.l2.fill(req.line, LineState::E);
                    self.stats_mem += 1;
                }
                self.fill_l1d(req.core, req.line, LineState::M);
                self.retire_store(req.core);
            }
            BusKind::Upgrade => {
                for j in 0..n {
                    if j != req.core {
                        self.l1d[j].invalidate(req.line);
                    }
                }
                match self.l1d[req.core].peek(req.line) {
                    Some(_) => self.l1d[req.core].set_state(req.line, LineState::M),
                    None => self.fill_l1d(req.core, req.line, LineState::M),
                }
                self.retire_store(req.core);
            }
            BusKind::IFill => {
                self.l1i[req.core].fill(req.line, LineState::E);
                if self.l2.peek(req.line).is_none() {
                    self.l2.fill(req.line, LineState::E);
                }
                self.ifill_pending[req.core] = None;
            }
            BusKind::TmCommit { lines } => {
                let mut all = lines;
                all.push(req.line);
                for line in all {
                    for j in 0..n {
                        if j != req.core {
                            self.l1d[j].invalidate(line);
                        }
                    }
                    match self.l1d[req.core].peek(line) {
                        Some(_) => self.l1d[req.core].set_state(line, LineState::M),
                        None => self.fill_l1d(req.core, line, LineState::M),
                    }
                }
                out.push(Completion::TmCommitDone { core: req.core });
            }
        }
        self.stats_bus += 1;
    }

    fn retire_store(&mut self, core: usize) {
        self.sb_waiting[core] = false;
        self.store_bufs[core].pop_front();
    }

    fn drain_store_buffers(&mut self) {
        // Perfect-L1 idealization: stores retire instantly — no
        // ownership traffic, no StoreBuf back-pressure.
        if self.cfg.ideal.perfect_l1 {
            for buf in &mut self.store_bufs {
                buf.clear();
            }
            return;
        }
        for core in 0..self.cfg.cores {
            if self.sb_waiting[core] {
                continue;
            }
            let Some(head) = self.store_bufs[core].front().copied() else {
                continue;
            };
            let line = self.line_of(head.addr);
            match self.l1d[core].access(line) {
                Some(s) if s.is_writable() => {
                    self.l1d[core].set_state(line, LineState::M);
                    self.store_bufs[core].pop_front();
                }
                Some(_) => {
                    // Shared or Owned: need exclusive ownership.
                    self.enqueue(BusReq {
                        core,
                        line,
                        kind: BusKind::Upgrade,
                    });
                    self.sb_waiting[core] = true;
                }
                None => {
                    self.enqueue(BusReq {
                        core,
                        line,
                        kind: BusKind::ReadExclusive,
                    });
                    self.sb_waiting[core] = true;
                }
            }
        }
    }

    /// Advance one cycle: finish due transactions, grant the next per
    /// bank, drain store buffers. Returns completions for the machine to
    /// dispatch. Banks are visited in index order, so completion and
    /// grant order is deterministic; with a single bank (snooping) this
    /// is the old one-bus loop unchanged.
    pub fn tick(&mut self, now: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        self.grants.clear();
        for b in 0..self.banks.len() {
            if let Some(cur) = &self.banks[b].current {
                if now >= cur.finish {
                    let cur = self.banks[b].current.take().expect("checked above");
                    self.complete(cur, &mut out);
                }
            }
            // Infinite-bandwidth idealization: complete due overlapped
            // transactions (grant order preserved for determinism), then
            // grant *everything* queued — latency is still paid, queueing
            // never is.
            if self.cfg.ideal.infinite_bandwidth {
                if !self.banks[b].extra.is_empty() {
                    let mut due = Vec::new();
                    let mut keep = Vec::new();
                    for f in self.banks[b].extra.drain(..) {
                        if now >= f.finish {
                            due.push(f);
                        } else {
                            keep.push(f);
                        }
                    }
                    self.banks[b].extra = keep;
                    for f in due {
                        self.complete(f, &mut out);
                    }
                }
                while let Some(req) = self.banks[b].queue.pop_front() {
                    let (lat, others) = self.grant_latency(&req);
                    self.stats_busy += lat;
                    self.banks[b].busy += lat;
                    self.grants
                        .push((req.core, req.kind.label(), now, now + lat));
                    self.banks[b].extra.push(InFlight {
                        req,
                        finish: now + lat,
                        others_had_copy: others,
                    });
                }
                continue;
            }
            if self.banks[b].current.is_none() {
                // A bank backing off after a lost grant may not regrant
                // until its retry slot (checked before any RNG draw so
                // the draw sequence is fast-forward safe).
                if self
                    .faults
                    .as_deref()
                    .is_some_and(|f| f.blocked_until[b] > now)
                {
                    continue;
                }
                if let Some(req) = self.banks[b].queue.pop_front() {
                    // Consult the injectors at the grant — the
                    // architectural event. A lost grant reissues the
                    // request at the head of the queue after backoff; a
                    // transient stall just inflates this grant's latency.
                    let mut extra = 0;
                    if let Some(f) = self.faults.as_deref_mut() {
                        if f.grant_loss.fire(now).is_some() {
                            let attempts = f.lost[b] + 1;
                            if attempts > f.budget {
                                f.grant_loss.note_gave_up();
                                f.blocked_until[b] = u64::MAX;
                                f.failure.get_or_insert(FaultBudgetReport {
                                    cycle: now,
                                    site: FaultSite::GrantLoss,
                                    attempts,
                                    budget: f.budget,
                                    detail: format!(
                                        "bank {b} {} request from core {}",
                                        req.kind.label(),
                                        req.core
                                    ),
                                });
                                f.log(now, req.core, FaultSite::GrantLoss, "gave-up");
                            } else {
                                f.grant_loss.note_retried(1);
                                f.lost[b] = attempts;
                                f.blocked_until[b] = now + f.backoff(attempts);
                                f.log(now, req.core, FaultSite::GrantLoss, "lost");
                            }
                            self.banks[b].queue.push_front(req);
                            continue;
                        }
                        if f.lost[b] > 0 {
                            f.lost[b] = 0;
                            f.grant_loss.note_recovered();
                            f.log(now, req.core, FaultSite::GrantLoss, "recovered");
                        }
                        if let Some(FaultKind::Stall(d)) = f.stall.fire(now) {
                            extra = d;
                            f.stall.note_recovered();
                            f.log(now, req.core, FaultSite::BankStall, "stalled");
                        }
                    }
                    let (lat, others) = self.grant_latency(&req);
                    let lat = lat + extra;
                    self.stats_busy += lat;
                    self.banks[b].busy += lat;
                    self.grants
                        .push((req.core, req.kind.label(), now, now + lat));
                    self.banks[b].current = Some(InFlight {
                        req,
                        finish: now + lat,
                        others_had_copy: others,
                    });
                }
            }
        }
        self.drain_store_buffers();
        out
    }

    /// Earliest future cycle at which [`MemSys::tick`] would do anything
    /// beyond the identity transition, for the machine's fast-forward
    /// engine. `Some(now)` means the very next tick has work (queued
    /// requests can be granted, or an unblocked store buffer has a head
    /// to drain — both happen at grant/drain time, not at a known future
    /// cycle); `Some(t)` with `t > now` is the earliest in-flight
    /// completion across banks; `None` means the hierarchy is fully
    /// quiescent.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let sb_busy = self
            .store_bufs
            .iter()
            .zip(&self.sb_waiting)
            .any(|(q, &w)| !q.is_empty() && !w);
        if sb_busy {
            return Some(now);
        }
        let mut wake: Option<u64> = None;
        let mut consider = |at: u64| {
            if at > now && wake.is_none_or(|w| at < w) {
                wake = Some(at);
            }
        };
        for (b, bank) in self.banks.iter().enumerate() {
            if bank.current.is_none() && !bank.queue.is_empty() {
                // A bank backing off after a lost grant regrants at
                // `blocked_until` (a parked gave-up bank never does; the
                // machine surfaces the budget error instead).
                match self.faults.as_deref().map(|f| f.blocked_until[b]) {
                    Some(at) if at > now => {
                        if at != u64::MAX {
                            consider(at);
                        }
                    }
                    _ => return Some(now),
                }
            }
            if let Some(c) = &bank.current {
                consider(c.finish);
            }
            for f in &bank.extra {
                consider(f.finish);
            }
        }
        wake
    }

    /// Tick from `start` until a completion arrives, returning the cycle
    /// it arrived at and the completions. Intended for tests and drivers
    /// that step the hierarchy in isolation; the machine's cycle loop
    /// calls [`MemSys::tick`] directly and never blocks on the bus.
    ///
    /// # Errors
    /// Returns a [`BusTimeout`] carrying the pending-request state when
    /// `window` cycles pass without a completion.
    pub fn run_until_completion(
        &mut self,
        start: u64,
        window: u64,
    ) -> Result<(u64, Vec<Completion>), BusTimeout> {
        for t in start..start + window {
            let c = self.tick(t);
            if !c.is_empty() {
                return Ok((t, c));
            }
        }
        Err(self.timeout_snapshot(start, window))
    }

    /// Build the per-bank forensics snapshot for a [`BusTimeout`].
    pub fn timeout_snapshot(&self, start: u64, window: u64) -> BusTimeout {
        BusTimeout {
            start,
            window,
            backend: self.cfg.coherence.label(),
            banks: self
                .banks
                .iter()
                .enumerate()
                .map(|(i, b)| BankStall {
                    bank: i,
                    in_flight: b.current.as_ref().map(|c| c.req.clone()),
                    queued: b.queue.iter().cloned().collect(),
                })
                .collect(),
            store_buffered: self.store_bufs.iter().map(VecDeque::len).collect(),
        }
    }

    /// Drain the grants made by the last [`MemSys::tick`] (cleared at
    /// the top of every tick, so draining after each tick sees every
    /// grant exactly once). At most one per bank per tick: a single
    /// element on the snooping bus, up to `banks` on a directory
    /// machine.
    pub fn take_grants(&mut self) -> std::vec::Drain<'_, (usize, &'static str, u64, u64)> {
        self.grants.drain(..)
    }

    // ---- fault injection ----

    /// Enable the fault/recovery event log (only useful with a tracer
    /// attached; unbounded otherwise, so off by default).
    pub fn set_fault_logging(&mut self, on: bool) {
        if let Some(f) = self.faults.as_deref_mut() {
            f.log_enabled = on;
        }
    }

    /// Drain the fault/recovery log: `(cycle, core, site, action)`.
    pub fn take_fault_events(&mut self) -> Vec<(u64, usize, FaultSite, &'static str)> {
        self.faults
            .as_deref_mut()
            .map_or_else(Vec::new, |f| std::mem::take(&mut f.events))
    }

    /// The first retry-budget exhaustion, if one occurred (the machine
    /// polls this after each tick and fails the run closed).
    pub fn take_fault_failure(&mut self) -> Option<FaultBudgetReport> {
        self.faults.as_deref_mut().and_then(|f| f.failure.take())
    }

    /// Per-site fault counters for the interconnect's two sites.
    pub fn fault_stats(&self) -> Vec<(FaultSite, SiteFaults)> {
        self.faults.as_deref().map_or_else(Vec::new, |f| {
            vec![
                (FaultSite::GrantLoss, f.grant_loss.stats()),
                (FaultSite::BankStall, f.stall.stats()),
            ]
        })
    }

    /// Cumulative interconnect-busy cycles so far, summed over banks
    /// (the interval probes' bus utilization counter; also in
    /// [`MemStats::bus_busy_cycles`]).
    pub fn bus_busy_cycles(&self) -> u64 {
        self.stats_busy
    }

    /// Snapshot the statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            bus_transactions: self.stats_bus,
            bus_busy_cycles: self.stats_busy,
            bank_busy_cycles: self.banks.iter().map(|b| b.busy).collect(),
            c2c_transfers: self.stats_c2c,
            mem_fetches: self.stats_mem,
            l1d: self.l1d.iter().map(|c| c.stats()).collect(),
            l1i: self.l1i.iter().map(|c| c.stats()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSys {
        MemSys::new(&MachineConfig::paper(4))
    }

    fn r0() -> Reg {
        Reg::gpr(0)
    }

    /// Run ticks until a completion arrives (the typed path asserts one
    /// comes within `cap` cycles).
    fn run_until_completion(m: &mut MemSys, start: u64, cap: u64) -> (u64, Vec<Completion>) {
        m.run_until_completion(start, cap)
            .expect("a completion within the window")
    }

    #[test]
    fn lost_grant_is_reissued_after_backoff() {
        use crate::fault::FaultPlan;
        let mut cfg = MachineConfig::paper(4);
        cfg.faults = Some(FaultPlan::seeded(0, 0.0).with_event(0, FaultKind::GrantLoss));
        let mut m = MemSys::new(&cfg);
        m.load(0, 0x1_0000, r0(), 0);
        // The first grant attempt loses; the bank backs off 8 cycles and
        // regrants, so the fill completes one backoff later than clean.
        let (t, c) = m.run_until_completion(0, 1000).unwrap();
        assert!(matches!(c[0], Completion::LoadFill { core: 0, .. }));
        let clean = {
            let mut m = sys();
            m.load(0, 0x1_0000, r0(), 0);
            m.run_until_completion(0, 1000).unwrap().0
        };
        assert_eq!(t, clean + 8);
        let gl = m.fault_stats()[0].1;
        assert_eq!((gl.injected, gl.retried, gl.recovered), (1, 1, 1));
        assert!(m.take_fault_failure().is_none());
    }

    #[test]
    fn bank_stall_inflates_one_grant() {
        use crate::fault::FaultPlan;
        let mut cfg = MachineConfig::paper(4);
        cfg.faults = Some(FaultPlan::seeded(0, 0.0).with_event(0, FaultKind::Stall(11)));
        let mut m = MemSys::new(&cfg);
        m.load(0, 0x1_0000, r0(), 0);
        let (t, _) = m.run_until_completion(0, 1000).unwrap();
        let clean = {
            let mut m = sys();
            m.load(0, 0x1_0000, r0(), 0);
            m.run_until_completion(0, 1000).unwrap().0
        };
        assert_eq!(t, clean + 11);
        let st = m.fault_stats()[1].1;
        assert_eq!((st.injected, st.recovered), (1, 1));
    }

    #[test]
    fn grant_loss_budget_exhaustion_fails_closed() {
        use crate::fault::FaultPlan;
        let mut cfg = MachineConfig::paper(4);
        cfg.faults = Some(FaultPlan::seeded(1, 1.0).only(FaultSite::GrantLoss));
        let mut m = MemSys::new(&cfg);
        m.load(0, 0x1_0000, r0(), 0);
        for t in 0..5000 {
            m.tick(t);
        }
        let report = m.take_fault_failure().expect("budget must exhaust");
        assert_eq!(report.site, FaultSite::GrantLoss);
        assert!(report.attempts > report.budget);
        assert!(report.detail.contains("read-shared"));
        assert_eq!(m.fault_stats()[0].1.gave_up, 1);
        // The parked bank never regrants and never wakes fast-forward.
        assert_eq!(m.next_event(5000), None);
    }

    #[test]
    fn quiet_bus_times_out_with_pending_state() {
        let mut m = sys();
        // Nothing enqueued: the window lapses and the snapshot is empty.
        let err = m.run_until_completion(0, 50).unwrap_err();
        assert_eq!(err.start, 0);
        assert_eq!(err.window, 50);
        assert_eq!(err.backend, "snooping");
        assert_eq!(err.banks.len(), 1);
        assert!(err.stalled_banks().is_empty());
        assert_eq!(err.pending_requests(), 0);
        assert_eq!(err.store_buffered, vec![0; 4]);
        assert!(err.to_string().contains("all 1 bank(s) idle"));
        // A buffered store that cannot complete in one cycle shows up in
        // the snapshot instead of a bare panic message.
        assert!(m.store(2, 0x1_0000, 8));
        let err = m.run_until_completion(100, 1).unwrap_err();
        assert_eq!(err.store_buffered[2], 1);
        assert!(err.pending_requests() > 0);
        // The snooping forensics name the single bus segment.
        assert_eq!(err.stalled_banks()[0].bank, 0);
        assert!(err.to_string().contains("bus 0:"), "{err}");
    }

    fn dir_sys(cores: usize, banks: usize) -> MemSys {
        let cfg = MachineConfig::scaled(cores).with_backend(CoherenceBackend::Directory { banks });
        MemSys::new(&cfg)
    }

    #[test]
    fn directory_timeout_names_the_stalled_bank() {
        let mut m = dir_sys(16, 4);
        // Two lines, line_size 32, interleaved: 0x1_0000 -> bank 0,
        // 0x1_0020 -> bank 1. Load only the second; its home bank is the
        // one the forensics must name.
        m.load(3, 0x1_0020, r0(), 0);
        let err = m.run_until_completion(0, 1).unwrap_err();
        assert_eq!(err.backend, "directory");
        assert_eq!(err.banks.len(), 4);
        let stalled = err.stalled_banks();
        assert_eq!(stalled.len(), 1);
        assert_eq!(stalled[0].bank, 1);
        assert!(err.to_string().contains("bank 1:"), "{err}");
        assert!(!err.to_string().contains("bank 0:"), "{err}");
    }

    #[test]
    fn directory_banks_overlap_distinct_line_traffic() {
        // Two cold misses to lines homed on different banks must overlap
        // on the directory machine: both complete within one memory
        // latency (plus directory indirection) of issue, where the
        // snooping bus would serialize them.
        let cfg4 = MachineConfig::scaled(4);
        let span = |mut m: MemSys| {
            m.load(0, 0x1_0000, r0(), 0); // bank 0 under 4-way interleave
            m.load(1, 0x1_0020, r0(), 0); // bank 1
            let (mut done, mut t, mut last) = (0usize, 0u64, 0u64);
            while done < 2 {
                // Overlapping banks can deliver both fills in one tick.
                let (tc, c) = m.run_until_completion(t, 1000).expect("fill");
                done += c.len();
                last = tc;
                t = tc + 1;
            }
            last
        };
        let snoop_done = span(MemSys::new(&cfg4));
        let dir_done = span(dir_sys(4, 4));
        let dir_lat = cfg4.dir_latency;
        assert!(
            dir_done <= cfg4.mem_latency + dir_lat + 2,
            "banked fills should overlap, finished at {dir_done}"
        );
        assert!(
            snoop_done >= 2 * cfg4.mem_latency,
            "snooping serializes, finished at {snoop_done}"
        );
    }

    #[test]
    fn directory_grants_pay_indirection_latency() {
        let mut snoop = sys();
        let mut dir = dir_sys(4, 4);
        snoop.load(0, 0x1_0000, r0(), 0);
        dir.load(0, 0x1_0000, r0(), 0);
        let (ts, _) = snoop.run_until_completion(0, 1000).unwrap();
        let (td, _) = dir.run_until_completion(0, 1000).unwrap();
        assert_eq!(td - ts, MachineConfig::paper(4).dir_latency);
    }

    #[test]
    fn directory_keeps_moesi_transitions_identical() {
        // Same sharing scenario as `dirty_line_is_supplied_cache_to_cache`,
        // on the directory backend: the state machine must land in the
        // same MOESI states even though the timing differs.
        let mut m = dir_sys(16, 4);
        assert!(m.store(0, 0x1_0000, 8));
        for t in 0..400 {
            m.tick(t);
        }
        assert_eq!(m.l1d[0].peek(0x1_0000), Some(LineState::M));
        m.load(1, 0x1_0000, r0(), 0);
        m.run_until_completion(400, 1000).expect("c2c fill");
        assert_eq!(m.l1d[0].peek(0x1_0000), Some(LineState::O));
        assert_eq!(m.l1d[1].peek(0x1_0000), Some(LineState::S));
        // And a third core's store invalidates both through the home bank.
        assert!(m.store(2, 0x1_0000, 8));
        for t in 1500..2500 {
            m.tick(t);
        }
        assert!(m.store_buffer_empty(2));
        assert_eq!(m.l1d[0].peek(0x1_0000), None);
        assert_eq!(m.l1d[1].peek(0x1_0000), None);
        assert_eq!(m.l1d[2].peek(0x1_0000), Some(LineState::M));
    }

    #[test]
    fn per_bank_busy_cycles_sum_to_total() {
        let mut m = dir_sys(16, 4);
        for i in 0..8 {
            m.load(i % 16, 0x1_0000 + i as u64 * 32, r0(), 0);
        }
        for t in 0..2000 {
            m.tick(t);
        }
        let st = m.stats();
        assert_eq!(st.bank_busy_cycles.len(), 4);
        assert_eq!(st.bank_busy_cycles.iter().sum::<u64>(), st.bus_busy_cycles);
        // The interleave spread the 8 lines across all 4 banks.
        assert!(st.bank_busy_cycles.iter().all(|&b| b > 0));
    }

    #[test]
    fn cold_load_misses_then_hits() {
        let mut m = sys();
        assert_eq!(m.load(0, 0x1_0000, r0(), 0), LoadOutcome::Miss);
        let (t, c) = run_until_completion(&mut m, 0, 1000);
        assert_eq!(
            c,
            vec![Completion::LoadFill {
                core: 0,
                dst: r0(),
                epoch: 0
            }]
        );
        // Memory latency for a cold miss.
        assert!(t >= 120, "completed too fast at {t}");
        assert_eq!(m.load(0, 0x1_0008, r0(), 0), LoadOutcome::Hit);
    }

    #[test]
    fn second_core_gets_line_faster_from_l2_or_peer() {
        let mut m = sys();
        m.load(0, 0x1_0000, r0(), 0);
        run_until_completion(&mut m, 0, 1000);
        m.load(1, 0x1_0000, r0(), 0);
        let (t0, _) = run_until_completion(&mut m, 200, 1000);
        assert!(
            t0 - 200 < 120,
            "should be served by L2/peer, took {}",
            t0 - 200
        );
    }

    #[test]
    fn store_gains_ownership_and_invalidates_sharers() {
        let mut m = sys();
        // Both cores read the line -> shared.
        m.load(0, 0x1_0000, r0(), 0);
        run_until_completion(&mut m, 0, 1000);
        m.load(1, 0x1_0000, r0(), 0);
        run_until_completion(&mut m, 200, 1000);
        // Core 0 stores: must upgrade and invalidate core 1.
        assert!(m.store(0, 0x1_0000, 8));
        for t in 400..800 {
            m.tick(t);
        }
        assert!(m.store_buffer_empty(0));
        assert_eq!(m.l1d[1].peek(0x1_0000), None);
        assert_eq!(m.l1d[0].peek(0x1_0000), Some(LineState::M));
    }

    #[test]
    fn dirty_line_is_supplied_cache_to_cache() {
        let mut m = sys();
        assert!(m.store(0, 0x1_0000, 8));
        for t in 0..400 {
            m.tick(t);
        }
        assert_eq!(m.l1d[0].peek(0x1_0000), Some(LineState::M));
        // Core 1 load: supplier is core 0 (dirty), downgrading it to O.
        m.load(1, 0x1_0000, r0(), 0);
        let (t, _) = run_until_completion(&mut m, 400, 1000);
        assert!(t - 400 <= 16, "c2c should be fast, took {}", t - 400);
        assert_eq!(m.l1d[0].peek(0x1_0000), Some(LineState::O));
        assert_eq!(m.l1d[1].peek(0x1_0000), Some(LineState::S));
    }

    #[test]
    fn store_buffer_forwards_to_loads() {
        let mut m = sys();
        assert!(m.store(0, 0x1_0000, 8));
        // Load overlapping the buffered store hits by forwarding.
        assert_eq!(m.load(0, 0x1_0004, r0(), 0), LoadOutcome::Hit);
    }

    #[test]
    fn store_buffer_fills_up() {
        let mut m = sys();
        // The drain needs bus round-trips, so 8 quick stores to distinct
        // lines fill the buffer.
        for i in 0..8 {
            assert!(m.store(0, 0x1_0000 + i * 64, 8), "store {i} rejected");
            m.tick(i);
        }
        assert!(!m.store(0, 0x2_0000, 8));
    }

    #[test]
    fn ifetch_fills_once() {
        let mut m = sys();
        assert!(!m.ifetch(0, 0x8000_0000));
        assert!(!m.ifetch(0, 0x8000_0004)); // same line, already pending
        let mut done = false;
        for t in 0..400 {
            m.tick(t);
            if m.ifetch(0, 0x8000_0000) {
                done = true;
                break;
            }
        }
        assert!(done);
        assert!(m.ifetch(0, 0x8000_001c)); // same 32B line
    }

    #[test]
    fn tm_commit_invalidates_peers_and_completes() {
        let mut m = sys();
        m.load(1, 0x1_0000, r0(), 0);
        run_until_completion(&mut m, 0, 1000);
        m.enqueue_tm_commit(0, vec![0x1_0000, 0x1_0020]);
        let (_, c) = run_until_completion(&mut m, 200, 1000);
        assert_eq!(c, vec![Completion::TmCommitDone { core: 0 }]);
        assert_eq!(m.l1d[1].peek(0x1_0000), None);
        assert_eq!(m.l1d[0].peek(0x1_0000), Some(LineState::M));
    }

    #[test]
    fn bus_serializes_requests() {
        let mut m = sys();
        m.load(0, 0x1_0000, r0(), 0);
        m.load(1, 0x2_0000, r0(), 1);
        // First completion strictly before the second.
        let (t1, c1) = run_until_completion(&mut m, 0, 1000);
        let (t2, c2) = run_until_completion(&mut m, t1 + 1, 1000);
        assert!(matches!(c1[0], Completion::LoadFill { core: 0, .. }));
        assert!(matches!(c2[0], Completion::LoadFill { core: 1, .. }));
        assert!(t2 > t1);
    }
}
