//! Static validation of lowered machine programs.
//!
//! A Voltron program is only correct if its per-core images agree with
//! each other: every coupled-mode `GET` needs a `PUT` filling the same
//! latch, `SEND`/`RECV` tag streams must have both endpoints, `SPAWN`
//! must land on a real block of a real core, broadcasts must be drained
//! by every participating core, and mode switches must be reachable on
//! every core or the switch barrier never forms. A violation of any of
//! these invariants used to surface only at runtime, as a generic
//! deadlock dump deep into the cycle loop; this pass rejects such images
//! at [`crate::Machine::new`] time with coordinates.
//!
//! The invariant catalogue (see DESIGN.md for the derivations):
//!
//! 1. **Shape** — every instruction satisfies the per-opcode operand
//!    grammar ([`voltron_ir::verify::check_mcode_inst`]), `XBEGIN`
//!    orders are integers, and `SEND`/`RECV`/`SPAWN` core operands name
//!    cores that exist.
//! 2. **Mesh** — `PUT`/`GET` directions have a neighbor; a `PUT` off the
//!    mesh faults and a `GET` off the mesh waits on a latch that can
//!    never fill.
//! 3. **Spawn targets** — the block operand indexes the *target* core's
//!    image (block ids are per-image), and a core never spawns itself.
//! 4. **Stream endpoints** — for every `(sender, receiver, tag)` stream,
//!    a `RECV` site implies at least one `SEND` site and vice versa.
//!    Matching is existence-based, not count-based: guarded sends
//!    legally nullify, and the master's per-exit-target glue blocks
//!    duplicate `RECV` sites for a single `SEND`.
//! 5. **Latch balance** — per region and per directed latch, static
//!    `PUT` and `GET` site counts agree. Coupled lowering emits these in
//!    matched pairs inside the same region, so a count mismatch means a
//!    dropped or duplicated half of a transfer.
//! 6. **Broadcast balance** — per region, each participating core holds
//!    a `GETB` site for every `BCAST` site of the *other* cores; an
//!    undrained broadcast latch wedges the next `BCAST` forever.
//! 7. **Switch alignment** — per region and mode, if any core holds a
//!    `MODE_SWITCH` site then every core present in the region does; the
//!    runtime barrier only resolves when *all* cores arrive.

use crate::config::MachineConfig;
use crate::mcode::{MachineProgram, RegionId};
use std::collections::HashMap;
use std::fmt;
use voltron_ir::verify::check_mcode_inst;
use voltron_ir::{Dir, ExecMode, Inst, Opcode, Operand, RegClass};

/// Location of an offending instruction: core, block (index and name),
/// and issue slot within the block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Core whose image holds the instruction.
    pub core: usize,
    /// Block index within that image.
    pub block: usize,
    /// Block debug label.
    pub block_name: String,
    /// Instruction index within the block.
    pub inst: usize,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {} bb{} <{}> inst {}",
            self.core, self.block, self.block_name, self.inst
        )
    }
}

/// A static cross-core consistency violation, with coordinates.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// An instruction violates the per-opcode operand grammar.
    Shape {
        /// Offending instruction.
        site: Site,
        /// Grammar violation description.
        message: String,
    },
    /// A `SEND`/`RECV`/`SPAWN` names a core the machine does not have.
    CoreOutOfRange {
        /// Offending instruction.
        site: Site,
        /// The named core.
        target: usize,
        /// Cores the program was compiled for.
        cores: usize,
    },
    /// A `PUT` or `GET` points off the mesh.
    OffMesh {
        /// Offending instruction.
        site: Site,
        /// The direction with no neighbor.
        dir: Dir,
    },
    /// A core spawns a thread onto itself.
    SelfSpawn {
        /// Offending instruction.
        site: Site,
    },
    /// A `SPAWN` block operand does not index the target core's image.
    SpawnBadBlock {
        /// Offending instruction.
        site: Site,
        /// The spawn's target core.
        target_core: usize,
        /// The named block index.
        block: usize,
        /// Blocks in the target image.
        blocks: usize,
    },
    /// A `RECV` stream no `SEND` site feeds.
    OrphanRecv {
        /// The receive site.
        site: Site,
        /// Sender the stream names.
        from: usize,
        /// CAM tag of the stream.
        tag: u32,
    },
    /// A `SEND` stream no `RECV` site drains.
    OrphanSend {
        /// The send site.
        site: Site,
        /// Receiver the stream names.
        to: usize,
        /// CAM tag of the stream.
        tag: u32,
    },
    /// Unbalanced `PUT`/`GET` site counts on one direct-mode latch.
    LatchImbalance {
        /// Region the sites belong to.
        region: RegionId,
        /// Core owning the latch (the `GET` side).
        owner: usize,
        /// Latch direction as seen from the owner.
        dir: Dir,
        /// `PUT` sites filling the latch.
        puts: usize,
        /// `GET` sites draining it.
        gets: usize,
        /// One involved instruction.
        site: Site,
    },
    /// A core's `GETB` sites cannot drain its peers' `BCAST` sites.
    BcastImbalance {
        /// Region the sites belong to.
        region: RegionId,
        /// The core with the wrong drain count.
        core: usize,
        /// `GETB` sites required (peers' `BCAST` sites).
        expected: usize,
        /// `GETB` sites present.
        getbs: usize,
        /// One involved broadcast instruction.
        site: Site,
    },
    /// A mode switch some cores can reach and others cannot.
    SwitchMissing {
        /// Region holding the switch sites.
        region: RegionId,
        /// A core present in the region with no switch site.
        core: usize,
        /// The switch target mode.
        mode: ExecMode,
        /// A switch site on another core.
        site: Site,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Shape { site, message } => write!(f, "{site}: {message}"),
            ValidateError::CoreOutOfRange {
                site,
                target,
                cores,
            } => write!(
                f,
                "{site}: names core {target}, but the program has {cores} cores"
            ),
            ValidateError::OffMesh { site, dir } => {
                write!(f, "{site}: no neighbor to the {dir}")
            }
            ValidateError::SelfSpawn { site } => {
                write!(f, "{site}: core spawns a thread onto itself")
            }
            ValidateError::SpawnBadBlock {
                site,
                target_core,
                block,
                blocks,
            } => write!(
                f,
                "{site}: spawn targets bb{block} of core {target_core}, which has {blocks} blocks"
            ),
            ValidateError::OrphanRecv { site, from, tag } => write!(
                f,
                "{site}: RECV from core {from} tag {tag} has no matching SEND site"
            ),
            ValidateError::OrphanSend { site, to, tag } => write!(
                f,
                "{site}: SEND to core {to} tag {tag} has no matching RECV site"
            ),
            ValidateError::LatchImbalance {
                region,
                owner,
                dir,
                puts,
                gets,
                site,
            } => write!(
                f,
                "region {region}: latch at core {owner} ({dir} side) has {puts} PUT site(s) \
                 but {gets} GET site(s) ({site})"
            ),
            ValidateError::BcastImbalance {
                region,
                core,
                expected,
                getbs,
                site,
            } => write!(
                f,
                "region {region}: core {core} has {getbs} GETB site(s) for {expected} \
                 peer BCAST site(s) ({site})"
            ),
            ValidateError::SwitchMissing {
                region,
                core,
                mode,
                site,
            } => write!(
                f,
                "region {region}: core {core} has no mode switch to {mode}, \
                 but {site} does — the switch barrier can never form"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

const DIRS: [Dir; 4] = [Dir::East, Dir::West, Dir::South, Dir::North];

fn dir_idx(d: Dir) -> usize {
    match d {
        Dir::East => 0,
        Dir::West => 1,
        Dir::South => 2,
        Dir::North => 3,
    }
}

/// Per-latch PUT/GET tallies plus a representative site.
#[derive(Debug, Clone)]
struct LatchTally {
    puts: usize,
    gets: usize,
    site: Site,
}

impl MachineProgram {
    /// Statically validate cross-core consistency of the program's
    /// images under `cfg`'s mesh geometry (see the module docs for the
    /// invariant catalogue). [`crate::Machine::new`] runs this after the
    /// structural [`MachineProgram::check`], so a validated program's
    /// network and thread instructions can rely on these invariants.
    ///
    /// # Errors
    /// Returns the first violation found, with core/block/instruction
    /// coordinates.
    pub fn validate(&self, cfg: &MachineConfig) -> Result<(), ValidateError> {
        let n = self.cores.len();
        // The geometry only depends on the core count; keep it honest if
        // a caller hands a config sized for a different machine.
        let geo;
        let geo = if cfg.cores == n {
            cfg
        } else {
            geo = MachineConfig {
                cores: n,
                ..cfg.clone()
            };
            &geo
        };

        // (from, to, tag) -> first site, for both stream endpoints.
        let mut sends: HashMap<(usize, usize, u32), Site> = HashMap::new();
        let mut recvs: HashMap<(usize, usize, u32), Site> = HashMap::new();
        // (region, latch owner, latch dir) -> tallies.
        let mut latches: HashMap<(RegionId, usize, usize), LatchTally> = HashMap::new();
        // (region, core) -> site counts; first BCAST site per region.
        let mut bcasts: HashMap<(RegionId, usize), usize> = HashMap::new();
        let mut getbs: HashMap<(RegionId, usize), usize> = HashMap::new();
        let mut bcast_site: HashMap<RegionId, Site> = HashMap::new();
        // (region, is-coupled-target) -> (cores with a switch site, site).
        let mut switches: HashMap<(RegionId, bool), (Vec<bool>, Site)> = HashMap::new();
        // region -> cores with any block in it.
        let mut presence: HashMap<RegionId, Vec<bool>> = HashMap::new();

        for (core, img) in self.cores.iter().enumerate() {
            for (bi, b) in img.blocks.iter().enumerate() {
                presence.entry(b.region).or_insert_with(|| vec![false; n])[core] = true;
                for (ii, inst) in b.insts.iter().enumerate() {
                    let site = || Site {
                        core,
                        block: bi,
                        block_name: b.name.clone(),
                        inst: ii,
                    };
                    check_mcode_inst(inst).map_err(|message| ValidateError::Shape {
                        site: site(),
                        message,
                    })?;
                    self.check_one(inst, core, n, geo, site())?;
                    match inst.op {
                        Opcode::Send => {
                            let to = core_operand(inst.srcs[1]);
                            sends.entry((core, to, send_tag(inst))).or_insert_with(site);
                        }
                        Opcode::Recv => {
                            let from = core_operand(inst.srcs[0]);
                            recvs
                                .entry((from, core, recv_tag(inst)))
                                .or_insert_with(site);
                        }
                        Opcode::Put => {
                            let d = dir_operand(inst.srcs[1]);
                            let owner = geo.neighbor(core, d).expect("checked by check_one");
                            let t = latches
                                .entry((b.region, owner, dir_idx(d.opposite())))
                                .or_insert_with(|| LatchTally {
                                    puts: 0,
                                    gets: 0,
                                    site: site(),
                                });
                            t.puts += 1;
                        }
                        Opcode::Get => {
                            let d = dir_operand(inst.srcs[0]);
                            let t =
                                latches
                                    .entry((b.region, core, dir_idx(d)))
                                    .or_insert_with(|| LatchTally {
                                        puts: 0,
                                        gets: 0,
                                        site: site(),
                                    });
                            t.gets += 1;
                        }
                        Opcode::Bcast => {
                            *bcasts.entry((b.region, core)).or_insert(0) += 1;
                            bcast_site.entry(b.region).or_insert_with(site);
                        }
                        Opcode::GetB => {
                            *getbs.entry((b.region, core)).or_insert(0) += 1;
                        }
                        Opcode::ModeSwitch => {
                            let coupled = matches!(inst.srcs[0], Operand::Mode(ExecMode::Coupled));
                            let e = switches
                                .entry((b.region, coupled))
                                .or_insert_with(|| (vec![false; n], site()));
                            e.0[core] = true;
                        }
                        _ => {}
                    }
                }
            }
        }

        // 4. Stream endpoints (deterministic order: sort the keys).
        let mut keys: Vec<_> = recvs.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            if !sends.contains_key(&k) {
                let (from, _, tag) = k;
                return Err(ValidateError::OrphanRecv {
                    site: recvs[&k].clone(),
                    from,
                    tag,
                });
            }
        }
        let mut keys: Vec<_> = sends.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            if !recvs.contains_key(&k) {
                let (_, to, tag) = k;
                return Err(ValidateError::OrphanSend {
                    site: sends[&k].clone(),
                    to,
                    tag,
                });
            }
        }

        // 5. Latch balance.
        let mut keys: Vec<_> = latches.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let t = &latches[&k];
            if t.puts != t.gets {
                let (region, owner, di) = k;
                return Err(ValidateError::LatchImbalance {
                    region,
                    owner,
                    dir: DIRS[di],
                    puts: t.puts,
                    gets: t.gets,
                    site: t.site.clone(),
                });
            }
        }

        // 6. Broadcast balance, per region with any BCAST.
        let mut regions: Vec<_> = bcast_site.keys().copied().collect();
        regions.sort_unstable();
        for r in regions {
            let total: usize = (0..n)
                .map(|c| bcasts.get(&(r, c)).copied().unwrap_or(0))
                .sum();
            let present = &presence[&r];
            for (c, &here) in present.iter().enumerate() {
                if !here {
                    continue;
                }
                let own = bcasts.get(&(r, c)).copied().unwrap_or(0);
                let drains = getbs.get(&(r, c)).copied().unwrap_or(0);
                if drains != total - own {
                    return Err(ValidateError::BcastImbalance {
                        region: r,
                        core: c,
                        expected: total - own,
                        getbs: drains,
                        site: bcast_site[&r].clone(),
                    });
                }
            }
        }

        // 7. Switch alignment.
        let mut keys: Vec<_> = switches.keys().copied().collect();
        keys.sort_unstable_by_key(|&(r, coupled)| (r, !coupled));
        for k in keys {
            let (has, site) = &switches[&k];
            let present = &presence[&k.0];
            for c in 0..n {
                if present[c] && !has[c] {
                    return Err(ValidateError::SwitchMissing {
                        region: k.0,
                        core: c,
                        mode: if k.1 {
                            ExecMode::Coupled
                        } else {
                            ExecMode::Decoupled
                        },
                        site: site.clone(),
                    });
                }
            }
        }

        Ok(())
    }

    /// Per-instruction checks beyond the shared opcode grammar: core
    /// ranges, mesh directions, spawn targets, XBEGIN order class.
    fn check_one(
        &self,
        inst: &Inst,
        core: usize,
        n: usize,
        geo: &MachineConfig,
        site: Site,
    ) -> Result<(), ValidateError> {
        let in_range = |target: usize| -> Result<(), ValidateError> {
            if target >= n {
                return Err(ValidateError::CoreOutOfRange {
                    site: site.clone(),
                    target,
                    cores: n,
                });
            }
            Ok(())
        };
        match inst.op {
            Opcode::Send => in_range(core_operand(inst.srcs[1]))?,
            Opcode::Recv => in_range(core_operand(inst.srcs[0]))?,
            Opcode::Spawn => {
                let to = core_operand(inst.srcs[0]);
                in_range(to)?;
                if to == core {
                    return Err(ValidateError::SelfSpawn { site });
                }
                let blk = inst.srcs[1].as_block().expect("shape-checked").idx();
                let blocks = self.cores[to].blocks.len();
                if blk >= blocks {
                    return Err(ValidateError::SpawnBadBlock {
                        site,
                        target_core: to,
                        block: blk,
                        blocks,
                    });
                }
            }
            Opcode::Put => {
                let d = dir_operand(inst.srcs[1]);
                if geo.neighbor(core, d).is_none() {
                    return Err(ValidateError::OffMesh { site, dir: d });
                }
            }
            Opcode::Get => {
                let d = dir_operand(inst.srcs[0]);
                if geo.neighbor(core, d).is_none() {
                    return Err(ValidateError::OffMesh { site, dir: d });
                }
            }
            Opcode::Xbegin => {
                let ok = matches!(
                    inst.srcs[0],
                    Operand::Imm(_)
                        | Operand::Reg(voltron_ir::Reg {
                            class: RegClass::Gpr,
                            ..
                        })
                );
                if !ok {
                    return Err(ValidateError::Shape {
                        site,
                        message: "xbegin order must be an integer (imm or gpr)".into(),
                    });
                }
            }
            _ => {}
        }
        Ok(())
    }
}

/// A shape-checked core operand.
fn core_operand(op: Operand) -> usize {
    match op {
        Operand::Core(c) => c as usize,
        // check_mcode_inst rejected every other shape already.
        _ => unreachable!("core operand was shape-checked"),
    }
}

/// A shape-checked direction operand.
fn dir_operand(op: Operand) -> Dir {
    match op {
        Operand::Dir(d) => d,
        _ => unreachable!("dir operand was shape-checked"),
    }
}

/// The CAM tag of a SEND site (optional third operand, default 0).
fn send_tag(inst: &Inst) -> u32 {
    match inst.srcs.get(2) {
        Some(Operand::Imm(t)) => *t as u32,
        _ => 0,
    }
}

/// The CAM tag of a RECV site (optional second operand, default 0).
fn recv_tag(inst: &Inst) -> u32 {
    match inst.srcs.get(1) {
        Some(Operand::Imm(t)) => *t as u32,
        _ => 0,
    }
}
