//! The Voltron machine: cores, lock-step coupled execution, decoupled
//! fine-grain threads, mode switching, and the cycle loop.
//!
//! Cores are single-issue and statically scheduled. A register scoreboard
//! enforces operand readiness (LEQ semantics with hardware interlocks), so
//! scheduling bugs can only cost cycles, never correctness. In coupled
//! mode all cores issue in lock-step and any member's stall stalls the
//! group (the 1-bit stall bus); in decoupled mode each core stalls
//! independently.

use crate::config::MachineConfig;
use crate::fault::{FaultBudgetReport, FaultKind, FaultSite, FaultStats, SiteInjector};
use crate::mcode::{MachineProgram, RegionId, REGION_OUTSIDE};
use crate::memsys::{Completion, LoadOutcome, MemSys};
use crate::network::{OperandNetwork, Payload};
use crate::obs::{ProbeSample, ProbeSeries};
use crate::stats::{CoreStats, MachineStats, RegionBreakdown, StallReason};
use crate::tm::TxnManager;
use crate::trace::{TraceEvent, Tracer};
use crate::validate::ValidateError;
use std::fmt;
use std::sync::Arc;
use voltron_ir::interp::{eval_operand, RegFile};
use voltron_ir::{
    semantics, BlockId, Dir, ExecMode, Inst, MemError, Memory, Opcode, Operand, Reg, RegClass,
    Value,
};

/// What a blocked core is waiting on: one edge annotation of the
/// wait-for graph built when the machine wedges.
#[derive(Debug, Clone, PartialEq)]
pub enum WaitCause {
    /// `RECV` on a `(sender, tag)` stream with nothing available;
    /// `buffered` counts messages delivered into that CAM bucket but not
    /// yet consumable this cycle (0 means the sender never sent).
    Recv {
        /// Sender core named by the receive.
        from: usize,
        /// CAM tag of the stream.
        tag: u32,
        /// Messages sitting in the bucket.
        buffered: usize,
    },
    /// `GET` on an empty direct-mode latch (only `from` can fill it).
    GetLatch {
        /// The neighbor that should `PUT`.
        from: usize,
        /// Latch direction as seen from the waiting core.
        dir: Dir,
    },
    /// `PUT` toward a far latch that `to` has not drained.
    PutLatch {
        /// The neighbor holding the occupied latch.
        to: usize,
        /// Link direction as seen from the waiting core.
        dir: Dir,
    },
    /// `BCAST` blocked by peers that have not drained their broadcast
    /// latches.
    Bcast {
        /// Cores with an occupied broadcast latch.
        blockers: Vec<usize>,
    },
    /// `GETB` on an empty broadcast latch (no peer has broadcast).
    GetBcast,
    /// `SEND`/`SPAWN` into a full send queue; routing toward the head's
    /// destination is what must drain first.
    SendQueue {
        /// Destination of the queue head.
        to: Option<usize>,
        /// Send-queue occupancy.
        queued: usize,
    },
    /// Waiting at a mode-switch barrier for cores that never arrive.
    ModeBarrier {
        /// The switch target.
        mode: ExecMode,
        /// Cores not at the barrier (a halted/idle core here means the
        /// barrier can never form).
        absent: Vec<usize>,
    },
    /// `XCOMMIT` without the commit token.
    CommitToken {
        /// The waiting transaction's chunk order.
        order: Option<u32>,
        /// The order the token is at.
        expected: u32,
        /// The core whose live transaction holds the expected order.
        holder: Option<usize>,
    },
    /// Waiting on the memory system (ifetch, load miss, store buffer, or
    /// a bus broadcast).
    Memory,
    /// A lock-step member stalled only by the 1-bit stall bus; the
    /// `blockers` are the group members with a stall of their own.
    StallBus {
        /// Coupled-group members whose own stall wedges the group.
        blockers: Vec<usize>,
    },
    /// Any other stall (e.g. a scoreboard interlock).
    Other(StallReason),
}

impl fmt::Display for WaitCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitCause::Recv {
                from,
                tag,
                buffered,
            } => write!(f, "RECV from core {from} tag {tag} ({buffered} buffered)"),
            WaitCause::GetLatch { from, dir } => {
                write!(f, "GET on empty {dir} latch (fed by core {from})")
            }
            WaitCause::PutLatch { to, dir } => {
                write!(f, "PUT {dir} blocked: core {to} has not drained the latch")
            }
            WaitCause::Bcast { blockers } => {
                write!(
                    f,
                    "BCAST blocked by undrained latches at cores {blockers:?}"
                )
            }
            WaitCause::GetBcast => write!(f, "GETB on empty broadcast latch"),
            WaitCause::SendQueue { to, queued } => match to {
                Some(to) => write!(f, "send queue full ({queued} queued, head to core {to})"),
                None => write!(f, "send queue full ({queued} queued)"),
            },
            WaitCause::ModeBarrier { mode, absent } => {
                write!(
                    f,
                    "mode-switch barrier to {mode}; cores {absent:?} not at it"
                )
            }
            WaitCause::CommitToken {
                order,
                expected,
                holder,
            } => {
                write!(
                    f,
                    "XCOMMIT of chunk {order:?} waits for token at {expected}"
                )?;
                match holder {
                    Some(h) => write!(f, " (held by core {h})"),
                    None => write!(f, " (no live transaction holds it)"),
                }
            }
            WaitCause::Memory => write!(f, "memory system"),
            WaitCause::StallBus { blockers } => {
                write!(f, "stall bus (group stalled by cores {blockers:?})")
            }
            WaitCause::Other(r) => write!(f, "{r:?} stall"),
        }
    }
}

/// One node of the wait-for graph: a live core, where it is, and what
/// blocks it.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreWait {
    /// The blocked core.
    pub core: usize,
    /// Its current block index.
    pub block: usize,
    /// Its current block's debug label.
    pub block_name: String,
    /// Instruction slot within the block.
    pub pc: usize,
    /// What it is waiting on.
    pub cause: WaitCause,
}

impl fmt::Display for CoreWait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {} at bb{}[{}] <{}>: {}",
            self.core, self.block, self.pc, self.block_name, self.cause
        )
    }
}

/// Simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// The machine code failed static cross-core validation.
    Validate(ValidateError),
    /// No core made progress for the deadlock window; carries the
    /// wait-for graph, the cycle through it (when one exists), and a
    /// state dump.
    Deadlock {
        /// The cycle at which deadlock was declared.
        cycle: u64,
        /// What each live core is blocked on.
        waits: Vec<CoreWait>,
        /// A cycle in the wait-for graph, as core ids with the first
        /// repeated at the end (`None` when the hang is acyclic, e.g.
        /// everyone waits on a core that slept).
        cycle_path: Option<Vec<usize>>,
        /// Human-readable machine state.
        dump: String,
    },
    /// Cores kept issuing but no architectural state changed for the
    /// livelock window (e.g. a control-flow spin).
    Livelock {
        /// The cycle at which livelock was declared.
        cycle: u64,
        /// The configured watchdog window.
        window: u64,
        /// Human-readable machine state.
        dump: String,
    },
    /// The cycle cap was reached.
    MaxCycles(u64),
    /// A memory access faulted.
    Mem(MemError),
    /// The memory hierarchy made no forward progress (see
    /// [`crate::memsys::BusTimeout`]).
    Bus(crate::memsys::BusTimeout),
    /// The machine code is malformed.
    Malformed(String),
    /// An illegal network operation (e.g. PUT off the mesh).
    Network(String),
    /// Fault recovery exhausted a retry budget (see [`crate::fault`]):
    /// the run fails closed instead of silently diverging.
    FaultBudget(FaultBudgetReport),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Validate(e) => write!(f, "invalid machine code: {e}"),
            SimError::Deadlock {
                cycle,
                waits,
                cycle_path,
                dump,
            } => {
                writeln!(f, "deadlock at cycle {cycle}:")?;
                for w in waits {
                    writeln!(f, "  {w}")?;
                }
                if let Some(path) = cycle_path {
                    let path: Vec<String> = path.iter().map(|c| format!("core {c}")).collect();
                    writeln!(f, "  wait cycle: {}", path.join(" -> "))?;
                }
                write!(f, "{dump}")
            }
            SimError::Livelock {
                cycle,
                window,
                dump,
            } => write!(
                f,
                "livelock at cycle {cycle}: no architectural change for {window} cycles:\n{dump}"
            ),
            SimError::MaxCycles(c) => write!(f, "exceeded max cycles ({c})"),
            SimError::Mem(e) => write!(f, "memory fault: {e}"),
            SimError::Bus(e) => write!(f, "bus timeout: {e}"),
            SimError::Malformed(m) => write!(f, "malformed machine code: {m}"),
            SimError::Network(m) => write!(f, "network error: {m}"),
            SimError::FaultBudget(r) => write!(f, "{r}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemError> for SimError {
    fn from(e: MemError) -> SimError {
        SimError::Mem(e)
    }
}

impl From<ValidateError> for SimError {
    fn from(e: ValidateError) -> SimError {
        SimError::Validate(e)
    }
}

impl From<crate::memsys::BusTimeout> for SimError {
    fn from(e: crate::memsys::BusTimeout) -> SimError {
        SimError::Bus(e)
    }
}

/// Result of a successful run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Final data memory (compare against the interpreter's).
    pub memory: Memory,
    /// All statistics.
    pub stats: MachineStats,
    /// Cores still running when the master halted (compiler bug
    /// indicator; empty in correct executions).
    pub stragglers: Vec<usize>,
    /// The installed tracer's rendering (empty string without one).
    pub trace: String,
    /// Cycles actually executed by [`Machine::tick`] (including the
    /// post-halt grace drain). With fast-forward on this is the host
    /// work actually done; `stats.cycles / ticked_cycles` is the
    /// skip-efficiency the bench harness reports. Deliberately *not*
    /// part of [`MachineStats`]: the architectural numbers must be
    /// identical with fast-forward on and off, and this one is not.
    pub ticked_cycles: u64,
    /// The interval time series recorded when
    /// [`MachineConfig::probe_period`] was set (`None` otherwise). Like
    /// everything in [`MachineStats`], bit-identical with fast-forward
    /// on or off.
    pub probes: Option<ProbeSeries>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Running,
    Idle,
    Halted,
    AtSwitch(ExecMode),
    WaitBus,
}

#[derive(Debug, Clone)]
struct Snapshot {
    regs: RegFile,
    pc: (usize, usize),
}

#[derive(Debug)]
struct Core {
    state: CoreState,
    pc: (usize, usize),
    regs: RegFile,
    /// Cycle at which each register's value is available; `u64::MAX`
    /// marks a pending (in-flight load) result.
    ready: [Vec<u64>; 4],
    epoch: u64,
    pending_load: bool,
    snapshot: Option<Snapshot>,
}

impl Core {
    fn new(counts: [u32; 4]) -> Core {
        Core {
            state: CoreState::Idle,
            pc: (0, 0),
            regs: RegFile::new(counts),
            ready: [
                vec![0; counts[0] as usize],
                vec![0; counts[1] as usize],
                vec![0; counts[2] as usize],
                vec![0; counts[3] as usize],
            ],
            epoch: 0,
            pending_load: false,
            snapshot: None,
        }
    }

    fn ready_at(&self, r: Reg) -> u64 {
        self.ready[r.class.index()][r.index as usize]
    }

    fn set_ready(&mut self, r: Reg, at: u64) {
        self.ready[r.class.index()][r.index as usize] = at;
    }

    fn clear_scoreboard(&mut self) {
        for bank in &mut self.ready {
            bank.iter_mut().for_each(|t| *t = 0);
        }
    }

    /// Return the core to its just-built state for `counts`, reusing the
    /// register-file and scoreboard allocations when the counts match.
    fn reset(&mut self, counts: [u32; 4]) {
        let same = (0..4).all(|i| self.ready[i].len() == counts[i] as usize);
        if !same {
            *self = Core::new(counts);
            return;
        }
        self.state = CoreState::Idle;
        self.pc = (0, 0);
        self.regs.reset();
        self.clear_scoreboard();
        self.epoch = 0;
        self.pending_load = false;
        self.snapshot = None;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Issue,
    Stall(StallReason),
    StartThread,
    Quiet,
}

/// The simulated machine.
pub struct Machine {
    cfg: MachineConfig,
    program: Arc<MachineProgram>,
    offsets: Vec<Vec<u64>>,
    cores: Vec<Core>,
    memsys: MemSys,
    net: OperandNetwork,
    tm: TxnManager,
    memory: Memory,
    mode: ExecMode,
    cycle: u64,
    last_progress: u64,
    /// Cycle of the last architectural state change (anything beyond
    /// pure control flow); drives the livelock watchdog.
    last_arch_change: u64,
    core_stats: Vec<CoreStats>,
    /// Per-region attribution table, indexed by region id with the last
    /// slot standing in for [`REGION_OUTSIDE`]; flat so the per-cycle
    /// attribution in [`Machine::tick`] is indexed adds (the maps the
    /// stats report comes out of are built once at the end of `run`).
    region_table: Vec<RegionBreakdown>,
    /// The coupled stall bus of the last executed tick: the group-wide
    /// stall reason, if any running member stalled (always `None` in
    /// decoupled mode). Cached for region attribution and span tracing.
    group_stall: Option<StallReason>,
    coupled_cycles: u64,
    decoupled_cycles: u64,
    spawns: u64,
    mode_switches: u64,
    dynamic_insts: u64,
    tracer: Option<Box<dyn Tracer>>,
    /// Per-core issue decisions, reused across ticks to keep the cycle
    /// loop allocation-free.
    decisions: Vec<Decision>,
    /// Cycles actually executed by [`Machine::tick`].
    ticked: u64,
    /// Set by [`Machine::tick`] when the cycle it just executed made no
    /// progress and the next tick cannot resolve a mode-switch barrier:
    /// the machine is fully blocked and [`Machine::fast_forward`] may
    /// jump time to the next subsystem event.
    ff_eligible: bool,
    /// Interval probe series being recorded, when
    /// [`MachineConfig::probe_period`] is set.
    probes: Option<ProbeSeries>,
    /// Tracer-only: the stall reason each core's open stall span carries
    /// (`None` when no span is open). Maintained only while a tracer is
    /// installed, so span events are emitted on transitions alone.
    obs_stall: Vec<Option<StallReason>>,
    /// Tracer-only: the region whose span is currently open.
    obs_region: Option<RegionId>,
    /// Fault layer (`None` unless [`MachineConfig::faults`] is set):
    /// spurious-abort injector for live transactions. The draw happens at
    /// issue time of a core inside a transaction — an architectural
    /// event — so the stream is identical with fast-forward on or off.
    fault_tm: Option<SiteInjector>,
    /// Fault layer: instruction-fetch hiccup injector (drawn at issue).
    fault_fetch: Option<SiteInjector>,
    /// First cycle each core's fetch works again after a hiccup (0 when
    /// clear; `check_core` stalls fetch while `cycle` is below this).
    fetch_block: Vec<u64>,
    /// Consecutive spurious aborts per core since its last commit; the
    /// retry budget fails the run closed when a transaction can never
    /// get through.
    tm_streak: Vec<u32>,
    /// Per-core irrevocability latch: set once the live transaction has
    /// issued a network operation (SEND/RECV/BCAST/GETB/SPAWN). Such a
    /// transaction can no longer be rolled back — the message is in
    /// flight, and a replay from the snapshot would duplicate it — so
    /// the spurious-abort injector must skip it. Genuine conflict
    /// aborts never hit these: only the order-0 master chunk wraps the
    /// spawn/live-in sends, and nothing ever outranks order 0.
    txn_irrevocable: Vec<bool>,
    /// Cycle at which each core's live transaction began (`XBEGIN` issue
    /// cycle). Cycle numbering is identical with fast-forward on or off,
    /// so the abort-wasted-work arithmetic below replays exactly.
    tm_begin_cycle: Vec<u64>,
    /// Core-cycles spent inside transactions that later aborted
    /// (cumulative `abort_cycle - begin_cycle`); reported as
    /// [`crate::tm::TmStats::wasted_cycles`].
    tm_wasted: u64,
}

impl Machine {
    /// Boot a machine for `program` under `cfg`.
    ///
    /// # Errors
    /// Returns [`SimError::Malformed`] when the image count mismatches the
    /// configuration or the machine code fails its structural check, and
    /// [`SimError::Validate`] when the images fail the static cross-core
    /// consistency pass ([`MachineProgram::validate`]).
    pub fn new(program: MachineProgram, cfg: &MachineConfig) -> Result<Machine, SimError> {
        Machine::new_shared(Arc::new(program), cfg)
    }

    /// [`Machine::new`] for an already-shared program image. The serve
    /// path compiles each (program, strategy, cores) once and boots many
    /// machines from the same `Arc`, so the image is never cloned per
    /// request.
    ///
    /// # Errors
    /// See [`Machine::new`].
    pub fn new_shared(
        program: Arc<MachineProgram>,
        cfg: &MachineConfig,
    ) -> Result<Machine, SimError> {
        if program.cores.len() != cfg.cores {
            return Err(SimError::Malformed(format!(
                "program compiled for {} cores, machine has {}",
                program.cores.len(),
                cfg.cores
            )));
        }
        program.check().map_err(SimError::Malformed)?;
        program.validate(cfg)?;
        cfg.watchdogs.validate().map_err(SimError::Malformed)?;
        let memory = Memory::from_data(&program.data);
        let offsets: Vec<Vec<u64>> = program.cores.iter().map(|c| c.block_offsets()).collect();
        let mut cores: Vec<Core> = program
            .cores
            .iter()
            .map(|c| Core::new(c.reg_counts()))
            .collect();
        cores[0].state = CoreState::Running;
        let n = cfg.cores;
        // Region attribution follows the master core, so only its region
        // ids need slots (+1 for the REGION_OUTSIDE sentinel at the end).
        let region_slots = program.cores[0]
            .blocks
            .iter()
            .map(|b| b.region)
            .filter(|&r| r != REGION_OUTSIDE)
            .max()
            .map_or(0, |r| r as usize + 1)
            + 1;
        // The "zero TM conflict aborts" idealization swaps the conflict
        // predicate for value-based detection (crate::tm), which spares
        // false sharing while still aborting true dependences — final
        // memory stays correct under every knob.
        let mut tm = TxnManager::new(n, cfg.line_size);
        tm.set_value_conflicts(cfg.ideal.zero_tm_conflicts);
        Ok(Machine {
            program,
            offsets,
            cores,
            memsys: MemSys::new(cfg),
            net: OperandNetwork::new(cfg),
            tm,
            memory,
            mode: ExecMode::Decoupled,
            cycle: 0,
            last_progress: 0,
            last_arch_change: 0,
            core_stats: vec![CoreStats::default(); n],
            region_table: vec![RegionBreakdown::default(); region_slots],
            group_stall: None,
            coupled_cycles: 0,
            decoupled_cycles: 0,
            spawns: 0,
            mode_switches: 0,
            dynamic_insts: 0,
            tracer: None,
            decisions: Vec::with_capacity(n),
            ticked: 0,
            ff_eligible: false,
            probes: cfg
                .probe_period
                .filter(|&p| p > 0)
                .map(|p| ProbeSeries::new(p, n)),
            obs_stall: vec![None; n],
            obs_region: None,
            fault_tm: cfg.faults.as_ref().map(|p| p.injector(FaultSite::TmAbort)),
            fault_fetch: cfg.faults.as_ref().map(|p| p.injector(FaultSite::Fetch)),
            fetch_block: vec![0; n],
            tm_streak: vec![0; n],
            txn_irrevocable: vec![false; n],
            tm_begin_cycle: vec![0; n],
            tm_wasted: 0,
            cfg: cfg.clone(),
        })
    }

    /// Return the machine to the state [`Machine::new_shared`] would
    /// build for (`program`, `cfg`), reusing the core, cache, network,
    /// and TM allocations instead of rebuilding them. This is the machine
    /// pool's hot path: a reset-then-run is architecturally identical to
    /// a fresh-boot-then-run (field-by-field, pinned by the serve
    /// equivalence tests), only cheaper.
    ///
    /// Validation is skipped when the image is the *same allocation*
    /// (`Arc::ptr_eq`) under an equal config — it already passed when the
    /// machine was first booted; any new image or changed config is
    /// re-validated exactly as `new` does.
    ///
    /// # Errors
    /// See [`Machine::new`].
    pub fn reset(
        &mut self,
        program: Arc<MachineProgram>,
        cfg: &MachineConfig,
    ) -> Result<(), SimError> {
        if program.cores.len() != cfg.cores {
            return Err(SimError::Malformed(format!(
                "program compiled for {} cores, machine has {}",
                program.cores.len(),
                cfg.cores
            )));
        }
        let same_program = Arc::ptr_eq(&self.program, &program);
        if !same_program || self.cfg != *cfg {
            program.check().map_err(SimError::Malformed)?;
            program.validate(cfg)?;
            cfg.watchdogs.validate().map_err(SimError::Malformed)?;
        }
        self.memory = Memory::from_data(&program.data);
        if !same_program {
            self.offsets.clear();
            self.offsets
                .extend(program.cores.iter().map(|c| c.block_offsets()));
        }
        let n = cfg.cores;
        self.cores.truncate(n);
        for (i, image) in program.cores.iter().enumerate() {
            match self.cores.get_mut(i) {
                Some(c) => c.reset(image.reg_counts()),
                None => self.cores.push(Core::new(image.reg_counts())),
            }
        }
        self.cores[0].state = CoreState::Running;
        let region_slots = program.cores[0]
            .blocks
            .iter()
            .map(|b| b.region)
            .filter(|&r| r != REGION_OUTSIDE)
            .max()
            .map_or(0, |r| r as usize + 1)
            + 1;
        self.memsys.reset(cfg);
        self.net.reset(cfg);
        self.tm.reset(n, cfg.line_size);
        self.tm.set_value_conflicts(cfg.ideal.zero_tm_conflicts);
        self.mode = ExecMode::Decoupled;
        self.cycle = 0;
        self.last_progress = 0;
        self.last_arch_change = 0;
        self.core_stats.clear();
        self.core_stats.resize(n, CoreStats::default());
        self.region_table.clear();
        self.region_table
            .resize(region_slots, RegionBreakdown::default());
        self.group_stall = None;
        self.coupled_cycles = 0;
        self.decoupled_cycles = 0;
        self.spawns = 0;
        self.mode_switches = 0;
        self.dynamic_insts = 0;
        self.tracer = None;
        self.decisions.clear();
        self.ticked = 0;
        self.ff_eligible = false;
        self.probes = cfg
            .probe_period
            .filter(|&p| p > 0)
            .map(|p| ProbeSeries::new(p, n));
        self.obs_stall.clear();
        self.obs_stall.resize(n, None);
        self.obs_region = None;
        self.fault_tm = cfg.faults.as_ref().map(|p| p.injector(FaultSite::TmAbort));
        self.fault_fetch = cfg.faults.as_ref().map(|p| p.injector(FaultSite::Fetch));
        self.fetch_block.clear();
        self.fetch_block.resize(n, 0);
        self.tm_streak.clear();
        self.tm_streak.resize(n, 0);
        self.txn_irrevocable.clear();
        self.txn_irrevocable.resize(n, false);
        self.tm_begin_cycle.clear();
        self.tm_begin_cycle.resize(n, 0);
        self.tm_wasted = 0;
        self.program = program;
        self.cfg = cfg.clone();
        Ok(())
    }

    /// Install an execution tracer (see [`crate::trace`]).
    pub fn set_tracer(&mut self, t: Box<dyn Tracer>) {
        self.tracer = Some(t);
        // Fault events are buffered by the subsystems only while someone
        // will drain them.
        self.net.set_fault_logging(true);
        self.memsys.set_fault_logging(true);
    }

    /// Remove and return the tracer (to inspect what it captured).
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    fn trace(&mut self, e: TraceEvent<'_>) {
        if let Some(t) = self.tracer.as_mut() {
            t.event(e);
        }
    }

    /// Run to completion (master core `HALT`).
    ///
    /// # Errors
    /// See [`SimError`].
    pub fn run(mut self) -> Result<RunOutcome, SimError> {
        self.run_mut()
    }

    /// Run to completion in place, leaving the machine's allocations
    /// behind for [`Machine::reset`] to reuse. The outcome's owned fields
    /// (memory, per-core stats, probes) are moved out, so a finished
    /// machine is architecturally empty until reset; everything else
    /// (cores, caches, network, TM, region table) keeps its capacity.
    ///
    /// # Errors
    /// See [`SimError`].
    pub fn run_mut(&mut self) -> Result<RunOutcome, SimError> {
        while self.cores[0].state != CoreState::Halted {
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::MaxCycles(self.cfg.max_cycles));
            }
            self.tick()?;
            if self.cfg.fast_forward && self.ff_eligible {
                self.fast_forward();
            }
        }
        // Execution time is the master's halt cycle; workers may still be
        // a few instructions from their SLEEP (the master does not wait
        // for the final join-token-to-sleep race). Drain briefly so the
        // straggler check only flags genuinely stuck cores. The drain
        // still counts against the cycle cap — a straggler that pushes
        // past `max_cycles` here is over budget, not a clean finish —
        // and is short enough that it is never worth fast-forwarding.
        let exec_cycles = self.cycle;
        let mut grace = 0u32;
        while grace < 2_000
            && self
                .cores
                .iter()
                .any(|c| !matches!(c.state, CoreState::Halted | CoreState::Idle))
        {
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::MaxCycles(self.cfg.max_cycles));
            }
            self.tick()?;
            grace += 1;
        }
        self.cycle = exec_cycles;
        let stragglers: Vec<usize> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c.state, CoreState::Halted | CoreState::Idle))
            .map(|(i, _)| i)
            .collect();
        let outside_slot = self.region_table.len() - 1;
        let slot_region = |slot: usize| {
            if slot == outside_slot {
                REGION_OUTSIDE
            } else {
                slot as RegionId
            }
        };
        let region_cycles = self
            .region_table
            .iter()
            .enumerate()
            .filter(|(_, rb)| rb.cycles > 0)
            .map(|(slot, rb)| (slot_region(slot), rb.cycles))
            .collect();
        let regions = self
            .region_table
            .iter()
            .enumerate()
            .filter(|(_, rb)| rb.cycles > 0)
            .map(|(slot, rb)| (slot_region(slot), rb.clone()))
            .collect();
        let mut faults = FaultStats::default();
        for (site, sf) in self.net.fault_stats() {
            faults.site_mut(site).absorb(&sf);
        }
        for (site, sf) in self.memsys.fault_stats() {
            faults.site_mut(site).absorb(&sf);
        }
        if let Some(inj) = &self.fault_tm {
            faults.site_mut(FaultSite::TmAbort).absorb(&inj.stats());
        }
        if let Some(inj) = &self.fault_fetch {
            faults.site_mut(FaultSite::Fetch).absorb(&inj.stats());
        }
        let mut tm_stats = self.tm.stats();
        tm_stats.wasted_cycles = self.tm_wasted;
        let stats = MachineStats {
            cycles: self.cycle,
            drained_cycles: u64::from(grace),
            coupled_cycles: self.coupled_cycles,
            decoupled_cycles: self.decoupled_cycles,
            region_cycles,
            regions,
            cores: std::mem::take(&mut self.core_stats),
            mem: self.memsys.stats(),
            net: self.net.stats(),
            tm: tm_stats,
            spawns: self.spawns,
            mode_switches: self.mode_switches,
            dynamic_insts: self.dynamic_insts,
            faults,
        };
        let trace = self.tracer.as_ref().map(|t| t.render()).unwrap_or_default();
        let memory = std::mem::replace(
            &mut self.memory,
            Memory::from_data(&voltron_ir::DataSegment::default()),
        );
        Ok(RunOutcome {
            memory,
            stats,
            stragglers,
            trace,
            ticked_cycles: self.ticked,
            probes: self.probes.take(),
        })
    }

    fn inst_addr(&self, core: usize) -> u64 {
        let (b, s) = self.cores[core].pc;
        crate::mcode::CoreImage::base(core) + (self.offsets[core][b] + s as u64) * 4
    }

    /// Normalize `pc` so it points at a real instruction (skipping empty
    /// blocks, which a branch may legally target).
    fn normalize_pc(&mut self, core: usize) -> Result<(), SimError> {
        let image = &self.program.cores[core];
        let (mut b, mut s) = self.cores[core].pc;
        while b < image.blocks.len() && s >= image.blocks[b].insts.len() {
            b += 1;
            s = 0;
        }
        if b >= image.blocks.len() {
            return Err(SimError::Malformed(format!(
                "core {core} ran off the end of its image"
            )));
        }
        self.cores[core].pc = (b, s);
        Ok(())
    }

    /// Normalize `pc` to the next instruction, skipping empty blocks.
    fn advance_pc(&mut self, core: usize) -> Result<(), SimError> {
        let image = &self.program.cores[core];
        let (mut b, mut s) = self.cores[core].pc;
        s += 1;
        while b < image.blocks.len() && s >= image.blocks[b].insts.len() {
            // Fallthrough beyond a block that ends unconditionally is a
            // malformed image; `MachineProgram::check` prevented targets
            // out of range, and blocks that end a region end with
            // jump/halt/sleep which never reach here.
            b += 1;
            s = 0;
        }
        if b >= image.blocks.len() {
            return Err(SimError::Malformed(format!(
                "core {core} ran off the end of its image"
            )));
        }
        self.cores[core].pc = (b, s);
        Ok(())
    }

    fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "mode: {}", self.mode);
        for (i, c) in self.cores.iter().enumerate() {
            let (b, sl) = c.pc;
            let name = self.program.cores[i]
                .blocks
                .get(b)
                .map(|blk| blk.name.as_str())
                .unwrap_or("?");
            let inst = self.program.cores[i]
                .blocks
                .get(b)
                .and_then(|blk| blk.insts.get(sl))
                .map(|x| x.to_string())
                .unwrap_or_else(|| "?".into());
            let _ = writeln!(
                s,
                "  core {i}: {:?} at bb{b}[{sl}] <{name}> next `{inst}` txn={}",
                c.state,
                self.tm.active(i)
            );
        }
        s
    }

    /// What core `i` is waiting on right now, or `None` when it is not
    /// part of the hang (halted or idle).
    fn wait_cause(&self, i: usize) -> Option<WaitCause> {
        match self.cores[i].state {
            CoreState::Halted | CoreState::Idle => None,
            CoreState::AtSwitch(mode) => {
                let absent = (0..self.cores.len())
                    .filter(|&c| !matches!(self.cores[c].state, CoreState::AtSwitch(_)))
                    .collect();
                Some(WaitCause::ModeBarrier { mode, absent })
            }
            CoreState::WaitBus => Some(WaitCause::Memory),
            CoreState::Running => {
                let reason = match self.decisions.get(i) {
                    Some(Decision::Stall(r)) => *r,
                    // A coupled-group member ready to issue but wedged by
                    // the stall bus: the stalling members are the cause.
                    Some(Decision::Issue) if self.mode == ExecMode::Coupled => {
                        let blockers: Vec<usize> = (0..self.cores.len())
                            .filter(|&c| {
                                c != i
                                    && self.cores[c].state == CoreState::Running
                                    && matches!(self.decisions.get(c), Some(Decision::Stall(_)))
                            })
                            .collect();
                        return Some(WaitCause::StallBus { blockers });
                    }
                    _ => return None,
                };
                let (b, s) = self.cores[i].pc;
                let inst = &self.program.cores[i].blocks[b].insts[s];
                let cause = match reason {
                    StallReason::IFetch | StallReason::DMiss | StallReason::StoreBuf => {
                        WaitCause::Memory
                    }
                    StallReason::Interlock => WaitCause::Other(reason),
                    _ => match inst.op {
                        Opcode::Recv => {
                            let from = inst.srcs[0].as_core().unwrap_or(0) as usize;
                            let tag = recv_tag(inst);
                            WaitCause::Recv {
                                from,
                                tag,
                                buffered: self.net.buffered_from(i, from, tag),
                            }
                        }
                        Opcode::Get => match inst.srcs[0] {
                            Operand::Dir(d) => match self.cfg.neighbor(i, d) {
                                Some(from) => WaitCause::GetLatch { from, dir: d },
                                None => WaitCause::Other(reason),
                            },
                            _ => WaitCause::Other(reason),
                        },
                        Opcode::Put => match inst.srcs[1] {
                            Operand::Dir(d) => match self.cfg.neighbor(i, d) {
                                Some(to) => WaitCause::PutLatch { to, dir: d },
                                None => WaitCause::Other(reason),
                            },
                            _ => WaitCause::Other(reason),
                        },
                        Opcode::Bcast => WaitCause::Bcast {
                            blockers: self.net.bcast_blockers(i),
                        },
                        Opcode::GetB => WaitCause::GetBcast,
                        Opcode::Send | Opcode::Spawn => {
                            let (to, queued) = self.net.send_queue(i);
                            WaitCause::SendQueue { to, queued }
                        }
                        Opcode::Xcommit => {
                            let expected = self.tm.expected();
                            WaitCause::CommitToken {
                                order: self.tm.order_of(i),
                                expected,
                                holder: self.tm.holder_of(expected),
                            }
                        }
                        _ => WaitCause::Other(reason),
                    },
                };
                Some(cause)
            }
        }
    }

    /// Build the wait-for graph over all non-halted, non-idle cores and
    /// detect a cycle through it (the classic deadlock witness).
    fn diagnose(&self) -> (Vec<CoreWait>, Option<Vec<usize>>) {
        let mut waits = Vec::new();
        for i in 0..self.cores.len() {
            if let Some(cause) = self.wait_cause(i) {
                let (b, s) = self.cores[i].pc;
                let block_name = self.program.cores[i]
                    .blocks
                    .get(b)
                    .map(|blk| blk.name.clone())
                    .unwrap_or_else(|| "?".into());
                waits.push(CoreWait {
                    core: i,
                    block: b,
                    block_name,
                    pc: s,
                    cause,
                });
            }
        }
        let cycle_path = find_wait_cycle(&waits);
        (waits, cycle_path)
    }

    fn try_mode_switch(&mut self) -> Result<(), SimError> {
        let mut target: Option<ExecMode> = None;
        for c in &self.cores {
            match c.state {
                CoreState::AtSwitch(m) => match target {
                    None => target = Some(m),
                    Some(t) if t == m => {}
                    Some(t) => {
                        return Err(SimError::Malformed(format!(
                            "cores disagree on mode switch target ({t} vs {m})"
                        )))
                    }
                },
                _ => return Ok(()),
            }
        }
        let m = target.expect("at least one core");
        self.mode = m;
        self.mode_switches += 1;
        self.last_arch_change = self.cycle;
        let cyc = self.cycle;
        self.trace(TraceEvent::ModeSwitch {
            cycle: cyc,
            mode: m,
        });
        for i in 0..self.cores.len() {
            self.cores[i].state = CoreState::Running;
            self.advance_pc(i)?;
        }
        Ok(())
    }

    fn check_core(&mut self, i: usize) -> Decision {
        let now = self.cycle;
        match self.cores[i].state {
            CoreState::Halted => Decision::Quiet,
            CoreState::Idle => {
                if self.net.has_spawn(i, now) {
                    Decision::StartThread
                } else {
                    Decision::Quiet
                }
            }
            CoreState::AtSwitch(_) | CoreState::WaitBus => Decision::Stall(StallReason::Sync),
            CoreState::Running => {
                // An injected fetch hiccup blocks the front end before it
                // reaches the I-cache (no L1I access is made, matching the
                // pending-fill behaviour `account_blocked` assumes for
                // `Stall(IFetch)` cores).
                if now < self.fetch_block[i] {
                    return Decision::Stall(StallReason::IFetch);
                }
                let addr = self.inst_addr(i);
                if !self.memsys.ifetch(i, addr) {
                    return Decision::Stall(StallReason::IFetch);
                }
                let core = &self.cores[i];
                let (b, s) = core.pc;
                let inst = &self.program.cores[i].blocks[b].insts[s];
                // Scoreboard: sources, guard, and destination (WAW).
                let mut pending = false;
                let mut not_ready = false;
                let mut scan = |t: u64| {
                    if t == u64::MAX {
                        pending = true;
                    } else if t > now {
                        not_ready = true;
                    }
                };
                for r in inst.uses_iter() {
                    scan(core.ready_at(r));
                }
                if let Some(d) = inst.dst {
                    scan(core.ready_at(d));
                }
                if pending {
                    return Decision::Stall(StallReason::DMiss);
                }
                if not_ready {
                    return Decision::Stall(StallReason::Interlock);
                }
                // A nullified instruction consumes its slot, nothing else.
                if let Some(g) = inst.guard {
                    if !core.regs.read(g).as_pred() {
                        return Decision::Issue;
                    }
                }
                match inst.op {
                    Opcode::Load(..) | Opcode::Fload | Opcode::Fload4 => {
                        if core.pending_load {
                            Decision::Stall(StallReason::DMiss)
                        } else {
                            Decision::Issue
                        }
                    }
                    Opcode::Store(_) | Opcode::Fstore | Opcode::Fstore4 => {
                        if !self.tm.active(i) && self.memsys.store_buffer_full(i) {
                            Decision::Stall(StallReason::StoreBuf)
                        } else {
                            Decision::Issue
                        }
                    }
                    Opcode::Put => {
                        let d = match inst.srcs[1] {
                            Operand::Dir(d) => d,
                            _ => return Decision::Issue, // verified earlier
                        };
                        if self.net.can_put(i, d) {
                            Decision::Issue
                        } else {
                            Decision::Stall(StallReason::DirectWait)
                        }
                    }
                    Opcode::Get => {
                        let d = match inst.srcs[0] {
                            Operand::Dir(d) => d,
                            _ => return Decision::Issue,
                        };
                        if self.net.can_get(i, d, now) {
                            Decision::Issue
                        } else {
                            Decision::Stall(StallReason::DirectWait)
                        }
                    }
                    Opcode::Bcast => {
                        if self.net.can_bcast(i) {
                            Decision::Issue
                        } else {
                            Decision::Stall(StallReason::DirectWait)
                        }
                    }
                    Opcode::GetB => {
                        if self.net.can_getb(i, now) {
                            Decision::Issue
                        } else {
                            Decision::Stall(StallReason::DirectWait)
                        }
                    }
                    Opcode::Send | Opcode::Spawn => {
                        if self.net.can_send(i) {
                            Decision::Issue
                        } else {
                            Decision::Stall(StallReason::SendFull)
                        }
                    }
                    Opcode::Recv => {
                        // Invariant: `MachineProgram::validate` shape-checked
                        // srcs[0] as an in-range core operand.
                        let from = inst.srcs[0].as_core().unwrap_or(0) as usize;
                        let tag = recv_tag(inst);
                        if self.net.can_recv(i, from, tag, now) {
                            Decision::Issue
                        } else if tag == crate::network::TAG_JOIN {
                            Decision::Stall(StallReason::Sync)
                        } else if inst.dst.map(|d| d.class) == Some(RegClass::Pred) {
                            Decision::Stall(StallReason::RecvPred)
                        } else {
                            Decision::Stall(StallReason::RecvData)
                        }
                    }
                    Opcode::Xcommit => {
                        if self.tm.can_commit(i) {
                            Decision::Issue
                        } else {
                            Decision::Stall(StallReason::Sync)
                        }
                    }
                    _ => Decision::Issue,
                }
            }
        }
    }

    fn eval(&self, core: usize, op: Operand) -> Result<Value, SimError> {
        eval_operand(&self.cores[core].regs, op)
            .map_err(|e| SimError::Malformed(format!("core {core}: {e}")))
    }

    /// Charge the wasted work of core `c`'s aborting transaction: every
    /// cycle since its `XBEGIN` was speculation the core will re-execute.
    /// Attributed to the region the master core occupies at abort time —
    /// an overlay on the primary CPI-stack categories (those cycles were
    /// already classified as issue/stall), not an exact-sum term; see
    /// [`RegionBreakdown::tm_wasted`]. Both the begin and abort cycles
    /// are issue-time architectural events, so the arithmetic replays
    /// identically with fast-forward on or off.
    fn note_tm_abort(&mut self, c: usize) {
        let wasted = self.cycle - self.tm_begin_cycle[c];
        self.tm_wasted += wasted;
        let region = self.program.cores[0]
            .blocks
            .get(self.cores[0].pc.0)
            .map(|b| b.region)
            .unwrap_or(REGION_OUTSIDE);
        let slot = if region == REGION_OUTSIDE {
            self.region_table.len() - 1
        } else {
            region as usize
        };
        self.region_table[slot].tm_wasted += wasted;
    }

    fn restore_core(&mut self, i: usize) {
        let snap = self.cores[i]
            .snapshot
            .take()
            .expect("aborted transaction must have a snapshot");
        let core = &mut self.cores[i];
        core.regs = snap.regs;
        core.pc = snap.pc;
        core.clear_scoreboard();
        core.pending_load = false;
        core.epoch += 1;
        core.state = CoreState::Running;
    }

    /// Execute a load's functional read (through the TM when live).
    fn functional_load(&mut self, i: usize, addr: u64, width: u64) -> Result<u64, SimError> {
        let committed = self.memory.load_uint(addr, width)?;
        if self.tm.active(i) {
            Ok(self.tm.read(i, addr, width, committed))
        } else {
            Ok(committed)
        }
    }

    fn functional_store(
        &mut self,
        i: usize,
        addr: u64,
        width: u64,
        v: u64,
    ) -> Result<(), SimError> {
        if self.tm.active(i) {
            // Validate the range without writing (faults surface now).
            self.memory.load_uint(addr, width)?;
            self.tm.write(i, addr, width, v);
        } else {
            self.memory.store_uint(addr, width, v)?;
        }
        Ok(())
    }

    /// Consult the machine-owned spurious-abort injector at a commit
    /// attempt of core `i`'s transaction. Returns `Ok(true)` when the
    /// abort consumed the slot (the core rolled back to its `XBEGIN`
    /// instead of committing).
    ///
    /// The draw happens at `XCOMMIT` issue — an architectural event, so
    /// the RNG stream advances identically with fast-forward on or off —
    /// and only for *revocable* transactions (no network op issued since
    /// `XBEGIN`; see [`Machine::txn_irrevocable`]). Drawing per commit
    /// rather than per issued instruction makes the plan's `rate` a
    /// per-transaction abort probability, so a long chunk is exactly as
    /// survivable as a short one and the consecutive-abort budget is only
    /// exhausted by genuinely unsurvivable plans (rate ≈ 1).
    fn fault_tm_at_commit(&mut self, i: usize) -> Result<bool, SimError> {
        if self.txn_irrevocable[i] || self.cores[i].snapshot.is_none() {
            return Ok(false);
        }
        let now = self.cycle;
        let fired = self
            .fault_tm
            .as_mut()
            .is_some_and(|inj| inj.fire(now).is_some());
        if !fired {
            return Ok(false);
        }
        let budget = self.cfg.watchdogs.fault_retry_budget;
        let attempts = self.tm_streak[i] + 1;
        let inj = self.fault_tm.as_mut().expect("fired above");
        if attempts > budget {
            inj.note_gave_up();
            let order = self.tm.order_of(i).unwrap_or(0);
            return Err(SimError::FaultBudget(FaultBudgetReport {
                cycle: now,
                site: FaultSite::TmAbort,
                attempts,
                budget,
                detail: format!("transaction on core {i} (chunk order {order})"),
            }));
        }
        inj.note_retried(1);
        inj.note_recovered();
        self.tm_streak[i] = attempts;
        self.note_tm_abort(i);
        self.tm.abort(i);
        self.restore_core(i);
        self.last_arch_change = now;
        self.trace(TraceEvent::Fault {
            cycle: now,
            core: i,
            site: FaultSite::TmAbort,
            action: "spurious abort",
        });
        self.trace(TraceEvent::TmAbort {
            cycle: now,
            core: i,
        });
        Ok(true)
    }

    /// Consult the fetch-hiccup injector at an issue opportunity of core
    /// `i`. The draw happens only here — at instruction issue, an
    /// architectural event — so the RNG stream advances identically with
    /// fast-forward on or off (skipped spans issue nothing).
    fn fault_at_issue(&mut self, i: usize) {
        let now = self.cycle;
        // Fetch hiccup: the *next* fetches of this core stall for `d`
        // cycles; the instruction issuing now is already past fetch. A
        // bounded transient absorbed purely in time — recovered at once.
        let hiccup = self
            .fault_fetch
            .as_mut()
            .and_then(|inj| match inj.fire(now) {
                Some(FaultKind::FetchHiccup(d)) => {
                    inj.note_recovered();
                    Some(d)
                }
                _ => None,
            });
        if let Some(d) = hiccup {
            self.fetch_block[i] = now + 1 + d;
            self.trace(TraceEvent::Fault {
                cycle: now,
                core: i,
                site: FaultSite::Fetch,
                action: "fetch hiccup",
            });
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_core(&mut self, i: usize) -> Result<(), SimError> {
        let now = self.cycle;
        if self.cfg.faults.is_some() {
            self.fault_at_issue(i);
        }
        let program = Arc::clone(&self.program);
        let (b, s) = self.cores[i].pc;
        let inst = &program.cores[i].blocks[b].insts[s];
        // Latch irrevocability: once a live transaction issues a network
        // operation the message leaves the core, and a rollback to the
        // snapshot would replay it (duplicate spawns/sends, re-consumed
        // receives). The spurious-abort injector checks this latch.
        if self.tm.active(i)
            && matches!(
                inst.op,
                Opcode::Send | Opcode::Recv | Opcode::Bcast | Opcode::GetB | Opcode::Spawn
            )
        {
            self.txn_irrevocable[i] = true;
        }
        self.dynamic_insts += 1;
        if inst.op == Opcode::Nop {
            self.core_stats[i].nops += 1;
        } else {
            self.core_stats[i].issued += 1;
        }
        if inst.op != Opcode::Nop {
            // `program` is a local Arc clone, so the borrowed block name
            // and instruction don't conflict with the tracer borrow.
            if let Some(t) = self.tracer.as_mut() {
                let block = program.cores[i].blocks[b].name.as_str();
                t.event(TraceEvent::Issue {
                    cycle: now,
                    core: i,
                    block,
                    inst,
                });
            }
        }

        // Nullified by guard: slot consumed, no effects.
        if let Some(g) = inst.guard {
            if !self.cores[i].regs.read(g).as_pred() {
                return self.advance_pc(i);
            }
        }

        // Everything below except pure control flow changes architectural
        // state (registers, memory, network, core/transaction state);
        // feed the livelock watchdog.
        if !matches!(inst.op, Opcode::Nop | Opcode::Br | Opcode::Jump) {
            self.last_arch_change = now;
        }

        use Opcode::*;
        match inst.op {
            // ---- control ----
            Br | Jump => {
                let taken = if inst.op == Jump {
                    true
                } else {
                    let p = inst.srcs[1]
                        .as_reg()
                        .expect("br predicate: guaranteed by MachineProgram::validate shape check");
                    self.cores[i].regs.read(p).as_pred()
                };
                if taken {
                    let target = match inst.srcs[0] {
                        Operand::Block(t) => t,
                        Operand::Reg(r) if r.class == RegClass::Btr => {
                            self.cores[i].regs.read(r).as_target()
                        }
                        _ => {
                            return Err(SimError::Malformed(format!(
                                "core {i}: branch without target"
                            )))
                        }
                    };
                    self.cores[i].pc = (target.idx(), 0);
                    return Ok(());
                }
                return self.advance_pc(i);
            }
            Halt => {
                self.cores[i].state = CoreState::Halted;
                self.trace(TraceEvent::Halt {
                    cycle: now,
                    core: i,
                });
                return Ok(());
            }
            Sleep => {
                self.cores[i].state = CoreState::Idle;
                return Ok(());
            }
            ModeSwitch => {
                let m = match inst.srcs[0] {
                    Operand::Mode(m) => m,
                    _ => return Err(SimError::Malformed("mode switch without mode".into())),
                };
                self.cores[i].state = CoreState::AtSwitch(m);
                self.trace(TraceEvent::BarrierWait {
                    cycle: now,
                    core: i,
                    mode: m,
                });
                return Ok(()); // pc advances when the barrier resolves
            }
            Call | Ret => {
                return Err(SimError::Malformed(format!(
                    "core {i}: {} in machine code (inliner bug)",
                    inst.op
                )))
            }

            // ---- memory ----
            Load(w, sgn) => {
                let base = self.eval(i, inst.srcs[0])?.as_int() as u64;
                let off = self.eval(i, inst.srcs[1])?.as_int();
                let addr = base.wrapping_add(off as u64);
                let raw = self.functional_load(i, addr, w.bytes())?;
                let dst = inst
                    .dst
                    .expect("load dst: guaranteed by MachineProgram::validate shape check");
                let val = semantics::extend_load(raw, w.bytes(), sgn);
                self.cores[i].regs.write(dst, Value::Int(val));
                self.issue_load_timing(i, addr, dst);
            }
            Fload => {
                let base = self.eval(i, inst.srcs[0])?.as_int() as u64;
                let off = self.eval(i, inst.srcs[1])?.as_int();
                let addr = base.wrapping_add(off as u64);
                let raw = self.functional_load(i, addr, 8)?;
                let dst = inst
                    .dst
                    .expect("fload dst: guaranteed by MachineProgram::validate shape check");
                self.cores[i]
                    .regs
                    .write(dst, Value::Float(f64::from_bits(raw)));
                self.issue_load_timing(i, addr, dst);
            }
            Fload4 => {
                let base = self.eval(i, inst.srcs[0])?.as_int() as u64;
                let off = self.eval(i, inst.srcs[1])?.as_int();
                let addr = base.wrapping_add(off as u64);
                let raw = self.functional_load(i, addr, 4)? as u32;
                let dst = inst
                    .dst
                    .expect("fload4 dst: guaranteed by MachineProgram::validate shape check");
                self.cores[i]
                    .regs
                    .write(dst, Value::Float(f64::from(f32::from_bits(raw))));
                self.issue_load_timing(i, addr, dst);
            }
            Store(w) => {
                let base = self.eval(i, inst.srcs[0])?.as_int() as u64;
                let off = self.eval(i, inst.srcs[1])?.as_int();
                let v = self.eval(i, inst.srcs[2])?.as_int() as u64;
                let addr = base.wrapping_add(off as u64);
                self.functional_store(i, addr, w.bytes(), v)?;
                self.issue_store_timing(i, addr, w.bytes());
            }
            Fstore => {
                let base = self.eval(i, inst.srcs[0])?.as_int() as u64;
                let off = self.eval(i, inst.srcs[1])?.as_int();
                let v = self.eval(i, inst.srcs[2])?.as_float();
                let addr = base.wrapping_add(off as u64);
                self.functional_store(i, addr, 8, v.to_bits())?;
                self.issue_store_timing(i, addr, 8);
            }
            Fstore4 => {
                let base = self.eval(i, inst.srcs[0])?.as_int() as u64;
                let off = self.eval(i, inst.srcs[1])?.as_int();
                let v = self.eval(i, inst.srcs[2])?.as_float() as f32;
                let addr = base.wrapping_add(off as u64);
                self.functional_store(i, addr, 4, u64::from(v.to_bits()))?;
                self.issue_store_timing(i, addr, 4);
            }

            // ---- operand network ----
            Put => {
                let v = self.eval(i, inst.srcs[0])?;
                let d = match inst.srcs[1] {
                    Operand::Dir(d) => d,
                    _ => return Err(SimError::Malformed("put without direction".into())),
                };
                let ok = self.net.put(i, d, v, now).map_err(SimError::Network)?;
                debug_assert!(ok, "checked can_put before issue");
            }
            Get => {
                let d = match inst.srcs[0] {
                    Operand::Dir(d) => d,
                    _ => return Err(SimError::Malformed("get without direction".into())),
                };
                let v = self
                    .net
                    .get(i, d, now)
                    .ok_or_else(|| SimError::Network(format!("core {i}: GET on empty latch")))?;
                let dst = inst
                    .dst
                    .expect("get dst: guaranteed by MachineProgram::validate shape check");
                self.write_value(i, dst, v, now + 1)?;
            }
            Bcast => {
                let v = self.eval(i, inst.srcs[0])?;
                let ok = self.net.bcast(i, v, now);
                debug_assert!(ok, "checked can_bcast before issue");
            }
            GetB => {
                let v = self
                    .net
                    .getb(i, now)
                    .ok_or_else(|| SimError::Network(format!("core {i}: GETB on empty latch")))?;
                let dst = inst
                    .dst
                    .expect("getb dst: guaranteed by MachineProgram::validate shape check");
                self.write_value(i, dst, v, now + 1)?;
            }
            Send => {
                let v = self.eval(i, inst.srcs[0])?;
                let to = inst.srcs[1]
                    .as_core()
                    .expect("send target: guaranteed by MachineProgram::validate shape check")
                    as usize;
                let tag = send_tag(inst);
                let ok = self.net.send(i, to, tag, Payload::Data(v), now);
                debug_assert!(ok, "checked can_send before issue");
                self.trace(TraceEvent::MsgSend {
                    cycle: now,
                    from: i,
                    to,
                    tag,
                });
            }
            Recv => {
                let from = inst.srcs[0]
                    .as_core()
                    .expect("recv source: guaranteed by MachineProgram::validate shape check")
                    as usize;
                let tag = recv_tag(inst);
                let v = self.net.recv(i, from, tag, now).ok_or_else(|| {
                    SimError::Network(format!("core {i}: RECV raced an empty queue"))
                })?;
                let dst = inst
                    .dst
                    .expect("recv dst: guaranteed by MachineProgram::validate shape check");
                self.write_value(i, dst, v, now + 1)?;
                self.trace(TraceEvent::MsgRecv {
                    cycle: now,
                    core: i,
                    from,
                    tag,
                });
            }
            Spawn => {
                let to = inst.srcs[0]
                    .as_core()
                    .expect("spawn target: guaranteed by MachineProgram::validate shape check")
                    as usize;
                let blk = inst.srcs[1]
                    .as_block()
                    .expect("spawn block: guaranteed by MachineProgram::validate shape check");
                let ok = self.net.send(i, to, 0, Payload::Spawn(blk), now);
                debug_assert!(ok, "checked can_send before issue");
            }

            // ---- transactional memory ----
            Xbegin => {
                let order = self.eval(i, inst.srcs[0])?.as_int();
                let snap = Snapshot {
                    regs: self.cores[i].regs.clone(),
                    pc: self.cores[i].pc,
                };
                self.cores[i].snapshot = Some(snap);
                self.txn_irrevocable[i] = false;
                self.tm_begin_cycle[i] = now;
                self.tm.begin(i, order as u32);
                self.trace(TraceEvent::TmBegin {
                    cycle: now,
                    core: i,
                    order: order as u32,
                });
            }
            Xcommit => {
                if self.cfg.faults.is_some() && self.fault_tm_at_commit(i)? {
                    return Ok(()); // rolled back to the XBEGIN instead
                }
                let mut fault: Option<MemError> = None;
                let mem = &mut self.memory;
                let (lines, aborted) = self.tm.commit(i, |a, byte| {
                    if let Err(e) = mem.store_uint(a, 1, u64::from(byte)) {
                        fault.get_or_insert(e);
                    }
                });
                if let Some(e) = fault {
                    return Err(SimError::Mem(e));
                }
                self.cores[i].snapshot = None;
                self.tm_streak[i] = 0;
                self.trace(TraceEvent::TmCommit {
                    cycle: now,
                    core: i,
                    lines: lines.len(),
                });
                for c in aborted {
                    self.note_tm_abort(c);
                    self.restore_core(c);
                    self.trace(TraceEvent::TmAbort {
                        cycle: now,
                        core: c,
                    });
                }
                if !lines.is_empty() {
                    self.memsys.enqueue_tm_commit(i, lines);
                    self.cores[i].state = CoreState::WaitBus;
                }
            }
            Xabort => {
                self.note_tm_abort(i);
                self.tm.abort(i);
                self.restore_core(i);
                return Ok(()); // pc restored to the XBEGIN
            }

            // ---- everything else shares the interpreter's semantics ----
            _ => {
                let core = &mut self.cores[i];
                let at = voltron_ir::InstRef {
                    func: voltron_ir::FuncId(0),
                    block: BlockId(b as u32),
                    index: s,
                };
                voltron_ir::interp::exec_inst(
                    inst,
                    at,
                    &mut core.regs,
                    &mut self.memory,
                    &mut voltron_ir::interp::NoObserver,
                )
                .map_err(|e| SimError::Malformed(format!("core {i}: {e}")))?;
                if let Some(d) = inst.dst {
                    core.set_ready(d, now + u64::from(inst.op.latency()));
                }
            }
        }
        self.advance_pc(i)
    }

    fn write_value(&mut self, i: usize, dst: Reg, v: Value, ready: u64) -> Result<(), SimError> {
        if v.class() != dst.class {
            return Err(SimError::Malformed(format!(
                "core {i}: network value {v:?} written to {dst} of class {}",
                dst.class
            )));
        }
        self.cores[i].regs.write(dst, v);
        self.cores[i].set_ready(dst, ready);
        Ok(())
    }

    fn issue_load_timing(&mut self, i: usize, addr: u64, dst: Reg) {
        let now = self.cycle;
        match self.memsys.load(i, addr, dst, self.cores[i].epoch) {
            LoadOutcome::Hit => {
                self.cores[i].set_ready(dst, now + u64::from(self.cfg.l1_hit_latency));
            }
            LoadOutcome::Miss => {
                self.cores[i].set_ready(dst, u64::MAX);
                self.cores[i].pending_load = true;
            }
        }
    }

    fn issue_store_timing(&mut self, i: usize, addr: u64, width: u64) {
        if self.tm.active(i) {
            return; // buffered in the transaction, no store-buffer entry
        }
        let ok = self.memsys.store(i, addr, width);
        debug_assert!(ok, "store-buffer space was checked before issue");
    }

    fn dispatch(&mut self, c: Completion) {
        match c {
            Completion::LoadFill { core, dst, epoch } => {
                if self.cores[core].epoch == epoch {
                    let now = self.cycle;
                    self.cores[core].set_ready(dst, now + 1);
                    self.cores[core].pending_load = false;
                }
            }
            Completion::TmCommitDone { core } => {
                if self.cores[core].state == CoreState::WaitBus {
                    self.cores[core].state = CoreState::Running;
                }
            }
        }
    }

    /// Advance the machine one cycle.
    ///
    /// # Errors
    /// See [`SimError`].
    pub fn tick(&mut self) -> Result<(), SimError> {
        let now = self.cycle;
        self.ticked += 1;
        self.ff_eligible = false;
        for c in self.memsys.tick(now) {
            self.dispatch(c);
        }
        if self.tracer.is_some() {
            // At most one grant per bank per tick, and ticks clear the
            // grant buffer, so draining here sees every grant once.
            let grants: Vec<_> = self.memsys.take_grants().collect();
            for (core, kind, start, finish) in grants {
                self.trace(TraceEvent::Bus {
                    start,
                    finish,
                    core,
                    kind,
                });
            }
        }
        self.net.tick(now);
        if self.cfg.faults.is_some() {
            // Fail closed the moment any subsystem's recovery exhausted
            // its retry budget: a parked request can never complete, so
            // continuing would end in a misleading deadlock report.
            if let Some(r) = self
                .memsys
                .take_fault_failure()
                .or_else(|| self.net.take_fault_failure())
            {
                return Err(SimError::FaultBudget(r));
            }
            if self.tracer.is_some() {
                let events: Vec<_> = self
                    .memsys
                    .take_fault_events()
                    .into_iter()
                    .chain(self.net.take_fault_events())
                    .collect();
                for (cycle, core, site, action) in events {
                    self.trace(TraceEvent::Fault {
                        cycle,
                        core,
                        site,
                        action,
                    });
                }
            }
        }
        self.try_mode_switch()?;

        let n = self.cfg.cores;
        for i in 0..n {
            if self.cores[i].state == CoreState::Running {
                self.normalize_pc(i)?;
            }
        }
        // Reuse the decision buffer across ticks (taken out of `self` so
        // filling it can call `check_core(&mut self)`).
        let mut decisions = std::mem::take(&mut self.decisions);
        decisions.clear();
        decisions.extend((0..n).map(|i| self.check_core(i)));
        let mut progress = false;

        match self.mode {
            ExecMode::Coupled => {
                // The stall bus: any *running* member's stall stalls the
                // group. Cores already waiting at the mode-switch barrier
                // (or on a bus broadcast) no longer gate lock-step issue —
                // otherwise a one-slot schedule misalignment at a region
                // exit would wedge the whole group.
                let group_stall = (0..n).find_map(|i| match decisions[i] {
                    Decision::Stall(r) if self.cores[i].state == CoreState::Running => Some(r),
                    _ => None,
                });
                self.group_stall = group_stall;
                match group_stall {
                    Some(r) => {
                        for (i, d) in decisions.iter().enumerate() {
                            match d {
                                Decision::Stall(own) => self.core_stats[i].stall(*own),
                                _ => self.core_stats[i].stall(r),
                            }
                        }
                    }
                    None => {
                        for (i, d) in decisions.iter().enumerate() {
                            match d {
                                Decision::Issue => {
                                    self.exec_core(i)?;
                                    progress = true;
                                }
                                Decision::Stall(own) => self.core_stats[i].stall(*own),
                                Decision::Quiet => {
                                    // A halted/idle core in coupled mode is
                                    // a compiler bug; the deadlock detector
                                    // will flag the hang if the group never
                                    // re-forms.
                                    self.core_stats[i].idle += 1;
                                }
                                // Spawns only start in decoupled mode; a
                                // pending one here waits (no progress), but
                                // the cycle still needs a bucket for the
                                // CPI-stack exact sum. `account_blocked`
                                // replays this arm identically.
                                Decision::StartThread => {
                                    self.core_stats[i].spawn_starts += 1;
                                }
                            }
                        }
                    }
                }
                self.coupled_cycles += 1;
            }
            ExecMode::Decoupled => {
                self.group_stall = None;
                for (i, d) in decisions.iter().enumerate() {
                    match d {
                        Decision::Issue => {
                            self.exec_core(i)?;
                            progress = true;
                        }
                        Decision::Stall(r) => self.core_stats[i].stall(*r),
                        Decision::StartThread => {
                            let (_, blk) = self
                                .net
                                .take_spawn(i, now)
                                .expect("has_spawn checked in decision phase");
                            self.cores[i].pc = (blk.idx(), 0);
                            self.cores[i].state = CoreState::Running;
                            self.core_stats[i].spawn_starts += 1;
                            self.spawns += 1;
                            self.last_arch_change = now;
                            self.trace(TraceEvent::ThreadStart {
                                cycle: now,
                                core: i,
                                block: blk.idx(),
                            });
                            progress = true;
                        }
                        Decision::Quiet => self.core_stats[i].idle += 1,
                    }
                }
                self.decoupled_cycles += 1;
            }
        }

        self.decisions = decisions;

        // Region attribution follows the master core.
        let region = self.program.cores[0]
            .blocks
            .get(self.cores[0].pc.0)
            .map(|b| b.region)
            .unwrap_or(REGION_OUTSIDE);
        let slot = if region == REGION_OUTSIDE {
            self.region_table.len() - 1
        } else {
            region as usize
        };
        self.attribute_region(slot, 1);
        if self.tracer.is_some() {
            self.emit_spans(now, region);
        }

        if progress {
            self.last_progress = now;
        } else {
            let anyone_active = self
                .cores
                .iter()
                .any(|c| !matches!(c.state, CoreState::Halted | CoreState::Idle));
            if anyone_active && now - self.last_progress > self.cfg.watchdogs.deadlock_window {
                let (waits, cycle_path) = self.diagnose();
                return Err(SimError::Deadlock {
                    cycle: now,
                    waits,
                    cycle_path,
                    dump: self.dump(),
                });
            }
        }
        // Livelock watchdog: cores issue (so the deadlock window keeps
        // resetting) but nothing architectural changes — a control-flow
        // spin. The window comparison is a single branch on the hot path;
        // the core scan only runs once the window has actually lapsed.
        if now - self.last_arch_change > self.cfg.watchdogs.livelock_window
            && self
                .cores
                .iter()
                .any(|c| !matches!(c.state, CoreState::Halted | CoreState::Idle))
        {
            return Err(SimError::Livelock {
                cycle: now,
                window: self.cfg.watchdogs.livelock_window,
                dump: self.dump(),
            });
        }
        // Fast-forward is legal from here iff nothing issued (so every
        // core's decision is frozen until an external event) and the next
        // tick's `try_mode_switch` cannot fire (it fires only when *all*
        // cores sit at the barrier — that tick is not the identity).
        self.ff_eligible = !progress
            && !self
                .cores
                .iter()
                .all(|c| matches!(c.state, CoreState::AtSwitch(_)));
        self.cycle += 1;
        if let Some(period) = self.probes.as_ref().map(|p| p.period) {
            if self.cycle.is_multiple_of(period) {
                self.sample_probes();
            }
        }
        Ok(())
    }

    /// Attribute `n` cycles of whole-machine occupancy to region `slot`,
    /// classifying each core exactly as the accounting arms of
    /// [`Machine::tick`] / [`Machine::account_blocked`] classified it
    /// (from the decisions and stall bus of the tick being attributed).
    fn attribute_region(&mut self, slot: usize, n: u64) {
        let rb = &mut self.region_table[slot];
        rb.cycles += n;
        match self.mode {
            ExecMode::Coupled => match self.group_stall {
                Some(r) => {
                    for d in &self.decisions {
                        match d {
                            Decision::Stall(own) => rb.stalls[own.index()] += n,
                            _ => rb.stalls[r.index()] += n,
                        }
                    }
                }
                None => {
                    for d in &self.decisions {
                        match d {
                            Decision::Issue => rb.issued += n,
                            Decision::Stall(own) => rb.stalls[own.index()] += n,
                            Decision::Quiet => rb.idle += n,
                            Decision::StartThread => rb.spawn_starts += n,
                        }
                    }
                }
            },
            ExecMode::Decoupled => {
                for d in &self.decisions {
                    match d {
                        Decision::Issue => rb.issued += n,
                        Decision::Stall(r) => rb.stalls[r.index()] += n,
                        Decision::Quiet => rb.idle += n,
                        Decision::StartThread => rb.spawn_starts += n,
                    }
                }
            }
        }
    }

    /// The stall reason core `i`'s cycle was charged with by the last
    /// tick's accounting, if any — the coupled stall bus makes this the
    /// group reason for members without a stall of their own.
    fn effective_stall(&self, i: usize) -> Option<StallReason> {
        match (self.mode, self.group_stall) {
            (ExecMode::Coupled, Some(r)) => Some(match self.decisions[i] {
                Decision::Stall(own) => own,
                _ => r,
            }),
            _ => match self.decisions[i] {
                Decision::Stall(r) => Some(r),
                _ => None,
            },
        }
    }

    /// Emit stall-span and region-span transitions for the tick at `now`
    /// (tracer installed). Only transitions produce events, so a long
    /// stall is two events and fast-forwarded spans need none: the
    /// decisions they replay are frozen, so no transition occurs there.
    fn emit_spans(&mut self, now: u64, region: RegionId) {
        for i in 0..self.cfg.cores {
            let eff = self.effective_stall(i);
            if eff != self.obs_stall[i] {
                if self.obs_stall[i].is_some() {
                    self.trace(TraceEvent::StallEnd {
                        cycle: now,
                        core: i,
                    });
                }
                if let Some(reason) = eff {
                    self.trace(TraceEvent::StallBegin {
                        cycle: now,
                        core: i,
                        reason,
                    });
                }
                self.obs_stall[i] = eff;
            }
        }
        if self.obs_region != Some(region) {
            if let Some(old) = self.obs_region {
                self.trace(TraceEvent::RegionExit {
                    cycle: now,
                    region: old,
                });
            }
            self.trace(TraceEvent::RegionEnter { cycle: now, region });
            self.obs_region = Some(region);
        }
    }

    /// Record one interval sample. Both callers — the tick path and the
    /// fast-forward bulk-fill — invoke this with `self.cycle` sitting
    /// exactly on a period boundary and all counters covering cycles
    /// `0..self.cycle`, which is what makes the series bit-identical
    /// with fast-forward on or off.
    fn sample_probes(&mut self) {
        let cycle = self.cycle;
        let n = self.cfg.cores;
        let bus_busy = self.memsys.bus_busy_cycles();
        let Some(series) = self.probes.as_mut() else {
            return;
        };
        let mut sample = ProbeSample {
            cycle,
            issued: Vec::with_capacity(n),
            idle: Vec::with_capacity(n),
            stalls: Vec::with_capacity(n),
            send_queue: Vec::with_capacity(n),
            recv_buffered: Vec::with_capacity(n),
            tm_read_set: Vec::with_capacity(n),
            tm_write_set: Vec::with_capacity(n),
            bus_busy,
        };
        for i in 0..n {
            let cs = &self.core_stats[i];
            sample.issued.push(cs.issued + cs.nops);
            sample.idle.push(cs.idle);
            sample.stalls.push(cs.stalls);
            sample.send_queue.push(self.net.send_queue(i).1);
            sample.recv_buffered.push(self.net.recv_buffered(i));
            let (r, w) = self.tm.set_sizes(i);
            sample.tm_read_set.push(r);
            sample.tm_write_set.push(w);
        }
        series.samples.push(sample);
    }

    /// The cycle at which a [`StallReason::Interlock`]-stalled core's
    /// scoreboard clears: the latest ready-time over the instruction's
    /// sources, guard, and destination. All of them are finite — a
    /// pending (`u64::MAX`) register classifies the stall as
    /// [`StallReason::DMiss`] instead.
    fn interlock_wake(&self, i: usize) -> u64 {
        let core = &self.cores[i];
        let (b, s) = core.pc;
        let inst = &self.program.cores[i].blocks[b].insts[s];
        let mut wake = 0;
        for r in inst.uses_iter() {
            wake = wake.max(core.ready_at(r));
        }
        if let Some(d) = inst.dst {
            wake = wake.max(core.ready_at(d));
        }
        wake
    }

    /// Event-driven fast-forward (see DESIGN.md §6 for the equivalence
    /// argument). Called after a tick that made no progress: every core
    /// is blocked, so until some subsystem event lands, each following
    /// tick is the identity transition plus counters. Jump `cycle`
    /// straight to the earliest such event — an in-flight bus
    /// completion, a network arrival, or a scoreboard interlock
    /// clearing — bulk-accounting the skipped span, and capped so the
    /// deadlock/livelock watchdogs and the `max_cycles` cap fire at
    /// exactly the cycle a tick-by-tick run fires them.
    fn fast_forward(&mut self) {
        // The cycle whose (cached) decisions describe the blocked state;
        // `self.cycle` is already the next tick's cycle.
        let prev = self.cycle - 1;
        let mut wake = u64::MAX;
        if let Some(t) = self.memsys.next_event(prev) {
            wake = wake.min(t);
        }
        if let Some(t) = self.net.next_event(prev) {
            wake = wake.min(t);
        }
        if let Some(t) = self.tm.next_event() {
            wake = wake.min(t);
        }
        for i in 0..self.cores.len() {
            if self.cores[i].state == CoreState::Running
                && self.decisions[i] == Decision::Stall(StallReason::Interlock)
            {
                wake = wake.min(self.interlock_wake(i));
            }
            // A fetch hiccup is a pure timer: nothing else will wake the
            // blocked core, so the skip must land on its expiry.
            if self.cores[i].state == CoreState::Running && self.fetch_block[i] > prev {
                wake = wake.min(self.fetch_block[i]);
            }
        }
        // Directed machine-level fault events are pinned to cycles; both
        // fast-forward modes must tick the cycle at which one becomes
        // due so it fires at the same issue opportunity. (The network and
        // bank injectors surface theirs through their own `next_event`.)
        for inj in [self.fault_tm.as_ref(), self.fault_fetch.as_ref()]
            .into_iter()
            .flatten()
        {
            if let Some(t) = inj.next_event(prev) {
                wake = wake.min(t.max(prev + 1));
            }
        }
        // Watchdogs: a tick-by-tick run would declare deadlock/livelock
        // on the first cycle past its window, so never jump beyond it —
        // the real tick executed there raises the identical error.
        let anyone_active = self
            .cores
            .iter()
            .any(|c| !matches!(c.state, CoreState::Halted | CoreState::Idle));
        if anyone_active {
            let deadlock_at = self
                .last_progress
                .saturating_add(self.cfg.watchdogs.deadlock_window)
                .saturating_add(1);
            let livelock_at = self
                .last_arch_change
                .saturating_add(self.cfg.watchdogs.livelock_window)
                .saturating_add(1);
            wake = wake.min(deadlock_at).min(livelock_at);
        }
        // An all-idle machine has no watchdog (nothing is "active"), so
        // the run loop's cap is the only exit; land exactly on it.
        wake = wake.min(self.cfg.max_cycles);
        if wake <= self.cycle {
            return;
        }
        // Interval probes: split the skip at sampling boundaries and
        // bulk-fill up to each one, so every sample is taken with exactly
        // the counters a tick-by-tick run would have at that boundary
        // (the instantaneous gauges are frozen across a blocked span by
        // the same argument that makes the skip itself legal).
        if let Some(period) = self.probes.as_ref().map(|p| p.period) {
            let mut next = (self.cycle / period + 1) * period;
            while next <= wake {
                self.account_blocked(next - self.cycle);
                self.cycle = next;
                self.sample_probes();
                next += period;
            }
        }
        if wake > self.cycle {
            self.account_blocked(wake - self.cycle);
            self.cycle = wake;
        }
    }

    /// Account `n` fully-blocked cycles exactly as `n` executions of the
    /// corresponding arm of [`Machine::tick`] would, from the decisions
    /// cached by the last executed tick (which fast-forward guarantees
    /// stay constant over the span).
    fn account_blocked(&mut self, n: u64) {
        let ncores = self.cores.len();
        match self.mode {
            ExecMode::Coupled => {
                let group_stall = (0..ncores).find_map(|i| match self.decisions[i] {
                    Decision::Stall(r) if self.cores[i].state == CoreState::Running => Some(r),
                    _ => None,
                });
                match group_stall {
                    Some(r) => {
                        for i in 0..ncores {
                            match self.decisions[i] {
                                Decision::Stall(own) => {
                                    self.core_stats[i].stalls[own.index()] += n;
                                }
                                _ => self.core_stats[i].stalls[r.index()] += n,
                            }
                        }
                    }
                    None => {
                        // No running member stalls and yet nothing issued:
                        // only barrier/bus waiters (their own reason) and
                        // quiet cores remain.
                        for i in 0..ncores {
                            match self.decisions[i] {
                                Decision::Stall(own) => {
                                    self.core_stats[i].stalls[own.index()] += n;
                                }
                                Decision::Quiet => self.core_stats[i].idle += n,
                                // Mirrors the tick arm: a pending spawn in
                                // coupled mode burns wait cycles without
                                // progress, so fast-forward replays them.
                                Decision::StartThread => {
                                    self.core_stats[i].spawn_starts += n;
                                }
                                Decision::Issue => {}
                            }
                        }
                    }
                }
                self.coupled_cycles += n;
            }
            ExecMode::Decoupled => {
                for i in 0..ncores {
                    match self.decisions[i] {
                        Decision::Stall(r) => self.core_stats[i].stalls[r.index()] += n,
                        Decision::Quiet => self.core_stats[i].idle += n,
                        // Issue/StartThread imply progress, which a
                        // fast-forwarded tick never made.
                        Decision::Issue | Decision::StartThread => {}
                    }
                }
                self.decoupled_cycles += n;
            }
        }
        let region = self.program.cores[0]
            .blocks
            .get(self.cores[0].pc.0)
            .map(|b| b.region)
            .unwrap_or(REGION_OUTSIDE);
        let slot = if region == REGION_OUTSIDE {
            self.region_table.len() - 1
        } else {
            region as usize
        };
        self.attribute_region(slot, n);
        // Each skipped cycle, a running core re-fetches its current
        // instruction; unless it is the fetch itself that stalls (the
        // pending-fill guard in `MemSys::ifetch` counts nothing on
        // those), that is one L1I hit per cycle.
        for i in 0..ncores {
            if self.cores[i].state == CoreState::Running
                && self.decisions[i] != Decision::Stall(StallReason::IFetch)
            {
                self.memsys.credit_ifetch_hits(i, n);
            }
        }
    }
}

/// The cores a wait cause points at: the wait-for-graph edges.
fn wait_edges(cause: &WaitCause) -> Vec<usize> {
    match cause {
        WaitCause::Recv { from, .. } | WaitCause::GetLatch { from, .. } => vec![*from],
        WaitCause::PutLatch { to, .. } => vec![*to],
        WaitCause::Bcast { blockers } | WaitCause::StallBus { blockers } => blockers.clone(),
        WaitCause::SendQueue { to, .. } => to.iter().copied().collect(),
        WaitCause::ModeBarrier { absent, .. } => absent.clone(),
        WaitCause::CommitToken { holder, .. } => holder.iter().copied().collect(),
        WaitCause::GetBcast | WaitCause::Memory | WaitCause::Other(_) => Vec::new(),
    }
}

/// Find a cycle in the wait-for graph, returned as core ids with the
/// first repeated at the end. Depth-first search over at most
/// `cores` nodes; explored in core order so the witness is deterministic.
fn find_wait_cycle(waits: &[CoreWait]) -> Option<Vec<usize>> {
    use std::collections::HashMap;
    let edges: HashMap<usize, Vec<usize>> = waits
        .iter()
        .map(|w| (w.core, wait_edges(&w.cause)))
        .collect();

    const ON_STACK: u8 = 1;
    const DONE: u8 = 2;
    fn dfs(
        v: usize,
        edges: &HashMap<usize, Vec<usize>>,
        state: &mut HashMap<usize, u8>,
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        state.insert(v, ON_STACK);
        stack.push(v);
        for &u in edges.get(&v).into_iter().flatten() {
            match state.get(&u).copied() {
                Some(ON_STACK) => {
                    let start = stack
                        .iter()
                        .position(|&x| x == u)
                        .expect("u is on the stack");
                    let mut path = stack[start..].to_vec();
                    path.push(u);
                    return Some(path);
                }
                Some(_) => {}
                None if edges.contains_key(&u) => {
                    if let Some(p) = dfs(u, edges, state, stack) {
                        return Some(p);
                    }
                }
                None => {}
            }
        }
        stack.pop();
        state.insert(v, DONE);
        None
    }

    let mut state = HashMap::new();
    let mut stack = Vec::new();
    for w in waits {
        if !state.contains_key(&w.core) {
            if let Some(p) = dfs(w.core, &edges, &mut state, &mut stack) {
                return Some(p);
            }
        }
    }
    None
}

/// The CAM tag of a SEND (optional third operand).
fn send_tag(inst: &Inst) -> u32 {
    match inst.srcs.get(2) {
        Some(Operand::Imm(t)) => *t as u32,
        _ => 0,
    }
}

/// The CAM tag of a RECV (optional second operand).
fn recv_tag(inst: &Inst) -> u32 {
    match inst.srcs.get(1) {
        Some(Operand::Imm(t)) => *t as u32,
        _ => 0,
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Machine(cycle {}, mode {}, {} cores)",
            self.cycle, self.mode, self.cfg.cores
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcode::{CoreImage, MBlock};
    use voltron_ir::{DataSegment, Dir};

    fn mk_program(core_blocks: Vec<Vec<MBlock>>, data: DataSegment) -> MachineProgram {
        MachineProgram {
            name: "t".into(),
            cores: core_blocks
                .into_iter()
                .map(|blocks| CoreImage { blocks })
                .collect(),
            data,
        }
    }

    fn gpr(i: u32) -> Reg {
        Reg::gpr(i)
    }

    #[test]
    fn single_core_arithmetic_halts() {
        let mut data = DataSegment::default();
        let out = data.zeroed("out", 8);
        let mut b = MBlock::new("entry", 0);
        b.insts
            .push(Inst::with_dst(Opcode::Ldi, gpr(0), vec![Operand::Imm(6)]));
        b.insts
            .push(Inst::with_dst(Opcode::Ldi, gpr(1), vec![Operand::Imm(7)]));
        b.insts.push(Inst::with_dst(
            Opcode::Mul,
            gpr(2),
            vec![gpr(0).into(), gpr(1).into()],
        ));
        b.insts.push(Inst::with_dst(
            Opcode::Ldi,
            gpr(3),
            vec![Operand::Imm(out as i64)],
        ));
        b.insts.push(Inst::new(
            Opcode::Store(voltron_ir::MemWidth::W8),
            vec![gpr(3).into(), Operand::Imm(0), gpr(2).into()],
        ));
        b.insts.push(Inst::new(Opcode::Halt, vec![]));
        let p = mk_program(vec![vec![b]], data);
        let m = Machine::new(p, &MachineConfig::paper(1)).unwrap();
        let out_run = m.run().unwrap();
        assert_eq!(out_run.memory.load_i64(out).unwrap(), 42);
        assert!(out_run.stats.cycles >= 6);
        assert!(out_run.stragglers.is_empty());
    }

    #[test]
    fn mul_latency_is_respected() {
        // mul at cycle t; consumer must wait until t+3.
        let mut data = DataSegment::default();
        let out = data.zeroed("out", 8);
        let mut b = MBlock::new("entry", 0);
        b.insts
            .push(Inst::with_dst(Opcode::Ldi, gpr(0), vec![Operand::Imm(5)]));
        b.insts.push(Inst::with_dst(
            Opcode::Mul,
            gpr(1),
            vec![gpr(0).into(), gpr(0).into()],
        ));
        b.insts.push(Inst::with_dst(
            Opcode::Add,
            gpr(2),
            vec![gpr(1).into(), Operand::Imm(1)],
        ));
        b.insts.push(Inst::with_dst(
            Opcode::Ldi,
            gpr(3),
            vec![Operand::Imm(out as i64)],
        ));
        b.insts.push(Inst::new(
            Opcode::Store(voltron_ir::MemWidth::W8),
            vec![gpr(3).into(), Operand::Imm(0), gpr(2).into()],
        ));
        b.insts.push(Inst::new(Opcode::Halt, vec![]));
        let p = mk_program(vec![vec![b]], data);
        let out_run = Machine::new(p, &MachineConfig::paper(1))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out_run.memory.load_i64(out).unwrap(), 26);
        let interlock = out_run.stats.cores[0].stalls_for(StallReason::Interlock);
        assert!(interlock >= 2, "expected interlock stalls, got {interlock}");
    }

    /// Two cores in decoupled mode: master spawns a worker that computes
    /// and sends a value back.
    #[test]
    fn spawn_send_recv_roundtrip() {
        let mut data = DataSegment::default();
        let out = data.zeroed("out", 8);
        // Core 0: spawn core1@bb1, recv from core 1, store, halt.
        let mut c0 = MBlock::new("main", 0);
        c0.insts.push(Inst::new(
            Opcode::Spawn,
            vec![Operand::Core(1), Operand::Block(BlockId(1))],
        ));
        c0.insts
            .push(Inst::with_dst(Opcode::Recv, gpr(0), vec![Operand::Core(1)]));
        c0.insts.push(Inst::with_dst(
            Opcode::Ldi,
            gpr(1),
            vec![Operand::Imm(out as i64)],
        ));
        c0.insts.push(Inst::new(
            Opcode::Store(voltron_ir::MemWidth::W8),
            vec![gpr(1).into(), Operand::Imm(0), gpr(0).into()],
        ));
        c0.insts.push(Inst::new(Opcode::Halt, vec![]));
        // Core 1: bb0 unused (sleep stub), bb1: compute 99, send, sleep.
        let mut c1_idle = MBlock::new("idle", 0);
        c1_idle.insts.push(Inst::new(Opcode::Sleep, vec![]));
        let mut c1 = MBlock::new("worker", 0);
        c1.insts
            .push(Inst::with_dst(Opcode::Ldi, gpr(0), vec![Operand::Imm(99)]));
        c1.insts.push(Inst::new(
            Opcode::Send,
            vec![gpr(0).into(), Operand::Core(0)],
        ));
        c1.insts.push(Inst::new(Opcode::Sleep, vec![]));
        let p = mk_program(vec![vec![c0], vec![c1_idle, c1]], data);
        let out_run = Machine::new(p, &MachineConfig::paper(2))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out_run.memory.load_i64(out).unwrap(), 99);
        assert_eq!(out_run.stats.spawns, 1);
        assert!(out_run.stats.cores[0].stalls_for(StallReason::RecvData) > 0);
        assert!(out_run.stragglers.is_empty());
    }

    /// Coupled mode: two cores switch to lock-step, exchange a value over
    /// the direct network, switch back.
    #[test]
    fn coupled_put_get_lockstep() {
        let mut data = DataSegment::default();
        let out = data.zeroed("out", 8);
        // Core 0: spawn worker into its switch stub; mode switch; PUT 7
        // east; NOP; mode switch back; recv join; store; halt.
        let mut c0 = MBlock::new("main", 0);
        c0.insts.push(Inst::new(
            Opcode::Spawn,
            vec![Operand::Core(1), Operand::Block(BlockId(1))],
        ));
        c0.insts.push(Inst::new(
            Opcode::ModeSwitch,
            vec![Operand::Mode(ExecMode::Coupled)],
        ));
        c0.insts
            .push(Inst::with_dst(Opcode::Ldi, gpr(0), vec![Operand::Imm(7)]));
        c0.insts.push(Inst::new(
            Opcode::Put,
            vec![gpr(0).into(), Operand::Dir(Dir::East)],
        ));
        c0.insts.push(Inst::nop());
        c0.insts.push(Inst::nop());
        c0.insts.push(Inst::new(
            Opcode::ModeSwitch,
            vec![Operand::Mode(ExecMode::Decoupled)],
        ));
        c0.insts
            .push(Inst::with_dst(Opcode::Recv, gpr(1), vec![Operand::Core(1)]));
        c0.insts.push(Inst::with_dst(
            Opcode::Ldi,
            gpr(2),
            vec![Operand::Imm(out as i64)],
        ));
        c0.insts.push(Inst::new(
            Opcode::Store(voltron_ir::MemWidth::W8),
            vec![gpr(2).into(), Operand::Imm(0), gpr(1).into()],
        ));
        c0.insts.push(Inst::new(Opcode::Halt, vec![]));
        // Core 1: bb0 idle stub; bb1: switch, nops aligned, GET west,
        // double it, switch back, send result, sleep.
        let mut c1_idle = MBlock::new("idle", 0);
        c1_idle.insts.push(Inst::new(Opcode::Sleep, vec![]));
        let mut c1 = MBlock::new("worker", 0);
        c1.insts.push(Inst::new(
            Opcode::ModeSwitch,
            vec![Operand::Mode(ExecMode::Coupled)],
        ));
        c1.insts.push(Inst::nop());
        c1.insts.push(Inst::nop());
        c1.insts.push(Inst::with_dst(
            Opcode::Get,
            gpr(0),
            vec![Operand::Dir(Dir::West)],
        ));
        c1.insts.push(Inst::with_dst(
            Opcode::Add,
            gpr(1),
            vec![gpr(0).into(), gpr(0).into()],
        ));
        c1.insts.push(Inst::nop());
        c1.insts.push(Inst::new(
            Opcode::ModeSwitch,
            vec![Operand::Mode(ExecMode::Decoupled)],
        ));
        c1.insts.push(Inst::new(
            Opcode::Send,
            vec![gpr(1).into(), Operand::Core(0)],
        ));
        c1.insts.push(Inst::new(Opcode::Sleep, vec![]));
        let p = mk_program(vec![vec![c0], vec![c1_idle, c1]], data);
        let out_run = Machine::new(p, &MachineConfig::paper(2))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out_run.memory.load_i64(out).unwrap(), 14);
        assert_eq!(out_run.stats.mode_switches, 2);
        assert!(out_run.stats.coupled_cycles > 0);
        assert!(out_run.stats.net.direct_transfers >= 1);
    }

    /// A RECV whose stream no SEND feeds is caught statically, before
    /// the cycle loop ever runs.
    #[test]
    fn orphan_recv_is_rejected_statically() {
        let mut data = DataSegment::default();
        data.zeroed("pad", 8);
        let mut c0 = MBlock::new("main", 0);
        c0.insts
            .push(Inst::with_dst(Opcode::Recv, gpr(0), vec![Operand::Core(1)]));
        c0.insts.push(Inst::new(Opcode::Halt, vec![]));
        let mut c1 = MBlock::new("idle", 0);
        c1.insts.push(Inst::new(Opcode::Sleep, vec![]));
        let p = mk_program(vec![vec![c0], vec![c1]], data);
        let err = Machine::new(p, &MachineConfig::paper(2)).unwrap_err();
        match err {
            SimError::Validate(crate::validate::ValidateError::OrphanRecv { site, from, tag }) => {
                assert_eq!(site.core, 0);
                assert_eq!(site.block, 0);
                assert_eq!(from, 1);
                assert_eq!(tag, 0);
            }
            other => panic!("expected orphan-recv rejection, got {other}"),
        }
    }

    /// A statically valid program whose two cores each RECV what the
    /// other sends *afterwards*: a genuine runtime wait cycle. The
    /// forensics must name both waits and the 0 -> 1 -> 0 cycle.
    #[test]
    fn deadlocked_recv_is_reported() {
        let mut data = DataSegment::default();
        data.zeroed("pad", 8);
        // Core 0: recv from core 1 (tag 0) *before* sending tag 1.
        let mut c0 = MBlock::new("main", 0);
        c0.insts.push(Inst::new(
            Opcode::Spawn,
            vec![Operand::Core(1), Operand::Block(BlockId(1))],
        ));
        c0.insts.push(Inst::with_dst(
            Opcode::Recv,
            gpr(0),
            vec![Operand::Core(1), Operand::Imm(0)],
        ));
        c0.insts
            .push(Inst::with_dst(Opcode::Ldi, gpr(1), vec![Operand::Imm(5)]));
        c0.insts.push(Inst::new(
            Opcode::Send,
            vec![gpr(1).into(), Operand::Core(1), Operand::Imm(1)],
        ));
        c0.insts.push(Inst::new(Opcode::Halt, vec![]));
        // Core 1: recv from core 0 (tag 1) *before* sending tag 0.
        let mut c1_idle = MBlock::new("idle", 0);
        c1_idle.insts.push(Inst::new(Opcode::Sleep, vec![]));
        let mut c1 = MBlock::new("worker", 0);
        c1.insts
            .push(Inst::with_dst(Opcode::Ldi, gpr(0), vec![Operand::Imm(7)]));
        c1.insts.push(Inst::with_dst(
            Opcode::Recv,
            gpr(1),
            vec![Operand::Core(0), Operand::Imm(1)],
        ));
        c1.insts.push(Inst::new(
            Opcode::Send,
            vec![gpr(0).into(), Operand::Core(0), Operand::Imm(0)],
        ));
        c1.insts.push(Inst::new(Opcode::Sleep, vec![]));
        let p = mk_program(vec![vec![c0], vec![c1_idle, c1]], data);
        let err = Machine::new(p, &MachineConfig::paper(2))
            .unwrap()
            .run()
            .unwrap_err();
        match err {
            SimError::Deadlock {
                waits, cycle_path, ..
            } => {
                let w0 = waits.iter().find(|w| w.core == 0).expect("core 0 waits");
                assert_eq!(
                    w0.cause,
                    WaitCause::Recv {
                        from: 1,
                        tag: 0,
                        buffered: 0
                    }
                );
                let w1 = waits.iter().find(|w| w.core == 1).expect("core 1 waits");
                assert_eq!(w1.block_name, "worker");
                assert_eq!(
                    w1.cause,
                    WaitCause::Recv {
                        from: 0,
                        tag: 1,
                        buffered: 0
                    }
                );
                let path = cycle_path.expect("cross-recv hang is a cycle");
                assert_eq!(path, vec![0, 1, 0]);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    /// A jump-to-self spin issues every cycle (so the deadlock window
    /// keeps resetting) but never changes architectural state: the
    /// livelock watchdog, not `MaxCycles`, must call it.
    #[test]
    fn control_spin_is_diagnosed_as_livelock() {
        let mut data = DataSegment::default();
        data.zeroed("pad", 8);
        let mut b = MBlock::new("spin", 0);
        b.insts
            .push(Inst::new(Opcode::Jump, vec![Operand::Block(BlockId(0))]));
        let p = mk_program(vec![vec![b]], data);
        let cfg = MachineConfig {
            watchdogs: crate::config::Watchdogs {
                deadlock_window: 1_000,
                livelock_window: 2_000,
                ..crate::config::Watchdogs::default()
            },
            ..MachineConfig::paper(1)
        };
        let err = Machine::new(p, &cfg).unwrap().run().unwrap_err();
        match err {
            SimError::Livelock { cycle, window, .. } => {
                assert_eq!(window, 2_000);
                assert!(cycle >= 2_000);
            }
            other => panic!("expected livelock, got {other}"),
        }
    }

    /// Transactions: two chunks, the later one reads what the earlier one
    /// writes -> observe an abort and a sequentially-correct result.
    #[test]
    fn tm_conflict_rolls_back_and_reexecutes() {
        let mut data = DataSegment::default();
        let shared = data.array_i64("shared", &[5]);
        let out = data.zeroed("out", 8);
        // Core 0 (chunk 0): spawn worker; xbegin 0; long delay (nops);
        // store 100 to shared; xcommit; recv join; halt.
        let mut c0 = MBlock::new("main", 0);
        // Codegen contract: the master's XBEGIN 0 precedes worker spawns.
        c0.insts
            .push(Inst::new(Opcode::Xbegin, vec![Operand::Imm(0)]));
        c0.insts.push(Inst::new(
            Opcode::Spawn,
            vec![Operand::Core(1), Operand::Block(BlockId(1))],
        ));
        for _ in 0..40 {
            c0.insts.push(Inst::nop());
        }
        c0.insts.push(Inst::with_dst(
            Opcode::Ldi,
            gpr(0),
            vec![Operand::Imm(shared as i64)],
        ));
        c0.insts
            .push(Inst::with_dst(Opcode::Ldi, gpr(1), vec![Operand::Imm(100)]));
        c0.insts.push(Inst::new(
            Opcode::Store(voltron_ir::MemWidth::W8),
            vec![gpr(0).into(), Operand::Imm(0), gpr(1).into()],
        ));
        c0.insts.push(Inst::new(Opcode::Xcommit, vec![]));
        c0.insts
            .push(Inst::with_dst(Opcode::Recv, gpr(2), vec![Operand::Core(1)]));
        c0.insts.push(Inst::new(Opcode::Halt, vec![]));
        // Core 1 (chunk 1): xbegin 1; read shared; store it to out;
        // xcommit; send join; sleep. It reads early (before core 0's
        // store), so it must abort and re-run, ending with out == 100.
        let mut c1_idle = MBlock::new("idle", 0);
        c1_idle.insts.push(Inst::new(Opcode::Sleep, vec![]));
        let mut c1 = MBlock::new("chunk1", 0);
        c1.insts
            .push(Inst::new(Opcode::Xbegin, vec![Operand::Imm(1)]));
        c1.insts.push(Inst::with_dst(
            Opcode::Ldi,
            gpr(0),
            vec![Operand::Imm(shared as i64)],
        ));
        c1.insts.push(Inst::with_dst(
            Opcode::Load(voltron_ir::MemWidth::W8, voltron_ir::Signedness::Signed),
            gpr(1),
            vec![gpr(0).into(), Operand::Imm(0)],
        ));
        c1.insts.push(Inst::with_dst(
            Opcode::Ldi,
            gpr(2),
            vec![Operand::Imm(out as i64)],
        ));
        c1.insts.push(Inst::new(
            Opcode::Store(voltron_ir::MemWidth::W8),
            vec![gpr(2).into(), Operand::Imm(0), gpr(1).into()],
        ));
        c1.insts.push(Inst::new(Opcode::Xcommit, vec![]));
        c1.insts
            .push(Inst::with_dst(Opcode::Ldi, gpr(3), vec![Operand::Imm(1)]));
        c1.insts.push(Inst::new(
            Opcode::Send,
            vec![gpr(3).into(), Operand::Core(0)],
        ));
        c1.insts.push(Inst::new(Opcode::Sleep, vec![]));
        let p = mk_program(vec![vec![c0], vec![c1_idle, c1]], data);
        let out_run = Machine::new(p, &MachineConfig::paper(2))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            out_run.memory.load_i64(out).unwrap(),
            100,
            "sequential semantics"
        );
        assert!(out_run.stats.tm.aborts >= 1, "expected at least one abort");
        assert_eq!(
            out_run.stats.tm.commits,
            2 + out_run.stats.tm.aborts - out_run.stats.tm.aborts
        );
    }

    #[test]
    fn load_miss_stalls_consumer_until_fill() {
        let mut data = DataSegment::default();
        let a = data.array_i64("a", &[11]);
        let out = data.zeroed("out", 8);
        let mut b = MBlock::new("entry", 0);
        b.insts.push(Inst::with_dst(
            Opcode::Ldi,
            gpr(0),
            vec![Operand::Imm(a as i64)],
        ));
        b.insts.push(Inst::with_dst(
            Opcode::Load(voltron_ir::MemWidth::W8, voltron_ir::Signedness::Signed),
            gpr(1),
            vec![gpr(0).into(), Operand::Imm(0)],
        ));
        b.insts.push(Inst::with_dst(
            Opcode::Add,
            gpr(2),
            vec![gpr(1).into(), Operand::Imm(1)],
        ));
        b.insts.push(Inst::with_dst(
            Opcode::Ldi,
            gpr(3),
            vec![Operand::Imm(out as i64)],
        ));
        b.insts.push(Inst::new(
            Opcode::Store(voltron_ir::MemWidth::W8),
            vec![gpr(3).into(), Operand::Imm(0), gpr(2).into()],
        ));
        b.insts.push(Inst::new(Opcode::Halt, vec![]));
        let p = mk_program(vec![vec![b]], data);
        let out_run = Machine::new(p, &MachineConfig::paper(1))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out_run.memory.load_i64(out).unwrap(), 12);
        let dstalls = out_run.stats.cores[0].stalls_for(StallReason::DMiss);
        assert!(
            dstalls > 50,
            "cold miss should stall ~memory latency, got {dstalls}"
        );
    }
}
