//! CPI stacks and counterfactual what-if analysis.
//!
//! Two halves of one question — *what is this run bound by, and what
//! would fixing it buy?*
//!
//! * [`CycleStack`] / [`RegionStack`] decompose a finished run's
//!   core-cycles into issue, per-[`StallReason`], idle, and spawn-start
//!   components, machine-wide and per region, under an **exact-sum
//!   invariant**: the components add to `(cycles + drained_cycles) *
//!   cores` with no residue (asserted by `tests/whatif_ceilings.rs`).
//!   TM-abort wasted work is carried as an *overlay* — those cycles were
//!   already classified as issue or stall while the doomed transaction
//!   ran, so adding them as a component would double-count.
//! * [`KnobId`] enumerates the idealization knobs of
//!   [`crate::config::IdealKnobs`]; the driver in `voltron-core` re-runs
//!   a workload with one knob lit at a time and reports the speedup as
//!   the **ceiling** on what optimizing that cost class can yield
//!   (Amdahl-style: removing a cost entirely bounds every partial fix).
//! * [`BoundBy`] names the cost classes; [`CycleStack::bound_by`] picks
//!   the dominant one, which is the per-region classification the
//!   feedback-directed planner (ROADMAP item 5) consumes.
//!
//! The measured run never sees a knob: stacks are pure post-processing
//! of [`MachineStats`], and idealized runs happen on separate machines
//! built from a config copy. Golden fingerprints therefore stay
//! byte-identical with this module compiled in.

use crate::config::IdealKnobs;
use crate::mcode::{RegionId, REGION_OUTSIDE};
use crate::stats::{MachineStats, RegionBreakdown, StallReason};
use std::fmt;

/// The cost class a run (or region) is dominated by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundBy {
    /// Issue and interlock cycles dominate: the code is doing work.
    Compute,
    /// I-fetch, d-miss and store-buffer stalls dominate.
    Memory,
    /// Operand-network stalls (recv-data, direct-wait, send-full)
    /// dominate.
    Communication,
    /// Sync, predicate-receive and spawn-start cycles dominate.
    Synchronization,
    /// Cores sit idle awaiting spawns: not enough parallelism extracted.
    Idle,
    /// TM-abort wasted work exceeds every primary bucket.
    TmConflicts,
}

impl fmt::Display for BoundBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BoundBy::Compute => "compute",
            BoundBy::Memory => "memory",
            BoundBy::Communication => "communication",
            BoundBy::Synchronization => "synchronization",
            BoundBy::Idle => "idle",
            BoundBy::TmConflicts => "tm-conflicts",
        };
        f.write_str(s)
    }
}

/// Pick the dominant cost class from pre-bucketed core-cycle counts.
/// Ties break toward the earlier class in the listing order (compute
/// first), which makes the classification deterministic.
fn classify(compute: u64, memory: u64, comm: u64, sync: u64, idle: u64, tm_wasted: u64) -> BoundBy {
    let buckets = [
        (BoundBy::Compute, compute),
        (BoundBy::Memory, memory),
        (BoundBy::Communication, comm),
        (BoundBy::Synchronization, sync),
        (BoundBy::Idle, idle),
        (BoundBy::TmConflicts, tm_wasted),
    ];
    let mut best = buckets[0];
    for &b in &buckets[1..] {
        if b.1 > best.1 {
            best = b;
        }
    }
    best.0
}

/// Bucket a stall array into the memory / communication / sync classes
/// used by [`BoundBy`]. Returns `(memory, comm, sync, interlock)`.
fn bucket_stalls(stalls: &[u64; 9]) -> (u64, u64, u64, u64) {
    let s = |r: StallReason| stalls[r.index()];
    let memory = s(StallReason::IFetch) + s(StallReason::DMiss) + s(StallReason::StoreBuf);
    let comm = s(StallReason::RecvData) + s(StallReason::DirectWait) + s(StallReason::SendFull);
    let sync = s(StallReason::Sync) + s(StallReason::RecvPred);
    (memory, comm, sync, s(StallReason::Interlock))
}

/// Machine-wide CPI stack: where every core-cycle of a run went.
///
/// Built by [`CycleStack::of`] from a finished run's [`MachineStats`];
/// pure post-processing, the run is never touched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleStack {
    /// Core count the totals are summed over.
    pub cores: usize,
    /// The exact-sum denominator:
    /// `(cycles + drained_cycles) * cores` — every core is accounted on
    /// every simulated cycle, including the post-halt drain.
    pub total: u64,
    /// Core-cycles that issued a useful (non-NOP) operation.
    pub issued: u64,
    /// Core-cycles that issued schedule-padding NOPs.
    pub nops: u64,
    /// Core-cycles spent idle awaiting a spawn.
    pub idle: u64,
    /// Core-cycles stalled, indexed by [`StallReason::index`].
    pub stalls: [u64; 9],
    /// Core-cycles consumed starting spawned threads.
    pub spawn_starts: u64,
    /// Overlay: core-cycles inside transactions that later aborted.
    /// Already counted in `issued`/`stalls`; **not** an exact-sum term.
    pub tm_wasted: u64,
}

impl CycleStack {
    /// Decompose a run's statistics into its machine-wide stack.
    pub fn of(stats: &MachineStats) -> CycleStack {
        let cores = stats.cores.len();
        let mut stack = CycleStack {
            cores,
            total: (stats.cycles + stats.drained_cycles) * cores as u64,
            tm_wasted: stats.tm.wasted_cycles,
            ..CycleStack::default()
        };
        for c in &stats.cores {
            stack.issued += c.issued;
            stack.nops += c.nops;
            stack.idle += c.idle;
            stack.spawn_starts += c.spawn_starts;
            for (i, s) in c.stalls.iter().enumerate() {
                stack.stalls[i] += s;
            }
        }
        stack
    }

    /// Sum of the primary components (the overlay excluded).
    pub fn accounted(&self) -> u64 {
        self.issued + self.nops + self.idle + self.stalls.iter().sum::<u64>() + self.spawn_starts
    }

    /// The exact-sum invariant: components add to `total` with no
    /// residue.
    pub fn is_exact(&self) -> bool {
        self.accounted() == self.total
    }

    /// Dominant cost class of the whole run.
    pub fn bound_by(&self) -> BoundBy {
        let (memory, comm, sync, interlock) = bucket_stalls(&self.stalls);
        classify(
            self.issued + self.nops + interlock,
            memory,
            comm,
            sync + self.spawn_starts,
            self.idle,
            self.tm_wasted,
        )
    }

    /// Display rows `(label, core-cycles)` in stack order: issue first,
    /// then NOPs, each stall reason, spawn-starts, idle. Omits the
    /// `tm_wasted` overlay (render it separately — it double-counts).
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut rows = vec![
            ("issue".to_string(), self.issued),
            ("nop".to_string(), self.nops),
        ];
        for r in StallReason::ALL {
            rows.push((r.to_string(), self.stalls[r.index()]));
        }
        rows.push(("spawn-start".to_string(), self.spawn_starts));
        rows.push(("idle".to_string(), self.idle));
        rows
    }
}

/// Per-region CPI stack: [`RegionBreakdown`] recast with its exact-sum
/// denominator (`cycles * cores`) and [`BoundBy`] classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionStack {
    /// Planner region id ([`REGION_OUTSIDE`] for unattributed cycles).
    pub region: RegionId,
    /// Core count the totals are summed over.
    pub cores: usize,
    /// Cycles the master core spent inside the region.
    pub cycles: u64,
    /// The exact-sum denominator: `cycles * cores`.
    pub total: u64,
    /// Core-cycles that issued (useful ops and NOPs alike — the region
    /// table does not split them).
    pub issued: u64,
    /// Core-cycles spent idle awaiting a spawn.
    pub idle: u64,
    /// Core-cycles stalled, indexed by [`StallReason::index`].
    pub stalls: [u64; 9],
    /// Core-cycles consumed starting spawned threads.
    pub spawn_starts: u64,
    /// Overlay: wasted work of transactions aborted while the master
    /// was in this region. Not an exact-sum term.
    pub tm_wasted: u64,
}

impl RegionStack {
    /// Recast one region's breakdown.
    pub fn of(region: RegionId, cores: usize, rb: &RegionBreakdown) -> RegionStack {
        RegionStack {
            region,
            cores,
            cycles: rb.cycles,
            total: rb.cycles * cores as u64,
            issued: rb.issued,
            idle: rb.idle,
            stalls: rb.stalls,
            spawn_starts: rb.spawn_starts,
            tm_wasted: rb.tm_wasted,
        }
    }

    /// Sum of the primary components (the overlay excluded).
    pub fn accounted(&self) -> u64 {
        self.issued + self.idle + self.stalls.iter().sum::<u64>() + self.spawn_starts
    }

    /// The per-region exact-sum invariant: components add to
    /// `cycles * cores`.
    pub fn is_exact(&self) -> bool {
        self.accounted() == self.total
    }

    /// Dominant cost class of this region.
    pub fn bound_by(&self) -> BoundBy {
        let (memory, comm, sync, interlock) = bucket_stalls(&self.stalls);
        classify(
            self.issued + interlock,
            memory,
            comm,
            sync + self.spawn_starts,
            self.idle,
            self.tm_wasted,
        )
    }
}

/// All region stacks of a run, planner regions in id order with
/// [`REGION_OUTSIDE`] last.
pub fn region_stacks(stats: &MachineStats) -> Vec<RegionStack> {
    let cores = stats.cores.len();
    let mut out: Vec<RegionStack> = stats
        .regions
        .iter()
        .map(|(&r, rb)| RegionStack::of(r, cores, rb))
        .collect();
    out.sort_by_key(|s| {
        if s.region == REGION_OUTSIDE {
            u64::from(u32::MAX) + 1
        } else {
            u64::from(s.region)
        }
    });
    out
}

/// One idealization knob of the what-if engine, naming a single field
/// of [`IdealKnobs`]. The driver runs the workload once per knob and
/// reports `measured_cycles / ideal_cycles` as that cost class's
/// speedup ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnobId {
    /// Zero-latency operand network.
    ZeroLatencyNetwork,
    /// Infinite bus/bank bandwidth.
    InfiniteBandwidth,
    /// Perfect L1 caches.
    PerfectL1,
    /// Zero recoverable TM conflict aborts.
    ZeroTmConflicts,
    /// Free spawn delivery.
    FreeSpawn,
}

impl KnobId {
    /// Every knob, in display order.
    pub const ALL: [KnobId; 5] = [
        KnobId::ZeroLatencyNetwork,
        KnobId::InfiniteBandwidth,
        KnobId::PerfectL1,
        KnobId::ZeroTmConflicts,
        KnobId::FreeSpawn,
    ];

    /// Stable machine-readable label (used in `BENCH_*.json`).
    pub fn label(self) -> &'static str {
        match self {
            KnobId::ZeroLatencyNetwork => "zero-latency-network",
            KnobId::InfiniteBandwidth => "infinite-bandwidth",
            KnobId::PerfectL1 => "perfect-l1",
            KnobId::ZeroTmConflicts => "zero-tm-conflicts",
            KnobId::FreeSpawn => "free-spawn",
        }
    }

    /// The one-hot [`IdealKnobs`] this knob stands for.
    pub fn knobs(self) -> IdealKnobs {
        let mut k = IdealKnobs::default();
        match self {
            KnobId::ZeroLatencyNetwork => k.zero_latency_network = true,
            KnobId::InfiniteBandwidth => k.infinite_bandwidth = true,
            KnobId::PerfectL1 => k.perfect_l1 = true,
            KnobId::ZeroTmConflicts => k.zero_tm_conflicts = true,
            KnobId::FreeSpawn => k.free_spawn = true,
        }
        k
    }

    /// The cost class this knob removes — the ceiling it reports bounds
    /// fixes aimed at that class.
    pub fn addresses(self) -> BoundBy {
        match self {
            KnobId::ZeroLatencyNetwork => BoundBy::Communication,
            KnobId::InfiniteBandwidth | KnobId::PerfectL1 => BoundBy::Memory,
            KnobId::ZeroTmConflicts => BoundBy::TmConflicts,
            KnobId::FreeSpawn => BoundBy::Synchronization,
        }
    }
}

impl fmt::Display for KnobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CoreStats;

    fn synthetic_stats() -> MachineStats {
        let mut m = MachineStats {
            cycles: 90,
            drained_cycles: 10,
            ..MachineStats::default()
        };
        // Two cores, each accounted for all 100 simulated cycles.
        let mut a = CoreStats {
            issued: 50,
            nops: 10,
            idle: 15,
            spawn_starts: 5,
            ..CoreStats::default()
        };
        a.stalls[StallReason::DMiss.index()] = 20;
        let mut b = CoreStats {
            issued: 40,
            idle: 30,
            ..CoreStats::default()
        };
        b.stalls[StallReason::RecvData.index()] = 25;
        b.stalls[StallReason::Sync.index()] = 5;
        m.cores = vec![a, b];
        m.tm.wasted_cycles = 7;
        m
    }

    #[test]
    fn machine_stack_sums_exactly() {
        let stack = CycleStack::of(&synthetic_stats());
        assert_eq!(stack.total, 200);
        assert_eq!(stack.accounted(), 200);
        assert!(stack.is_exact());
        assert_eq!(stack.tm_wasted, 7);
        // The overlay is not part of the sum.
        let row_sum: u64 = stack.rows().iter().map(|&(_, n)| n).sum();
        assert_eq!(row_sum, stack.total);
    }

    #[test]
    fn residue_is_detected() {
        let mut stats = synthetic_stats();
        stats.cores[0].issued -= 1; // lose one cycle
        let stack = CycleStack::of(&stats);
        assert!(!stack.is_exact());
        assert_eq!(stack.accounted(), stack.total - 1);
    }

    #[test]
    fn classification_picks_the_dominant_class() {
        let stack = CycleStack::of(&synthetic_stats());
        // compute 100 (issued 90 + nops 10) beats memory 20, comm 25,
        // sync 10, idle 45.
        assert_eq!(stack.bound_by(), BoundBy::Compute);

        let mut stats = synthetic_stats();
        stats.cores[0].stalls[StallReason::RecvData.index()] = 200;
        assert_eq!(CycleStack::of(&stats).bound_by(), BoundBy::Communication);

        let mut stats = synthetic_stats();
        stats.tm.wasted_cycles = 10_000;
        assert_eq!(CycleStack::of(&stats).bound_by(), BoundBy::TmConflicts);
    }

    #[test]
    fn region_stacks_sort_outside_last_and_sum() {
        let mut stats = synthetic_stats();
        let mut r0 = RegionBreakdown {
            cycles: 10,
            issued: 12,
            idle: 5,
            spawn_starts: 1,
            ..RegionBreakdown::default()
        };
        r0.stalls[StallReason::Sync.index()] = 2;
        let outside = RegionBreakdown {
            cycles: 3,
            issued: 6,
            ..RegionBreakdown::default()
        };
        stats.regions.insert(2, r0);
        stats.regions.insert(REGION_OUTSIDE, outside);
        let stacks = region_stacks(&stats);
        assert_eq!(stacks.len(), 2);
        assert_eq!(stacks[0].region, 2);
        assert_eq!(stacks[1].region, REGION_OUTSIDE);
        assert_eq!(stacks[0].total, 20);
        assert!(stacks[0].is_exact());
        assert!(stacks[1].is_exact());
    }

    #[test]
    fn knobs_are_one_hot_and_labeled() {
        for k in KnobId::ALL {
            let knobs = k.knobs();
            assert!(knobs.any());
            let lit = [
                knobs.zero_latency_network,
                knobs.infinite_bandwidth,
                knobs.perfect_l1,
                knobs.zero_tm_conflicts,
                knobs.free_spawn,
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            assert_eq!(lit, 1, "{k} must light exactly one field");
            assert!(!k.label().is_empty());
        }
        assert_eq!(KnobId::PerfectL1.addresses(), BoundBy::Memory);
    }
}
