//! Cycle and stall accounting.
//!
//! The categories follow Fig. 12 of the paper: instruction-cache stalls,
//! data stalls, receive stalls (split into data and predicate receives),
//! and synchronization (spawn/join/commit-token/mode-switch barriers —
//! the paper's "call return sync" category; calls are inlined here, so the
//! synchronization happens at region boundaries instead, see DESIGN.md).

use crate::fault::FaultStats;
use crate::memsys::MemStats;
use crate::network::NetStats;
use crate::tm::TmStats;
use std::collections::HashMap;
use std::fmt;

/// Why a core could not issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// Instruction-cache miss.
    IFetch,
    /// Waiting on a data-cache miss (pending load destination).
    DMiss,
    /// Store buffer full.
    StoreBuf,
    /// Register not yet ready (fixed-latency interlock slack).
    Interlock,
    /// Direct-mode latch not ready / occupied (`PUT`/`GET`/`BCAST`).
    DirectWait,
    /// `RECV` of a non-predicate value with no matching message.
    RecvData,
    /// `RECV`/`GETB` of a predicate with no matching message (control
    /// synchronization).
    RecvPred,
    /// Send queue full.
    SendFull,
    /// Synchronization: mode-switch barrier, commit token, or commit bus
    /// broadcast.
    Sync,
}

impl StallReason {
    /// All reasons, in display order.
    pub const ALL: [StallReason; 9] = [
        StallReason::IFetch,
        StallReason::DMiss,
        StallReason::StoreBuf,
        StallReason::Interlock,
        StallReason::DirectWait,
        StallReason::RecvData,
        StallReason::RecvPred,
        StallReason::SendFull,
        StallReason::Sync,
    ];

    /// Dense index for table storage.
    pub fn index(self) -> usize {
        match self {
            StallReason::IFetch => 0,
            StallReason::DMiss => 1,
            StallReason::StoreBuf => 2,
            StallReason::Interlock => 3,
            StallReason::DirectWait => 4,
            StallReason::RecvData => 5,
            StallReason::RecvPred => 6,
            StallReason::SendFull => 7,
            StallReason::Sync => 8,
        }
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallReason::IFetch => "i-stall",
            StallReason::DMiss => "d-stall",
            StallReason::StoreBuf => "store-buf",
            StallReason::Interlock => "interlock",
            StallReason::DirectWait => "direct-wait",
            StallReason::RecvData => "recv-data",
            StallReason::RecvPred => "recv-pred",
            StallReason::SendFull => "send-full",
            StallReason::Sync => "sync",
        };
        f.write_str(s)
    }
}

/// Per-core cycle accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles that issued a useful (non-NOP) operation.
    pub issued: u64,
    /// Cycles that issued a NOP (coupled-mode schedule padding).
    pub nops: u64,
    /// Cycles spent idle awaiting a spawn.
    pub idle: u64,
    /// Stall cycles by reason.
    pub stalls: [u64; 9],
    /// Cycles consumed starting a spawned thread (the wake-up cycle a
    /// `StartThread` decision burns before the first issue). Kept as its
    /// own bucket so every core-cycle lands in exactly one category —
    /// the CPI-stack exact-sum invariant (`crate::whatif`).
    pub spawn_starts: u64,
}

impl CoreStats {
    /// Record a stall.
    pub fn stall(&mut self, r: StallReason) {
        self.stalls[r.index()] += 1;
    }

    /// Total stall cycles.
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Stall cycles for one reason.
    pub fn stalls_for(&self, r: StallReason) -> u64 {
        self.stalls[r.index()]
    }

    /// Every accounted core-cycle: issue + NOPs + idle + stalls +
    /// spawn-start cycles. Equals the cycles this core was simulated for
    /// (including the post-halt drain; see `MachineStats::drained_cycles`).
    pub fn accounted(&self) -> u64 {
        self.issued + self.nops + self.idle + self.total_stalls() + self.spawn_starts
    }
}

/// Per-region occupancy attribution: where every core-cycle spent while
/// the master core was inside the region went.
///
/// Classification matches [`CoreStats`] accounting exactly — the same
/// coupled stall-bus grouping, the same idle/issue arms — so summing a
/// field over all regions reproduces the machine-wide total.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionBreakdown {
    /// Cycles the master core spent inside the region.
    pub cycles: u64,
    /// Core-cycles that issued (useful ops and NOPs alike).
    pub issued: u64,
    /// Core-cycles spent idle awaiting a spawn.
    pub idle: u64,
    /// Core-cycles stalled, indexed by [`StallReason::index`].
    pub stalls: [u64; 9],
    /// Core-cycles consumed starting spawned threads (see
    /// [`CoreStats::spawn_starts`]).
    pub spawn_starts: u64,
    /// Core-cycles spent in transactions that later aborted, attributed
    /// to the region current at abort time. An *overlay* on the primary
    /// categories (those cycles were already classified as issue/stall),
    /// not a term of the exact-sum decomposition.
    pub tm_wasted: u64,
}

impl RegionBreakdown {
    /// Total stalled core-cycles in the region.
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Every accounted core-cycle in the region (spawn-start cycles
    /// included, the `tm_wasted` overlay excluded). Equals
    /// `cycles * cores` — the per-region exact-sum invariant.
    pub fn accounted(&self) -> u64 {
        self.issued + self.idle + self.total_stalls() + self.spawn_starts
    }

    /// The stall reason costing the most core-cycles, if any stall was
    /// recorded.
    pub fn dominant_stall(&self) -> Option<(StallReason, u64)> {
        StallReason::ALL
            .iter()
            .map(|&r| (r, self.stalls[r.index()]))
            .max_by_key(|&(_, n)| n)
            .filter(|&(_, n)| n > 0)
    }
}

/// Whole-machine statistics for one run.
///
/// `PartialEq` is derived so the fast-forward equivalence tests can
/// assert that an event-skipping run reports *exactly* the numbers a
/// tick-by-tick run does.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Post-halt grace-drain ticks: after the master halts, the machine
    /// keeps ticking (bounded) so straggler cores can finish, and those
    /// ticks still account core-cycles into `cores`/`regions` while
    /// `cycles` stays at the halt point. Recorded so the CPI-stack
    /// exact-sum invariant closes:
    /// `sum(cores[i].accounted()) == (cycles + drained_cycles) * cores.len()`.
    pub drained_cycles: u64,
    /// Cycles spent in coupled mode.
    pub coupled_cycles: u64,
    /// Cycles spent in decoupled mode.
    pub decoupled_cycles: u64,
    /// Cycles attributed to each planner region (by the master core's
    /// current block).
    pub region_cycles: HashMap<u32, u64>,
    /// Full per-region occupancy/stall attribution (same keys as
    /// `region_cycles`; `regions[r].cycles == region_cycles[r]`).
    pub regions: HashMap<u32, RegionBreakdown>,
    /// Per-core accounting.
    pub cores: Vec<CoreStats>,
    /// Memory system statistics.
    pub mem: MemStats,
    /// Operand network statistics.
    pub net: NetStats,
    /// Transactional memory statistics.
    pub tm: TmStats,
    /// Threads spawned.
    pub spawns: u64,
    /// Mode switches performed.
    pub mode_switches: u64,
    /// Dynamic instructions issued (all cores, including NOPs).
    pub dynamic_insts: u64,
    /// Fault-injection accounting (all zeros when the fault layer is
    /// disabled, so `FaultStats::any` gates every report section).
    pub faults: FaultStats,
}

impl MachineStats {
    /// Sum of a stall reason across cores.
    pub fn total_stall(&self, r: StallReason) -> u64 {
        self.cores.iter().map(|c| c.stalls_for(r)).sum()
    }

    /// Average per-core stall cycles for a reason (the paper's Fig. 12
    /// plots per-core averages normalized to serial time).
    pub fn avg_stall(&self, r: StallReason) -> f64 {
        if self.cores.is_empty() {
            0.0
        } else {
            self.total_stall(r) as f64 / self.cores.len() as f64
        }
    }

    /// Total stalled core-cycles across all cores and reasons.
    pub fn total_stalls(&self) -> u64 {
        self.cores.iter().map(|c| c.total_stalls()).sum()
    }

    /// The stall reason costing the most core-cycles machine-wide, if any
    /// stall was recorded.
    pub fn dominant_stall(&self) -> Option<(StallReason, u64)> {
        StallReason::ALL
            .iter()
            .map(|&r| (r, self.total_stall(r)))
            .max_by_key(|&(_, n)| n)
            .filter(|&(_, n)| n > 0)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let stall = match self.dominant_stall() {
            Some((r, n)) => format!("{} stall cycles (top: {r} {n})", self.total_stalls()),
            None => "0 stall cycles".to_string(),
        };
        format!(
            "{} cycles ({} coupled / {} decoupled), {} insts, {} spawns, {} tm commits / {} aborts, {stall}",
            self.cycles,
            self.coupled_cycles,
            self.decoupled_cycles,
            self.dynamic_insts,
            self.spawns,
            self.tm.commits,
            self.tm.aborts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_indices_are_dense_and_unique() {
        for (i, r) in StallReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn core_stats_accumulate() {
        let mut c = CoreStats::default();
        c.stall(StallReason::DMiss);
        c.stall(StallReason::DMiss);
        c.stall(StallReason::Sync);
        assert_eq!(c.stalls_for(StallReason::DMiss), 2);
        assert_eq!(c.total_stalls(), 3);
    }

    #[test]
    fn machine_stats_aggregate_across_cores() {
        let mut m = MachineStats {
            cores: vec![CoreStats::default(); 4],
            ..Default::default()
        };
        m.cores[0].stall(StallReason::RecvPred);
        m.cores[3].stall(StallReason::RecvPred);
        assert_eq!(m.total_stall(StallReason::RecvPred), 2);
        assert!((m.avg_stall(StallReason::RecvPred) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn summary_names_the_dominant_stall() {
        let mut m = MachineStats {
            cores: vec![CoreStats::default(); 2],
            ..Default::default()
        };
        assert!(m.summary().contains("0 stall cycles"));
        m.cores[0].stall(StallReason::RecvData);
        m.cores[0].stall(StallReason::RecvData);
        m.cores[1].stall(StallReason::Sync);
        assert_eq!(m.total_stalls(), 3);
        assert_eq!(m.dominant_stall(), Some((StallReason::RecvData, 2)));
        assert!(m.summary().contains("3 stall cycles (top: recv-data 2)"));
    }

    #[test]
    fn region_breakdown_reports_its_dominant_reason() {
        let mut r = RegionBreakdown::default();
        assert_eq!(r.dominant_stall(), None);
        r.stalls[StallReason::Sync.index()] = 5;
        r.stalls[StallReason::DMiss.index()] = 7;
        assert_eq!(r.total_stalls(), 12);
        assert_eq!(r.dominant_stall(), Some((StallReason::DMiss, 7)));
    }
}
